// Twitris-style spatio-temporal-thematic browsing: summarize what each
// first-level division talked about, day by day, via TF-IDF — including
// the profile-location fallback whose reliability the paper measures.
//
// Usage: trend_summaries [scale]

#include <cstdio>
#include <cstdlib>

#include "event/twitris.h"
#include "geo/admin_db.h"
#include "twitter/generator.h"

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  if (scale <= 0.0) scale = 0.05;

  const stir::geo::AdminDb& db = stir::geo::AdminDb::KoreanDistricts();
  auto config = stir::twitter::DatasetGenerator::KoreanConfig(scale);
  // Materialize more plain tweets than the study needs: the summarizer
  // wants text volume.
  config.plain_tweet_sample = 0.01;
  config.duration_days = 7;
  stir::twitter::DatasetGenerator generator(&db, config);
  stir::twitter::GeneratedData data = generator.Generate();
  std::printf("corpus: %zu materialized tweets over %lld days\n\n",
              data.dataset.tweets().size(),
              static_cast<long long>(config.duration_days));

  stir::event::TwitrisOptions options;
  options.top_k_terms = 5;
  options.min_tweets_per_cell = 10;
  stir::event::TwitrisSummarizer summarizer(&db, options);
  auto summaries = summarizer.Summarize(data.dataset);
  if (!summaries.ok()) {
    std::printf("summarize failed: %s\n", summaries.status().ToString().c_str());
    return 1;
  }

  int printed = 0;
  for (const auto& cell : *summaries) {
    std::printf("day %lld | %-18s (%lld tweets):",
                static_cast<long long>(cell.day), cell.state.c_str(),
                static_cast<long long>(cell.tweet_count));
    for (const auto& term : cell.top_terms) {
      std::printf(" %s(%.2f)", term.term.c_str(), term.score);
    }
    std::printf("\n");
    if (++printed >= 25) {
      std::printf("... (%zu cells total)\n", summaries->size());
      break;
    }
  }
  return 0;
}
