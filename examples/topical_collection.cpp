// Topical dataset collection, the "Lady Gaga dataset" workflow: pull
// tweets matching a keyword through the simulated Search and Streaming
// APIs, assemble a new Dataset from what the APIs returned (as the paper
// did), and run the correlation study on the collected corpus.
//
// Usage: topical_collection [scale]

#include <cstdio>
#include <cstdlib>
#include <set>

#include "core/study.h"
#include "geo/admin_db.h"
#include "twitter/api.h"
#include "twitter/generator.h"

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  if (scale <= 0.0) scale = 0.3;

  // The "real world": a global tweet stream we can only see through the
  // public APIs.
  const stir::geo::AdminDb& world = stir::geo::AdminDb::WorldCities();
  stir::twitter::DatasetGenerator generator(
      &world, stir::twitter::DatasetGenerator::LadyGagaConfig(scale));
  stir::twitter::GeneratedData hidden = generator.Generate();
  std::printf("world stream: %zu users, %zu materialized tweets\n",
              hidden.dataset.users().size(), hidden.dataset.tweets().size());

  // --- Collection phase -------------------------------------------------
  // 1. Backfill history through the Search API (paged, quota-limited).
  stir::twitter::SearchApi search(&hidden.dataset, /*quota=*/500);
  std::set<stir::twitter::TweetId> collected_ids;
  std::vector<const stir::twitter::Tweet*> collected;
  stir::SimTime until = 0;  // unbounded first page
  int pages = 0;
  while (true) {
    stir::twitter::SearchQuery query;
    query.keyword = "lady gaga";
    query.max_results = 100;
    query.until = until;
    auto page = search.Search(query);
    if (!page.ok() || page->empty()) break;
    ++pages;
    for (const stir::twitter::Tweet* tweet : *page) {
      if (collected_ids.insert(tweet->id).second) collected.push_back(tweet);
    }
    // Next page: strictly older than the oldest tweet seen.
    until = page->back()->time;
    if (static_cast<int64_t>(page->size()) < query.max_results) break;
    if (pages >= 200) break;
  }
  std::printf("search API: %d pages, %zu tweets backfilled\n", pages,
              collected.size());

  // 2. Then follow the live filter stream.
  stir::twitter::StreamingApi stream(&hidden.dataset);
  int64_t streamed = stream.Filter("lady gaga", [&](const auto& tweet) {
    if (collected_ids.insert(tweet.id).second) collected.push_back(&tweet);
  });
  std::printf("streaming API: %lld matching tweets observed, %zu total "
              "collected\n\n",
              static_cast<long long>(streamed), collected.size());

  // --- Assemble the collected corpus ------------------------------------
  stir::twitter::Dataset corpus;
  std::set<stir::twitter::UserId> seen_users;
  for (const stir::twitter::Tweet* tweet : collected) {
    if (seen_users.insert(tweet->user).second) {
      corpus.AddUser(*hidden.dataset.FindUser(tweet->user));
    }
  }
  for (const stir::twitter::Tweet* tweet : collected) {
    corpus.AddTweet(*tweet);
  }
  std::printf("collected corpus: %zu users, %zu tweets (%lld with GPS)\n\n",
              corpus.users().size(), corpus.tweets().size(),
              static_cast<long long>(corpus.gps_tweet_count()));

  // --- Study -------------------------------------------------------------
  stir::core::CorrelationStudy study(&world);
  stir::core::StudyResult result = study.Run(corpus);
  std::printf("%s\n%s", result.FunnelString().c_str(),
              result.GroupTableString().c_str());
  return 0;
}
