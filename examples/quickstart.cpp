// Quickstart: generate a synthetic Korean Twitter corpus, run the paper's
// correlation study end-to-end, and print the §III.B funnel, the Table II
// strings of a sample user, and the Fig. 6 / Fig. 7 group table.
//
// Usage: quickstart [scale]   (scale 1.0 = the paper's 52,200 users)

#include <cstdio>
#include <cstdlib>

#include "core/reliability.h"
#include "core/study.h"
#include "geo/admin_db.h"
#include "twitter/generator.h"

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  if (scale <= 0.0) scale = 0.05;

  const stir::geo::AdminDb& db = stir::geo::AdminDb::KoreanDistricts();
  std::printf("gazetteer: %zu districts in %zu first-level divisions\n",
              db.size(), db.states().size());

  // 1. Synthesize the corpus (crawl simulation + mobility + noisy
  //    profile locations + sparse GPS).
  stir::twitter::DatasetGenerator generator(
      &db, stir::twitter::DatasetGenerator::KoreanConfig(scale));
  stir::twitter::GeneratedData data = generator.Generate();
  std::printf("generated %zu users, %lld tweets (%lld materialized, %lld "
              "GPS-tagged); crawl used %lld API requests\n\n",
              data.dataset.users().size(),
              static_cast<long long>(data.dataset.total_tweet_count()),
              static_cast<long long>(data.dataset.tweets().size()),
              static_cast<long long>(data.dataset.gps_tweet_count()),
              static_cast<long long>(data.crawl_requests));

  // 2. Run the study: refinement funnel -> text-based grouping -> Top-k.
  stir::core::CorrelationStudy study(&db);
  stir::core::StudyResult result = study.Run(data.dataset);

  std::printf("=== refinement funnel (paper section III.B) ===\n%s\n",
              result.FunnelString().c_str());

  // 3. Show one user's merged & ordered location strings (Table II).
  for (const stir::core::UserGrouping& grouping : result.groupings) {
    if (grouping.ordered.size() >= 3 && grouping.match_rank == 1) {
      std::printf("=== example merged strings (paper Table II), user %lld "
                  "=> %s ===\n",
                  static_cast<long long>(grouping.user),
                  stir::core::TopKGroupToString(grouping.group));
      for (const auto& merged : grouping.ordered) {
        std::printf("  %s\n", merged.ToString().c_str());
      }
      std::printf("\n");
      break;
    }
  }

  // 4. Group table (Fig. 6 + Fig. 7 + tweets-per-group).
  std::printf("=== Top-k groups (paper Fig. 6 / Fig. 7) ===\n%s\n",
              result.GroupTableString().c_str());

  // 5. Reliability weights — the paper's proposed application.
  stir::core::ReliabilityModel reliability =
      stir::core::ReliabilityModel::FromGroupings(result.groupings);
  std::printf("=== reliability of the profile location as a tweet-location "
              "proxy ===\n");
  std::printf("global weight: %.3f\n", reliability.global_weight());
  for (int g = 0; g < stir::core::kNumTopKGroups; ++g) {
    auto group = static_cast<stir::core::TopKGroup>(g);
    std::printf("  %-7s weight: %.3f\n",
                stir::core::TopKGroupToString(group),
                reliability.GroupWeight(group));
  }
  return 0;
}
