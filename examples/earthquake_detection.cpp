// Earthquake detection (Toretter scenario): citizen sensors report a
// simulated quake; the detector raises a temporal alarm and estimates the
// epicenter three ways — GPS only, profile locations unweighted, and
// profile locations weighted by the reliability model this library fits.
// This is the paper's future-work experiment (§V) made concrete.
//
// Usage: earthquake_detection [scale]

#include <cstdio>
#include <cstdlib>

#include "common/clock.h"
#include "core/study.h"
#include "event/event_sim.h"
#include "event/toretter.h"
#include "geo/admin_db.h"
#include "twitter/generator.h"

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  if (scale <= 0.0) scale = 0.1;

  const stir::geo::AdminDb& db = stir::geo::AdminDb::KoreanDistricts();

  // Population + study (for profile regions and reliability weights).
  stir::twitter::DatasetGenerator generator(
      &db, stir::twitter::DatasetGenerator::KoreanConfig(scale));
  stir::twitter::GeneratedData data = generator.Generate();
  stir::core::CorrelationStudy study(&db);
  stir::core::StudyResult result = study.Run(data.dataset);
  stir::core::ReliabilityModel reliability =
      stir::core::ReliabilityModel::FromGroupings(result.groupings);

  // Profile regions for every user with a parseable location (the event
  // detector falls back on these when a report has no GPS).
  std::unordered_map<stir::twitter::UserId, stir::geo::RegionId> profiles;
  for (const stir::core::RefinedUser& user : result.refined) {
    profiles.emplace(user.user, user.profile_region);
  }

  // A quake off Pohang (east coast), strongly felt across Gyeongsang.
  stir::event::EventSpec quake;
  quake.epicenter = {36.10, 129.40};
  quake.start_time = 30 * stir::kSecondsPerDay;
  quake.felt_radius_km = 180.0;
  quake.response_rate = 0.35;
  quake.mean_delay_seconds = 150.0;

  stir::event::EventSimulator simulator(&db, &data.truth);
  stir::Rng rng(7);
  std::vector<stir::event::WitnessReport> reports =
      simulator.Simulate(quake, data.dataset.users(), rng);
  int64_t with_gps = 0;
  for (const auto& report : reports) with_gps += report.gps.has_value();
  std::printf("event at %s, epicenter %s\n",
              stir::FormatSimTime(quake.start_time).c_str(),
              quake.epicenter.ToString().c_str());
  std::printf("%zu witness reports (%lld with GPS)\n\n", reports.size(),
              static_cast<long long>(with_gps));

  // Temporal alarm.
  stir::event::ToretterOptions detect_options;
  detect_options.min_reports = 8;
  stir::event::ToretterDetector detector(&db, detect_options);
  stir::event::DetectionResult alarm = detector.DetectOnset(reports);
  if (alarm.detected) {
    std::printf("ALARM at %s (+%llds after onset, %lld reports seen)\n\n",
                stir::FormatSimTime(alarm.alarm_time).c_str(),
                static_cast<long long>(alarm.alarm_time - quake.start_time),
                static_cast<long long>(alarm.reports_at_alarm));
  } else {
    std::printf("no alarm raised (population too small at this scale)\n\n");
  }

  // Epicenter estimation under the three source configurations.
  struct Config {
    const char* label;
    stir::event::LocationSource source;
    bool weighted;
  };
  const Config configs[] = {
      {"GPS only                    ", stir::event::LocationSource::kGpsOnly,
       false},
      {"profile, unweighted         ",
       stir::event::LocationSource::kProfileOnly, false},
      {"profile, reliability-weight ",
       stir::event::LocationSource::kProfileOnly, true},
      {"GPS+profile, unweighted     ",
       stir::event::LocationSource::kGpsWithProfileFallback, false},
      {"GPS+profile, reliability    ",
       stir::event::LocationSource::kGpsWithProfileFallback, true},
  };
  std::printf("%-30s %-10s %-22s %s\n", "source", "estimator",
              "estimated epicenter", "error_km");
  for (const Config& config : configs) {
    for (auto estimator : {stir::event::LocationEstimator::kWeightedCentroid,
                           stir::event::LocationEstimator::kParticle}) {
      stir::event::ToretterOptions options;
      options.source = config.source;
      options.reliability_weighted = config.weighted;
      options.estimator = estimator;
      stir::event::ToretterDetector estimator_detector(&db, options);
      estimator_detector.set_profile_regions(&profiles);
      estimator_detector.set_reliability(&reliability);
      stir::Rng est_rng(11);
      auto estimate = estimator_detector.EstimateLocation(reports, est_rng);
      if (!estimate.ok()) {
        std::printf("%-30s %-10s %s\n", config.label,
                    LocationEstimatorToString(estimator),
                    estimate.status().ToString().c_str());
        continue;
      }
      double error =
          stir::geo::HaversineKm(estimate->location, quake.epicenter);
      std::printf("%-30s %-10s %-22s %8.1f\n", config.label,
                  LocationEstimatorToString(estimator),
                  estimate->location.ToString().c_str(), error);
    }
  }
  return 0;
}
