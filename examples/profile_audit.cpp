// Profile-location audit: classify free-text profile locations the way
// the paper's refinement step does (well-defined / insufficient / vague /
// ambiguous), either for a built-in demo set mirroring the paper's Fig. 3
// or for lines piped on stdin.
//
// Usage: profile_audit            (demo strings)
//        profile_audit -          (one location per stdin line)

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "geo/admin_db.h"
#include "text/location_parser.h"

namespace {

void Audit(const stir::text::LocationParser& parser, const std::string& raw) {
  stir::text::ParsedLocation parsed = parser.Parse(raw);
  std::printf("%-34s -> %-12s", ("\"" + raw + "\"").c_str(),
              stir::text::LocationQualityToString(parsed.quality));
  if (parsed.quality == stir::text::LocationQuality::kWellDefined) {
    const stir::geo::Region& region = parser.db().region(parsed.region);
    std::printf(" %s%s%s", region.FullName().c_str(),
                parsed.from_gps ? " (from GPS)" : "",
                parsed.fuzzy ? " (fuzzy)" : "");
  } else if (parsed.quality == stir::text::LocationQuality::kAmbiguous) {
    std::printf(" candidates:");
    for (stir::geo::RegionId id : parsed.candidates) {
      std::printf(" [%s]", parser.db().region(id).FullName().c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const stir::geo::AdminDb& db = stir::geo::AdminDb::KoreanDistricts();
  stir::text::LocationParser parser(&db);

  if (argc > 1 && std::strcmp(argv[1], "-") == 0) {
    std::string line;
    while (std::getline(std::cin, line)) Audit(parser, line);
    return 0;
  }

  // Demo set mirroring the paper's Fig. 3 (translated to the Romanized
  // gazetteer): good forms, exact GPS, noise, and the two-location case.
  const std::vector<std::string> demo = {
      "Seoul Yangcheon-gu",
      "Yangchun-gu, Seoul",       // the paper's own spelling, via alias
      "Uiwang-si",                // unique county name: well-defined
      "Jung-gu",                  // exists in six metros: ambiguous
      "Busan Jung-gu",            // state disambiguates
      "37.517000,126.866600",     // literal GPS in the profile
      "seoul mapo-gu, korea",
      "Seoul",                    // insufficient (first-level only)
      "Korea",                    // insufficient
      "Earth",                    // vague
      "my home",                  // vague
      "darangland :)",            // vague (Fig. 3 verbatim)
      "Gold Coast Australia / Jung-gu",  // the two-location user
      "Gangnm-gu, Seoul",         // typo, recovered fuzzily
      "",                         // empty
  };
  for (const std::string& raw : demo) Audit(parser, raw);
  return 0;
}
