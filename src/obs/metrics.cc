#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"

namespace stir::obs {

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(int64_t value) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  size_t index = static_cast<size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

int64_t MetricsSnapshot::counter(std::string_view name) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

int64_t MetricsSnapshot::gauge(std::string_view name) const {
  auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0 : it->second;
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : counters) {
    w.Key(name);
    w.Int(value);
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, value] : gauges) {
    w.Key(name);
    w.Int(value);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, data] : histograms) {
    w.Key(name);
    w.BeginObject();
    w.Key("bounds");
    w.BeginArray();
    for (int64_t b : data.bounds) w.Int(b);
    w.EndArray();
    w.Key("counts");
    w.BeginArray();
    for (int64_t c : data.counts) w.Int(c);
    w.EndArray();
    w.Key("count");
    w.Int(data.count);
    w.Key("sum");
    w.Int(data.sum);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.find(name) != gauges_.end() ||
      histograms_.find(name) != histograms_.end()) {
    return nullptr;
  }
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.find(name) != counters_.end() ||
      histograms_.find(name) != histograms_.end()) {
    return nullptr;
  }
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<int64_t> bounds) {
  if (bounds.empty()) return nullptr;
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.find(name) != counters_.end() ||
      gauges_.find(name) != gauges_.end()) {
    return nullptr;
  }
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = histogram->bounds();
    data.counts.reserve(data.bounds.size() + 1);
    for (size_t i = 0; i <= data.bounds.size(); ++i) {
      data.counts.push_back(histogram->bucket(i));
    }
    data.count = histogram->count();
    data.sum = histogram->sum();
    snapshot.histograms[name] = std::move(data);
  }
  return snapshot;
}

}  // namespace stir::obs
