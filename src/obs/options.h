#ifndef STIR_OBS_OPTIONS_H_
#define STIR_OBS_OPTIONS_H_

#include "obs/metrics.h"
#include "obs/trace.h"

namespace stir::obs {

/// Observability knobs carried by stir::StudyConfig (`config.obs`). The
/// default — everything off, pointers null — keeps every instrumented
/// component on its pre-observability code path, which is what the
/// byte-identical-output guarantee rests on.
struct ObsOptions {
  /// Collect pipeline metrics into a per-run registry snapshotted into
  /// StudyResult::metrics (CLI: set by --metrics-out).
  bool enable_metrics = false;
  /// Record stage spans into a per-run tracer snapshotted into
  /// StudyResult::trace (CLI: set by --trace-out).
  bool enable_trace = false;
  /// Time spans with a real steady_clock instead of the deterministic
  /// virtual clock — wall-clock benchmarking at the cost of run-to-run
  /// reproducibility of the timestamps.
  bool real_time_trace = false;
  /// Emit one span per reverse-geocode service lookup (cache hits and
  /// misses alike). Stage-level spans are always emitted; per-lookup spans
  /// are the fine-grained tier and dominate span volume on large corpora.
  bool trace_geocode_calls = true;
  /// Caller-owned sinks. When set, they are used instead of (and imply)
  /// the per-run instances above; they must outlive the study run.
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;

  bool metrics_enabled() const { return enable_metrics || metrics != nullptr; }
  bool trace_enabled() const { return enable_trace || tracer != nullptr; }
};

}  // namespace stir::obs

#endif  // STIR_OBS_OPTIONS_H_
