#include "obs/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace stir::obs {

namespace {

void AppendFormatted(std::string* out, const char* fmt, ...) {
  char buf[64];
  va_list args;
  va_start(args, fmt);
  int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
}

}  // namespace

std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          AppendFormatted(&out, "\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter() { out_.reserve(256); }

void JsonWriter::Fail(std::string_view what) {
  if (error_.empty()) error_ = std::string(what);
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    if (root_written_) Fail("second root value");
    root_written_ = true;
    return;
  }
  Frame& top = stack_.back();
  if (top.scope == Scope::kObject) {
    if (!top.key_pending) Fail("value inside object without a key");
    top.key_pending = false;
    return;
  }
  if (top.count > 0) out_ += ',';
  ++top.count;
}

void JsonWriter::Key(std::string_view name) {
  if (stack_.empty() || stack_.back().scope != Scope::kObject) {
    Fail("Key() outside an object");
    return;
  }
  Frame& top = stack_.back();
  if (top.key_pending) Fail("consecutive keys");
  if (top.count > 0) out_ += ',';
  ++top.count;
  top.key_pending = true;
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
}

void JsonWriter::BeginObject() {
  BeforeValue();
  stack_.push_back({Scope::kObject});
  out_ += '{';
}

void JsonWriter::EndObject() {
  if (stack_.empty() || stack_.back().scope != Scope::kObject ||
      stack_.back().key_pending) {
    Fail("EndObject() without matching open object");
    return;
  }
  stack_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  stack_.push_back({Scope::kArray});
  out_ += '[';
}

void JsonWriter::EndArray() {
  if (stack_.empty() || stack_.back().scope != Scope::kArray) {
    Fail("EndArray() without matching open array");
    return;
  }
  stack_.pop_back();
  out_ += ']';
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  AppendFormatted(&out_, "%lld", static_cast<long long>(value));
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  AppendFormatted(&out_, "%llu", static_cast<unsigned long long>(value));
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void JsonWriter::Double(double value) {
  if (!std::isfinite(value)) {
    Null();
    return;
  }
  BeforeValue();
  AppendFormatted(&out_, "%.17g", value);
}

void JsonWriter::FixedDouble(double value, int precision) {
  if (!std::isfinite(value)) {
    Null();
    return;
  }
  BeforeValue();
  AppendFormatted(&out_, "%.*f", precision, value);
}

void JsonWriter::Raw(std::string_view token) {
  BeforeValue();
  out_.append(token.data(), token.size());
}

namespace {

/// Recursive-descent JSON validator. Tracks position for error messages;
/// depth-capped so malicious nesting cannot blow the stack.
class JsonLinter {
 public:
  explicit JsonLinter(std::string_view text) : text_(text) {}

  bool Run(std::string* error) {
    SkipWs();
    bool ok = Value(0) && (SkipWs(), pos_ == text_.size());
    if (!ok && error != nullptr) {
      *error = error_.empty()
                   ? "trailing bytes at offset " + std::to_string(pos_)
                   : error_;
    }
    return ok;
  }

 private:
  static constexpr int kMaxDepth = 128;

  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return Fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool StringValue() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return Fail("expected '\"'");
    ++pos_;
    while (pos_ < text_.size()) {
      unsigned char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("unescaped control character");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("truncated escape");
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() || !isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return Fail("bad \\u escape");
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool NumberValue() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("bad number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad fraction");
      }
      while (pos_ < text_.size() && isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad exponent");
      }
      while (pos_ < text_.size() && isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    return pos_ > start;
  }

  bool Value(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ObjectValue(depth);
      case '[': return ArrayValue(depth);
      case '"': return StringValue();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return NumberValue();
    }
  }

  bool ObjectValue(int depth) {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!StringValue()) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("expected ':'");
      ++pos_;
      SkipWs();
      if (!Value(depth + 1)) return false;
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ArrayValue(int depth) {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value(depth + 1)) return false;
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

/// Recursive-descent parser building a JsonValue tree. Same grammar and
/// depth cap as JsonLinter, plus escape decoding and unique-key checks;
/// kept separate so the allocation-free validator stays allocation-free.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Run(JsonValue* out, std::string* error) {
    SkipWs();
    bool ok = Value(out, 0) && (SkipWs(), pos_ == text_.size());
    if (!ok && error != nullptr) {
      *error = error_.empty()
                   ? "trailing bytes at offset " + std::to_string(pos_)
                   : error_;
    }
    return ok;
  }

 private:
  static constexpr int kMaxDepth = 128;

  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return Fail("bad literal");
    pos_ += word.size();
    return true;
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool HexQuad(uint32_t* out) {
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size() ||
          !isxdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad \\u escape");
      }
      char c = text_[pos_++];
      uint32_t digit = c <= '9'   ? static_cast<uint32_t>(c - '0')
                       : c <= 'F' ? static_cast<uint32_t>(c - 'A' + 10)
                                  : static_cast<uint32_t>(c - 'a' + 10);
      value = value * 16 + digit;
    }
    *out = value;
    return true;
  }

  bool StringValue(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected '\"'");
    }
    ++pos_;
    while (pos_ < text_.size()) {
      unsigned char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("unescaped control character");
      if (c != '\\') {
        *out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Fail("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          uint32_t cp = 0;
          if (!HexQuad(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("lone high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            if (!HexQuad(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("lone low surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default: return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool NumberValue(JsonValue* out) {
    size_t start = pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("bad number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          !isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad fraction");
      }
      while (pos_ < text_.size() &&
             isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad exponent");
      }
      while (pos_ < text_.size() &&
             isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(token.c_str(), nullptr);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out->is_int = true;
        out->integer = static_cast<int64_t>(v);
      }
    }
    return true;
  }

  bool Value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ObjectValue(out, depth);
      case '[': return ArrayValue(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return StringValue(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null");
      default: return NumberValue(out);
    }
  }

  bool ObjectValue(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!StringValue(&key)) return false;
      for (const auto& [existing, unused] : out->members) {
        if (existing == key) return Fail("duplicate key \"" + key + "\"");
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!Value(&value, depth + 1)) return false;
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ArrayValue(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      JsonValue value;
      if (!Value(&value, depth + 1)) return false;
      out->elements.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool JsonIsValid(std::string_view text, std::string* error) {
  return JsonLinter(text).Run(error);
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool JsonParse(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue{};
  return JsonParser(text).Run(out, error);
}

}  // namespace stir::obs
