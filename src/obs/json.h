#ifndef STIR_OBS_JSON_H_
#define STIR_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace stir::obs {

/// Streaming JSON writer shared by the observability exporters and the
/// versioned study report. Commas and key/value separators are inserted
/// automatically; the caller only states structure:
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("schema_version"); w.Int(2);
///   w.Key("stages"); w.BeginArray(); w.String("refinement"); w.EndArray();
///   w.EndObject();
///   std::string doc = w.TakeString();
///
/// Scope misuse (ending an unopened scope, a value without a key inside an
/// object) is a programmer error and is reported through Ok()/error() so
/// exporters can assert in tests without aborting production runs.
class JsonWriter {
 public:
  JsonWriter();

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Names the next value; valid only directly inside an object.
  void Key(std::string_view name);

  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  void Bool(bool value);
  void Null();
  /// Shortest round-trip rendering (%.17g with NaN/Inf mapped to null,
  /// which JSON cannot represent).
  void Double(double value);
  /// Fixed-point rendering for report fields that pin their precision.
  void FixedDouble(double value, int precision);
  /// Pre-rendered token the caller guarantees is valid JSON.
  void Raw(std::string_view token);

  /// True while every call so far respected the grammar.
  bool Ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  /// Finished document. Valid only once all scopes are closed.
  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  enum class Scope { kObject, kArray };
  void BeforeValue();
  void Fail(std::string_view what);

  std::string out_;
  std::string error_;
  struct Frame {
    Scope scope;
    int count = 0;
    bool key_pending = false;  ///< Object frame saw Key(), awaits value.
  };
  std::vector<Frame> stack_;
  bool root_written_ = false;
};

/// Escapes `raw` per RFC 8259 (quotes, backslash, control characters).
/// Returns the escaped body without surrounding quotes.
std::string JsonEscape(std::string_view raw);

/// Minimal JSON document tree, the read-side counterpart of JsonWriter.
/// Produced by JsonParse for consumers that must *interpret* incoming
/// JSON (the serve request protocol); exporters keep using JsonWriter.
/// Numbers keep both views: `number` always holds the double value, and
/// when the token was integral and fits, `is_int`/`integer` hold the
/// exact int64 (the protocol layer rejects non-integral ids/params).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  bool is_int = false;
  int64_t integer = 0;
  std::string string;                  ///< kString payload (unescaped).
  std::vector<JsonValue> elements;     ///< kArray payload.
  /// kObject payload in document order. Duplicate keys are a parse error
  /// (stricter than RFC 8259, which leaves them undefined).
  std::vector<std::pair<std::string, JsonValue>> members;

  bool IsObject() const { return kind == Kind::kObject; }
  /// Object member by key; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Strict recursive-descent parse of a complete JSON document into a
/// JsonValue tree. Enforces the same grammar as JsonIsValid (depth cap,
/// no trailing bytes) plus unique object keys; \uXXXX escapes are decoded
/// to UTF-8 (surrogate pairs included, lone surrogates rejected). On
/// failure returns false and, when `error` is non-null, a byte offset +
/// reason.
bool JsonParse(std::string_view text, JsonValue* out,
               std::string* error = nullptr);

/// Minimal strict JSON validity check (full recursive-descent parse, no
/// DOM). Used by the observability tests and available to harnesses that
/// want to lint emitted documents without a JSON library dependency.
/// On failure, `error` (when non-null) receives a byte offset + reason.
bool JsonIsValid(std::string_view text, std::string* error = nullptr);

}  // namespace stir::obs

#endif  // STIR_OBS_JSON_H_
