#include "obs/trace.h"

#include <unordered_map>

#include "obs/json.h"

namespace stir::obs {

namespace {

/// Per-thread open-span stacks, keyed by a globally unique tracer key so a
/// tracer allocated at a freed tracer's address can never inherit stale
/// stacks left behind in long-lived worker threads.
thread_local std::unordered_map<uint64_t, std::vector<int64_t>> tls_stacks;

std::atomic<uint64_t> next_tracer_key{1};

}  // namespace

Tracer::Tracer() : Tracer(Options{}) {}

Tracer::Tracer(Options options)
    : tracer_key_(next_tracer_key.fetch_add(1, std::memory_order_relaxed)),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : &default_clock_) {}

Tracer::~Tracer() = default;

std::vector<int64_t>* Tracer::ThreadStack() const {
  return &tls_stacks[tracer_key_];
}

int64_t Tracer::ThreadIndexLocked() {
  std::thread::id self = std::this_thread::get_id();
  for (const auto& [id, index] : thread_ids_) {
    if (id == self) return index;
  }
  int64_t index = static_cast<int64_t>(thread_ids_.size()) + 1;
  thread_ids_.emplace_back(self, index);
  return index;
}

int64_t Tracer::BeginSpan(std::string_view name) {
  std::vector<int64_t>* stack = ThreadStack();
  int64_t parent = stack->empty() ? kNoSpan : stack->back();
  return BeginSpanUnder(name, parent);
}

int64_t Tracer::BeginSpanUnder(std::string_view name, int64_t parent_id) {
  int64_t start = clock_->NowMicros();
  int64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (spans_.size() >= options_.max_spans) {
      ++dropped_spans_;
      return kNoSpan;
    }
    id = static_cast<int64_t>(spans_.size()) + 1;
    SpanRecord record;
    record.id = id;
    record.parent_id = parent_id;
    record.name = std::string(name);
    record.start_us = start;
    record.tid = ThreadIndexLocked();
    spans_.push_back(std::move(record));
  }
  ThreadStack()->push_back(id);
  return id;
}

void Tracer::EndSpan(int64_t span_id) {
  if (span_id == kNoSpan) return;
  int64_t end = clock_->NowMicros();
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t index = static_cast<size_t>(span_id) - 1;
    if (index < spans_.size() && spans_[index].end_us < 0) {
      spans_[index].end_us = end;
    }
  }
  // Unwind the calling thread's stack through the ended span; ending a
  // span implicitly ends anything left open beneath it (the records of
  // those inner spans keep their own end times if already set).
  std::vector<int64_t>* stack = ThreadStack();
  for (size_t i = stack->size(); i > 0; --i) {
    if ((*stack)[i - 1] == span_id) {
      stack->resize(i - 1);
      break;
    }
  }
}

void Tracer::AddAttribute(int64_t span_id, std::string_view key,
                          int64_t value) {
  if (span_id == kNoSpan) return;
  std::lock_guard<std::mutex> lock(mu_);
  size_t index = static_cast<size_t>(span_id) - 1;
  if (index < spans_.size()) {
    spans_[index].attributes.emplace_back(std::string(key), value);
  }
}

int64_t Tracer::CurrentSpan() const {
  const std::vector<int64_t>* stack = ThreadStack();
  return stack->empty() ? kNoSpan : stack->back();
}

TraceSnapshot Tracer::Snapshot() const {
  TraceSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.spans = spans_;
  snapshot.dropped_spans = dropped_spans_;
  return snapshot;
}

int64_t TraceSnapshot::CountNamed(std::string_view name) const {
  int64_t n = 0;
  for (const SpanRecord& span : spans) {
    if (span.name == name) ++n;
  }
  return n;
}

std::string TraceSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("spans");
  w.BeginArray();
  for (const SpanRecord& span : spans) {
    w.BeginObject();
    w.Key("id");
    w.Int(span.id);
    w.Key("parent");
    w.Int(span.parent_id);
    w.Key("name");
    w.String(span.name);
    w.Key("start_us");
    w.Int(span.start_us);
    w.Key("end_us");
    w.Int(span.end_us < 0 ? span.start_us : span.end_us);
    w.Key("complete");
    w.Bool(span.end_us >= 0);
    w.Key("tid");
    w.Int(span.tid);
    if (!span.attributes.empty()) {
      w.Key("args");
      w.BeginObject();
      for (const auto& [key, value] : span.attributes) {
        w.Key(key);
        w.Int(value);
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("dropped_spans");
  w.Int(dropped_spans);
  w.EndObject();
  return w.TakeString();
}

std::string TraceSnapshot::ToChromeTrace() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (const SpanRecord& span : spans) {
    w.BeginObject();
    w.Key("name");
    w.String(span.name);
    w.Key("cat");
    w.String("stir");
    w.Key("ph");
    w.String("X");
    w.Key("ts");
    w.Int(span.start_us);
    w.Key("dur");
    w.Int(span.end_us < 0 ? 0 : span.end_us - span.start_us);
    w.Key("pid");
    w.Int(1);
    w.Key("tid");
    w.Int(span.tid);
    w.Key("args");
    w.BeginObject();
    w.Key("span_id");
    w.Int(span.id);
    w.Key("parent_id");
    w.Int(span.parent_id);
    for (const auto& [key, value] : span.attributes) {
      w.Key(key);
      w.Int(value);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.EndObject();
  return w.TakeString();
}

}  // namespace stir::obs
