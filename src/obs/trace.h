#ifndef STIR_OBS_TRACE_H_
#define STIR_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <string_view>
#include <utility>
#include <vector>

namespace stir::obs {

/// Time source for span boundaries, in microseconds from an arbitrary
/// epoch. Implementations must be safe to call from multiple threads.
class TraceClock {
 public:
  virtual ~TraceClock() = default;
  virtual int64_t NowMicros() = 0;
};

/// Deterministic clock: the n-th NowMicros() call across all threads
/// returns (n-1) * tick_micros. Under serial execution every trace is
/// bit-identical run to run, which is what the trace tests pin down; under
/// concurrency the *ordering* of calls decides timestamps, but the stream
/// is still strictly monotonic and collision-free.
class VirtualClock : public TraceClock {
 public:
  explicit VirtualClock(int64_t tick_micros = 1) : tick_(tick_micros) {}
  int64_t NowMicros() override {
    return tick_ * calls_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  const int64_t tick_;
  std::atomic<int64_t> calls_{0};
};

/// Wall-duration clock for benchmarking real runs: microseconds of
/// std::chrono::steady_clock elapsed since construction.
class SteadyClock : public TraceClock {
 public:
  SteadyClock() : start_(std::chrono::steady_clock::now()) {}
  int64_t NowMicros() override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  const std::chrono::steady_clock::time_point start_;
};

/// One recorded span. `parent_id` 0 means a root span; `end_us` < 0 means
/// the span never ended before the snapshot (exporters render it with
/// zero duration and an "incomplete" mark).
struct SpanRecord {
  int64_t id = 0;
  int64_t parent_id = 0;
  std::string name;
  int64_t start_us = 0;
  int64_t end_us = -1;
  int64_t tid = 0;  ///< Small per-tracer thread index, 1-based.
  std::vector<std::pair<std::string, int64_t>> attributes;
};

/// Read-side copy of a trace, with the two export formats the tooling
/// consumes: a plain JSON span list and Chrome's trace_event format
/// (loadable in chrome://tracing and Perfetto).
struct TraceSnapshot {
  std::vector<SpanRecord> spans;  ///< In begin order.
  int64_t dropped_spans = 0;      ///< Begins refused by the span cap.

  bool empty() const { return spans.empty(); }
  /// Number of spans with the given name.
  int64_t CountNamed(std::string_view name) const;

  /// {"spans": [{"id":..,"parent":..,"name":..,"start_us":..,
  ///   "end_us":..,"tid":..,"args":{...}}, ...], "dropped_spans": N}
  std::string ToJson() const;
  /// {"traceEvents":[{"name":..,"cat":"stir","ph":"X","ts":..,"dur":..,
  ///   "pid":1,"tid":..,"args":{...}}, ...]}
  std::string ToChromeTrace() const;
};

/// Hierarchical stage tracer. Begin/End append to a mutex-guarded log;
/// parentage defaults to the innermost span currently open *on the calling
/// thread* (a per-thread stack), so nested instrumentation composes
/// without plumbing span ids through every call — worker-thread roots can
/// still attach to an explicit parent via BeginSpanUnder.
///
/// The tracer is intended for stage-granularity spans (a study run emits
/// tens to a few thousand); `max_spans` caps memory for pathological
/// workloads by dropping further begins (counted, never blocking).
class Tracer {
 public:
  struct Options {
    /// Not owned; must outlive the tracer. Null uses an internal
    /// VirtualClock(1), the deterministic default.
    TraceClock* clock = nullptr;
    size_t max_spans = 1 << 20;
  };

  static constexpr int64_t kNoSpan = 0;

  Tracer();
  explicit Tracer(Options options);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span under the calling thread's innermost open span (a root
  /// if none). Returns kNoSpan when the span cap is reached; every method
  /// accepts kNoSpan as a no-op, so call sites never branch.
  int64_t BeginSpan(std::string_view name);
  /// Opens a span under an explicit parent (kNoSpan for a root) — used by
  /// pool workers whose thread has no ambient span.
  int64_t BeginSpanUnder(std::string_view name, int64_t parent_id);
  void EndSpan(int64_t span_id);
  /// Attaches an integer attribute (exported under "args").
  void AddAttribute(int64_t span_id, std::string_view key, int64_t value);
  /// Innermost open span on the calling thread, kNoSpan if none.
  int64_t CurrentSpan() const;

  TraceSnapshot Snapshot() const;

  /// RAII begin/end for straight-line scopes.
  class ScopedSpan {
   public:
    ScopedSpan(Tracer* tracer, std::string_view name)
        : tracer_(tracer),
          id_(tracer != nullptr ? tracer->BeginSpan(name) : kNoSpan) {}
    ~ScopedSpan() {
      if (tracer_ != nullptr) tracer_->EndSpan(id_);
    }
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;
    int64_t id() const { return id_; }

   private:
    Tracer* tracer_;
    int64_t id_;
  };

 private:
  std::vector<int64_t>* ThreadStack() const;
  int64_t ThreadIndexLocked();

  const uint64_t tracer_key_;  ///< Globally unique, keys per-thread stacks.
  Options options_;
  VirtualClock default_clock_;
  TraceClock* clock_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::vector<std::pair<std::thread::id, int64_t>> thread_ids_;
  int64_t dropped_spans_ = 0;
};

}  // namespace stir::obs

#endif  // STIR_OBS_TRACE_H_
