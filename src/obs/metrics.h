#ifndef STIR_OBS_METRICS_H_
#define STIR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace stir::obs {

/// Monotonic event count. Increment is a single relaxed atomic add — safe
/// and exact under any number of concurrent writers (totals are precise
/// once the writers have returned, the same contract as the pipeline's
/// existing accounting atomics).
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time level (queue depth, cache size). `Add` tracks a level
/// that moves both ways; `SetMax` keeps a high-water mark via CAS.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void SetMax(int64_t candidate) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (candidate > cur &&
           !value_.compare_exchange_weak(cur, candidate,
                                         std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket i counts samples v <= bounds[i] (first
/// matching bound); one implicit overflow bucket counts v > bounds.back().
/// Bounds are immutable after registration, so Record is a binary search
/// plus three relaxed atomic adds — no locks on the hot path.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);

  void Record(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Bucket count, index in [0, bounds().size()] (last = overflow).
  int64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  const std::vector<int64_t> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Read-side copy of a registry: plain values, ordered by name so every
/// export is deterministic for a given set of recorded values.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<int64_t> bounds;
    std::vector<int64_t> counts;  ///< bounds.size() + 1 (overflow last).
    int64_t count = 0;
    int64_t sum = 0;
  };

  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Counter value, 0 when the name was never registered.
  int64_t counter(std::string_view name) const;
  /// Gauge value, 0 when absent.
  int64_t gauge(std::string_view name) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  ///  {"bounds": [...], "counts": [...], "count": N, "sum": S}}}
  std::string ToJson() const;
};

/// Thread-safe named-metric registry. Registration (Get*) takes a mutex;
/// the returned pointers are stable for the registry's lifetime, so
/// instrumented components resolve them once and then touch only atomics.
/// Snapshot() copies every value under the same mutex — writers are never
/// blocked (they don't take it), so a snapshot taken while writers run is
/// a consistent-per-metric, possibly-torn-across-metrics view, exact once
/// writers have returned.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-or-get. A name registered as one kind must not be reused as
  /// another (returns the existing instance of the right kind; a kind
  /// clash returns nullptr, which instrumentation treats as "disabled").
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `bounds` must be strictly increasing and non-empty; re-registration
  /// ignores the new bounds and returns the existing histogram.
  Histogram* GetHistogram(std::string_view name, std::vector<int64_t> bounds);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Null-tolerant helpers so instrumented hot paths stay one-liners even
/// when observability is disabled (the pointers are simply null).
inline void IncrementCounter(Counter* counter, int64_t delta = 1) {
  if (counter != nullptr) counter->Increment(delta);
}
inline void RecordSample(Histogram* histogram, int64_t value) {
  if (histogram != nullptr) histogram->Record(value);
}

}  // namespace stir::obs

#endif  // STIR_OBS_METRICS_H_
