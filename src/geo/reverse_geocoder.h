#ifndef STIR_GEO_REVERSE_GEOCODER_H_
#define STIR_GEO_REVERSE_GEOCODER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/fault.h"
#include "common/retry.h"
#include "common/status.h"
#include "geo/admin_db.h"
#include "geo/latlng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace stir::geo {

class GeocodeJournal;

/// Structured reverse-geocoding result: the four elements the Yahoo Open
/// API returned under <location> (see paper Fig. 5). The study consumes
/// <state> and <county>.
struct GeocodeResult {
  std::string country;
  std::string state;
  std::string county;
  std::string town;
  RegionId region = kInvalidRegion;
};

/// Behavioural knobs for the geocoding service simulation.
struct ReverseGeocoderOptions {
  /// Memoize results by geohash cell (the paper's crawl hit the API once
  /// per distinct coordinate; caching reproduces that cost profile).
  bool enable_cache = true;
  /// Geohash precision for cache keys; 7 chars is ~±76 m, far below
  /// district size.
  int cache_precision = 7;
  /// Maximum lookups before the service returns ResourceExhausted
  /// (simulating an API quota); <0 disables.
  int64_t quota = -1;
  /// Optional fault hook (not owned; must outlive the geocoder; null or
  /// all-knobs-off disables). Consulted once per lookup *attempt*, before
  /// the cache, so fault placement is a pure function of the supplied
  /// fault index — never of cache state or thread interleaving.
  common::FaultInjector* fault_injector = nullptr;
  /// Retry schedule for injected transient failures (engaged only when a
  /// fault injector is active). Backoff is simulated, never slept.
  common::RetryPolicyOptions retry;
  /// Optional circuit breaker guarding the simulated service (not owned;
  /// null disables). Under concurrency the breaker's trip points depend
  /// on call interleaving, so leave it null when bit-identical parallel
  /// output matters (DESIGN.md §7).
  common::CircuitBreaker* circuit_breaker = nullptr;
  /// Optional observability sinks (not owned; must outlive the geocoder;
  /// null disables — the pre-observability code path, byte for byte).
  /// Metrics: `geocode.queries`, `geocode.cache_hits` / `.cache_misses` /
  /// `.cache_contention` (contended stripe acquisitions), `geocode.faulted`
  /// / `.retried` / `.breaker_rejections` / `.backoff_ms`, and the
  /// `geocode.attempts` histogram (attempts per lookup, retries included).
  /// The tracer gets one "geocode" span per lookup while `trace_lookups`
  /// is set (DESIGN.md §8).
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  bool trace_lookups = true;
  /// Optional write-ahead geocode journal (not owned; must outlive the
  /// geocoder; null disables). Every cache-miss resolution is appended,
  /// so a resumed run can PreloadCache the journal and answer all
  /// previously-resolved coordinates without spending quota (DESIGN.md
  /// §9). Requires enable_cache; append failures are logged once and
  /// never fail a lookup.
  GeocodeJournal* journal = nullptr;
};

/// Reverse geocoder over an AdminDb, shaped like the web API the paper
/// used: coordinates in, an XML <ResultSet> out. `Reverse` is the
/// structured fast path; `ReverseToXml` + `ParseResponse` reproduce the
/// exact serialize/parse pipeline of the original study (and are what the
/// faithful-mode pipeline exercises).
///
/// Thread-safe: the memoization cache is striped across mutex-guarded
/// shards (selected by cache-key hash), and the query/hit/quota counters
/// are atomics, so the parallel study pipeline can share one instance
/// across worker threads. Quota is enforced with a CAS loop, so concurrent
/// lookups never spend more than `options.quota` total.
class ReverseGeocoder {
 public:
  /// `db` must outlive the geocoder.
  explicit ReverseGeocoder(const AdminDb* db,
                           ReverseGeocoderOptions options = {});

  /// Structured lookup. NotFound outside coverage; ResourceExhausted once
  /// the simulated quota is spent; InvalidArgument for bad coordinates;
  /// Unavailable for an injected (and retried-past-budget) service fault.
  ///
  /// `fault_index` keys the fault schedule when a FaultInjector is
  /// configured: callers with a stable per-call identity (the refinement
  /// pipeline passes the tweet's dataset index) get fault placement that
  /// is bit-identical across thread counts. The default (-1) claims the
  /// injector's next sequence index, which is deterministic for serial
  /// call sites only.
  StatusOr<GeocodeResult> Reverse(const LatLng& point,
                                  int64_t fault_index = -1);

  /// Same lookup rendered as the Yahoo-shaped XML document.
  StatusOr<std::string> ReverseToXml(const LatLng& point,
                                     int64_t fault_index = -1);

  /// Pre-warms the memoization cache with a previously-resolved entry
  /// (journal replay). First writer wins on duplicate keys; no-op with
  /// the cache disabled. Preloaded entries are hits: they spend no quota
  /// and are not re-journaled.
  void PreloadCache(std::string_view cache_key, const GeocodeResult& result);

  /// Per-thread retry accounting, cumulative over this thread's lifetime.
  /// The refinement pipeline samples deltas around each user so
  /// checkpoints can attribute retries/backoff to completed users exactly
  /// (each shard runs on a single worker thread; DESIGN.md §9).
  struct ThreadRetryStats {
    int64_t retries = 0;
    int64_t backoff_ms = 0;
  };
  static ThreadRetryStats CurrentThreadRetryStats();

  /// Parses a ReverseToXml document back into a GeocodeResult (region id
  /// is not recovered; resolve it against an AdminDb if needed).
  static StatusOr<GeocodeResult> ParseResponse(std::string_view xml);

  /// Query accounting (atomic snapshots; totals are exact once all
  /// concurrent callers have returned).
  int64_t num_queries() const {
    return num_queries_.load(std::memory_order_relaxed);
  }
  int64_t num_cache_hits() const {
    return num_cache_hits_.load(std::memory_order_relaxed);
  }
  int64_t quota_remaining() const;
  void ResetQuota();

  /// Fault-path accounting (all zero unless a fault injector is active).
  /// Retry attempts performed after an injected transient failure.
  int64_t num_retries() const {
    return num_retries_.load(std::memory_order_relaxed);
  }
  /// Lookups that failed with an injected fault after exhausting retries.
  int64_t num_faulted() const {
    return num_faulted_.load(std::memory_order_relaxed);
  }
  /// Lookups rejected by the circuit breaker without an attempt.
  int64_t num_breaker_rejections() const {
    return num_breaker_rejections_.load(std::memory_order_relaxed);
  }
  /// Total simulated backoff charged by the retry loop, in ms.
  int64_t simulated_backoff_ms() const {
    return simulated_backoff_ms_.load(std::memory_order_relaxed);
  }

  const AdminDb& db() const { return *db_; }

  /// True when a fault injector with at least one active knob is wired in
  /// (the pipeline gates its degraded-mode reporting on this).
  bool fault_injection_enabled() const {
    return options_.fault_injector != nullptr &&
           options_.fault_injector->enabled();
  }

  /// Number of mutex-striped cache shards.
  static constexpr int kCacheShards = 16;

 private:
  struct CacheShard {
    std::mutex mu;
    std::unordered_map<std::string, GeocodeResult> map;
  };

  CacheShard& ShardFor(std::string_view cache_key);

  /// Locks a cache stripe, counting contended acquisitions when metrics
  /// are attached (a failed try_lock means another worker held the
  /// stripe).
  std::unique_lock<std::mutex> LockShard(CacheShard& shard);

  /// The lookup behind the per-call trace span: fault schedule, retry
  /// loop, breaker, then ReverseDirect.
  StatusOr<GeocodeResult> ReverseImpl(const LatLng& point,
                                      int64_t fault_index);

  /// The fault-free lookup (cache, quota, AdminDb) — the pre-fault-layer
  /// behaviour, byte for byte.
  StatusOr<GeocodeResult> ReverseDirect(const LatLng& point);

  const AdminDb* db_;
  ReverseGeocoderOptions options_;
  common::RetryPolicy retry_policy_;
  CacheShard cache_shards_[kCacheShards];
  std::atomic<int64_t> num_queries_{0};
  std::atomic<int64_t> num_cache_hits_{0};
  std::atomic<int64_t> quota_used_{0};
  std::atomic<int64_t> num_retries_{0};
  std::atomic<int64_t> num_faulted_{0};
  std::atomic<int64_t> num_breaker_rejections_{0};
  std::atomic<int64_t> simulated_backoff_ms_{0};
  std::atomic<bool> journal_append_failed_{false};

  // Observability handles, resolved once at construction (all null when
  // options_.metrics is null, which keeps the hot path branch-predictable
  // and timing-free).
  obs::Counter* m_queries_ = nullptr;
  obs::Counter* m_cache_hits_ = nullptr;
  obs::Counter* m_cache_misses_ = nullptr;
  obs::Counter* m_cache_contention_ = nullptr;
  obs::Counter* m_faulted_ = nullptr;
  obs::Counter* m_retried_ = nullptr;
  obs::Counter* m_breaker_rejections_ = nullptr;
  obs::Counter* m_backoff_ms_ = nullptr;
  obs::Histogram* m_attempts_ = nullptr;
};

}  // namespace stir::geo

#endif  // STIR_GEO_REVERSE_GEOCODER_H_
