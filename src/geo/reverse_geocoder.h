#ifndef STIR_GEO_REVERSE_GEOCODER_H_
#define STIR_GEO_REVERSE_GEOCODER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "geo/admin_db.h"
#include "geo/latlng.h"

namespace stir::geo {

/// Structured reverse-geocoding result: the four elements the Yahoo Open
/// API returned under <location> (see paper Fig. 5). The study consumes
/// <state> and <county>.
struct GeocodeResult {
  std::string country;
  std::string state;
  std::string county;
  std::string town;
  RegionId region = kInvalidRegion;
};

/// Behavioural knobs for the geocoding service simulation.
struct ReverseGeocoderOptions {
  /// Memoize results by geohash cell (the paper's crawl hit the API once
  /// per distinct coordinate; caching reproduces that cost profile).
  bool enable_cache = true;
  /// Geohash precision for cache keys; 7 chars is ~±76 m, far below
  /// district size.
  int cache_precision = 7;
  /// Maximum lookups before the service returns ResourceExhausted
  /// (simulating an API quota); <0 disables.
  int64_t quota = -1;
};

/// Reverse geocoder over an AdminDb, shaped like the web API the paper
/// used: coordinates in, an XML <ResultSet> out. `Reverse` is the
/// structured fast path; `ReverseToXml` + `ParseResponse` reproduce the
/// exact serialize/parse pipeline of the original study (and are what the
/// faithful-mode pipeline exercises).
///
/// Thread-safe: the memoization cache is striped across mutex-guarded
/// shards (selected by cache-key hash), and the query/hit/quota counters
/// are atomics, so the parallel study pipeline can share one instance
/// across worker threads. Quota is enforced with a CAS loop, so concurrent
/// lookups never spend more than `options.quota` total.
class ReverseGeocoder {
 public:
  /// `db` must outlive the geocoder.
  explicit ReverseGeocoder(const AdminDb* db,
                           ReverseGeocoderOptions options = {});

  /// Structured lookup. NotFound outside coverage; ResourceExhausted once
  /// the simulated quota is spent; InvalidArgument for bad coordinates.
  StatusOr<GeocodeResult> Reverse(const LatLng& point);

  /// Same lookup rendered as the Yahoo-shaped XML document.
  StatusOr<std::string> ReverseToXml(const LatLng& point);

  /// Parses a ReverseToXml document back into a GeocodeResult (region id
  /// is not recovered; resolve it against an AdminDb if needed).
  static StatusOr<GeocodeResult> ParseResponse(std::string_view xml);

  /// Query accounting (atomic snapshots; totals are exact once all
  /// concurrent callers have returned).
  int64_t num_queries() const {
    return num_queries_.load(std::memory_order_relaxed);
  }
  int64_t num_cache_hits() const {
    return num_cache_hits_.load(std::memory_order_relaxed);
  }
  int64_t quota_remaining() const;
  void ResetQuota();

  const AdminDb& db() const { return *db_; }

  /// Number of mutex-striped cache shards.
  static constexpr int kCacheShards = 16;

 private:
  struct CacheShard {
    std::mutex mu;
    std::unordered_map<std::string, GeocodeResult> map;
  };

  CacheShard& ShardFor(std::string_view cache_key);

  const AdminDb* db_;
  ReverseGeocoderOptions options_;
  CacheShard cache_shards_[kCacheShards];
  std::atomic<int64_t> num_queries_{0};
  std::atomic<int64_t> num_cache_hits_{0};
  std::atomic<int64_t> quota_used_{0};
};

}  // namespace stir::geo

#endif  // STIR_GEO_REVERSE_GEOCODER_H_
