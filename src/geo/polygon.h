#ifndef STIR_GEO_POLYGON_H_
#define STIR_GEO_POLYGON_H_

#include <vector>

#include "geo/latlng.h"

namespace stir::geo {

/// Simple polygon (single ring, implicitly closed) in lat/lng space.
/// Operations treat coordinates as planar, which is adequate for
/// administrative-district-sized shapes away from the poles — exactly the
/// regime this library works in (Korean si/gun/gu, city footprints).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<LatLng> vertices);

  const std::vector<LatLng>& vertices() const { return vertices_; }
  size_t size() const { return vertices_.size(); }
  bool IsValid() const { return vertices_.size() >= 3; }

  /// Even-odd (ray casting) containment. Points exactly on an edge may
  /// land on either side; district boundaries are zero-measure so this
  /// does not affect the study.
  bool Contains(const LatLng& p) const;

  /// Planar signed area in squared degrees (positive = counter-clockwise).
  double SignedAreaDeg2() const;

  /// Approximate surface area in km^2 (scales degrees by the local
  /// cos(latitude) of the centroid).
  double AreaKm2() const;

  /// Planar centroid. For degenerate polygons returns the vertex mean.
  LatLng Centroid() const;

  BoundingBox Bounds() const { return bounds_; }

  /// Regular n-gon approximating a circle of `radius_km` around `center` —
  /// the shape used for synthetic district footprints.
  static Polygon RegularApprox(const LatLng& center, double radius_km,
                               int sides = 12);

 private:
  std::vector<LatLng> vertices_;
  BoundingBox bounds_;
};

}  // namespace stir::geo

#endif  // STIR_GEO_POLYGON_H_
