#ifndef STIR_GEO_POLYGON_LOCATOR_H_
#define STIR_GEO_POLYGON_LOCATOR_H_

#include <vector>

#include "common/status.h"
#include "geo/admin_db.h"
#include "geo/polygon.h"

namespace stir::geo {

/// Alternative district assignment for the ablation called out in
/// DESIGN.md §5: instead of nearest-centroid (Voronoi) assignment, build
/// an explicit polygon footprint per region (a regular n-gon of the
/// region's radius) and do point-in-polygon tests, falling back to
/// nearest-centroid where footprints overlap or leave gaps.
///
/// The real Yahoo API worked from true administrative polygons; this
/// locator brackets the modelling error between "polygons" and
/// "centroids" so the study's sensitivity to the geocoding model is
/// measurable (see bench_ablation_geocoding).
class PolygonLocator {
 public:
  /// `db` must outlive the locator. `sides` controls footprint fidelity.
  explicit PolygonLocator(const AdminDb* db, int sides = 18);

  /// Regions whose footprint contains `point` (possibly several: the
  /// n-gon footprints of adjacent districts overlap).
  std::vector<RegionId> Candidates(const LatLng& point) const;

  /// Deterministic assignment: the unique containing footprint when
  /// there is exactly one; otherwise the nearest centroid among the
  /// containing footprints; NotFound when no footprint contains the
  /// point and the AdminDb's own Locate also rejects it.
  StatusOr<RegionId> Locate(const LatLng& point) const;

  const Polygon& footprint(RegionId id) const;

 private:
  const AdminDb* db_;
  std::vector<Polygon> footprints_;
  GridIndex centroid_index_;
};

}  // namespace stir::geo

#endif  // STIR_GEO_POLYGON_LOCATOR_H_
