#include "geo/polygon.h"

#include <cmath>

namespace stir::geo {

Polygon::Polygon(std::vector<LatLng> vertices)
    : vertices_(std::move(vertices)) {
  for (const LatLng& v : vertices_) bounds_.Extend(v);
}

bool Polygon::Contains(const LatLng& p) const {
  if (!IsValid() || !bounds_.Contains(p)) return false;
  bool inside = false;
  size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const LatLng& a = vertices_[i];
    const LatLng& b = vertices_[j];
    bool crosses = (a.lat > p.lat) != (b.lat > p.lat);
    if (crosses) {
      double x_at_lat =
          a.lng + (p.lat - a.lat) / (b.lat - a.lat) * (b.lng - a.lng);
      if (p.lng < x_at_lat) inside = !inside;
    }
  }
  return inside;
}

double Polygon::SignedAreaDeg2() const {
  if (!IsValid()) return 0.0;
  double acc = 0.0;
  size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const LatLng& a = vertices_[i];
    const LatLng& b = vertices_[(i + 1) % n];
    acc += a.lng * b.lat - b.lng * a.lat;
  }
  return acc / 2.0;
}

double Polygon::AreaKm2() const {
  if (!IsValid()) return 0.0;
  double km_per_deg = 2.0 * M_PI * kEarthRadiusKm / 360.0;
  double cos_lat = std::cos(DegToRad(Centroid().lat));
  return std::fabs(SignedAreaDeg2()) * km_per_deg * km_per_deg * cos_lat;
}

LatLng Polygon::Centroid() const {
  if (vertices_.empty()) return LatLng{};
  double area2 = SignedAreaDeg2() * 2.0;
  if (std::fabs(area2) < 1e-12) {
    double lat = 0.0, lng = 0.0;
    for (const LatLng& v : vertices_) {
      lat += v.lat;
      lng += v.lng;
    }
    double n = static_cast<double>(vertices_.size());
    return LatLng{lat / n, lng / n};
  }
  double cx = 0.0, cy = 0.0;
  size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const LatLng& a = vertices_[i];
    const LatLng& b = vertices_[(i + 1) % n];
    double cross = a.lng * b.lat - b.lng * a.lat;
    cx += (a.lng + b.lng) * cross;
    cy += (a.lat + b.lat) * cross;
  }
  return LatLng{cy / (3.0 * area2), cx / (3.0 * area2)};
}

Polygon Polygon::RegularApprox(const LatLng& center, double radius_km,
                               int sides) {
  std::vector<LatLng> vertices;
  vertices.reserve(static_cast<size_t>(sides));
  for (int i = 0; i < sides; ++i) {
    double bearing = 360.0 * static_cast<double>(i) / sides;
    vertices.push_back(Destination(center, bearing, radius_km));
  }
  return Polygon(std::move(vertices));
}

}  // namespace stir::geo
