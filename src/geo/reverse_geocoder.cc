#include "geo/reverse_geocoder.h"

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/xml.h"
#include "geo/geocode_journal.h"
#include "geo/geohash.h"

namespace stir::geo {

namespace {

/// Per-thread retry accounting (see CurrentThreadRetryStats). Each shard
/// of the refinement pipeline runs on exactly one worker thread, so
/// sampling these around a user's tweets yields that user's exact retry
/// and backoff charges with no atomics on the hot path.
thread_local int64_t t_retries = 0;
thread_local int64_t t_backoff_ms = 0;

/// Deterministic pseudo-town (dong-level) name for a point inside a
/// county. The original API returned a real <town>; the study never uses
/// it, but keeping the element exercises the full response schema.
std::string SynthesizeTown(const Region& region, const LatLng& point) {
  uint64_t h = HashCombine(Fnv1a64(region.county),
                           Mix64(static_cast<uint64_t>(
                               static_cast<int64_t>(point.lat * 200.0) * 4096 +
                               static_cast<int64_t>(point.lng * 200.0))));
  int ward = static_cast<int>(h % 9) + 1;
  // Strip a trailing "-gu"/"-si"/"-gun" from the county stem.
  std::string stem = region.county;
  size_t dash = stem.rfind('-');
  if (dash != std::string::npos) stem = stem.substr(0, dash);
  return StrFormat("%s %d-dong", stem.c_str(), ward);
}

}  // namespace

ReverseGeocoder::ReverseGeocoder(const AdminDb* db,
                                 ReverseGeocoderOptions options)
    : db_(db), options_(options), retry_policy_(options.retry) {
  STIR_CHECK(db != nullptr);
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    m_queries_ = m->GetCounter("geocode.queries");
    m_cache_hits_ = m->GetCounter("geocode.cache_hits");
    m_cache_misses_ = m->GetCounter("geocode.cache_misses");
    m_cache_contention_ = m->GetCounter("geocode.cache_contention");
    m_faulted_ = m->GetCounter("geocode.faulted");
    m_retried_ = m->GetCounter("geocode.retried");
    m_breaker_rejections_ = m->GetCounter("geocode.breaker_rejections");
    m_backoff_ms_ = m->GetCounter("geocode.backoff_ms");
    m_attempts_ = m->GetHistogram("geocode.attempts", {1, 2, 3, 4, 6, 8});
  }
}

int64_t ReverseGeocoder::quota_remaining() const {
  if (options_.quota < 0) return -1;
  int64_t used = quota_used_.load(std::memory_order_relaxed);
  return options_.quota > used ? options_.quota - used : 0;
}

void ReverseGeocoder::ResetQuota() {
  quota_used_.store(0, std::memory_order_relaxed);
}

ReverseGeocoder::CacheShard& ReverseGeocoder::ShardFor(
    std::string_view cache_key) {
  return cache_shards_[Fnv1a64(cache_key) % kCacheShards];
}

std::unique_lock<std::mutex> ReverseGeocoder::LockShard(CacheShard& shard) {
  if (m_cache_contention_ == nullptr) {
    return std::unique_lock<std::mutex>(shard.mu);
  }
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    m_cache_contention_->Increment();
    lock.lock();
  }
  return lock;
}

StatusOr<GeocodeResult> ReverseGeocoder::Reverse(const LatLng& point,
                                                 int64_t fault_index) {
  if (options_.tracer != nullptr && options_.trace_lookups) {
    obs::Tracer::ScopedSpan span(options_.tracer, "geocode");
    return ReverseImpl(point, fault_index);
  }
  return ReverseImpl(point, fault_index);
}

ReverseGeocoder::ThreadRetryStats ReverseGeocoder::CurrentThreadRetryStats() {
  return ThreadRetryStats{t_retries, t_backoff_ms};
}

void ReverseGeocoder::PreloadCache(std::string_view cache_key,
                                   const GeocodeResult& result) {
  if (!options_.enable_cache) return;
  CacheShard& shard = ShardFor(cache_key);
  std::unique_lock<std::mutex> lock = LockShard(shard);
  shard.map.try_emplace(std::string(cache_key), result);
}

StatusOr<GeocodeResult> ReverseGeocoder::ReverseImpl(const LatLng& point,
                                                     int64_t fault_index) {
  common::FaultInjector* fault = options_.fault_injector;
  // The crash hook fires before any fault/cache logic so "Nth lookup"
  // means the same thing whether or not fault knobs are active.
  if (fault != nullptr) fault->OnLookupMaybeCrash();
  if (fault == nullptr || !fault->enabled()) {
    obs::RecordSample(m_attempts_, 1);
    return ReverseDirect(point);
  }

  if (fault_index < 0) fault_index = fault->NextIndex();
  int attempts = 0;
  for (;;) {
    if (options_.circuit_breaker != nullptr &&
        !options_.circuit_breaker->AllowRequest()) {
      num_breaker_rejections_.fetch_add(1, std::memory_order_relaxed);
      obs::IncrementCounter(m_breaker_rejections_);
      return Status::Unavailable("reverse geocoder circuit breaker open");
    }
    common::FaultDecision decision = fault->Decide(fault_index, attempts);
    ++attempts;
    if (decision.status.ok()) {
      // The attempt reached the service; whatever it answers (including
      // NotFound / a spent quota) is a successful round trip.
      if (options_.circuit_breaker != nullptr) {
        options_.circuit_breaker->RecordSuccess();
      }
      obs::RecordSample(m_attempts_, attempts);
      return ReverseDirect(point);
    }
    if (options_.circuit_breaker != nullptr) {
      options_.circuit_breaker->RecordFailure();
    }
    if (!retry_policy_.ShouldRetry(decision.status, attempts)) {
      num_faulted_.fetch_add(1, std::memory_order_relaxed);
      obs::IncrementCounter(m_faulted_);
      obs::RecordSample(m_attempts_, attempts);
      return decision.status;
    }
    num_retries_.fetch_add(1, std::memory_order_relaxed);
    ++t_retries;
    obs::IncrementCounter(m_retried_);
    int64_t backoff = retry_policy_.BackoffMs(
        attempts, static_cast<uint64_t>(fault_index));
    simulated_backoff_ms_.fetch_add(backoff, std::memory_order_relaxed);
    t_backoff_ms += backoff;
    obs::IncrementCounter(m_backoff_ms_, backoff);
  }
}

StatusOr<GeocodeResult> ReverseGeocoder::ReverseDirect(const LatLng& point) {
  num_queries_.fetch_add(1, std::memory_order_relaxed);
  obs::IncrementCounter(m_queries_);
  if (!point.IsValid()) {
    return Status::InvalidArgument("invalid coordinate: " + point.ToString());
  }

  std::string cache_key;
  if (options_.enable_cache) {
    cache_key = GeohashEncode(point, options_.cache_precision);
    CacheShard& shard = ShardFor(cache_key);
    std::unique_lock<std::mutex> lock = LockShard(shard);
    auto it = shard.map.find(cache_key);
    if (it != shard.map.end()) {
      num_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      obs::IncrementCounter(m_cache_hits_);
      return it->second;
    }
    obs::IncrementCounter(m_cache_misses_);
  }

  if (options_.quota >= 0) {
    // CAS so concurrent misses can never overspend the quota.
    int64_t used = quota_used_.load(std::memory_order_relaxed);
    do {
      if (used >= options_.quota) {
        return Status::ResourceExhausted("reverse geocoding quota exhausted");
      }
    } while (!quota_used_.compare_exchange_weak(used, used + 1,
                                                std::memory_order_relaxed));
  } else {
    quota_used_.fetch_add(1, std::memory_order_relaxed);
  }

  STIR_ASSIGN_OR_RETURN(RegionId id, db_->Locate(point));
  const Region& region = db_->region(id);
  GeocodeResult result;
  result.country = region.country;
  result.state = region.state;
  result.county = region.county;
  result.town = SynthesizeTown(region, point);
  result.region = id;

  if (options_.enable_cache) {
    // Journal before publishing to the cache: write-ahead order
    // guarantees any result other threads can observe (and build state
    // on) is already durable.
    if (options_.journal != nullptr && options_.journal->is_open()) {
      Status s = options_.journal->Append(cache_key, result);
      if (!s.ok() && !journal_append_failed_.exchange(true)) {
        STIR_LOG(Warning) << "geocode journal append failed (journal "
                             "abandoned for this run): "
                          << s.message();
      }
    }
    CacheShard& shard = ShardFor(cache_key);
    std::unique_lock<std::mutex> lock = LockShard(shard);
    // try_emplace keeps the first writer's entry on a racing double-miss
    // (both computed the same deterministic result anyway).
    shard.map.try_emplace(std::move(cache_key), result);
  }
  return result;
}

StatusOr<std::string> ReverseGeocoder::ReverseToXml(const LatLng& point,
                                                    int64_t fault_index) {
  STIR_ASSIGN_OR_RETURN(GeocodeResult r, Reverse(point, fault_index));
  XmlNode root("ResultSet");
  root.AddAttribute("version", "1.0");
  XmlNode& result = root.AddChild("Result");
  result.AddChild("latitude").set_text(StrFormat("%.6f", point.lat));
  result.AddChild("longitude").set_text(StrFormat("%.6f", point.lng));
  XmlNode& location = result.AddChild("location");
  location.AddChild("country").set_text(r.country);
  location.AddChild("state").set_text(r.state);
  location.AddChild("county").set_text(r.county);
  location.AddChild("town").set_text(r.town);
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" + root.ToString();
}

StatusOr<GeocodeResult> ReverseGeocoder::ParseResponse(std::string_view xml) {
  STIR_ASSIGN_OR_RETURN(auto root, ParseXml(xml));
  if (root->name() != "ResultSet") {
    return Status::InvalidArgument("expected <ResultSet> root, got <" +
                                   root->name() + ">");
  }
  const XmlNode* result = root->FindChild("Result");
  if (result == nullptr) return Status::InvalidArgument("missing <Result>");
  const XmlNode* location = result->FindChild("location");
  if (location == nullptr) {
    return Status::InvalidArgument("missing <location>");
  }
  GeocodeResult out;
  out.country = location->ChildText("country");
  out.state = location->ChildText("state");
  out.county = location->ChildText("county");
  out.town = location->ChildText("town");
  if (out.state.empty() || out.county.empty()) {
    return Status::InvalidArgument("response missing <state>/<county>");
  }
  return out;
}

}  // namespace stir::geo
