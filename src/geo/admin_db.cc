#include "geo/admin_db.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace stir::geo {

namespace {

std::vector<Region> BuildRegions(
    const internal_admin_data::RawCounty* rows, size_t count) {
  std::vector<Region> regions;
  regions.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const auto& row = rows[i];
    Region r;
    r.country = row.country;
    r.state = row.state;
    r.county = row.county;
    r.centroid = LatLng{row.lat, row.lng};
    r.radius_km = row.radius_km;
    if (row.alias != nullptr) r.aliases.emplace_back(row.alias);
    regions.push_back(std::move(r));
  }
  return regions;
}

}  // namespace

std::string AdminDb::Key(std::string_view state, std::string_view county) {
  return ToLower(state) + "|" + ToLower(county);
}

AdminDb::AdminDb(std::vector<Region> regions, double coverage_slack_km)
    : regions_(std::move(regions)), coverage_slack_km_(coverage_slack_km) {
  STIR_CHECK(!regions_.empty());
  for (size_t i = 0; i < regions_.size(); ++i) {
    Region& r = regions_[i];
    r.id = static_cast<RegionId>(i);
    STIR_CHECK(r.centroid.IsValid());
    if (std::find(states_.begin(), states_.end(), r.state) == states_.end()) {
      states_.push_back(r.state);
    }
    by_state_county_[Key(r.state, r.county)] = r.id;
    for (const std::string& alias : r.aliases) {
      by_state_county_[Key(r.state, alias)] = r.id;
      by_county_[ToLower(alias)].push_back(r.id);
    }
    by_county_[ToLower(r.county)].push_back(r.id);
    index_.Add(r.centroid, r.id);
    coverage_.Extend(r.centroid);
  }
  // Compute the safe (Voronoi-interior) radius of every region: half the
  // distance to the nearest other centroid, capped by the footprint radius.
  for (Region& r : regions_) {
    double nearest = std::numeric_limits<double>::infinity();
    for (const Region& other : regions_) {
      if (other.id == r.id) continue;
      nearest = std::min(nearest, ApproxDistanceKm(r.centroid, other.centroid));
    }
    double safe = std::isfinite(nearest) ? nearest * 0.45 : r.radius_km;
    r.safe_radius_km = std::min(r.radius_km, std::max(0.3, safe));
  }

  // Intern-once name table: dedupe (state, county) pairs into dense
  // keys, then rank each key by its "state#county" bytes — the exact
  // comparison a string-keyed Table II merge performs between two of
  // one user's records (their "user#pstate#pcounty#" prefix is shared).
  std::unordered_map<std::string, uint32_t> key_ids;
  district_names_.key_of_region.reserve(regions_.size());
  for (const Region& r : regions_) {
    std::string suffix = r.state + "#" + r.county;
    auto [it, inserted] = key_ids.emplace(
        std::move(suffix), static_cast<uint32_t>(district_names_.names.size()));
    if (inserted) {
      DistrictNameTable::Name name;
      name.state = r.state;
      name.county = r.county;
      name.display = r.state + " " + r.county;
      district_names_.names.push_back(std::move(name));
    }
    district_names_.key_of_region.push_back(it->second);
  }
  std::vector<uint32_t> by_suffix(district_names_.names.size());
  for (uint32_t k = 0; k < by_suffix.size(); ++k) by_suffix[k] = k;
  std::sort(by_suffix.begin(), by_suffix.end(),
            [this](uint32_t a, uint32_t b) {
              const DistrictNameTable::Name& na = district_names_.names[a];
              const DistrictNameTable::Name& nb = district_names_.names[b];
              return na.state + "#" + na.county < nb.state + "#" + nb.county;
            });
  for (uint32_t rank = 0; rank < by_suffix.size(); ++rank) {
    district_names_.names[by_suffix[rank]].lex_rank = rank;
  }
}

const Region& AdminDb::region(RegionId id) const {
  STIR_CHECK_GE(id, 0);
  STIR_CHECK_LT(static_cast<size_t>(id), regions_.size());
  return regions_[static_cast<size_t>(id)];
}

std::vector<RegionId> AdminDb::CountiesInState(std::string_view state) const {
  std::vector<RegionId> result;
  for (const Region& r : regions_) {
    if (EqualsIgnoreCase(r.state, state)) result.push_back(r.id);
  }
  return result;
}

StatusOr<RegionId> AdminDb::FindCounty(std::string_view state,
                                       std::string_view county) const {
  auto it = by_state_county_.find(Key(state, county));
  if (it == by_state_county_.end()) {
    return Status::NotFound(std::string("no such county: ") +
                            std::string(state) + " / " + std::string(county));
  }
  return it->second;
}

StatusOr<RegionId> AdminDb::FindCountyAnyState(std::string_view county) const {
  auto it = by_county_.find(ToLower(county));
  if (it == by_county_.end()) {
    return Status::NotFound("no such county: " + std::string(county));
  }
  // Distinct regions under this name (a region may appear twice when an
  // alias equals its own name).
  std::vector<RegionId> distinct = it->second;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  if (distinct.size() > 1) {
    return Status::AlreadyExists("ambiguous county name: " +
                                 std::string(county));
  }
  return distinct.front();
}

StatusOr<RegionId> AdminDb::Locate(const LatLng& point) const {
  if (!point.IsValid()) {
    return Status::InvalidArgument("invalid coordinate: " + point.ToString());
  }
  int64_t id = index_.Nearest(point);
  if (id < 0) return Status::NotFound("empty gazetteer");
  const Region& r = region(static_cast<RegionId>(id));
  double d = ApproxDistanceKm(point, r.centroid);
  if (d > r.radius_km + coverage_slack_km_) {
    return Status::NotFound("point outside coverage: " + point.ToString());
  }
  return r.id;
}

LatLng AdminDb::SamplePointIn(RegionId id, Rng& rng) const {
  const Region& r = region(id);
  // Rayleigh-ish radial density (uniform disc would be sqrt(u)) truncated
  // to the safe radius: activity clusters toward the district center.
  for (int attempt = 0; attempt < 64; ++attempt) {
    double dist = std::fabs(rng.Normal(0.0, r.safe_radius_km * 0.5));
    if (dist > r.safe_radius_km * 0.95) continue;
    double bearing = rng.Uniform(0.0, 360.0);
    LatLng p = Destination(r.centroid, bearing, dist);
    if (p.IsValid()) return p;
  }
  return r.centroid;
}

const char* AdminDb::HangulStateName(std::string_view state) {
  for (size_t i = 0; i < internal_admin_data::kHangulStateAliasCount; ++i) {
    const auto& alias = internal_admin_data::kHangulStateAliases[i];
    if (EqualsIgnoreCase(alias.state, state)) return alias.hangul;
  }
  return nullptr;
}

const char* AdminDb::HangulCountyName(std::string_view state,
                                      std::string_view county) {
  for (size_t i = 0; i < internal_admin_data::kHangulCountyAliasCount; ++i) {
    const auto& alias = internal_admin_data::kHangulCountyAliases[i];
    if (EqualsIgnoreCase(alias.state, state) &&
        EqualsIgnoreCase(alias.county, county)) {
      return alias.hangul;
    }
  }
  return nullptr;
}

const AdminDb& AdminDb::KoreanDistricts() {
  static const AdminDb& db = *new AdminDb(
      [] {
        std::vector<Region> regions =
            BuildRegions(internal_admin_data::kKoreanCounties,
                         internal_admin_data::kKoreanCountyCount);
        // Attach hangul county spellings as aliases so text lookups
        // resolve Korean-script profile locations (paper Fig. 3).
        for (Region& region : regions) {
          const char* hangul = HangulCountyName(region.state, region.county);
          if (hangul != nullptr) region.aliases.emplace_back(hangul);
        }
        return regions;
      }(),
      /*coverage_slack_km=*/25.0);
  return db;
}

const AdminDb& AdminDb::WorldCities() {
  static const AdminDb& db = *new AdminDb(
      BuildRegions(internal_admin_data::kWorldCities,
                   internal_admin_data::kWorldCityCount),
      /*coverage_slack_km=*/120.0);
  return db;
}

}  // namespace stir::geo
