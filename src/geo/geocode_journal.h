#ifndef STIR_GEO_GEOCODE_JOURNAL_H_
#define STIR_GEO_GEOCODE_JOURNAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "geo/reverse_geocoder.h"
#include "io/journal.h"

namespace stir::geo {

/// One replayed journal entry: a resolved cache-key → district mapping.
struct GeocodeJournalEntry {
  std::string cache_key;
  GeocodeResult result;
};

/// Outcome of replaying a geocode journal. Structural journal problems
/// (bad magic, unusable header) surface as `usable == false` with the
/// reason in `error` — never as an aborted study; the caller logs it and
/// starts a fresh journal.
struct GeocodeJournalReplay {
  bool usable = true;
  std::string error;
  std::vector<GeocodeJournalEntry> entries;
  io::JournalReplayStats stats;  ///< quarantined includes decode failures.
};

/// Write-ahead journal of resolved geocode lookups (magic "STIRGEOJ").
/// The geocoder appends each cache-miss success; replaying the journal
/// into ReverseGeocoder::PreloadCache before a resumed run means every
/// previously-resolved coordinate is a cache hit — zero additional
/// simulated API quota.
class GeocodeJournal {
 public:
  static constexpr std::string_view kMagic = "STIRGEOJ";

  /// Decodes every intact record of the journal at `path`. Duplicate
  /// cache keys are kept (PreloadCache dedups on insert); records whose
  /// payload fails to decode are counted into `stats.quarantined`.
  static GeocodeJournalReplay Replay(const std::string& path);

  /// Serialization of one entry (exposed for tests).
  static std::string EncodeEntry(std::string_view cache_key,
                                 const GeocodeResult& result);
  static bool DecodeEntry(std::string_view payload, GeocodeJournalEntry* out);

  Status OpenFresh(const std::string& path, bool fsync = true) {
    return writer_.OpenFresh(path, kMagic, fsync);
  }
  Status OpenForResume(const std::string& path, int64_t valid_bytes,
                       bool fsync = true) {
    return writer_.OpenForResume(path, kMagic, valid_bytes, fsync);
  }

  /// Appends one resolved lookup. Errors are returned, not fatal: the
  /// geocoder treats a failed append as "journal lost", logs once, and
  /// keeps serving lookups.
  Status Append(std::string_view cache_key, const GeocodeResult& result) {
    return writer_.Append(EncodeEntry(cache_key, result));
  }

  bool is_open() const { return writer_.is_open(); }
  int64_t appended() const { return writer_.appended(); }
  /// Final fsync + close; a failed barrier surfaces here (see
  /// io::JournalWriter::Close).
  Status Close() { return writer_.Close(); }

 private:
  io::JournalWriter writer_;
};

}  // namespace stir::geo

#endif  // STIR_GEO_GEOCODE_JOURNAL_H_
