#include "geo/latlng.h"

#include <cstdio>

namespace stir::geo {

std::string LatLng::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f,%.6f", lat, lng);
  return buf;
}

double HaversineKm(const LatLng& a, const LatLng& b) {
  double lat1 = DegToRad(a.lat);
  double lat2 = DegToRad(b.lat);
  double dlat = lat2 - lat1;
  double dlng = DegToRad(b.lng - a.lng);
  double h = std::sin(dlat / 2.0) * std::sin(dlat / 2.0) +
             std::cos(lat1) * std::cos(lat2) * std::sin(dlng / 2.0) *
                 std::sin(dlng / 2.0);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double ApproxDistanceKm(const LatLng& a, const LatLng& b) {
  double mid_lat = DegToRad((a.lat + b.lat) / 2.0);
  double dx = DegToRad(b.lng - a.lng) * std::cos(mid_lat);
  double dy = DegToRad(b.lat - a.lat);
  return kEarthRadiusKm * std::sqrt(dx * dx + dy * dy);
}

LatLng Destination(const LatLng& origin, double bearing_deg,
                   double distance_km) {
  double ang = distance_km / kEarthRadiusKm;
  double brg = DegToRad(bearing_deg);
  double lat1 = DegToRad(origin.lat);
  double lng1 = DegToRad(origin.lng);
  double lat2 = std::asin(std::sin(lat1) * std::cos(ang) +
                          std::cos(lat1) * std::sin(ang) * std::cos(brg));
  double lng2 =
      lng1 + std::atan2(std::sin(brg) * std::sin(ang) * std::cos(lat1),
                        std::cos(ang) - std::sin(lat1) * std::sin(lat2));
  // Normalize longitude to [-180, 180].
  double lng_deg = RadToDeg(lng2);
  while (lng_deg > 180.0) lng_deg -= 360.0;
  while (lng_deg < -180.0) lng_deg += 360.0;
  return LatLng{RadToDeg(lat2), lng_deg};
}

}  // namespace stir::geo
