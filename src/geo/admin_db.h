#ifndef STIR_GEO_ADMIN_DB_H_
#define STIR_GEO_ADMIN_DB_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "geo/grid_index.h"
#include "geo/latlng.h"

namespace stir::geo {

/// Stable handle into an AdminDb (index into its region table).
using RegionId = int32_t;
inline constexpr RegionId kInvalidRegion = -1;

/// A second-level administrative district (si/gun/gu in Korea; a city for
/// the world gazetteer). The paper's unit of analysis: the Yahoo API's
/// <state> + <county> pair.
struct Region {
  RegionId id = kInvalidRegion;
  std::string country;
  std::string state;   ///< First-level division (si/do, US state, ...).
  std::string county;  ///< Second-level division (si/gun/gu, city).
  LatLng centroid;
  double radius_km = 5.0;  ///< Approximate footprint radius.
  /// Largest radius around the centroid guaranteed to be closer to this
  /// centroid than to any other (half the nearest-neighbour distance).
  /// Points sampled within it reverse-geocode back to this region.
  double safe_radius_km = 5.0;
  std::vector<std::string> aliases;  ///< Alternate county spellings.

  /// "State County", e.g. "Seoul Yangcheon-gu".
  std::string FullName() const { return state + " " + county; }
};

/// Intern-once district name table, precomputed by every AdminDb
/// (DESIGN.md §14). Each region resolves to a dense *name key*; regions
/// whose (state, county) names coincide share a key, exactly the way
/// string-keyed merges collapse them. Each key carries its display
/// strings plus the byte-wise lexicographic rank of its "state#county"
/// rendering, so the grouping pass can merge and order per-tweet
/// districts as an integer-column operation — no per-tweet string
/// building, no re-hashing — and still reproduce the string pipeline's
/// order bit for bit. serve::StudyIndex reuses the same display names.
struct DistrictNameTable {
  struct Name {
    std::string state;
    std::string county;
    /// "State County" — the serving/display rendering.
    std::string display;
    /// Rank of "state#county" among all distinct keys, byte-wise
    /// ascending (the order a std::map over Table I record strings
    /// yields for one user's records).
    uint32_t lex_rank = 0;
  };
  /// RegionId -> name key (dense, size() == region count).
  std::vector<uint32_t> key_of_region;
  /// Name key -> names (size() == distinct (state, county) pairs).
  std::vector<Name> names;
};

/// In-memory gazetteer of administrative districts with reverse-geocoding
/// support (grid-accelerated nearest-centroid assignment — a Voronoi
/// approximation of district polygons) and deterministic point sampling
/// for the synthetic data generators.
///
/// Two built-in instances mirror the paper's two datasets:
///  * KoreanDistricts(): 17 first-level si/do and ~190 si/gun/gu with real
///    names and approximate centroids — the domain of the Korean dataset.
///  * WorldCities(): major cities worldwide — the domain of the
///    "Lady Gaga" search/streaming dataset.
class AdminDb {
 public:
  /// Builds a DB from a region list (ids are reassigned to indices).
  explicit AdminDb(std::vector<Region> regions, double coverage_slack_km = 25.0);

  static const AdminDb& KoreanDistricts();
  static const AdminDb& WorldCities();

  size_t size() const { return regions_.size(); }
  const Region& region(RegionId id) const;
  const std::vector<Region>& regions() const { return regions_; }

  /// Distinct first-level names, in table order.
  const std::vector<std::string>& states() const { return states_; }
  /// Regions within a state, in table order.
  std::vector<RegionId> CountiesInState(std::string_view state) const;

  /// Exact lookup by (state, county), ASCII-case-insensitive, consulting
  /// aliases. NotFound when absent.
  StatusOr<RegionId> FindCounty(std::string_view state,
                                std::string_view county) const;

  /// Lookup by county name alone; fails with AlreadyExists when the name
  /// is ambiguous across states (e.g. "Jung-gu" exists in six Korean
  /// metros) and NotFound when absent. This mirrors the ambiguity the
  /// paper flags for free-text profile locations.
  StatusOr<RegionId> FindCountyAnyState(std::string_view county) const;

  /// Reverse geocoding: the region whose centroid is nearest to `point`,
  /// when the point lies within the region's footprint plus the coverage
  /// slack. NotFound for points outside coverage (open sea, abroad).
  StatusOr<RegionId> Locate(const LatLng& point) const;

  /// Deterministically samples a point inside the region's safe radius
  /// (guaranteed to Locate() back to the same region).
  LatLng SamplePointIn(RegionId id, Rng& rng) const;

  /// Bounding box of all centroids.
  BoundingBox Coverage() const { return coverage_; }

  /// The precomputed intern-once name table (see DistrictNameTable).
  const DistrictNameTable& district_names() const { return district_names_; }

  /// Hangul spelling of a Korean first-level division ("서울" for
  /// "Seoul"), or nullptr when unknown. Static lookup, valid for any
  /// gazetteer.
  static const char* HangulStateName(std::string_view state);
  /// Hangul spelling of a Korean (state, county) pair, or nullptr.
  static const char* HangulCountyName(std::string_view state,
                                      std::string_view county);

 private:
  static std::string Key(std::string_view state, std::string_view county);

  std::vector<Region> regions_;
  std::vector<std::string> states_;
  std::unordered_map<std::string, RegionId> by_state_county_;
  std::unordered_map<std::string, std::vector<RegionId>> by_county_;
  GridIndex index_;
  BoundingBox coverage_;
  double coverage_slack_km_;
  DistrictNameTable district_names_;
};

namespace internal_admin_data {
/// Raw gazetteer rows (defined in admin_data.cc).
struct RawCounty {
  const char* country;
  const char* state;
  const char* county;
  double lat;
  double lng;
  double radius_km;
  const char* alias;  ///< nullptr or one alternate spelling.
};
extern const RawCounty kKoreanCounties[];
extern const size_t kKoreanCountyCount;
extern const RawCounty kWorldCities[];
extern const size_t kWorldCityCount;

/// Korean-script (hangul) names. The paper's Fig. 3 shows profile
/// locations written in Korean; these aliases let the parser resolve
/// them. County entries resolve against (state, county); state entries
/// map the hangul si/do name to its Romanized form.
struct HangulCountyAlias {
  const char* state;   ///< Romanized state the county belongs to.
  const char* county;  ///< Romanized county name.
  const char* hangul;  ///< Hangul spelling of the county.
};
struct HangulStateAlias {
  const char* state;   ///< Romanized state name.
  const char* hangul;  ///< Hangul spelling.
};
extern const HangulCountyAlias kHangulCountyAliases[];
extern const size_t kHangulCountyAliasCount;
extern const HangulStateAlias kHangulStateAliases[];
extern const size_t kHangulStateAliasCount;
}  // namespace internal_admin_data

}  // namespace stir::geo

#endif  // STIR_GEO_ADMIN_DB_H_
