#ifndef STIR_GEO_LATLNG_H_
#define STIR_GEO_LATLNG_H_

#include <cmath>
#include <string>

namespace stir::geo {

/// Mean Earth radius (spherical model) in kilometers.
inline constexpr double kEarthRadiusKm = 6371.0088;

/// A WGS84-style coordinate in degrees. Plain value type.
struct LatLng {
  double lat = 0.0;
  double lng = 0.0;

  /// True when within [-90,90] x [-180,180] and finite.
  bool IsValid() const {
    return std::isfinite(lat) && std::isfinite(lng) && lat >= -90.0 &&
           lat <= 90.0 && lng >= -180.0 && lng <= 180.0;
  }

  /// "lat,lng" with 6 decimal places (~0.1 m), the precision GPS-tagged
  /// tweets carried.
  std::string ToString() const;
};

inline bool operator==(const LatLng& a, const LatLng& b) {
  return a.lat == b.lat && a.lng == b.lng;
}

/// Degrees <-> radians.
inline double DegToRad(double deg) { return deg * M_PI / 180.0; }
inline double RadToDeg(double rad) { return rad * 180.0 / M_PI; }

/// Great-circle distance between two points in kilometers (haversine).
double HaversineKm(const LatLng& a, const LatLng& b);

/// Fast approximate distance in km using an equirectangular projection
/// around the midpoint latitude; accurate to <0.5% at city scale, used in
/// hot loops (nearest-centroid geocoding).
double ApproxDistanceKm(const LatLng& a, const LatLng& b);

/// Point reached from `origin` travelling `distance_km` along `bearing_deg`
/// (0 = north, 90 = east) on the sphere.
LatLng Destination(const LatLng& origin, double bearing_deg,
                   double distance_km);

/// Axis-aligned lat/lng rectangle. Empty by default (lo > hi).
struct BoundingBox {
  double min_lat = 1.0;
  double max_lat = -1.0;
  double min_lng = 1.0;
  double max_lng = -1.0;

  bool IsEmpty() const { return min_lat > max_lat || min_lng > max_lng; }

  void Extend(const LatLng& p) {
    if (IsEmpty()) {
      min_lat = max_lat = p.lat;
      min_lng = max_lng = p.lng;
      return;
    }
    min_lat = std::min(min_lat, p.lat);
    max_lat = std::max(max_lat, p.lat);
    min_lng = std::min(min_lng, p.lng);
    max_lng = std::max(max_lng, p.lng);
  }

  bool Contains(const LatLng& p) const {
    return !IsEmpty() && p.lat >= min_lat && p.lat <= max_lat &&
           p.lng >= min_lng && p.lng <= max_lng;
  }

  /// Grows the box by `margin_deg` degrees on every side.
  BoundingBox Expanded(double margin_deg) const {
    BoundingBox b = *this;
    if (b.IsEmpty()) return b;
    b.min_lat -= margin_deg;
    b.max_lat += margin_deg;
    b.min_lng -= margin_deg;
    b.max_lng += margin_deg;
    return b;
  }

  LatLng Center() const {
    return LatLng{(min_lat + max_lat) / 2.0, (min_lng + max_lng) / 2.0};
  }
};

}  // namespace stir::geo

#endif  // STIR_GEO_LATLNG_H_
