#include "geo/geocode_journal.h"

#include "io/serialize.h"

namespace stir::geo {

std::string GeocodeJournal::EncodeEntry(std::string_view cache_key,
                                        const GeocodeResult& result) {
  io::BinaryWriter w;
  w.String(cache_key);
  w.String(result.country);
  w.String(result.state);
  w.String(result.county);
  w.String(result.town);
  w.I32(result.region);
  return w.Take();
}

bool GeocodeJournal::DecodeEntry(std::string_view payload,
                                 GeocodeJournalEntry* out) {
  io::BinaryReader r(payload);
  GeocodeJournalEntry entry;
  int32_t region = kInvalidRegion;
  if (!r.String(&entry.cache_key) || !r.String(&entry.result.country) ||
      !r.String(&entry.result.state) || !r.String(&entry.result.county) ||
      !r.String(&entry.result.town) || !r.I32(&region) || !r.Done()) {
    return false;
  }
  entry.result.region = region;
  *out = std::move(entry);
  return true;
}

GeocodeJournalReplay GeocodeJournal::Replay(const std::string& path) {
  GeocodeJournalReplay replay;
  int64_t decode_failures = 0;
  auto stats_or = io::ReplayJournal(
      path, kMagic, [&](std::string_view payload) {
        GeocodeJournalEntry entry;
        if (GeocodeJournal::DecodeEntry(payload, &entry)) {
          replay.entries.push_back(std::move(entry));
        } else {
          ++decode_failures;
        }
      });
  if (!stats_or.ok()) {
    replay.usable = false;
    replay.error = stats_or.status().message();
    replay.entries.clear();
    return replay;
  }
  replay.stats = *stats_or;
  // A frame whose payload decodes to garbage is as corrupt as one whose
  // CRC failed; fold both into the quarantine count.
  replay.stats.quarantined += decode_failures;
  replay.stats.records -= decode_failures;
  return replay;
}

}  // namespace stir::geo
