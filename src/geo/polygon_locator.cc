#include "geo/polygon_locator.h"

#include <limits>

#include "common/logging.h"

namespace stir::geo {

PolygonLocator::PolygonLocator(const AdminDb* db, int sides) : db_(db) {
  STIR_CHECK(db != nullptr);
  STIR_CHECK_GE(sides, 3);
  footprints_.reserve(db_->size());
  for (const Region& region : db_->regions()) {
    footprints_.push_back(
        Polygon::RegularApprox(region.centroid, region.radius_km, sides));
    centroid_index_.Add(region.centroid, region.id);
  }
}

const Polygon& PolygonLocator::footprint(RegionId id) const {
  STIR_CHECK_GE(id, 0);
  STIR_CHECK_LT(static_cast<size_t>(id), footprints_.size());
  return footprints_[static_cast<size_t>(id)];
}

std::vector<RegionId> PolygonLocator::Candidates(const LatLng& point) const {
  std::vector<RegionId> candidates;
  if (!point.IsValid()) return candidates;
  // Footprint radii are bounded; only regions whose centroid lies within
  // the largest footprint radius can contain the point. 30 km covers the
  // largest Korean gun and keeps the candidate set tiny; world-city
  // footprints are bigger, so take the max radius from the gazetteer.
  double max_radius = 0.0;
  for (const Region& region : db_->regions()) {
    max_radius = std::max(max_radius, region.radius_km);
  }
  for (int64_t id : centroid_index_.WithinRadius(point, max_radius + 1.0)) {
    if (footprints_[static_cast<size_t>(id)].Contains(point)) {
      candidates.push_back(static_cast<RegionId>(id));
    }
  }
  return candidates;
}

StatusOr<RegionId> PolygonLocator::Locate(const LatLng& point) const {
  if (!point.IsValid()) {
    return Status::InvalidArgument("invalid coordinate: " + point.ToString());
  }
  std::vector<RegionId> candidates = Candidates(point);
  if (candidates.size() == 1) return candidates.front();
  if (candidates.size() > 1) {
    // Overlapping footprints: break the tie by centroid distance, the
    // same rule the Voronoi assignment uses.
    RegionId best = candidates.front();
    double best_km = std::numeric_limits<double>::infinity();
    for (RegionId id : candidates) {
      double d = ApproxDistanceKm(point, db_->region(id).centroid);
      if (d < best_km) {
        best_km = d;
        best = id;
      }
    }
    return best;
  }
  // Gap between footprints: defer to the AdminDb's coverage rule so the
  // two locators agree on what is "outside Korea".
  return db_->Locate(point);
}

}  // namespace stir::geo
