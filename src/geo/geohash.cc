#include "geo/geohash.h"

namespace stir::geo {

namespace {

constexpr char kBase32[] = "0123456789bcdefghjkmnpqrstuvwxyz";

int Base32Value(char c) {
  for (int i = 0; i < 32; ++i) {
    if (kBase32[i] == c) return i;
  }
  return -1;
}

}  // namespace

std::string GeohashEncode(const LatLng& point, int precision) {
  if (precision < 1) precision = 1;
  if (precision > 18) precision = 18;
  double lat_lo = -90.0, lat_hi = 90.0;
  double lng_lo = -180.0, lng_hi = 180.0;
  std::string hash;
  hash.reserve(static_cast<size_t>(precision));
  int bit = 0;
  int value = 0;
  bool even_bit = true;  // longitude first
  while (hash.size() < static_cast<size_t>(precision)) {
    if (even_bit) {
      double mid = (lng_lo + lng_hi) / 2.0;
      if (point.lng >= mid) {
        value = (value << 1) | 1;
        lng_lo = mid;
      } else {
        value <<= 1;
        lng_hi = mid;
      }
    } else {
      double mid = (lat_lo + lat_hi) / 2.0;
      if (point.lat >= mid) {
        value = (value << 1) | 1;
        lat_lo = mid;
      } else {
        value <<= 1;
        lat_hi = mid;
      }
    }
    even_bit = !even_bit;
    if (++bit == 5) {
      hash.push_back(kBase32[value]);
      bit = 0;
      value = 0;
    }
  }
  return hash;
}

StatusOr<BoundingBox> GeohashDecodeBounds(std::string_view hash) {
  if (hash.empty()) return Status::InvalidArgument("empty geohash");
  double lat_lo = -90.0, lat_hi = 90.0;
  double lng_lo = -180.0, lng_hi = 180.0;
  bool even_bit = true;
  for (char c : hash) {
    int value = Base32Value(c);
    if (value < 0) {
      return Status::InvalidArgument(std::string("invalid geohash char: ") +
                                     c);
    }
    for (int mask = 16; mask > 0; mask >>= 1) {
      if (even_bit) {
        double mid = (lng_lo + lng_hi) / 2.0;
        if (value & mask) {
          lng_lo = mid;
        } else {
          lng_hi = mid;
        }
      } else {
        double mid = (lat_lo + lat_hi) / 2.0;
        if (value & mask) {
          lat_lo = mid;
        } else {
          lat_hi = mid;
        }
      }
      even_bit = !even_bit;
    }
  }
  BoundingBox box;
  box.min_lat = lat_lo;
  box.max_lat = lat_hi;
  box.min_lng = lng_lo;
  box.max_lng = lng_hi;
  return box;
}

StatusOr<LatLng> GeohashDecode(std::string_view hash) {
  STIR_ASSIGN_OR_RETURN(BoundingBox box, GeohashDecodeBounds(hash));
  return box.Center();
}

}  // namespace stir::geo
