#ifndef STIR_GEO_GRID_INDEX_H_
#define STIR_GEO_GRID_INDEX_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "geo/latlng.h"

namespace stir::geo {

/// Uniform lat/lng grid over point payloads. Supports nearest-neighbour
/// and radius queries; this is the accelerator behind reverse geocoding
/// (a few hundred district centroids, millions of lookups).
///
/// Cells are `cell_deg` degrees on a side. Nearest-neighbour searches ring
/// by ring outward, with the usual guard ring to make the result exact.
class GridIndex {
 public:
  /// `cell_deg` must be positive; 0.25 deg (~25 km) suits district-scale
  /// data.
  explicit GridIndex(double cell_deg = 0.25);

  /// Adds a point with an opaque payload id.
  void Add(const LatLng& point, int64_t id);

  size_t size() const { return points_.size(); }

  /// Id of the point nearest to `query` (by equirectangular-approximation
  /// distance), or -1 when the index is empty. `max_distance_km` bounds
  /// the search; points farther away are not returned.
  int64_t Nearest(const LatLng& query,
                  double max_distance_km =
                      std::numeric_limits<double>::infinity()) const;

  /// Ids of all points within `radius_km` of `query`, unordered.
  std::vector<int64_t> WithinRadius(const LatLng& query,
                                    double radius_km) const;

 private:
  struct Entry {
    LatLng point;
    int64_t id;
  };

  int64_t CellKey(int row, int col) const;
  int RowOf(double lat) const;
  int ColOf(double lng) const;

  double cell_deg_;
  std::vector<Entry> points_;
  std::unordered_map<int64_t, std::vector<uint32_t>> cells_;
};

}  // namespace stir::geo

#endif  // STIR_GEO_GRID_INDEX_H_
