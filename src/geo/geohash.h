#ifndef STIR_GEO_GEOHASH_H_
#define STIR_GEO_GEOHASH_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "geo/latlng.h"

namespace stir::geo {

/// Encodes `point` as a standard base-32 geohash of `precision` characters
/// (1..18). 6 characters give ~±0.6 km, enough to key tweet locations.
std::string GeohashEncode(const LatLng& point, int precision = 8);

/// Decodes a geohash to the center of its cell. Fails on invalid
/// characters or empty input.
StatusOr<LatLng> GeohashDecode(std::string_view hash);

/// Decodes to the cell's bounding box.
StatusOr<BoundingBox> GeohashDecodeBounds(std::string_view hash);

}  // namespace stir::geo

#endif  // STIR_GEO_GEOHASH_H_
