#include "geo/grid_index.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace stir::geo {

GridIndex::GridIndex(double cell_deg) : cell_deg_(cell_deg) {
  STIR_CHECK_GT(cell_deg, 0.0);
}

int GridIndex::RowOf(double lat) const {
  return static_cast<int>(std::floor((lat + 90.0) / cell_deg_));
}

int GridIndex::ColOf(double lng) const {
  return static_cast<int>(std::floor((lng + 180.0) / cell_deg_));
}

int64_t GridIndex::CellKey(int row, int col) const {
  return (static_cast<int64_t>(row) << 32) ^
         static_cast<int64_t>(static_cast<uint32_t>(col));
}

void GridIndex::Add(const LatLng& point, int64_t id) {
  uint32_t slot = static_cast<uint32_t>(points_.size());
  points_.push_back(Entry{point, id});
  cells_[CellKey(RowOf(point.lat), ColOf(point.lng))].push_back(slot);
}

int64_t GridIndex::Nearest(const LatLng& query, double max_distance_km) const {
  if (points_.empty()) return -1;
  int center_row = RowOf(query.lat);
  int center_col = ColOf(query.lng);

  // Expanding ring search. After finding a candidate at ring r we search
  // one extra ring (the guard ring) because a closer point can live in
  // ring r+1 when the query sits near a cell edge.
  int64_t best_id = -1;
  double best_km = max_distance_km;
  double cos_lat = std::max(0.05, std::cos(DegToRad(query.lat)));
  double cell_km = cell_deg_ * 111.32 * cos_lat;
  int max_ring = static_cast<int>(
      std::min(1e6, std::isfinite(max_distance_km)
                        ? max_distance_km / std::max(1e-9, cell_km) + 2.0
                        : 1e6));
  int found_at_ring = -1;
  for (int ring = 0;; ++ring) {
    if (found_at_ring >= 0 && ring > found_at_ring + 1) break;
    if (ring > max_ring && found_at_ring < 0) break;
    bool any_cell_exists = false;
    for (int dr = -ring; dr <= ring; ++dr) {
      for (int dc = -ring; dc <= ring; ++dc) {
        // Visit only the ring perimeter.
        if (std::max(std::abs(dr), std::abs(dc)) != ring) continue;
        auto it = cells_.find(CellKey(center_row + dr, center_col + dc));
        if (it == cells_.end()) continue;
        any_cell_exists = true;
        for (uint32_t slot : it->second) {
          const Entry& e = points_[slot];
          double d = ApproxDistanceKm(query, e.point);
          if (d < best_km || (best_id == -1 && d <= best_km)) {
            best_km = d;
            best_id = e.id;
            if (found_at_ring < 0) found_at_ring = ring;
          }
        }
      }
    }
    (void)any_cell_exists;
    // Safety stop: searched far beyond any stored point.
    if (ring > 2000) break;
  }
  return best_id;
}

std::vector<int64_t> GridIndex::WithinRadius(const LatLng& query,
                                             double radius_km) const {
  std::vector<int64_t> result;
  if (points_.empty() || radius_km < 0.0) return result;
  double cos_lat = std::max(0.05, std::cos(DegToRad(query.lat)));
  double lat_margin = radius_km / 111.32;
  double lng_margin = radius_km / (111.32 * cos_lat);
  int row_lo = RowOf(query.lat - lat_margin);
  int row_hi = RowOf(query.lat + lat_margin);
  int col_lo = ColOf(query.lng - lng_margin);
  int col_hi = ColOf(query.lng + lng_margin);
  for (int row = row_lo; row <= row_hi; ++row) {
    for (int col = col_lo; col <= col_hi; ++col) {
      auto it = cells_.find(CellKey(row, col));
      if (it == cells_.end()) continue;
      for (uint32_t slot : it->second) {
        const Entry& e = points_[slot];
        if (ApproxDistanceKm(query, e.point) <= radius_km) {
          result.push_back(e.id);
        }
      }
    }
  }
  return result;
}

}  // namespace stir::geo
