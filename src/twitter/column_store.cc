#include "twitter/column_store.h"

#include <cstring>
#include <fstream>

#include "common/hash.h"
#include "common/logging.h"
#include "io/atomic_file.h"
#include "io/snapshot.h"

namespace stir::twitter {

namespace {

/// Legacy v1 layout: magic + columns + FNV-1a trailer, written with a
/// plain (non-atomic) ofstream. Still readable; Save now writes v2.
constexpr char kMagic[8] = {'S', 'T', 'I', 'R', 'C', 'O', 'L', '1'};
/// v2: the same column body inside the shared snapshot container
/// (CRC32C + atomic write-temp-fsync-rename; see io/snapshot.h).
constexpr std::string_view kMagicV2 = "STIRCOL2";

/// Appends a POD vector's bytes to the serialization buffer.
template <typename T>
void PutColumn(std::string& out, const std::vector<T>& column) {
  uint64_t count = column.size();
  out.append(reinterpret_cast<const char*>(&count), sizeof(count));
  if (!column.empty()) {  // data() may be null for empty vectors
    out.append(reinterpret_cast<const char*>(column.data()),
               column.size() * sizeof(T));
  }
}

template <typename T>
bool GetColumn(const std::string& in, size_t& pos, std::vector<T>* column) {
  if (pos + sizeof(uint64_t) > in.size()) return false;
  uint64_t count;
  std::memcpy(&count, in.data() + pos, sizeof(count));
  pos += sizeof(count);
  size_t bytes = static_cast<size_t>(count) * sizeof(T);
  if (pos + bytes > in.size()) return false;
  column->resize(static_cast<size_t>(count));
  if (bytes > 0) std::memcpy(column->data(), in.data() + pos, bytes);
  pos += bytes;
  return true;
}

}  // namespace

TweetColumnStore TweetColumnStore::FromDataset(const Dataset& dataset) {
  TweetColumnStore store;
  size_t text_bytes = 0;
  for (const Tweet& tweet : dataset.tweets()) text_bytes += tweet.text.size();
  store.Reserve(dataset.tweets().size(), text_bytes);
  for (const Tweet& tweet : dataset.tweets()) store.Append(tweet);
  return store;
}

void TweetColumnStore::Reserve(size_t tweets, size_t text_bytes) {
  ids_.reserve(tweets);
  users_.reserve(tweets);
  times_.reserve(tweets);
  lats_.reserve(tweets);
  lngs_.reserve(tweets);
  gps_bitmap_.reserve((tweets + 63) / 64);
  text_offsets_.reserve(tweets + 1);
  text_arena_.reserve(text_bytes);
}

void TweetColumnStore::Append(const Tweet& tweet) {
  size_t row = ids_.size();
  ids_.push_back(tweet.id);
  users_.push_back(tweet.user);
  times_.push_back(tweet.time);
  if (tweet.gps.has_value()) {
    lats_.push_back(tweet.gps->lat);
    lngs_.push_back(tweet.gps->lng);
    ++gps_count_;
  } else {
    lats_.push_back(0.0);
    lngs_.push_back(0.0);
  }
  if (row / 64 >= gps_bitmap_.size()) gps_bitmap_.push_back(0);
  if (tweet.gps.has_value()) {
    gps_bitmap_[row / 64] |= (uint64_t{1} << (row % 64));
  }
  STIR_CHECK_LT(text_arena_.size() + tweet.text.size(),
                static_cast<size_t>(UINT32_MAX))
      << "text arena offset overflow";
  text_arena_.append(tweet.text);
  text_offsets_.push_back(static_cast<uint32_t>(text_arena_.size()));
}

bool TweetColumnStore::HasGps(size_t i) const {
  STIR_CHECK_LT(i, ids_.size());
  return (gps_bitmap_[i / 64] >> (i % 64)) & 1;
}

geo::LatLng TweetColumnStore::GpsAt(size_t i) const {
  STIR_CHECK(HasGps(i));
  return geo::LatLng{lats_[i], lngs_[i]};
}

std::string_view TweetColumnStore::TextAt(size_t i) const {
  STIR_CHECK_LT(i, ids_.size());
  uint32_t begin = text_offsets_[i];
  uint32_t end = text_offsets_[i + 1];
  return std::string_view(text_arena_).substr(begin, end - begin);
}

TweetView TweetColumnStore::Get(size_t i) const {
  STIR_CHECK_LT(i, ids_.size());
  TweetView view;
  view.id = ids_[i];
  view.user = users_[i];
  view.time = times_[i];
  if (HasGps(i)) view.gps = geo::LatLng{lats_[i], lngs_[i]};
  view.text = TextAt(i);
  return view;
}

Status TweetColumnStore::Save(const std::string& path) const {
  std::string body;
  PutColumn(body, ids_);
  PutColumn(body, users_);
  PutColumn(body, times_);
  PutColumn(body, lats_);
  PutColumn(body, lngs_);
  PutColumn(body, gps_bitmap_);
  PutColumn(body, text_offsets_);
  uint64_t text_size = text_arena_.size();
  body.append(reinterpret_cast<const char*>(&text_size), sizeof(text_size));
  body.append(text_arena_);
  return io::WriteSnapshotFile(path, kMagicV2, body);
}

StatusOr<TweetColumnStore> TweetColumnStore::Load(const std::string& path) {
  STIR_ASSIGN_OR_RETURN(std::string contents, io::ReadFileToString(path));

  std::string buffer;
  size_t pos = 0;
  if (contents.size() >= sizeof(kMagic) &&
      std::memcmp(contents.data(), kMagic, sizeof(kMagic)) == 0) {
    // Legacy v1: trailing FNV-1a checksum over magic + body.
    if (contents.size() < sizeof(kMagic) + sizeof(uint64_t)) {
      return Status::InvalidArgument("file too short: " + path);
    }
    uint64_t stored_checksum;
    std::memcpy(&stored_checksum,
                contents.data() + contents.size() - sizeof(stored_checksum),
                sizeof(stored_checksum));
    std::string_view body(contents.data(),
                          contents.size() - sizeof(uint64_t));
    if (Fnv1a64(body) != stored_checksum) {
      return Status::InvalidArgument("checksum mismatch (corrupt file): " +
                                     path);
    }
    contents.resize(contents.size() - sizeof(uint64_t));
    buffer = std::move(contents);
    pos = sizeof(kMagic);
  } else if (io::SnapshotHasMagic(contents, kMagicV2)) {
    STIR_ASSIGN_OR_RETURN(buffer, io::ReadSnapshotFile(path, kMagicV2));
  } else {
    return Status::InvalidArgument(
        "bad magic (not a STIRCOL1/STIRCOL2 file): " + path);
  }

  TweetColumnStore store;
  if (!GetColumn(buffer, pos, &store.ids_) ||
      !GetColumn(buffer, pos, &store.users_) ||
      !GetColumn(buffer, pos, &store.times_) ||
      !GetColumn(buffer, pos, &store.lats_) ||
      !GetColumn(buffer, pos, &store.lngs_) ||
      !GetColumn(buffer, pos, &store.gps_bitmap_) ||
      !GetColumn(buffer, pos, &store.text_offsets_)) {
    return Status::InvalidArgument("truncated column data: " + path);
  }
  if (pos + sizeof(uint64_t) > buffer.size()) {
    return Status::InvalidArgument("missing text arena: " + path);
  }
  uint64_t text_size;
  std::memcpy(&text_size, buffer.data() + pos, sizeof(text_size));
  pos += sizeof(text_size);
  if (pos + text_size != buffer.size()) {
    return Status::InvalidArgument("text arena size mismatch: " + path);
  }
  store.text_arena_.assign(buffer, pos, static_cast<size_t>(text_size));

  // Structural invariants.
  size_t n = store.ids_.size();
  if (store.users_.size() != n || store.times_.size() != n ||
      store.lats_.size() != n || store.lngs_.size() != n ||
      store.text_offsets_.size() != n + 1 ||
      store.gps_bitmap_.size() < (n + 63) / 64 ||
      (n > 0 && store.text_offsets_.back() != store.text_arena_.size())) {
    return Status::InvalidArgument("inconsistent column lengths: " + path);
  }
  for (size_t i = 0; i < n; ++i) {
    if (store.HasGps(i)) ++store.gps_count_;
  }
  return store;
}

int64_t TweetColumnStore::MemoryBytes() const {
  return static_cast<int64_t>(
      ids_.capacity() * sizeof(TweetId) + users_.capacity() * sizeof(UserId) +
      times_.capacity() * sizeof(SimTime) +
      lats_.capacity() * sizeof(double) + lngs_.capacity() * sizeof(double) +
      gps_bitmap_.capacity() * sizeof(uint64_t) +
      text_offsets_.capacity() * sizeof(uint32_t) + text_arena_.capacity());
}

}  // namespace stir::twitter
