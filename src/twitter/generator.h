#ifndef STIR_TWITTER_GENERATOR_H_
#define STIR_TWITTER_GENERATOR_H_

#include <cstdint>
#include <unordered_map>

#include "common/clock.h"
#include "geo/admin_db.h"
#include "twitter/crawler.h"
#include "twitter/dataset.h"
#include "twitter/mobility.h"
#include "twitter/profile_text.h"
#include "twitter/social_graph.h"
#include "twitter/tweet_text.h"

namespace stir::io {
class CorpusWriter;
class TruthSidecarWriter;
}

namespace stir::twitter {

/// Everything needed to synthesize one corpus. The two presets mirror the
/// paper's datasets (see the slide-deck table): KoreanConfig — 52.2k users
/// crawled from a seed, 11.1M tweets, sparse GPS; LadyGagaConfig — a
/// topical Search/Streaming-API corpus of globally scattered, more mobile
/// users.
struct DatasetGeneratorOptions {
  uint64_t seed = 20120401;
  int64_t num_users = 5220;

  /// Per-user lifetime tweet count ~ LogNormal(ln(median), sigma), capped
  /// (the real timeline API capped history at 3200).
  double tweets_per_user_median = 100.0;
  double tweets_per_user_sigma = 1.2;
  int64_t max_tweets_per_user = 3200;

  /// Fraction of users who ever attach GPS (smart-device geotaggers).
  /// Drives the paper's brutal funnel: 30k well-defined profiles but only
  /// ~1k users with GPS tweets.
  double geotagger_fraction = 0.035;

  ProfileTextOptions profile;
  MobilityModelOptions mobility;
  TweetTextOptions tweet_text;

  /// Sample users via a synthetic follower graph + seed BFS crawl (the
  /// Korean dataset) rather than direct enumeration (the Search-API
  /// dataset).
  bool use_social_graph = true;
  /// Graph population relative to num_users when crawling.
  double graph_oversample = 1.6;
  double mean_following = 12.0;

  /// Fraction of non-GPS tweets materialized with full records (for API
  /// and summarizer demos); the rest exist only in total_tweets counts.
  double plain_tweet_sample = 0.0005;

  SimTime start_time = 0;
  int64_t duration_days = 120;
};

/// Ground truth retained alongside a generated corpus; consumed only by
/// evaluation code, never by the analysis pipeline.
struct GroundTruth {
  std::unordered_map<UserId, MobilityProfile> mobility;
  std::unordered_map<UserId, ProfileStyle> profile_style;
};

struct GeneratedData {
  Dataset dataset;
  GroundTruth truth;
  /// Crawl accounting (zero when use_social_graph is false).
  int64_t crawl_requests = 0;
  SimTime crawl_elapsed_seconds = 0;
};

/// Accounting from a streamed generation (GenerateToCorpus): the crawl
/// numbers GeneratedData would carry, without the dataset.
struct CorpusStreamInfo {
  int64_t crawl_requests = 0;
  SimTime crawl_elapsed_seconds = 0;
};

/// Deterministic corpus synthesizer over an AdminDb.
class DatasetGenerator {
 public:
  /// `db` must outlive the generator.
  DatasetGenerator(const geo::AdminDb* db, DatasetGeneratorOptions options);

  GeneratedData Generate() const;

  /// Streams the synthesized corpus straight into a v3 arena corpus
  /// writer without ever holding a Dataset or GroundTruth in memory —
  /// generator memory stays O(users) while the writer spills tweet
  /// columns to disk, so corpora far beyond RAM are producible. Users
  /// and their tweets are emitted in exactly Generate()'s order and the
  /// shared synthesis core draws from the same seeded streams, so the
  /// written corpus is field-identical to
  /// CorpusWriter::WriteDataset(Generate().dataset). The caller owns
  /// `writer` and calls Finish() on it afterwards.
  ///
  /// `truth` (optional) receives one name-keyed TruthRecord per user as
  /// the walk passes it — the ground truth the in-memory path keeps in
  /// GroundTruth, persisted out of core so `stir_cli infer --corpus` can
  /// score predictions without regenerating. The caller owns it and
  /// calls Finish() afterwards.
  StatusOr<CorpusStreamInfo> GenerateToCorpus(
      io::CorpusWriter* writer, io::TruthSidecarWriter* truth = nullptr) const;

  /// The Korean dataset preset at `scale` (1.0 = the paper's 52,200
  /// crawled users / ~11M tweets; default 0.1 runs in seconds).
  static DatasetGeneratorOptions KoreanConfig(double scale = 0.1);
  /// The "Lady Gaga" topical dataset preset (use with
  /// geo::AdminDb::WorldCities()).
  static DatasetGeneratorOptions LadyGagaConfig(double scale = 0.1);

  const DatasetGeneratorOptions& options() const { return options_; }

 private:
  SimTime SampleTimestamp(Rng& rng) const;

  /// The shared synthesis core: samples the user population (graph crawl
  /// or enumeration) and walks every user's timeline, handing each User
  /// and Tweet to the sinks in a single deterministic order. `on_truth`
  /// observes each user's ground truth as the walk passes it (the
  /// in-memory path fills GroundTruth; the streaming path writes the
  /// sidecar or drops it). A sink returning a non-OK status aborts the
  /// walk.
  template <typename UserSink, typename TweetSink, typename TruthSink>
  Status Synthesize(UserSink&& on_user, TweetSink&& on_tweet,
                    TruthSink&& on_truth, CorpusStreamInfo* info) const;

  const geo::AdminDb* db_;
  DatasetGeneratorOptions options_;
  MobilityModel mobility_model_;
  ProfileTextGenerator profile_generator_;
  TweetTextGenerator tweet_generator_;
  DiscreteDistribution hour_dist_;
};

}  // namespace stir::twitter

#endif  // STIR_TWITTER_GENERATOR_H_
