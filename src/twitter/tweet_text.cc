#include "twitter/tweet_text.h"

#include "common/logging.h"

namespace stir::twitter {

namespace {

/// Everyday vocabulary, rough frequency order (Zipf-sampled).
constexpr const char* kVocabulary[] = {
    "today",   "good",    "time",     "lunch",   "work",    "home",
    "coffee",  "morning", "night",    "friend",  "weather", "rain",
    "weekend", "movie",   "dinner",   "bus",     "subway",  "meeting",
    "happy",   "tired",   "study",    "game",    "music",   "photo",
    "walk",    "river",   "park",     "traffic", "news",    "phone",
    "book",    "sleep",   "early",    "late",    "busy",    "fun",
    "food",    "spicy",   "sweet",    "cold",    "hot",     "snow",
    "exam",    "class",   "office",   "project", "deadline", "vacation",
    "beach",   "mountain", "shopping", "market",  "street",  "cafe",
};
constexpr size_t kVocabularySize =
    sizeof(kVocabulary) / sizeof(kVocabulary[0]);

}  // namespace

TweetTextGenerator::TweetTextGenerator(const geo::AdminDb* db,
                                       TweetTextOptions options)
    : db_(db),
      options_(std::move(options)),
      vocab_dist_(static_cast<int64_t>(kVocabularySize), 1.05) {
  STIR_CHECK(db != nullptr);
}

std::string TweetTextGenerator::Generate(
    geo::RegionId region, Rng& rng,
    const std::vector<std::string>& forced_terms) const {
  std::string text;
  int words = static_cast<int>(rng.UniformInt(4, 12));
  for (int i = 0; i < words; ++i) {
    if (!text.empty()) text.push_back(' ');
    text += kVocabulary[static_cast<size_t>(vocab_dist_.Sample(rng)) - 1];
  }
  if (!options_.topic_keyword.empty()) {
    text += " " + options_.topic_keyword;
  }
  for (const auto& [tag, weight] : options_.hashtags) {
    if (rng.Bernoulli(weight)) text += " #" + tag;
  }
  if (rng.Bernoulli(options_.mention_place_rate)) {
    text += " at " + db_->region(region).county;
  }
  for (const std::string& term : forced_terms) {
    text += " " + term;
  }
  return text;
}

}  // namespace stir::twitter
