#ifndef STIR_TWITTER_API_H_
#define STIR_TWITTER_API_H_

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/random.h"
#include "common/retry.h"
#include "common/status.h"
#include "twitter/dataset.h"

namespace stir::twitter {

/// Query for the Search-API simulation (how the "Lady Gaga" corpus was
/// assembled).
struct SearchQuery {
  /// Case-insensitive substring required in the tweet text; empty matches
  /// everything.
  std::string keyword;
  /// Result cap per call (the 2011 API paged at 100).
  int64_t max_results = 100;
  /// Half-open time window [since, until); until <= 0 means unbounded.
  SimTime since = 0;
  SimTime until = 0;
};

/// Behavioural knobs for the Search-API simulation.
struct SearchApiOptions {
  /// Maximum requests before the endpoint returns ResourceExhausted;
  /// < 0 disables accounting.
  int64_t quota = -1;
  /// Optional fault hook (not owned; must outlive the API; null or
  /// all-knobs-off disables). Consulted per request attempt, before the
  /// quota is charged — an injected failure never spends quota.
  common::FaultInjector* fault_injector = nullptr;
  /// Retry schedule for injected transient failures (simulated backoff).
  common::RetryPolicyOptions retry;
  /// Optional circuit breaker (not owned; null disables).
  common::CircuitBreaker* circuit_breaker = nullptr;
};

/// Search endpoint over a Dataset's materialized tweets: recency-ordered,
/// capped, quota-accounted.
///
/// Thread-safe: request/fault counters are atomics and the quota is spent
/// through a CAS loop, so concurrent callers can share one instance and
/// never overspend it.
class SearchApi {
 public:
  /// `dataset` must outlive the API. `quota` < 0 disables accounting.
  explicit SearchApi(const Dataset* dataset, int64_t quota = -1);
  SearchApi(const Dataset* dataset, SearchApiOptions options);

  /// Returns pointers into the dataset, newest first. ResourceExhausted
  /// once the quota is spent; Unavailable for an injected (and
  /// retried-past-budget) service fault.
  StatusOr<std::vector<const Tweet*>> Search(const SearchQuery& query);

  /// Request accounting (atomic snapshots; exact once concurrent callers
  /// have returned). Only attempts that reach the endpoint count.
  int64_t requests_made() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Retry attempts performed after an injected transient failure.
  int64_t num_retries() const {
    return num_retries_.load(std::memory_order_relaxed);
  }
  /// Requests that failed with an injected fault after exhausting retries.
  int64_t num_faulted() const {
    return num_faulted_.load(std::memory_order_relaxed);
  }
  /// Total simulated backoff charged by the retry loop, in ms.
  int64_t simulated_backoff_ms() const {
    return simulated_backoff_ms_.load(std::memory_order_relaxed);
  }

 private:
  /// The fault-free request path (quota + scan).
  StatusOr<std::vector<const Tweet*>> SearchDirect(const SearchQuery& query);

  const Dataset* dataset_;
  SearchApiOptions options_;
  common::RetryPolicy retry_policy_;
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> quota_used_{0};
  std::atomic<int64_t> num_retries_{0};
  std::atomic<int64_t> num_faulted_{0};
  std::atomic<int64_t> simulated_backoff_ms_{0};
  /// Tweet indices sorted by time descending, built once.
  std::vector<size_t> by_time_desc_;
};

/// Streaming endpoint: replays materialized tweets in time order through
/// a callback, with keyword filtering ("filter" track) and random
/// sampling ("sample"/spritzer, the public ~1% stream).
///
/// With a fault injector, each delivery is keyed on its position in the
/// time-ordered replay; a faulted delivery is silently dropped — the
/// sampling artifact Pavalanathan & Eisenstein warn about — and tallied
/// in `deliveries_dropped()`.
class StreamingApi {
 public:
  using Callback = std::function<void(const Tweet&)>;
  using IndexedCallback = std::function<void(size_t dataset_index,
                                             const Tweet&)>;

  /// `dataset` (and `fault_injector`, when given) must outlive the API.
  explicit StreamingApi(const Dataset* dataset,
                        common::FaultInjector* fault_injector = nullptr);

  /// Delivers every tweet containing `keyword` (case-insensitive);
  /// returns the number delivered.
  int64_t Filter(const std::string& keyword, const Callback& callback) const;

  /// Replays every materialized tweet in time order, delivering the
  /// tweet together with its *dataset* index. The index is the stable,
  /// replay-order-independent key the incremental study engine feeds the
  /// fault scheduler, so a streamed run charges the exact fault/retry
  /// schedule of the batch study over the same dataset. Injected stream
  /// faults still drop deliveries (keyed on replay position, like
  /// Filter/Sample).
  int64_t Replay(const IndexedCallback& callback) const;

  /// Delivers each tweet with probability `rate`; returns count.
  int64_t Sample(double rate, Rng& rng, const Callback& callback) const;

  /// Deliveries suppressed by injected faults, across all streams.
  int64_t deliveries_dropped() const {
    return deliveries_dropped_.load(std::memory_order_relaxed);
  }

 private:
  /// True when stream position `index` should deliver (counts drops).
  bool ShouldDeliver(int64_t index) const;

  const Dataset* dataset_;
  common::FaultInjector* fault_injector_;
  mutable std::atomic<int64_t> deliveries_dropped_{0};
  /// Tweet indices sorted by time ascending.
  std::vector<size_t> by_time_asc_;
};

}  // namespace stir::twitter

#endif  // STIR_TWITTER_API_H_
