#ifndef STIR_TWITTER_API_H_
#define STIR_TWITTER_API_H_

#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "twitter/dataset.h"

namespace stir::twitter {

/// Query for the Search-API simulation (how the "Lady Gaga" corpus was
/// assembled).
struct SearchQuery {
  /// Case-insensitive substring required in the tweet text; empty matches
  /// everything.
  std::string keyword;
  /// Result cap per call (the 2011 API paged at 100).
  int64_t max_results = 100;
  /// Half-open time window [since, until); until <= 0 means unbounded.
  SimTime since = 0;
  SimTime until = 0;
};

/// Search endpoint over a Dataset's materialized tweets: recency-ordered,
/// capped, quota-accounted.
class SearchApi {
 public:
  /// `dataset` must outlive the API. `quota` < 0 disables accounting.
  explicit SearchApi(const Dataset* dataset, int64_t quota = -1);

  /// Returns pointers into the dataset, newest first. ResourceExhausted
  /// once the quota is spent.
  StatusOr<std::vector<const Tweet*>> Search(const SearchQuery& query);

  int64_t requests_made() const { return requests_; }

 private:
  const Dataset* dataset_;
  int64_t quota_;
  int64_t requests_ = 0;
  /// Tweet indices sorted by time descending, built once.
  std::vector<size_t> by_time_desc_;
};

/// Streaming endpoint: replays materialized tweets in time order through
/// a callback, with keyword filtering ("filter" track) and random
/// sampling ("sample"/spritzer, the public ~1% stream).
class StreamingApi {
 public:
  using Callback = std::function<void(const Tweet&)>;

  explicit StreamingApi(const Dataset* dataset);

  /// Delivers every tweet containing `keyword` (case-insensitive);
  /// returns the number delivered.
  int64_t Filter(const std::string& keyword, const Callback& callback) const;

  /// Delivers each tweet with probability `rate`; returns count.
  int64_t Sample(double rate, Rng& rng, const Callback& callback) const;

 private:
  const Dataset* dataset_;
  /// Tweet indices sorted by time ascending.
  std::vector<size_t> by_time_asc_;
};

}  // namespace stir::twitter

#endif  // STIR_TWITTER_API_H_
