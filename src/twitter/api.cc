#include "twitter/api.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"

namespace stir::twitter {

SearchApi::SearchApi(const Dataset* dataset, int64_t quota)
    : dataset_(dataset), quota_(quota) {
  STIR_CHECK(dataset != nullptr);
  by_time_desc_.resize(dataset_->tweets().size());
  std::iota(by_time_desc_.begin(), by_time_desc_.end(), size_t{0});
  std::sort(by_time_desc_.begin(), by_time_desc_.end(),
            [&](size_t a, size_t b) {
              const Tweet& ta = dataset_->tweets()[a];
              const Tweet& tb = dataset_->tweets()[b];
              if (ta.time != tb.time) return ta.time > tb.time;
              return ta.id > tb.id;
            });
}

StatusOr<std::vector<const Tweet*>> SearchApi::Search(
    const SearchQuery& query) {
  if (quota_ >= 0 && requests_ >= quota_) {
    return Status::ResourceExhausted("search API quota exhausted");
  }
  ++requests_;
  if (query.max_results <= 0) {
    return Status::InvalidArgument("max_results must be positive");
  }
  std::vector<const Tweet*> results;
  for (size_t index : by_time_desc_) {
    const Tweet& tweet = dataset_->tweets()[index];
    if (tweet.time < query.since) continue;
    if (query.until > 0 && tweet.time >= query.until) continue;
    if (!query.keyword.empty() &&
        !ContainsIgnoreCase(tweet.text, query.keyword)) {
      continue;
    }
    results.push_back(&tweet);
    if (static_cast<int64_t>(results.size()) >= query.max_results) break;
  }
  return results;
}

StreamingApi::StreamingApi(const Dataset* dataset) : dataset_(dataset) {
  STIR_CHECK(dataset != nullptr);
  by_time_asc_.resize(dataset_->tweets().size());
  std::iota(by_time_asc_.begin(), by_time_asc_.end(), size_t{0});
  std::sort(by_time_asc_.begin(), by_time_asc_.end(), [&](size_t a, size_t b) {
    const Tweet& ta = dataset_->tweets()[a];
    const Tweet& tb = dataset_->tweets()[b];
    if (ta.time != tb.time) return ta.time < tb.time;
    return ta.id < tb.id;
  });
}

int64_t StreamingApi::Filter(const std::string& keyword,
                             const Callback& callback) const {
  int64_t delivered = 0;
  for (size_t index : by_time_asc_) {
    const Tweet& tweet = dataset_->tweets()[index];
    if (!keyword.empty() && !ContainsIgnoreCase(tweet.text, keyword)) {
      continue;
    }
    callback(tweet);
    ++delivered;
  }
  return delivered;
}

int64_t StreamingApi::Sample(double rate, Rng& rng,
                             const Callback& callback) const {
  int64_t delivered = 0;
  for (size_t index : by_time_asc_) {
    if (!rng.Bernoulli(rate)) continue;
    callback(dataset_->tweets()[index]);
    ++delivered;
  }
  return delivered;
}

}  // namespace stir::twitter
