#include "twitter/api.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"

namespace stir::twitter {

SearchApi::SearchApi(const Dataset* dataset, int64_t quota)
    : SearchApi(dataset, [quota] {
        SearchApiOptions options;
        options.quota = quota;
        return options;
      }()) {}

SearchApi::SearchApi(const Dataset* dataset, SearchApiOptions options)
    : dataset_(dataset), options_(options), retry_policy_(options.retry) {
  STIR_CHECK(dataset != nullptr);
  by_time_desc_.resize(dataset_->tweets().size());
  std::iota(by_time_desc_.begin(), by_time_desc_.end(), size_t{0});
  std::sort(by_time_desc_.begin(), by_time_desc_.end(),
            [&](size_t a, size_t b) {
              const Tweet& ta = dataset_->tweets()[a];
              const Tweet& tb = dataset_->tweets()[b];
              if (ta.time != tb.time) return ta.time > tb.time;
              return ta.id > tb.id;
            });
}

StatusOr<std::vector<const Tweet*>> SearchApi::Search(
    const SearchQuery& query) {
  common::FaultInjector* fault = options_.fault_injector;
  if (fault == nullptr || !fault->enabled()) return SearchDirect(query);

  int64_t fault_index = fault->NextIndex();
  int attempts = 0;
  for (;;) {
    if (options_.circuit_breaker != nullptr &&
        !options_.circuit_breaker->AllowRequest()) {
      return Status::Unavailable("search API circuit breaker open");
    }
    common::FaultDecision decision = fault->Decide(fault_index, attempts);
    ++attempts;
    if (decision.status.ok()) {
      if (options_.circuit_breaker != nullptr) {
        options_.circuit_breaker->RecordSuccess();
      }
      return SearchDirect(query);
    }
    if (options_.circuit_breaker != nullptr) {
      options_.circuit_breaker->RecordFailure();
    }
    if (!retry_policy_.ShouldRetry(decision.status, attempts)) {
      num_faulted_.fetch_add(1, std::memory_order_relaxed);
      return decision.status;
    }
    num_retries_.fetch_add(1, std::memory_order_relaxed);
    simulated_backoff_ms_.fetch_add(
        retry_policy_.BackoffMs(attempts, static_cast<uint64_t>(fault_index)),
        std::memory_order_relaxed);
  }
}

StatusOr<std::vector<const Tweet*>> SearchApi::SearchDirect(
    const SearchQuery& query) {
  if (options_.quota >= 0) {
    // CAS so concurrent requests can never overspend the quota.
    int64_t used = quota_used_.load(std::memory_order_relaxed);
    do {
      if (used >= options_.quota) {
        return Status::ResourceExhausted("search API quota exhausted");
      }
    } while (!quota_used_.compare_exchange_weak(used, used + 1,
                                                std::memory_order_relaxed));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (query.max_results <= 0) {
    return Status::InvalidArgument("max_results must be positive");
  }
  std::vector<const Tweet*> results;
  for (size_t index : by_time_desc_) {
    const Tweet& tweet = dataset_->tweets()[index];
    if (tweet.time < query.since) continue;
    if (query.until > 0 && tweet.time >= query.until) continue;
    if (!query.keyword.empty() &&
        !ContainsIgnoreCase(tweet.text, query.keyword)) {
      continue;
    }
    results.push_back(&tweet);
    if (static_cast<int64_t>(results.size()) >= query.max_results) break;
  }
  return results;
}

StreamingApi::StreamingApi(const Dataset* dataset,
                           common::FaultInjector* fault_injector)
    : dataset_(dataset), fault_injector_(fault_injector) {
  STIR_CHECK(dataset != nullptr);
  by_time_asc_.resize(dataset_->tweets().size());
  std::iota(by_time_asc_.begin(), by_time_asc_.end(), size_t{0});
  std::sort(by_time_asc_.begin(), by_time_asc_.end(), [&](size_t a, size_t b) {
    const Tweet& ta = dataset_->tweets()[a];
    const Tweet& tb = dataset_->tweets()[b];
    if (ta.time != tb.time) return ta.time < tb.time;
    return ta.id < tb.id;
  });
}

bool StreamingApi::ShouldDeliver(int64_t index) const {
  if (fault_injector_ == nullptr || !fault_injector_->enabled()) return true;
  if (!fault_injector_->Decide(index).injected()) return true;
  deliveries_dropped_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

int64_t StreamingApi::Filter(const std::string& keyword,
                             const Callback& callback) const {
  int64_t delivered = 0;
  int64_t position = 0;
  for (size_t index : by_time_asc_) {
    const Tweet& tweet = dataset_->tweets()[index];
    if (!keyword.empty() && !ContainsIgnoreCase(tweet.text, keyword)) {
      continue;
    }
    if (!ShouldDeliver(position++)) continue;
    callback(tweet);
    ++delivered;
  }
  return delivered;
}

int64_t StreamingApi::Replay(const IndexedCallback& callback) const {
  int64_t delivered = 0;
  int64_t position = 0;
  for (size_t index : by_time_asc_) {
    if (!ShouldDeliver(position++)) continue;
    callback(index, dataset_->tweets()[index]);
    ++delivered;
  }
  return delivered;
}

int64_t StreamingApi::Sample(double rate, Rng& rng,
                             const Callback& callback) const {
  int64_t delivered = 0;
  int64_t position = 0;
  for (size_t index : by_time_asc_) {
    if (!rng.Bernoulli(rate)) continue;
    if (!ShouldDeliver(position++)) continue;
    callback(dataset_->tweets()[index]);
    ++delivered;
  }
  return delivered;
}

}  // namespace stir::twitter
