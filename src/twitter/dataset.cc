#include "twitter/dataset.h"

#include "common/csv.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace stir::twitter {

void Dataset::AddUser(User user) {
  STIR_CHECK(user_index_.find(user.id) == user_index_.end())
      << "duplicate user id " << user.id;
  user_index_[user.id] = users_.size();
  users_.push_back(std::move(user));
}

void Dataset::AddTweet(Tweet tweet) {
  STIR_CHECK(user_index_.find(tweet.user) != user_index_.end())
      << "tweet from unknown user " << tweet.user;
  if (tweet.gps.has_value()) ++gps_tweet_count_;
  tweets_by_user_[tweet.user].push_back(tweets_.size());
  tweets_.push_back(std::move(tweet));
}

const User* Dataset::FindUser(UserId id) const {
  auto it = user_index_.find(id);
  return it == user_index_.end() ? nullptr : &users_[it->second];
}

const std::vector<size_t>& Dataset::TweetIndicesOf(UserId id) const {
  static const std::vector<size_t>& empty = *new std::vector<size_t>();
  auto it = tweets_by_user_.find(id);
  return it == tweets_by_user_.end() ? empty : it->second;
}

int64_t Dataset::total_tweet_count() const {
  int64_t total = 0;
  for (const User& user : users_) total += user.total_tweets;
  return total;
}

Status Dataset::SaveTsv(const std::string& users_path,
                        const std::string& tweets_path) const {
  CsvOptions tsv;
  tsv.delimiter = '\t';
  std::vector<std::vector<std::string>> user_rows;
  user_rows.reserve(users_.size() + 1);
  user_rows.push_back({"id", "handle", "profile_location", "total_tweets"});
  for (const User& user : users_) {
    user_rows.push_back({StrFormat("%lld", static_cast<long long>(user.id)),
                         user.handle, user.profile_location,
                         StrFormat("%lld",
                                   static_cast<long long>(user.total_tweets))});
  }
  STIR_RETURN_IF_ERROR(WriteCsvFile(users_path, user_rows, tsv));

  std::vector<std::vector<std::string>> tweet_rows;
  tweet_rows.reserve(tweets_.size() + 1);
  tweet_rows.push_back({"id", "user", "time", "lat", "lng", "text"});
  for (const Tweet& tweet : tweets_) {
    std::string lat, lng;
    if (tweet.gps.has_value()) {
      lat = StrFormat("%.6f", tweet.gps->lat);
      lng = StrFormat("%.6f", tweet.gps->lng);
    }
    tweet_rows.push_back({StrFormat("%lld", static_cast<long long>(tweet.id)),
                          StrFormat("%lld", static_cast<long long>(tweet.user)),
                          StrFormat("%lld", static_cast<long long>(tweet.time)),
                          lat, lng, tweet.text});
  }
  return WriteCsvFile(tweets_path, tweet_rows, tsv);
}

StatusOr<Dataset> Dataset::LoadTsv(const std::string& users_path,
                                   const std::string& tweets_path) {
  return LoadTsv(users_path, tweets_path, TsvLoadOptions{});
}

StatusOr<Dataset> Dataset::LoadUsersTsv(const std::string& users_path,
                                        const TsvLoadOptions& options,
                                        TsvLoadStats* stats) {
  CsvOptions tsv;
  tsv.delimiter = '\t';
  Dataset dataset;
  TsvLoadStats local_stats;
  TsvLoadStats& counts = stats != nullptr ? *stats : local_stats;
  counts = TsvLoadStats{};

  STIR_ASSIGN_OR_RETURN(auto user_rows, ReadCsvFile(users_path, tsv));
  for (size_t i = 1; i < user_rows.size(); ++i) {  // skip header
    const auto& row = user_rows[i];
    Status bad;
    User user;
    if (row.size() != 4) {
      bad = Status::InvalidArgument(
          StrFormat("users row %zu: expected 4 fields, got %zu", i,
                    row.size()));
    } else {
      auto id = ParseInt64(row[0]);
      auto total = ParseInt64(row[3]);
      if (!id || !total) {
        bad = Status::InvalidArgument(StrFormat("users row %zu: bad ints", i));
      } else {
        user.id = *id;
        user.handle = row[1];
        user.profile_location = row[2];
        user.total_tweets = *total;
        // Lenient mode pre-checks duplicates so they quarantine instead
        // of tripping AddUser's fatal check (which strict mode keeps).
        if (!options.strict && dataset.FindUser(*id) != nullptr) {
          bad = Status::InvalidArgument(
              StrFormat("users row %zu: duplicate user id", i));
        }
      }
    }
    if (!bad.ok()) {
      if (options.strict) return bad;
      ++counts.quarantined_user_rows;
      continue;
    }
    dataset.AddUser(std::move(user));
  }
  return dataset;
}

StatusOr<Dataset> Dataset::LoadTsv(const std::string& users_path,
                                   const std::string& tweets_path,
                                   const TsvLoadOptions& options,
                                   TsvLoadStats* stats) {
  CsvOptions tsv;
  tsv.delimiter = '\t';
  TsvLoadStats local_stats;
  TsvLoadStats& counts = stats != nullptr ? *stats : local_stats;
  STIR_ASSIGN_OR_RETURN(Dataset dataset,
                        LoadUsersTsv(users_path, options, &counts));

  STIR_ASSIGN_OR_RETURN(auto tweet_rows, ReadCsvFile(tweets_path, tsv));
  for (size_t i = 1; i < tweet_rows.size(); ++i) {
    const auto& row = tweet_rows[i];
    Status bad;
    Tweet tweet;
    if (row.size() != 6) {
      bad = Status::InvalidArgument(
          StrFormat("tweets row %zu: expected 6 fields, got %zu", i,
                    row.size()));
    } else {
      auto id = ParseInt64(row[0]);
      auto user = ParseInt64(row[1]);
      auto time = ParseInt64(row[2]);
      if (!id || !user || !time) {
        bad =
            Status::InvalidArgument(StrFormat("tweets row %zu: bad ints", i));
      } else {
        tweet.id = *id;
        tweet.user = *user;
        tweet.time = *time;
        if (!row[3].empty() || !row[4].empty()) {
          auto lat = ParseDouble(row[3]);
          auto lng = ParseDouble(row[4]);
          if (!lat || !lng) {
            bad = Status::InvalidArgument(
                StrFormat("tweets row %zu: bad coordinates", i));
          } else {
            tweet.gps = geo::LatLng{*lat, *lng};
          }
        }
        tweet.text = row[5];
        if (bad.ok() && dataset.FindUser(tweet.user) == nullptr) {
          bad = Status::InvalidArgument(
              StrFormat("tweets row %zu: unknown user", i));
        }
      }
    }
    if (!bad.ok()) {
      if (options.strict) return bad;
      ++counts.quarantined_tweet_rows;
      continue;
    }
    dataset.AddTweet(std::move(tweet));
  }
  return dataset;
}

}  // namespace stir::twitter
