#include "twitter/social_graph.h"

#include <algorithm>

#include "common/logging.h"

namespace stir::twitter {

SocialGraph SocialGraph::Generate(const SocialGraphOptions& options,
                                  Rng& rng) {
  STIR_CHECK_GE(options.num_users, 2);
  SocialGraph graph;
  int64_t n = options.num_users;
  graph.following_.resize(static_cast<size_t>(n));
  graph.followers_.resize(static_cast<size_t>(n));

  // Repeated-target list for preferential attachment: drawing uniformly
  // from it selects proportionally to (in-degree + 1). Nodes enter the
  // pool when they join the graph (growth process), so early nodes
  // accumulate the heavy tail.
  std::vector<UserId> pa_pool;
  pa_pool.reserve(static_cast<size_t>(
      n + static_cast<int64_t>(options.mean_following * static_cast<double>(n))));
  pa_pool.push_back(0);

  auto has_edge = [&](UserId from, UserId to) {
    const auto& adj = graph.following_[static_cast<size_t>(from)];
    return std::find(adj.begin(), adj.end(), to) != adj.end();
  };
  auto add_edge = [&](UserId from, UserId to) {
    if (from == to || has_edge(from, to)) return false;
    graph.following_[static_cast<size_t>(from)].push_back(to);
    graph.followers_[static_cast<size_t>(to)].push_back(from);
    pa_pool.push_back(to);
    ++graph.num_edges_;
    return true;
  };

  for (UserId u = 1; u < n; ++u) {
    int64_t degree =
        1 + rng.Poisson(std::max(0.0, options.mean_following - 1.0));
    for (int64_t k = 0; k < degree; ++k) {
      UserId target;
      int attempts = 0;
      do {
        if (rng.Bernoulli(options.pa_mix)) {
          // Preferential draw over nodes that joined before u.
          target = pa_pool[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(pa_pool.size()) - 1))];
        } else {
          target = rng.UniformInt(0, u - 1);
        }
      } while ((target == u || has_edge(u, target)) && ++attempts < 16);
      if (!add_edge(u, target)) continue;
      if (rng.Bernoulli(options.reciprocity)) add_edge(target, u);
    }
    pa_pool.push_back(u);
  }

  for (auto& adj : graph.following_) std::sort(adj.begin(), adj.end());
  for (auto& adj : graph.followers_) std::sort(adj.begin(), adj.end());
  return graph;
}

SocialGraph SocialGraph::FromEdges(
    int64_t num_users, const std::vector<std::pair<UserId, UserId>>& edges) {
  STIR_CHECK_GE(num_users, 1);
  SocialGraph graph;
  graph.following_.resize(static_cast<size_t>(num_users));
  graph.followers_.resize(static_cast<size_t>(num_users));
  for (const auto& [from, to] : edges) {
    STIR_CHECK_GE(from, 0);
    STIR_CHECK_LT(from, num_users);
    STIR_CHECK_GE(to, 0);
    STIR_CHECK_LT(to, num_users);
    if (from == to) continue;
    auto& adj = graph.following_[static_cast<size_t>(from)];
    if (std::find(adj.begin(), adj.end(), to) != adj.end()) continue;
    adj.push_back(to);
    graph.followers_[static_cast<size_t>(to)].push_back(from);
    ++graph.num_edges_;
  }
  for (auto& adj : graph.following_) std::sort(adj.begin(), adj.end());
  for (auto& adj : graph.followers_) std::sort(adj.begin(), adj.end());
  return graph;
}

const std::vector<UserId>& SocialGraph::Following(UserId user) const {
  STIR_CHECK_GE(user, 0);
  STIR_CHECK_LT(user, num_users());
  return following_[static_cast<size_t>(user)];
}

const std::vector<UserId>& SocialGraph::Followers(UserId user) const {
  STIR_CHECK_GE(user, 0);
  STIR_CHECK_LT(user, num_users());
  return followers_[static_cast<size_t>(user)];
}

UserId SocialGraph::MostFollowedUser() const {
  UserId best = 0;
  size_t best_count = followers_.empty() ? 0 : followers_[0].size();
  for (UserId u = 1; u < num_users(); ++u) {
    size_t count = followers_[static_cast<size_t>(u)].size();
    if (count > best_count) {
      best_count = count;
      best = u;
    }
  }
  return best;
}

}  // namespace stir::twitter
