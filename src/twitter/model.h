#ifndef STIR_TWITTER_MODEL_H_
#define STIR_TWITTER_MODEL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "geo/latlng.h"

namespace stir::twitter {

using UserId = int64_t;
using TweetId = int64_t;
inline constexpr UserId kInvalidUser = -1;

/// A microblog account as the crawler sees it: public profile fields only.
/// Ground truth about the user's real movements lives in GroundTruth
/// (twitter/mobility.h) and is never consumed by the analysis pipeline.
struct User {
  UserId id = kInvalidUser;
  std::string handle;
  /// Free-text location from the profile (max 30 characters on the real
  /// service; generators respect that bound).
  std::string profile_location;
  /// Total tweets the account has posted (the 11.1M-tweet corpus is
  /// counted here; only GPS-tagged tweets need full records).
  int64_t total_tweets = 0;
};

/// A single post. `gps` is present only for posts from location-enabled
/// mobile clients — the paper's second spatial attribute.
struct Tweet {
  TweetId id = 0;
  UserId user = kInvalidUser;
  SimTime time = 0;
  std::optional<geo::LatLng> gps;
  std::string text;
};

/// The profile-location character limit ("the only limitation is the
/// maximum length", §III.A; 30 chars at the time of the study).
inline constexpr size_t kMaxProfileLocationLength = 30;

}  // namespace stir::twitter

#endif  // STIR_TWITTER_MODEL_H_
