#ifndef STIR_TWITTER_DATASET_H_
#define STIR_TWITTER_DATASET_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "twitter/model.h"

namespace stir::twitter {

/// In-memory tweet corpus: user table + tweet table with a per-user tweet
/// index. Mirrors the paper's collected data: all users carry their total
/// tweet count, but full tweet records are materialized primarily for
/// GPS-tagged posts (plus an optional sample of plain posts) — at the
/// original 11M-tweet scale that is what fits and what the study needs.
class Dataset {
 public:
  Dataset() = default;

  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  /// Adds a user; ids must be unique (checked).
  void AddUser(User user);
  /// Adds a tweet; its user must already exist (checked).
  void AddTweet(Tweet tweet);

  const std::vector<User>& users() const { return users_; }
  const std::vector<Tweet>& tweets() const { return tweets_; }

  /// Nullptr when absent.
  const User* FindUser(UserId id) const;

  /// Indices into tweets() for one user (empty for unknown users).
  const std::vector<size_t>& TweetIndicesOf(UserId id) const;

  /// Sum of per-user total tweet counts (the full corpus size, which can
  /// exceed tweets().size() when plain tweets are not materialized).
  int64_t total_tweet_count() const;

  /// Materialized tweets that carry GPS.
  int64_t gps_tweet_count() const { return gps_tweet_count_; }

  /// TSV persistence: a users file (id, handle, location, total_tweets)
  /// and a tweets file (id, user, time, lat, lng, text; lat/lng blank for
  /// plain tweets).
  Status SaveTsv(const std::string& users_path,
                 const std::string& tweets_path) const;
  static StatusOr<Dataset> LoadTsv(const std::string& users_path,
                                   const std::string& tweets_path);

  /// Malformed-row handling for LoadTsv.
  struct TsvLoadOptions {
    /// Strict (the default, and the 2-argument overload's behaviour):
    /// the first malformed row fails the whole load with
    /// InvalidArgument. Lenient: malformed rows — wrong field count,
    /// unparsable ints/coordinates, duplicate user ids, tweets from
    /// unknown users — are quarantined (skipped and counted) and the
    /// valid remainder loads.
    bool strict = true;
  };
  struct TsvLoadStats {
    int64_t quarantined_user_rows = 0;
    int64_t quarantined_tweet_rows = 0;
    int64_t quarantined() const {
      return quarantined_user_rows + quarantined_tweet_rows;
    }
  };
  static StatusOr<Dataset> LoadTsv(const std::string& users_path,
                                   const std::string& tweets_path,
                                   const TsvLoadOptions& options,
                                   TsvLoadStats* stats = nullptr);

  /// Loads only the users file (same format and strict/lenient rules as
  /// LoadTsv) into a dataset with no tweets. io::CorpusReader uses this
  /// to pair a users TSV with a binary tweet column snapshot.
  static StatusOr<Dataset> LoadUsersTsv(const std::string& users_path,
                                        const TsvLoadOptions& options,
                                        TsvLoadStats* stats = nullptr);

 private:
  std::vector<User> users_;
  std::vector<Tweet> tweets_;
  std::unordered_map<UserId, size_t> user_index_;
  std::unordered_map<UserId, std::vector<size_t>> tweets_by_user_;
  int64_t gps_tweet_count_ = 0;
};

}  // namespace stir::twitter

#endif  // STIR_TWITTER_DATASET_H_
