#ifndef STIR_TWITTER_COLUMN_STORE_H_
#define STIR_TWITTER_COLUMN_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "twitter/dataset.h"
#include "twitter/model.h"

namespace stir::twitter {

/// Read-mostly view of one stored tweet; `text` points into the store's
/// arena and is valid for the store's lifetime.
struct TweetView {
  TweetId id = 0;
  UserId user = kInvalidUser;
  SimTime time = 0;
  std::optional<geo::LatLng> gps;
  std::string_view text;
};

/// Columnar (structure-of-arrays) tweet storage: ids/users/times in
/// parallel arrays, text in a single append-only arena addressed by
/// offsets, GPS as parallel lat/lng arrays with a validity bitmap.
///
/// Compared to std::vector<Tweet> this cuts per-tweet memory roughly in
/// half (no per-string heap allocations, no optional padding) and makes
/// full-corpus scans cache-friendly — the representation that lets the
/// paper-scale 11M-tweet corpus be materialized and scanned on a laptop.
/// Append-only; not thread-safe for concurrent writes.
class TweetColumnStore {
 public:
  TweetColumnStore() = default;

  TweetColumnStore(const TweetColumnStore&) = delete;
  TweetColumnStore& operator=(const TweetColumnStore&) = delete;
  TweetColumnStore(TweetColumnStore&&) = default;
  TweetColumnStore& operator=(TweetColumnStore&&) = default;

  /// Copies all materialized tweets of a row-oriented Dataset.
  static TweetColumnStore FromDataset(const Dataset& dataset);

  void Append(const Tweet& tweet);
  void Reserve(size_t tweets, size_t text_bytes);

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  /// Row access (bounds-checked).
  TweetView Get(size_t i) const;

  /// Column access for tight scan loops.
  const std::vector<TweetId>& ids() const { return ids_; }
  const std::vector<UserId>& users() const { return users_; }
  const std::vector<SimTime>& times() const { return times_; }
  bool HasGps(size_t i) const;
  /// Only valid when HasGps(i).
  geo::LatLng GpsAt(size_t i) const;
  std::string_view TextAt(size_t i) const;

  int64_t gps_count() const { return gps_count_; }

  /// Approximate resident bytes of all columns (for the storage bench).
  int64_t MemoryBytes() const;

  /// Invokes f(size_t index, const geo::LatLng&) for every GPS row.
  template <typename F>
  void ForEachGps(F&& f) const {
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (HasGps(i)) f(i, geo::LatLng{lats_[i], lngs_[i]});
    }
  }

  /// Binary persistence. Save writes the shared snapshot container
  /// (magic "STIRCOL2", CRC32C, atomic replace — io/snapshot.h) holding
  /// the little-endian column body. Load also accepts the legacy
  /// "STIRCOL1" layout (FNV-1a trailer, pre-io::snapshot). Both paths
  /// reject bad magic, truncation, and checksum mismatches.
  Status Save(const std::string& path) const;
  static StatusOr<TweetColumnStore> Load(const std::string& path);

 private:
  std::vector<TweetId> ids_;
  std::vector<UserId> users_;
  std::vector<SimTime> times_;
  std::vector<double> lats_;
  std::vector<double> lngs_;
  /// One bit per row: GPS present.
  std::vector<uint64_t> gps_bitmap_;
  /// Byte offsets into text_arena_; offsets_[i]..offsets_[i+1] is row i.
  std::vector<uint32_t> text_offsets_{0};
  std::string text_arena_;
  int64_t gps_count_ = 0;
};

}  // namespace stir::twitter

#endif  // STIR_TWITTER_COLUMN_STORE_H_
