#include "twitter/profile_text.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "twitter/model.h"

namespace stir::twitter {

namespace {

constexpr const char* kVaguePool[] = {
    "Earth",
    "my home",
    "everywhere",
    "somewhere",
    "in your heart",
    "darangland :)",
    "wonderland",
    "the internet",
    "404 not found",
    "Mars",
    "under the night sky",
    "behind you",
    "nowhere land",
    "cloud nine",
};

constexpr const char* kForeignPool[] = {
    "Gold Coast Australia",
    "Tokyo Japan",
    "New York USA",
    "Paris France",
    "London UK",
};

/// Truncates at the service's field limit, backing up to the last word
/// boundary so the result looks like something a UI would store.
std::string ClampToFieldLimit(std::string text) {
  if (text.size() <= kMaxProfileLocationLength) return text;
  text.resize(kMaxProfileLocationLength);
  size_t space = text.rfind(' ');
  if (space != std::string::npos && space > 0) text.resize(space);
  return text;
}

}  // namespace

const char* ProfileStyleToString(ProfileStyle style) {
  switch (style) {
    case ProfileStyle::kStateCounty:
      return "state-county";
    case ProfileStyle::kCountyState:
      return "county-state";
    case ProfileStyle::kCountyOnly:
      return "county-only";
    case ProfileStyle::kWithCountry:
      return "with-country";
    case ProfileStyle::kGpsInProfile:
      return "gps-in-profile";
    case ProfileStyle::kTypo:
      return "typo";
    case ProfileStyle::kStateOnly:
      return "state-only";
    case ProfileStyle::kCountryOnly:
      return "country-only";
    case ProfileStyle::kVague:
      return "vague";
    case ProfileStyle::kEmpty:
      return "empty";
    case ProfileStyle::kMultiLocation:
      return "multi-location";
  }
  return "unknown";
}

ProfileTextGenerator::ProfileTextGenerator(const geo::AdminDb* db,
                                           ProfileTextOptions options)
    : db_(db), options_(options) {
  STIR_CHECK(db != nullptr);
}

std::string ProfileTextGenerator::Render(ProfileStyle style,
                                         geo::RegionId claimed,
                                         Rng& rng) const {
  const geo::Region& region = db_->region(claimed);
  // Korean-script rendering when available and drawn.
  const char* hangul_state = geo::AdminDb::HangulStateName(region.state);
  const char* hangul_county =
      geo::AdminDb::HangulCountyName(region.state, region.county);
  bool use_hangul = hangul_state != nullptr && hangul_county != nullptr &&
                    rng.Bernoulli(options_.hangul_fraction);
  switch (style) {
    case ProfileStyle::kStateCounty:
      if (use_hangul) {
        return std::string(hangul_state) + " " + hangul_county;
      }
      return region.state + " " + region.county;
    case ProfileStyle::kCountyState:
      return region.county + ", " + region.state;
    case ProfileStyle::kCountyOnly:
      if (use_hangul) return hangul_county;
      return region.county;
    case ProfileStyle::kWithCountry: {
      // Korean users of the era wrote ", Korea"; others the full country.
      std::string country =
          region.country == "South Korea" ? "Korea" : region.country;
      return region.state + " " + region.county + ", " + country;
    }
    case ProfileStyle::kGpsInProfile: {
      geo::LatLng point = db_->SamplePointIn(claimed, rng);
      return StrFormat("%.6f,%.6f", point.lat, point.lng);
    }
    case ProfileStyle::kTypo: {
      // Drop one interior character of the county name.
      std::string county = region.county;
      if (county.size() > 3) {
        size_t pos = static_cast<size_t>(
            rng.UniformInt(1, static_cast<int64_t>(county.size()) - 2));
        county.erase(pos, 1);
      }
      return region.state + " " + county;
    }
    case ProfileStyle::kStateOnly:
      return region.state;
    case ProfileStyle::kCountryOnly:
      if (region.country == "South Korea" && rng.Bernoulli(0.5)) {
        return "Korea";
      }
      return region.country;
    case ProfileStyle::kVague: {
      size_t n = sizeof(kVaguePool) / sizeof(kVaguePool[0]);
      return kVaguePool[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1))];
    }
    case ProfileStyle::kEmpty:
      return "";
    case ProfileStyle::kMultiLocation: {
      // The paper's user #6: "Gold Coast Australia" plus a Korean district.
      size_t n = sizeof(kForeignPool) / sizeof(kForeignPool[0]);
      const char* foreign = kForeignPool[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1))];
      return std::string(foreign) + " / " + region.county;
    }
  }
  return "";
}

GeneratedProfileText ProfileTextGenerator::Generate(geo::RegionId claimed,
                                                    Rng& rng) const {
  double total = 0.0;
  for (double w : options_.weights) total += w;
  double u = rng.Uniform() * total;
  int style_index = kNumProfileStyles - 1;
  for (int i = 0; i < kNumProfileStyles; ++i) {
    u -= options_.weights[i];
    if (u <= 0.0) {
      style_index = i;
      break;
    }
  }
  GeneratedProfileText out;
  out.style = static_cast<ProfileStyle>(style_index);
  out.text = ClampToFieldLimit(Render(out.style, claimed, rng));
  return out;
}

}  // namespace stir::twitter
