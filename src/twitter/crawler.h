#ifndef STIR_TWITTER_CRAWLER_H_
#define STIR_TWITTER_CRAWLER_H_

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "twitter/social_graph.h"

namespace stir::twitter {

/// Rate-limit and paging behaviour of the follower-listing endpoint
/// ("due to the changed policy of Twitter, we collect the users with [a]
/// crawler that explores the every followers of the given seed user",
/// §III.B — the 2011 API v1 regime).
struct CrawlerOptions {
  /// Users returned per follower-list request.
  int64_t page_size = 100;
  /// Requests allowed per window.
  int64_t requests_per_window = 150;
  /// Window length in seconds (15 minutes, as the real API).
  SimTime window_seconds = 900;
  /// Stop once this many distinct users have been discovered (<=0: crawl
  /// the whole reachable component).
  int64_t target_users = -1;
};

/// Result of a crawl: discovery order plus cost accounting.
struct CrawlResult {
  std::vector<UserId> users;     ///< In BFS discovery order; seed first.
  int64_t requests_issued = 0;   ///< Follower-list API calls made.
  SimTime elapsed_seconds = 0;   ///< Simulated wall time incl. rate waits.
};

/// Breadth-first follower crawler over a SocialGraph, reproducing the
/// paper's seed-expansion sampling (which biases toward well-connected
/// accounts — an acknowledged property of the original dataset).
class Crawler {
 public:
  /// `graph` must outlive the crawler.
  Crawler(const SocialGraph* graph, CrawlerOptions options);

  /// Runs a crawl from `seed`. Fails for out-of-range seeds.
  StatusOr<CrawlResult> Crawl(UserId seed) const;

 private:
  const SocialGraph* graph_;
  CrawlerOptions options_;
};

}  // namespace stir::twitter

#endif  // STIR_TWITTER_CRAWLER_H_
