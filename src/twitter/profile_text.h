#ifndef STIR_TWITTER_PROFILE_TEXT_H_
#define STIR_TWITTER_PROFILE_TEXT_H_

#include <string>

#include "common/random.h"
#include "geo/admin_db.h"

namespace stir::twitter {

/// Surface forms of the free-text profile location (paper Fig. 3). The
/// first group is parseable to a unique district; the rest reproduce the
/// noise the paper's refinement step removes.
enum class ProfileStyle : int {
  kStateCounty = 0,   ///< "Seoul Yangcheon-gu"
  kCountyState = 1,   ///< "Yangcheon-gu, Seoul"
  kCountyOnly = 2,    ///< "Uiwang-si" (ambiguous for metro gu names!)
  kWithCountry = 3,   ///< "Seoul Mapo-gu, Korea"
  kGpsInProfile = 4,  ///< "37.517000,126.866600"
  kTypo = 5,          ///< One character dropped from the county name.
  kStateOnly = 6,     ///< "Seoul" — insufficient.
  kCountryOnly = 7,   ///< "Korea" — insufficient.
  kVague = 8,         ///< "Earth", "my home", "darangland :)".
  kEmpty = 9,         ///< Blank field.
  kMultiLocation = 10 ///< "Gold Coast Australia / <district>".
};

const char* ProfileStyleToString(ProfileStyle style);
inline constexpr int kNumProfileStyles = 11;

/// Probabilities of each style. Defaults are calibrated to the paper's
/// refinement funnel: ~57% of crawled users end up with a well-defined
/// profile location (52.2k -> ~30k in §III.B).
struct ProfileTextOptions {
  /// Fraction of kStateCounty / kCountyOnly renderings written in
  /// Korean script when a hangul spelling is known (paper Fig. 3 shows
  /// profiles "provided freely by users in different languages").
  double hangul_fraction = 0.15;

  double weights[kNumProfileStyles] = {
      /*kStateCounty=*/0.325,
      /*kCountyState=*/0.065,
      /*kCountyOnly=*/0.145,
      /*kWithCountry=*/0.035,
      /*kGpsInProfile=*/0.012,
      /*kTypo=*/0.028,
      /*kStateOnly=*/0.13,
      /*kCountryOnly=*/0.06,
      /*kVague=*/0.125,
      /*kEmpty=*/0.045,
      /*kMultiLocation=*/0.03,
  };
};

/// Output of one generation: the text plus the style actually used
/// (ground truth for parser evaluation).
struct GeneratedProfileText {
  std::string text;
  ProfileStyle style = ProfileStyle::kEmpty;
};

/// Renders a claimed district into a noisy free-text profile location.
/// Honors the service's field length limit (kMaxProfileLocationLength):
/// overlong renderings are truncated at a word boundary, which — as on
/// the real service — occasionally destroys an otherwise good location.
class ProfileTextGenerator {
 public:
  /// `db` must outlive the generator.
  ProfileTextGenerator(const geo::AdminDb* db, ProfileTextOptions options);

  GeneratedProfileText Generate(geo::RegionId claimed, Rng& rng) const;

 private:
  std::string Render(ProfileStyle style, geo::RegionId claimed,
                     Rng& rng) const;

  const geo::AdminDb* db_;
  ProfileTextOptions options_;
};

}  // namespace stir::twitter

#endif  // STIR_TWITTER_PROFILE_TEXT_H_
