#ifndef STIR_TWITTER_SOCIAL_GRAPH_H_
#define STIR_TWITTER_SOCIAL_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/random.h"
#include "twitter/model.h"

namespace stir::twitter {

/// Parameters for synthetic follower-graph generation.
struct SocialGraphOptions {
  int64_t num_users = 10000;
  /// Mean out-degree (accounts a user follows); per-user degree is
  /// 1 + Poisson(mean_following - 1).
  double mean_following = 12.0;
  /// Probability that a follow edge is reciprocated.
  double reciprocity = 0.35;
  /// Preferential-attachment strength: with probability `pa_mix` a target
  /// is chosen proportionally to in-degree + 1, else uniformly. Produces
  /// the heavy-tailed follower distribution real Twitter shows.
  double pa_mix = 0.8;
};

/// Directed follower graph: edge u -> v means "u follows v" (v has
/// follower u). Generated once; immutable afterwards.
class SocialGraph {
 public:
  /// Generates via a growing preferential-attachment process.
  static SocialGraph Generate(const SocialGraphOptions& options, Rng& rng);

  /// Builds a graph from explicit follow edges (u follows v). Self-loops
  /// and duplicates are dropped. Useful for tests and for loading real
  /// edge lists.
  static SocialGraph FromEdges(
      int64_t num_users,
      const std::vector<std::pair<UserId, UserId>>& edges);

  int64_t num_users() const { return static_cast<int64_t>(following_.size()); }
  int64_t num_edges() const { return num_edges_; }

  /// Accounts `user` follows, ascending ids.
  const std::vector<UserId>& Following(UserId user) const;
  /// Accounts following `user`, ascending ids.
  const std::vector<UserId>& Followers(UserId user) const;

  /// The user with the most followers (the natural crawl seed: the paper
  /// seeded its crawler at a well-connected account).
  UserId MostFollowedUser() const;

 private:
  SocialGraph() = default;

  std::vector<std::vector<UserId>> following_;
  std::vector<std::vector<UserId>> followers_;
  int64_t num_edges_ = 0;
};

}  // namespace stir::twitter

#endif  // STIR_TWITTER_SOCIAL_GRAPH_H_
