#include "twitter/crawler.h"

#include <deque>
#include <vector>

#include "common/logging.h"

namespace stir::twitter {

Crawler::Crawler(const SocialGraph* graph, CrawlerOptions options)
    : graph_(graph), options_(options) {
  STIR_CHECK(graph != nullptr);
  STIR_CHECK_GT(options_.page_size, 0);
  STIR_CHECK_GT(options_.requests_per_window, 0);
  STIR_CHECK_GT(options_.window_seconds, 0);
}

StatusOr<CrawlResult> Crawler::Crawl(UserId seed) const {
  if (seed < 0 || seed >= graph_->num_users()) {
    return Status::InvalidArgument("crawl seed out of range");
  }
  CrawlResult result;
  std::vector<bool> seen(static_cast<size_t>(graph_->num_users()), false);
  std::deque<UserId> frontier;
  SimClock clock;
  int64_t window_requests = 0;

  auto issue_request = [&]() {
    if (window_requests == options_.requests_per_window) {
      clock.Advance(options_.window_seconds);  // sleep out the window
      window_requests = 0;
    }
    ++window_requests;
    ++result.requests_issued;
    clock.Advance(1);  // nominal request latency
  };

  auto discover = [&](UserId user) {
    if (seen[static_cast<size_t>(user)]) return;
    seen[static_cast<size_t>(user)] = true;
    result.users.push_back(user);
    frontier.push_back(user);
  };

  discover(seed);
  bool target_reached = options_.target_users > 0 &&
                        static_cast<int64_t>(result.users.size()) >=
                            options_.target_users;
  while (!frontier.empty() && !target_reached) {
    UserId current = frontier.front();
    frontier.pop_front();
    const std::vector<UserId>& followers = graph_->Followers(current);
    // Paged listing: one request per page_size followers (minimum one to
    // learn the list is empty).
    int64_t pages =
        std::max<int64_t>(1, (static_cast<int64_t>(followers.size()) +
                              options_.page_size - 1) /
                                 options_.page_size);
    for (int64_t page = 0; page < pages && !target_reached; ++page) {
      issue_request();
      size_t begin = static_cast<size_t>(page * options_.page_size);
      size_t end = std::min(followers.size(),
                            begin + static_cast<size_t>(options_.page_size));
      for (size_t i = begin; i < end; ++i) {
        discover(followers[i]);
        if (options_.target_users > 0 &&
            static_cast<int64_t>(result.users.size()) >=
                options_.target_users) {
          target_reached = true;
          break;
        }
      }
    }
  }
  result.elapsed_seconds = clock.Now();
  return result;
}

}  // namespace stir::twitter
