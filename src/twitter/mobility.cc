#include "twitter/mobility.h"

#include <algorithm>
#include <cmath>

#include "common/clock.h"
#include "common/logging.h"

namespace stir::twitter {

const char* ArchetypeToString(Archetype archetype) {
  switch (archetype) {
    case Archetype::kHomebody:
      return "homebody";
    case Archetype::kCommuter:
      return "commuter";
    case Archetype::kSocialite:
      return "socialite";
    case Archetype::kRelocated:
      return "relocated";
    case Archetype::kGeotagSelective:
      return "geotag-selective";
  }
  return "unknown";
}

MobilityModel::MobilityModel(const geo::AdminDb* db,
                             MobilityModelOptions options)
    : db_(db), options_(options) {
  STIR_CHECK(db != nullptr);
  // Population prior: radius^1.2 — larger districts hold more residents,
  // damped because metro gu are small but dense.
  home_weights_.reserve(db_->size());
  for (const geo::Region& region : db_->regions()) {
    home_weights_.push_back(std::pow(region.radius_km, 1.2));
  }
}

geo::RegionId MobilityModel::SampleHomeRegion(Rng& rng) const {
  // Linear scan over cumulative weights; called once per user.
  double total = 0.0;
  for (double w : home_weights_) total += w;
  double u = rng.Uniform() * total;
  for (size_t i = 0; i < home_weights_.size(); ++i) {
    u -= home_weights_[i];
    if (u <= 0.0) return static_cast<geo::RegionId>(i);
  }
  return static_cast<geo::RegionId>(home_weights_.size() - 1);
}

std::vector<geo::RegionId> MobilityModel::SampleNearbySpots(
    geo::RegionId center, int count, geo::RegionId exclude, Rng& rng) const {
  const geo::LatLng origin = db_->region(center).centroid;
  std::vector<geo::RegionId> candidates;
  std::vector<double> weights;
  for (const geo::Region& region : db_->regions()) {
    if (region.id == center || region.id == exclude) continue;
    double d = geo::ApproxDistanceKm(origin, region.centroid);
    if (d > options_.activity_radius_km) continue;
    candidates.push_back(region.id);
    weights.push_back(std::exp(-d / options_.distance_decay_km));
  }
  std::vector<geo::RegionId> picked;
  for (int k = 0; k < count && !candidates.empty(); ++k) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) break;
    double u = rng.Uniform() * total;
    size_t chosen = candidates.size() - 1;
    for (size_t i = 0; i < candidates.size(); ++i) {
      u -= weights[i];
      if (u <= 0.0) {
        chosen = i;
        break;
      }
    }
    picked.push_back(candidates[chosen]);
    candidates.erase(candidates.begin() + static_cast<ptrdiff_t>(chosen));
    weights.erase(weights.begin() + static_cast<ptrdiff_t>(chosen));
  }
  return picked;
}

geo::RegionId MobilityModel::SampleFarRegion(geo::RegionId from,
                                             double min_km, Rng& rng) const {
  const geo::LatLng origin = db_->region(from).centroid;
  for (int attempt = 0; attempt < 128; ++attempt) {
    auto candidate = static_cast<geo::RegionId>(
        rng.UniformInt(0, static_cast<int64_t>(db_->size()) - 1));
    if (candidate == from) continue;
    if (geo::ApproxDistanceKm(origin, db_->region(candidate).centroid) >=
        min_km) {
      return candidate;
    }
  }
  // Dense small gazetteers may lack a far region; fall back to any other.
  auto fallback = static_cast<geo::RegionId>(
      rng.UniformInt(0, static_cast<int64_t>(db_->size()) - 1));
  return fallback == from
             ? static_cast<geo::RegionId>((fallback + 1) %
                                          static_cast<int64_t>(db_->size()))
             : fallback;
}

namespace {

/// Appends `regions` as spots sharing `budget` with 1/(i+1)^2 decay,
/// shares normalized so they sum to exactly `budget` (keeping the
/// preceding spots' relative order intact).
void AppendDecayingSpots(const std::vector<geo::RegionId>& regions,
                         double budget,
                         std::vector<ActivitySpot>& spots) {
  if (regions.empty() || budget <= 0.0) return;
  double z = 0.0;
  for (size_t i = 0; i < regions.size(); ++i) {
    z += 1.0 / static_cast<double>((i + 1) * (i + 1));
  }
  for (size_t i = 0; i < regions.size(); ++i) {
    double share = 1.0 / static_cast<double>((i + 1) * (i + 1)) / z;
    spots.push_back({regions[i], budget * share});
  }
}

/// Normalizes weights to sum 1 and sorts spots descending by weight.
void FinishSpots(std::vector<ActivitySpot>& spots) {
  double total = 0.0;
  for (const ActivitySpot& s : spots) total += s.weight;
  STIR_CHECK_GT(total, 0.0);
  for (ActivitySpot& s : spots) s.weight /= total;
  std::sort(spots.begin(), spots.end(),
            [](const ActivitySpot& a, const ActivitySpot& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.region < b.region;
            });
}

}  // namespace

MobilityProfile MobilityModel::GenerateProfile(UserId user, bool is_geotagger,
                                               Rng& rng) const {
  MobilityProfile profile;
  profile.user = user;
  profile.home = SampleHomeRegion(rng);
  profile.claimed = profile.home;

  // Archetype draw.
  double mix[kNumArchetypes] = {options_.frac_homebody, options_.frac_commuter,
                                options_.frac_socialite,
                                options_.frac_relocated,
                                options_.frac_selective};
  double total = 0.0;
  for (double m : mix) total += m;
  double u = rng.Uniform() * total;
  int archetype_index = kNumArchetypes - 1;
  for (int i = 0; i < kNumArchetypes; ++i) {
    u -= mix[i];
    if (u <= 0.0) {
      archetype_index = i;
      break;
    }
  }
  profile.archetype = static_cast<Archetype>(archetype_index);

  if (is_geotagger) {
    profile.geotag_rate =
        rng.Uniform(options_.geotag_rate_min, options_.geotag_rate_max);
  } else {
    profile.geotag_rate = 0.0;
    // Selectivity is unobservable without GPS; keep the archetype for
    // ground-truth bookkeeping anyway.
  }

  switch (profile.archetype) {
    case Archetype::kHomebody: {
      // Home-dominant: home 55-80%, 2-5 nearby spots for the rest.
      int extras = static_cast<int>(rng.UniformInt(2, 5));
      std::vector<geo::RegionId> nearby =
          SampleNearbySpots(profile.home, extras, geo::kInvalidRegion, rng);
      double home_weight = rng.Uniform(0.55, 0.80);
      profile.spots.push_back({profile.home, home_weight});
      // Largest extra share is (1-0.80)=0.2 .. (1-0.55)=0.45 < home.
      AppendDecayingSpots(nearby, 1.0 - home_weight, profile.spots);
      break;
    }
    case Archetype::kCommuter: {
      // Work district dominates; home second; 1-3 lesser spots.
      std::vector<geo::RegionId> work =
          SampleNearbySpots(profile.home, 1, geo::kInvalidRegion, rng);
      geo::RegionId work_region = work.empty()
                                      ? SampleFarRegion(profile.home, 0, rng)
                                      : work.front();
      double work_weight = rng.Uniform(0.40, 0.55);
      double home_weight = rng.Uniform(0.22, 0.35);
      profile.spots.push_back({work_region, work_weight});
      profile.spots.push_back({profile.home, home_weight});
      int extras = static_cast<int>(rng.UniformInt(1, 3));
      std::vector<geo::RegionId> nearby =
          SampleNearbySpots(profile.home, extras, work_region, rng);
      // Cap the extras' budget below home so the work > home > extras
      // ordering is structural, not sampling luck.
      double extras_budget =
          std::min(1.0 - work_weight - home_weight, home_weight * 0.8);
      AppendDecayingSpots(nearby, extras_budget, profile.spots);
      break;
    }
    case Archetype::kSocialite: {
      // Many spots, flat-ish Zipf; home buried at a random rank.
      int count = static_cast<int>(rng.UniformInt(5, 9));
      std::vector<geo::RegionId> nearby =
          SampleNearbySpots(profile.home, count - 1, geo::kInvalidRegion, rng);
      std::vector<geo::RegionId> all = {profile.home};
      all.insert(all.end(), nearby.begin(), nearby.end());
      rng.Shuffle(all);
      for (size_t i = 0; i < all.size(); ++i) {
        profile.spots.push_back(
            {all[i], std::pow(static_cast<double>(i + 1), -0.7)});
      }
      break;
    }
    case Archetype::kRelocated: {
      // Claims the old hometown, lives elsewhere with low mobility
      // ("they may stick in a specific place ... their mobility range may
      // not be wide", §IV): 2-3 spots around the actual home.
      profile.claimed =
          SampleFarRegion(profile.home, options_.relocation_min_km, rng);
      double home_weight = rng.Uniform(0.60, 0.85);
      profile.spots.push_back({profile.home, home_weight});
      int extras = static_cast<int>(rng.UniformInt(1, 3));
      std::vector<geo::RegionId> nearby =
          SampleNearbySpots(profile.home, extras, profile.claimed, rng);
      AppendDecayingSpots(nearby, 1.0 - home_weight, profile.spots);
      break;
    }
    case Archetype::kGeotagSelective: {
      // Home-centric life, but GPS only ever attached away from home; the
      // observable districts are the 2-3 away spots.
      profile.geotag_away_only = true;
      double home_weight = rng.Uniform(0.55, 0.80);
      profile.spots.push_back({profile.home, home_weight});
      int extras = static_cast<int>(rng.UniformInt(2, 3));
      std::vector<geo::RegionId> nearby =
          SampleNearbySpots(profile.home, extras, geo::kInvalidRegion, rng);
      AppendDecayingSpots(nearby, 1.0 - home_weight, profile.spots);
      break;
    }
  }

  FinishSpots(profile.spots);
  return profile;
}

geo::RegionId MobilityModel::SampleTweetRegion(const MobilityProfile& profile,
                                               Rng& rng) const {
  STIR_CHECK(!profile.spots.empty());
  double u = rng.Uniform();
  for (const ActivitySpot& spot : profile.spots) {
    u -= spot.weight;
    if (u <= 0.0) return spot.region;
  }
  return profile.spots.back().region;
}

geo::RegionId MobilityModel::SampleTweetRegion(const MobilityProfile& profile,
                                               int hour, Rng& rng) const {
  // The bias gate comes first so a bias-free model never draws the extra
  // Bernoulli: the random sequence — and therefore every corpus generated
  // before this overload existed — is bit-identical.
  if (options_.night_home_bias > 0.0 && IsNightHour(hour) &&
      rng.Bernoulli(options_.night_home_bias)) {
    return profile.home;
  }
  return SampleTweetRegion(profile, rng);
}

bool MobilityModel::SampleGeotag(const MobilityProfile& profile,
                                 geo::RegionId region, Rng& rng) const {
  if (profile.geotag_rate <= 0.0) return false;
  if (profile.geotag_away_only && region == profile.home) return false;
  return rng.Bernoulli(profile.geotag_rate);
}

}  // namespace stir::twitter
