#ifndef STIR_TWITTER_MOBILITY_H_
#define STIR_TWITTER_MOBILITY_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "geo/admin_db.h"
#include "twitter/model.h"

namespace stir::twitter {

/// Ground-truth behavioural archetypes. The mix of archetypes is the
/// generative knob behind the paper's findings: Top-1/Top-2 users are
/// home-centric, the None group (~30%) is users whose profile district
/// never appears in their geotagged tweets ("they may provide their
/// hometown location for the profile, but they usually stay outside",
/// §IV).
enum class Archetype : int {
  /// Most activity in the home district; a few nearby spots.
  kHomebody = 0,
  /// Workplace district dominates; home is the 2nd/3rd spot.
  kCommuter = 1,
  /// Many spots with a flat weight profile; home ranks low.
  kSocialite = 2,
  /// Profile claims the old hometown; actual activity is elsewhere
  /// entirely. Lands in the None group.
  kRelocated = 3,
  /// Lives at the claimed district but only geotags when away from home
  /// (privacy habit). Also lands in None, with few observed districts.
  kGeotagSelective = 4,
};

const char* ArchetypeToString(Archetype archetype);
inline constexpr int kNumArchetypes = 5;

/// One recurring tweeting district with its visit share.
struct ActivitySpot {
  geo::RegionId region = geo::kInvalidRegion;
  double weight = 0.0;
};

/// Ground truth for one user. Never read by the analysis pipeline — only
/// by generators and by evaluation benches that compare recovered groups
/// against the truth.
struct MobilityProfile {
  UserId user = kInvalidUser;
  Archetype archetype = Archetype::kHomebody;
  /// Actual residence district.
  geo::RegionId home = geo::kInvalidRegion;
  /// District the user would write into the profile (== home except for
  /// kRelocated, where it is the old hometown).
  geo::RegionId claimed = geo::kInvalidRegion;
  /// Tweeting districts, weights sum to 1, descending.
  std::vector<ActivitySpot> spots;
  /// Probability a tweet carries GPS; 0 for non-geotaggers.
  double geotag_rate = 0.0;
  /// kGeotagSelective behaviour: suppress GPS in the home district.
  bool geotag_away_only = false;
};

/// Archetype mix and spot-geometry parameters.
struct MobilityModelOptions {
  /// Archetype probabilities for geotagging users (must sum to ~1).
  /// Calibrated so the Top-k group shares match the paper's Fig. 7
  /// (Top-1+Top-2 ~ 50%, None ~ 30%).
  double frac_homebody = 0.44;
  double frac_commuter = 0.12;
  double frac_socialite = 0.22;
  double frac_relocated = 0.15;
  double frac_selective = 0.07;

  /// Geotag rate range for geotagging users. Calibrated so the Korean
  /// preset yields ~25k GPS tweets out of ~11M (the paper's ratio).
  double geotag_rate_min = 0.04;
  double geotag_rate_max = 0.14;

  /// Radius within which everyday activity spots are drawn, and the
  /// exponential decay scale of their attractiveness.
  double activity_radius_km = 70.0;
  double distance_decay_km = 22.0;

  /// Minimum distance of a kRelocated user's claimed old hometown from
  /// the actual home.
  double relocation_min_km = 60.0;

  /// Probability that a tweet sampled during the shared night window
  /// (stir::IsNightHour) is redirected to the home district regardless of
  /// the spot weights — the diurnal signal home-inference strategies
  /// exploit ("Your Actions Tell Where You Are", PAPERS.md). 0 — the
  /// default — disables the redirect entirely: the hour-aware
  /// SampleTweetRegion overload then draws exactly the random sequence of
  /// the hour-blind one, so every previously generated corpus stays
  /// byte-identical. Enable via `stir_cli generate --night-home-bias`.
  double night_home_bias = 0.0;
};

/// Generates ground-truth mobility profiles over an AdminDb and samples
/// tweet districts from them.
class MobilityModel {
 public:
  /// `db` must outlive the model.
  MobilityModel(const geo::AdminDb* db, MobilityModelOptions options);

  /// Draws a full profile. `is_geotagger` selects whether the user ever
  /// attaches GPS (non-geotaggers never enter the paper's final sample).
  MobilityProfile GenerateProfile(UserId user, bool is_geotagger,
                                  Rng& rng) const;

  /// Samples the district of one tweet according to the spot weights.
  geo::RegionId SampleTweetRegion(const MobilityProfile& profile,
                                  Rng& rng) const;

  /// Hour-aware overload: with night_home_bias > 0 and `hour` inside the
  /// night window, the tweet is redirected home with that probability
  /// (one extra Bernoulli draw); otherwise it defers to the hour-blind
  /// sampler above, drawing the identical random sequence.
  geo::RegionId SampleTweetRegion(const MobilityProfile& profile, int hour,
                                  Rng& rng) const;

  /// Decides whether a tweet posted from `region` carries GPS.
  bool SampleGeotag(const MobilityProfile& profile, geo::RegionId region,
                    Rng& rng) const;

  const geo::AdminDb& db() const { return *db_; }
  const MobilityModelOptions& options() const { return options_; }

 private:
  /// Home-district population prior (larger-radius regions attract more
  /// residents; metro gu are dense, so area is damped by an exponent).
  geo::RegionId SampleHomeRegion(Rng& rng) const;
  /// Draws `count` distinct spots near `center` (excluding `exclude`),
  /// distance-decayed.
  std::vector<geo::RegionId> SampleNearbySpots(geo::RegionId center,
                                               int count,
                                               geo::RegionId exclude,
                                               Rng& rng) const;
  geo::RegionId SampleFarRegion(geo::RegionId from, double min_km,
                                Rng& rng) const;

  const geo::AdminDb* db_;
  MobilityModelOptions options_;
  std::vector<double> home_weights_;
};

}  // namespace stir::twitter

#endif  // STIR_TWITTER_MOBILITY_H_
