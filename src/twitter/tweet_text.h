#ifndef STIR_TWITTER_TWEET_TEXT_H_
#define STIR_TWITTER_TWEET_TEXT_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "geo/admin_db.h"

namespace stir::twitter {

/// Knobs for synthetic tweet bodies.
struct TweetTextOptions {
  /// Probability that the tweet mentions the district it was posted from
  /// (the paper observed tweets whose text names the GPS place, Fig. 4).
  double mention_place_rate = 0.12;
  /// Keyword injected into every tweet (topical corpora like the
  /// "Lady Gaga" Search-API dataset); empty for none.
  std::string topic_keyword;
  /// Extra probability-weighted hashtag pool (term, weight).
  std::vector<std::pair<std::string, double>> hashtags;
};

/// Template-based tweet body generator. Produces short, tokenizable text
/// with a Zipf-weighted vocabulary, optional place mentions, and optional
/// topical keywords — enough signal for the TF-IDF (Twitris) and keyword
/// (Toretter) substrates to operate on.
class TweetTextGenerator {
 public:
  /// `db` must outlive the generator (used for place mentions).
  TweetTextGenerator(const geo::AdminDb* db, TweetTextOptions options);

  /// Generates a body for a tweet posted from `region`. Extra keywords
  /// (e.g. "earthquake") are appended by event simulators via
  /// `forced_terms`.
  std::string Generate(geo::RegionId region, Rng& rng,
                       const std::vector<std::string>& forced_terms = {}) const;

 private:
  const geo::AdminDb* db_;
  TweetTextOptions options_;
  ZipfDistribution vocab_dist_;
};

}  // namespace stir::twitter

#endif  // STIR_TWITTER_TWEET_TEXT_H_
