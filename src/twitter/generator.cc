#include "twitter/generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "io/corpus.h"
#include "io/truth_sidecar.h"

namespace stir::twitter {

namespace {

/// Relative tweet volume by hour of day: quiet overnight, commute and
/// lunch bumps, evening peak (the diurnal pattern of the Korean corpus).
const std::vector<double>& HourWeights() {
  static const std::vector<double>& weights = *new std::vector<double>{
      0.35, 0.20, 0.12, 0.08, 0.06, 0.08,  // 00-05
      0.18, 0.45, 0.80, 0.75, 0.65, 0.70,  // 06-11
      0.95, 0.85, 0.70, 0.68, 0.72, 0.85,  // 12-17
      1.00, 1.05, 1.10, 1.15, 1.00, 0.65,  // 18-23
  };
  return weights;
}

}  // namespace

DatasetGenerator::DatasetGenerator(const geo::AdminDb* db,
                                   DatasetGeneratorOptions options)
    : db_(db),
      options_(std::move(options)),
      mobility_model_(db, options_.mobility),
      profile_generator_(db, options_.profile),
      tweet_generator_(db, options_.tweet_text),
      hour_dist_(HourWeights()) {
  STIR_CHECK(db != nullptr);
  STIR_CHECK_GE(options_.num_users, 1);
  STIR_CHECK_GT(options_.duration_days, 0);
}

SimTime DatasetGenerator::SampleTimestamp(Rng& rng) const {
  int64_t day = rng.UniformInt(0, options_.duration_days - 1);
  int64_t hour = static_cast<int64_t>(hour_dist_.Sample(rng));
  int64_t second_of_hour = rng.UniformInt(0, kSecondsPerHour - 1);
  return options_.start_time + day * kSecondsPerDay + hour * kSecondsPerHour +
         second_of_hour;
}

template <typename UserSink, typename TweetSink, typename TruthSink>
Status DatasetGenerator::Synthesize(UserSink&& on_user, TweetSink&& on_tweet,
                                    TruthSink&& on_truth,
                                    CorpusStreamInfo* info) const {
  Rng master(options_.seed);

  // --- User sample -----------------------------------------------------
  // Either crawl a synthetic follower graph from its best-connected seed
  // (Korean dataset methodology) or enumerate directly (Search API).
  std::vector<UserId> user_ids;
  if (options_.use_social_graph) {
    SocialGraphOptions graph_options;
    graph_options.num_users = std::max<int64_t>(
        options_.num_users + 1,
        static_cast<int64_t>(static_cast<double>(options_.num_users) *
                             options_.graph_oversample));
    graph_options.mean_following = options_.mean_following;
    Rng graph_rng = master.Fork(0x6772617068ULL);  // "graph"
    SocialGraph graph = SocialGraph::Generate(graph_options, graph_rng);

    CrawlerOptions crawl_options;
    crawl_options.target_users = options_.num_users;
    Crawler crawler(&graph, crawl_options);
    auto crawl = crawler.Crawl(graph.MostFollowedUser());
    STIR_CHECK(crawl.ok()) << crawl.status().ToString();
    user_ids = crawl->users;
    info->crawl_requests = crawl->requests_issued;
    info->crawl_elapsed_seconds = crawl->elapsed_seconds;
    // A sparse graph component can run out before the target; top up with
    // unvisited ids (ascending, same as the historical linear scan, but
    // via a visited bitmap — O(graph) instead of O(graph * crawled)) so
    // the corpus size is deterministic.
    if (static_cast<int64_t>(user_ids.size()) < options_.num_users) {
      std::vector<bool> visited(static_cast<size_t>(graph.num_users()), false);
      for (UserId u : user_ids) visited[static_cast<size_t>(u)] = true;
      for (UserId u = 0;
           static_cast<int64_t>(user_ids.size()) < options_.num_users &&
           u < graph.num_users();
           ++u) {
        if (!visited[static_cast<size_t>(u)]) user_ids.push_back(u);
      }
    }
  } else {
    user_ids.resize(static_cast<size_t>(options_.num_users));
    for (int64_t i = 0; i < options_.num_users; ++i) user_ids[i] = i;
  }
  user_ids.resize(
      std::min(user_ids.size(), static_cast<size_t>(options_.num_users)));

  // --- Per-user synthesis ----------------------------------------------
  TweetId next_tweet_id = 1;
  double mu = std::log(options_.tweets_per_user_median);
  for (UserId uid : user_ids) {
    Rng rng = master.Fork(0x75736572ULL ^ static_cast<uint64_t>(uid));

    bool is_geotagger = rng.Bernoulli(options_.geotagger_fraction);
    MobilityProfile mobility =
        mobility_model_.GenerateProfile(uid, is_geotagger, rng);
    GeneratedProfileText profile =
        profile_generator_.Generate(mobility.claimed, rng);

    User user;
    user.id = uid;
    user.handle = StrFormat("user%06lld", static_cast<long long>(uid));
    user.profile_location = profile.text;
    int64_t total = static_cast<int64_t>(
        std::llround(std::exp(rng.Normal(mu, options_.tweets_per_user_sigma))));
    user.total_tweets =
        std::clamp<int64_t>(total, 1, options_.max_tweets_per_user);

    STIR_RETURN_IF_ERROR(on_user(user));
    on_truth(user, mobility, profile.style);

    // With the night-home bias enabled the timestamp must be drawn before
    // the region (the hour feeds the redirect), so that path draws in a
    // different order — its own new, equally deterministic sequence. The
    // bias-free path keeps the historical draw order exactly, so every
    // corpus generated before the bias existed is reproduced bit for bit.
    const bool night_bias = options_.mobility.night_home_bias > 0.0;
    if (is_geotagger) {
      // Full per-tweet walk: region, geotag decision, materialize GPS
      // tweets, sample plain ones.
      for (int64_t t = 0; t < user.total_tweets; ++t) {
        SimTime time = night_bias ? SampleTimestamp(rng) : 0;
        geo::RegionId region =
            night_bias
                ? mobility_model_.SampleTweetRegion(mobility, HourOfDay(time),
                                                    rng)
                : mobility_model_.SampleTweetRegion(mobility, rng);
        bool geotag = mobility_model_.SampleGeotag(mobility, region, rng);
        if (!geotag && !rng.Bernoulli(options_.plain_tweet_sample)) continue;
        Tweet tweet;
        tweet.id = next_tweet_id++;
        tweet.user = uid;
        tweet.time = night_bias ? time : SampleTimestamp(rng);
        if (geotag) tweet.gps = db_->SamplePointIn(region, rng);
        tweet.text = tweet_generator_.Generate(region, rng);
        STIR_RETURN_IF_ERROR(on_tweet(std::move(tweet)));
      }
    } else if (options_.plain_tweet_sample > 0.0) {
      // No GPS ever: materialize only the sampled plain tweets, skipping
      // the per-tweet walk (the 11M-tweet corpus generates in seconds).
      int64_t sampled = std::min(
          user.total_tweets,
          rng.Poisson(static_cast<double>(user.total_tweets) *
                      options_.plain_tweet_sample));
      for (int64_t t = 0; t < sampled; ++t) {
        SimTime time = night_bias ? SampleTimestamp(rng) : 0;
        geo::RegionId region =
            night_bias
                ? mobility_model_.SampleTweetRegion(mobility, HourOfDay(time),
                                                    rng)
                : mobility_model_.SampleTweetRegion(mobility, rng);
        Tweet tweet;
        tweet.id = next_tweet_id++;
        tweet.user = uid;
        tweet.time = night_bias ? time : SampleTimestamp(rng);
        tweet.text = tweet_generator_.Generate(region, rng);
        STIR_RETURN_IF_ERROR(on_tweet(std::move(tweet)));
      }
    }
  }
  return Status::OK();
}

GeneratedData DatasetGenerator::Generate() const {
  GeneratedData out;
  CorpusStreamInfo info;
  Status status = Synthesize(
      [&](const User& user) {
        out.dataset.AddUser(user);
        return Status::OK();
      },
      [&](Tweet tweet) {
        out.dataset.AddTweet(std::move(tweet));
        return Status::OK();
      },
      [&](const User& user, const MobilityProfile& mobility,
          ProfileStyle style) {
        out.truth.mobility.emplace(user.id, mobility);
        out.truth.profile_style.emplace(user.id, style);
      },
      &info);
  STIR_CHECK(status.ok()) << status.ToString();
  out.crawl_requests = info.crawl_requests;
  out.crawl_elapsed_seconds = info.crawl_elapsed_seconds;
  return out;
}

StatusOr<CorpusStreamInfo> DatasetGenerator::GenerateToCorpus(
    io::CorpusWriter* writer, io::TruthSidecarWriter* truth) const {
  STIR_CHECK(writer != nullptr);
  CorpusStreamInfo info;
  STIR_RETURN_IF_ERROR(Synthesize(
      [&](const User& user) { return writer->AddUser(user); },
      [&](Tweet tweet) { return writer->AddTweet(tweet); },
      [&](const User& user, const MobilityProfile& mobility, ProfileStyle) {
        if (truth == nullptr) return;
        io::TruthRecord record;
        record.user = user.id;
        record.archetype = ArchetypeToString(mobility.archetype);
        const geo::Region& home = db_->region(mobility.home);
        record.home_state = home.state;
        record.home_county = home.county;
        const geo::Region& claimed = db_->region(mobility.claimed);
        record.claimed_state = claimed.state;
        record.claimed_county = claimed.county;
        truth->Add(record);
      },
      &info));
  return info;
}

DatasetGeneratorOptions DatasetGenerator::KoreanConfig(double scale) {
  DatasetGeneratorOptions options;
  options.seed = 20120401;
  options.num_users =
      std::max<int64_t>(50, static_cast<int64_t>(52200.0 * scale));
  // 11.14M tweets / 52.2k users ~ 213 mean; median ~100 with sigma 1.23.
  options.tweets_per_user_median = 100.0;
  options.tweets_per_user_sigma = 1.23;
  options.geotagger_fraction = 0.035;
  options.use_social_graph = true;
  return options;
}

DatasetGeneratorOptions DatasetGenerator::LadyGagaConfig(double scale) {
  DatasetGeneratorOptions options;
  options.seed = 20120402;
  options.num_users =
      std::max<int64_t>(50, static_cast<int64_t>(20090.0 * scale));
  // Topical corpus: fewer tweets per matched user (only on-topic posts
  // enter a Search-API corpus).
  options.tweets_per_user_median = 12.0;
  options.tweets_per_user_sigma = 1.0;
  options.max_tweets_per_user = 400;
  // Smartphone-heavy fanbase: geotags are much more common.
  options.geotagger_fraction = 0.12;
  options.use_social_graph = false;  // Search/Streaming API, not a crawl
  options.plain_tweet_sample = 0.01;
  options.tweet_text.topic_keyword = "lady gaga";
  options.tweet_text.hashtags = {{"ladygaga", 0.35}, {"monster", 0.1}};
  // Fans are scattered and mobile: weaker home attachment, more
  // relocation/selective behaviour -> lower Top-1 share, larger None.
  options.mobility.frac_homebody = 0.30;
  options.mobility.frac_commuter = 0.10;
  options.mobility.frac_socialite = 0.18;
  options.mobility.frac_relocated = 0.26;
  options.mobility.frac_selective = 0.16;
  options.mobility.activity_radius_km = 2500.0;
  options.mobility.distance_decay_km = 600.0;
  options.mobility.relocation_min_km = 800.0;
  // Global fans: noisier profiles.
  options.profile.weights[static_cast<int>(ProfileStyle::kVague)] = 0.18;
  options.profile.weights[static_cast<int>(ProfileStyle::kStateOnly)] = 0.10;
  options.profile.weights[static_cast<int>(ProfileStyle::kCountyOnly)] = 0.22;
  options.profile.weights[static_cast<int>(ProfileStyle::kStateCounty)] = 0.26;
  return options;
}

}  // namespace stir::twitter
