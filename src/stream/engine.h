#ifndef STIR_STREAM_ENGINE_H_
#define STIR_STREAM_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/grouping.h"
#include "core/refinement.h"
#include "core/study.h"
#include "core/study_config.h"
#include "geo/admin_db.h"
#include "geo/geocode_journal.h"
#include "geo/reverse_geocoder.h"
#include "infer/inference_index.h"
#include "serve/scheduler.h"
#include "serve/stream_backend.h"
#include "serve/study_index.h"
#include "stream/stream_journal.h"
#include "text/location_parser.h"
#include "twitter/model.h"

namespace stir::stream {

/// Knobs for the incremental stream engine (DESIGN.md §12).
struct StreamOptions {
  /// Auto-seal threshold: an epoch seals as soon as this many tweets have
  /// been ingested since the last seal (counting every tweet, GPS-tagged
  /// or not, so epoch boundaries depend only on the tweet log). 0
  /// disables auto-sealing — epochs seal only via SealEpoch().
  int64_t epoch_size = 0;
  /// Directory for the stream + geocode journals. Empty runs the engine
  /// purely in memory (no crash safety).
  std::string durable_dir;
  /// Replay the journals found in `durable_dir` and continue from there.
  /// Without it the directory is started fresh. A resumed run must use
  /// the same `epoch_size` as the crashed one for its epoch partition
  /// (and therefore its generation numbers) to line up.
  bool resume = false;
  /// fsync journal appends (same contract as io::DurabilityOptions).
  bool fsync = true;
};

/// The incremental streaming study engine (DESIGN.md §12): accepts
/// appended users and tweets, folds each GPS tweet through the refinement
/// funnel exactly once (core::RefinementPipeline::FoldTweet — the same
/// fold the batch pipeline is a sum of), and on every epoch seal rebuilds
/// the grouping/aggregate stages over the accumulated state into a fresh
/// immutable serve::StudyIndex generation, swapped into an attached
/// serve::RequestScheduler RCU-style.
///
/// Determinism contract: after ingesting any prefix of a tweet log (in
/// log order, with the log's dataset indices as fault keys), a sealed
/// generation is byte-identical to the index a one-shot batch study would
/// build over that prefix — for any epoch partition and any thread count.
/// That holds because (a) folds are pure per (tweet, fault_key,
/// profile_region), (b) funnel counters are commutative sums of fold
/// deltas, (c) grouping is value-determined (multiplicity-desc,
/// lexicographic ties — arrival order of tweet_regions is irrelevant),
/// and (d) aggregation runs the shared core::AggregateGroups in user
/// arrival order. The one knob outside the contract is a finite geocoder
/// quota, exactly as for the batch pipeline's parallel mode.
///
/// Generation numbering: generation == epochs_sealed at the seal, with
/// the initial empty index as generation 0 — so a resumed engine reports
/// the same generation as the uninterrupted run.
///
/// Thread-safe: every public method takes the engine mutex. Lock order
/// when serving: scheduler admission mutex -> engine mutex -> scheduler
/// index mutex (SwapIndex), cycle-free.
class StreamEngine : public serve::StreamBackend {
 public:
  /// `db` must outlive the engine. `config` supplies the study pipeline
  /// knobs (threads, tie_break, refinement, geocoder, fault, retry, and
  /// the *effective* obs sinks — resolve enable flags to instances before
  /// constructing, the way the CLIs do). `config.durability` is ignored;
  /// stream durability lives in `options`.
  StreamEngine(const geo::AdminDb* db, const StudyConfig& config,
               const StreamOptions& options);
  ~StreamEngine() override;

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Opens (and on resume, replays) the journals and publishes the
  /// initial index generation. Must be called exactly once before any
  /// ingest. Journal problems degrade (log + run without the broken
  /// piece); the returned status is only for unusable configuration.
  Status Open();

  /// Attaches the scheduler that receives SwapIndex pushes on every seal
  /// (not owned; detach by attaching nullptr before the scheduler dies).
  /// The current generation is pushed immediately on attach.
  void AttachScheduler(serve::RequestScheduler* scheduler);

  /// Ingests one user. InvalidArgument on a negative or duplicate id.
  Status AddUser(const twitter::User& user);

  /// Ingests one tweet; its user must already be ingested. `fault_key`
  /// keys the geocoder fault schedule (callers replaying a dataset pass
  /// the tweet's dataset index so the schedule matches the batch study);
  /// -1 auto-assigns the engine's next monotonic key. May auto-seal.
  Status AddTweet(const twitter::Tweet& tweet, int64_t fault_key = -1);

  /// serve::StreamBackend: validates the whole batch first (rejected
  /// batches are applied not at all), then ingests users before tweets.
  /// Tweets get auto-assigned fault keys. May auto-seal mid-batch.
  serve::AppendOutcome Append(
      const std::vector<twitter::User>& users,
      const std::vector<twitter::Tweet>& tweets) override;

  /// Seals the current epoch: rebuilds groupings for users whose state
  /// changed, re-aggregates, builds a fresh immutable index generation,
  /// journals the seal marker, and pushes the swap to an attached
  /// scheduler. No-op (returning the live index) when nothing changed
  /// since the last seal.
  std::shared_ptr<const serve::StudyIndex> SealEpoch();

  /// The live (last sealed) generation; pins it for the caller.
  std::shared_ptr<const serve::StudyIndex> CurrentIndex() const;

  /// The live inference-evidence generation (DESIGN.md §16), republished
  /// at every seal alongside the study index so infer_user answers
  /// advance in lockstep with the lookups. Evidence folds are
  /// commutative integer counts and the snapshot is value-determined,
  /// so a sealed streaming generation is byte-identical to a batch
  /// InferenceIndex::Build over the same prefix.
  std::shared_ptr<const infer::InferenceIndex> CurrentInferIndex() const;

  /// Assembles the full study result over everything ingested so far —
  /// sealed or not — through the exact batch stages (GroupUser per final
  /// user in arrival order, core::AggregateGroups). The CLI's streaming
  /// mode reports from this, byte-identical to the batch report.
  core::StudyResult SnapshotResult();

  int64_t generation() const;
  int64_t epochs_sealed() const;
  int64_t pending_tweets() const;  ///< Tweets since the last seal.
  int64_t ingested_users() const;
  int64_t ingested_tweets() const;
  bool HasUser(twitter::UserId id) const;

 private:
  /// Mutable per-user study state: the fold target plus the cached
  /// grouping (recomputed lazily at seal when `dirty`).
  struct UserState {
    core::RefinedUser refined;
    bool well_defined = false;
    bool is_final = false;  ///< >= 1 geocoded tweet (counted in funnel).
    bool dirty = false;     ///< Grouping cache stale.
    core::UserGrouping grouping;
  };

  Status AddUserLocked(const twitter::User& user, bool journal);
  Status AddTweetLocked(const twitter::Tweet& tweet, int64_t fault_key,
                        bool journal);
  /// Seal body; returns the built (or unchanged) generation.
  std::shared_ptr<const serve::StudyIndex> SealEpochLocked();
  /// Recomputes stale groupings (in parallel when configured) and
  /// assembles the StudyResult in user arrival order. `include_refined`
  /// additionally copies the per-user RefinedUser rows (the CLI report
  /// needs them; index builds do not).
  core::StudyResult AssembleResultLocked(bool include_refined);
  /// Wraps a built index in the retirement-counting shared_ptr and makes
  /// it the live generation (no seal bookkeeping — shared by SealEpoch
  /// and resume).
  std::shared_ptr<const serve::StudyIndex> PublishIndexLocked(
      serve::StudyIndex index);
  void ReplayStreamJournalLocked(const StreamJournalReplay& replay);

  const geo::AdminDb* db_;
  StudyConfig config_;
  StreamOptions options_;
  text::LocationParser parser_;
  common::FaultInjector injector_;
  std::unique_ptr<geo::ReverseGeocoder> geocoder_;
  std::unique_ptr<core::RefinementPipeline> pipeline_;
  std::unique_ptr<common::ThreadPool> pool_;
  std::unique_ptr<geo::GeocodeJournal> geocode_journal_;
  std::unique_ptr<StreamJournal> journal_;
  bool opened_ = false;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<UserState>> states_;  ///< Arrival order.
  std::unordered_map<twitter::UserId, UserState*> by_id_;
  core::FunnelStats stats_;
  /// Inference evidence accumulator, fed by the same ingest path as the
  /// study state (guarded by mu_ like everything else here).
  std::unique_ptr<infer::EvidenceBuilder> evidence_;
  std::shared_ptr<const serve::StudyIndex> current_index_;
  std::shared_ptr<const infer::InferenceIndex> current_infer_index_;
  serve::RequestScheduler* scheduler_ = nullptr;
  int64_t generation_ = 0;
  int64_t epochs_sealed_ = 0;
  int64_t pending_tweets_ = 0;
  bool dirty_ = false;  ///< Any ingest since the last seal.
  int64_t ingested_users_ = 0;
  int64_t ingested_tweets_ = 0;
  int64_t next_fault_key_ = 0;
  bool journal_append_failed_ = false;

  // Observability (null when config.obs.metrics is null). The retirement
  // counter/gauge are captured by value into each generation's deleter,
  // so the registry must outlive every pinned generation.
  obs::Counter* m_epochs_sealed_ = nullptr;
  obs::Counter* m_seal_us_ = nullptr;
  obs::Counter* m_retired_ = nullptr;
  obs::Gauge* m_live_ = nullptr;
  obs::Gauge* m_pending_ = nullptr;
  obs::Counter* m_ingested_users_ = nullptr;
  obs::Counter* m_ingested_tweets_ = nullptr;
  obs::Histogram* m_swap_us_ = nullptr;
};

}  // namespace stir::stream

#endif  // STIR_STREAM_ENGINE_H_
