#ifndef STIR_STREAM_STREAM_JOURNAL_H_
#define STIR_STREAM_STREAM_JOURNAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "io/journal.h"
#include "twitter/model.h"

namespace stir::stream {

/// One replayed stream-journal record. The journal is the stream engine's
/// write-ahead log (DESIGN.md §12): every ingested user and tweet is
/// appended before it is applied, and every sealed epoch leaves a marker
/// *after* its index generation was built and published. Replay therefore
/// reconstructs exactly the ingest sequence, and the marker count tells a
/// resuming engine which generation was last served.
struct StreamRecord {
  enum class Kind : int {
    kUser = 0,
    kTweet = 1,
    kEpochSeal = 2,
  };
  Kind kind = Kind::kUser;
  twitter::User user;    ///< kUser
  twitter::Tweet tweet;  ///< kTweet
  /// kTweet: the fold's fault-schedule key (the CLI passes the tweet's
  /// dataset index; serve-path appends get monotonic engine sequence
  /// numbers). Journaled so a resumed run replays the exact same fault
  /// decisions.
  int64_t fault_key = -1;
  int64_t epoch = 0;  ///< kEpochSeal: epochs_sealed after the seal.
};

/// Outcome of replaying a stream journal. Structural problems (bad magic,
/// unusable header) surface as `usable == false` with the reason in
/// `error` — never as an abort; the caller logs it and starts fresh.
struct StreamJournalReplay {
  bool usable = true;
  std::string error;
  std::vector<StreamRecord> records;
  io::JournalReplayStats stats;  ///< quarantined includes decode failures.
};

/// The stream engine's ingest journal (magic "STIRSTRM"), framed by
/// io::JournalWriter: a crash can only tear the tail, which replay
/// truncates, so resume always restarts from a record boundary.
class StreamJournal {
 public:
  static constexpr std::string_view kMagic = "STIRSTRM";

  /// Decodes every intact record at `path`, in append order. Records
  /// whose payload fails to decode are counted into `stats.quarantined`.
  static StreamJournalReplay Replay(const std::string& path);

  /// Serialization of one record (exposed for tests).
  static std::string EncodeUser(const twitter::User& user);
  static std::string EncodeTweet(const twitter::Tweet& tweet,
                                 int64_t fault_key);
  static std::string EncodeEpochSeal(int64_t epoch);
  static bool DecodeRecord(std::string_view payload, StreamRecord* out);

  Status OpenFresh(const std::string& path, bool fsync = true) {
    return writer_.OpenFresh(path, kMagic, fsync);
  }
  Status OpenForResume(const std::string& path, int64_t valid_bytes,
                       bool fsync = true) {
    return writer_.OpenForResume(path, kMagic, valid_bytes, fsync);
  }

  /// Appends one pre-encoded record. Errors are returned, not fatal: the
  /// engine treats a failed append as "journal lost", logs once, and
  /// keeps ingesting in memory.
  Status Append(std::string_view payload) { return writer_.Append(payload); }

  bool is_open() const { return writer_.is_open(); }
  int64_t appended() const { return writer_.appended(); }
  /// Final fsync + close; a failed barrier surfaces here (see
  /// io::JournalWriter::Close).
  Status Close() { return writer_.Close(); }

 private:
  io::JournalWriter writer_;
};

}  // namespace stir::stream

#endif  // STIR_STREAM_STREAM_JOURNAL_H_
