#include "stream/engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "io/atomic_file.h"

namespace stir::stream {

namespace {

int64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

StreamEngine::StreamEngine(const geo::AdminDb* db, const StudyConfig& config,
                           const StreamOptions& options)
    : db_(db),
      config_(config),
      options_(options),
      parser_(db),
      injector_(config.fault) {
  STIR_CHECK(db != nullptr);
  if (obs::MetricsRegistry* m = config_.obs.metrics; m != nullptr) {
    m_epochs_sealed_ = m->GetCounter("stream.epochs_sealed");
    m_seal_us_ = m->GetCounter("stream.seal_us");
    m_retired_ = m->GetCounter("stream.generations_retired");
    m_live_ = m->GetGauge("stream.generations_live");
    m_pending_ = m->GetGauge("stream.pending_tweets");
    m_ingested_users_ = m->GetCounter("stream.ingested_users");
    m_ingested_tweets_ = m->GetCounter("stream.ingested_tweets");
    m_swap_us_ = m->GetHistogram(
        "stream.swap_us",
        {10, 25, 50, 100, 250, 500, 1'000, 2'500, 5'000, 10'000, 50'000});
  }
}

StreamEngine::~StreamEngine() = default;

Status StreamEngine::Open() {
  if (opened_) {
    return Status::InvalidArgument("StreamEngine::Open called twice");
  }

  // Geocoder wiring mirrors the batch pipeline (CorrelationStudy::
  // RunStages): the engine-owned injector engages only when a fault or
  // crash knob is armed, so a fault-free stream is byte-identical to a
  // build without the fault layer.
  geo::ReverseGeocoderOptions geocoder_options = config_.geocoder;
  if (geocoder_options.fault_injector == nullptr &&
      (injector_.enabled() || injector_.crash_enabled())) {
    geocoder_options.fault_injector = &injector_;
    geocoder_options.retry = config_.retry;
  }
  if (geocoder_options.metrics == nullptr) {
    geocoder_options.metrics = config_.obs.metrics;
  }
  if (geocoder_options.tracer == nullptr) {
    geocoder_options.tracer = config_.obs.tracer;
    geocoder_options.trace_lookups = config_.obs.trace_geocode_calls;
  }

  geo::GeocodeJournalReplay geo_replay;
  StreamJournalReplay stream_replay;
  bool have_stream_replay = false;
  if (!options_.durable_dir.empty()) {
    Status dir_status = io::EnsureDirectory(options_.durable_dir);
    if (!dir_status.ok()) {
      STIR_LOG(Warning) << "stream durable directory unavailable, running "
                           "in memory only: "
                        << dir_status.message();
    } else {
      // Geocode journal: previously-resolved lookups replay as cache
      // hits, so resumed re-folds spend no additional quota. Fault
      // decisions fire before the cache, so the fault/retry charges of a
      // re-fold are unchanged by the warm cache.
      std::string geo_path = options_.durable_dir + "/geocode.journal";
      geocode_journal_ = std::make_unique<geo::GeocodeJournal>();
      Status geo_status;
      if (options_.resume) {
        geo_replay = geo::GeocodeJournal::Replay(geo_path);
        if (!geo_replay.usable) {
          STIR_LOG(Warning)
              << "geocode journal unusable, starting a fresh one: "
              << geo_replay.error;
          geo_replay = geo::GeocodeJournalReplay{};
          geo_status = geocode_journal_->OpenFresh(geo_path, options_.fsync);
        } else {
          geo_status = geocode_journal_->OpenForResume(
              geo_path, geo_replay.stats.valid_bytes, options_.fsync);
        }
      } else {
        geo_status = geocode_journal_->OpenFresh(geo_path, options_.fsync);
      }
      if (!geo_status.ok()) {
        STIR_LOG(Warning) << "geocode journal unavailable (lookups will "
                             "not be journaled): "
                          << geo_status.message();
        geocode_journal_.reset();
      }
      geocoder_options.journal = geocode_journal_.get();

      std::string stream_path = options_.durable_dir + "/stream.journal";
      journal_ = std::make_unique<StreamJournal>();
      Status stream_status;
      if (options_.resume) {
        stream_replay = StreamJournal::Replay(stream_path);
        if (!stream_replay.usable) {
          STIR_LOG(Warning)
              << "stream journal unusable, starting a fresh one: "
              << stream_replay.error;
          stream_replay = StreamJournalReplay{};
          stream_status = journal_->OpenFresh(stream_path, options_.fsync);
        } else {
          have_stream_replay = true;
          stream_status = journal_->OpenForResume(
              stream_path, stream_replay.stats.valid_bytes, options_.fsync);
        }
      } else {
        stream_status = journal_->OpenFresh(stream_path, options_.fsync);
      }
      if (!stream_status.ok()) {
        STIR_LOG(Warning) << "stream journal unavailable (ingest will not "
                             "be journaled): "
                          << stream_status.message();
        journal_.reset();
      }
      if (obs::MetricsRegistry* m = config_.obs.metrics;
          m != nullptr && options_.resume) {
        m->GetCounter("stream.journal.replayed")
            ->Increment(stream_replay.stats.records);
        m->GetCounter("stream.journal.quarantined")
            ->Increment(stream_replay.stats.quarantined);
        m->GetCounter("stream.journal.truncated_bytes")
            ->Increment(stream_replay.stats.truncated_bytes);
      }
    }
  }

  geocoder_ = std::make_unique<geo::ReverseGeocoder>(db_, geocoder_options);
  for (const geo::GeocodeJournalEntry& entry : geo_replay.entries) {
    geocoder_->PreloadCache(entry.cache_key, entry.result);
  }
  pipeline_ = std::make_unique<core::RefinementPipeline>(
      &parser_, geocoder_.get(), config_);
  if (config_.threads > 1) {
    pool_ = std::make_unique<common::ThreadPool>(config_.threads,
                                                 config_.obs.metrics);
  }
  opened_ = true;

  std::lock_guard<std::mutex> lock(mu_);
  evidence_ = std::make_unique<infer::EvidenceBuilder>(db_);
  // Generation 0: the empty index every streaming server starts from.
  PublishIndexLocked(serve::StudyIndex{});
  current_infer_index_ = evidence_->Build();
  if (have_stream_replay && !stream_replay.records.empty()) {
    ReplayStreamJournalLocked(stream_replay);
  }
  return Status::OK();
}

void StreamEngine::ReplayStreamJournalLocked(
    const StreamJournalReplay& replay) {
  // Split the record sequence at the last seal marker: everything before
  // it is state the crashed run had already sealed (re-ingested with
  // index building deferred to one rebuild), everything after is the
  // pending tail, re-ingested live so auto-sealing fires at the same
  // epoch boundaries as the uninterrupted run would have hit.
  size_t tail_start = 0;
  int64_t markers = 0;
  for (size_t i = 0; i < replay.records.size(); ++i) {
    if (replay.records[i].kind == StreamRecord::Kind::kEpochSeal) {
      tail_start = i + 1;
      ++markers;
    }
  }

  auto apply = [&](const StreamRecord& record) {
    Status status;
    if (record.kind == StreamRecord::Kind::kUser) {
      status = AddUserLocked(record.user, /*journal=*/false);
    } else if (record.kind == StreamRecord::Kind::kTweet) {
      status =
          AddTweetLocked(record.tweet, record.fault_key, /*journal=*/false);
    }
    if (!status.ok()) {
      // A record the crashed run accepted can only fail here if the
      // journal lost records (quarantine). Skip it — the valid remainder
      // still replays.
      STIR_LOG(Warning) << "stream journal replay skipped a record: "
                        << status.message();
    }
  };

  if (markers > 0) {
    // Pre-marker ingest never auto-seals: the sealed prefix collapses to
    // one index build at the last marker.
    const int64_t saved_epoch_size = options_.epoch_size;
    options_.epoch_size = 0;
    for (size_t i = 0; i < tail_start - 1; ++i) apply(replay.records[i]);
    options_.epoch_size = saved_epoch_size;
    epochs_sealed_ = markers;
    generation_ = markers;
    core::StudyResult result = AssembleResultLocked(/*include_refined=*/false);
    PublishIndexLocked(serve::StudyIndex::Build(result, *db_));
    current_infer_index_ = evidence_->Build();
    pending_tweets_ = 0;
    dirty_ = false;
    if (m_pending_ != nullptr) m_pending_->Set(0);
  }
  // Tail: live re-ingest. A seal the crashed run built but did not mark
  // re-seals here at the identical boundary (auto-seal re-arms), so the
  // epoch partition — and with it the generation numbers — line up with
  // the uninterrupted run.
  for (size_t i = tail_start; i < replay.records.size(); ++i) {
    apply(replay.records[i]);
  }
}

void StreamEngine::AttachScheduler(serve::RequestScheduler* scheduler) {
  std::lock_guard<std::mutex> lock(mu_);
  scheduler_ = scheduler;
  if (scheduler_ != nullptr) {
    scheduler_->SwapIndex(current_index_, generation_);
    scheduler_->SwapInferIndex(current_infer_index_);
  }
}

Status StreamEngine::AddUser(const twitter::User& user) {
  STIR_CHECK(opened_);
  std::lock_guard<std::mutex> lock(mu_);
  return AddUserLocked(user, /*journal=*/true);
}

Status StreamEngine::AddTweet(const twitter::Tweet& tweet,
                              int64_t fault_key) {
  STIR_CHECK(opened_);
  std::lock_guard<std::mutex> lock(mu_);
  return AddTweetLocked(tweet, fault_key, /*journal=*/true);
}

Status StreamEngine::AddUserLocked(const twitter::User& user, bool journal) {
  if (user.id < 0) {
    return Status::InvalidArgument(
        StrFormat("user id %lld is negative",
                  static_cast<long long>(user.id)));
  }
  if (by_id_.count(user.id) != 0) {
    return Status::InvalidArgument(
        StrFormat("user %lld already exists",
                  static_cast<long long>(user.id)));
  }
  if (journal && journal_ != nullptr && journal_->is_open()) {
    Status status = journal_->Append(StreamJournal::EncodeUser(user));
    if (!status.ok() && !journal_append_failed_) {
      journal_append_failed_ = true;
      STIR_LOG(Warning) << "stream journal append failed (journal lost "
                           "for this run): "
                        << status.message();
    }
  }

  auto state = std::make_unique<UserState>();
  state->refined.user = user.id;
  state->refined.total_tweets = user.total_tweets;
  // The profile gate runs once at ingest — exactly the parse the batch
  // funnel performs per user.
  text::ParsedLocation parsed = parser_.Parse(user.profile_location);
  ++stats_.quality_counts[static_cast<int>(parsed.quality)];
  ++stats_.crawled_users;
  stats_.total_tweets += user.total_tweets;
  if (parsed.quality == text::LocationQuality::kWellDefined) {
    state->well_defined = true;
    state->refined.profile_region = parsed.region;
    ++stats_.well_defined_users;
  }
  by_id_.emplace(user.id, state.get());
  states_.push_back(std::move(state));
  // Evidence registration is blind to the profile parse above: only the
  // id crosses into the inference layer (DESIGN.md §16).
  evidence_->AddUser(user.id);
  ++ingested_users_;
  obs::IncrementCounter(m_ingested_users_);
  dirty_ = true;
  return Status::OK();
}

Status StreamEngine::AddTweetLocked(const twitter::Tweet& tweet,
                                    int64_t fault_key, bool journal) {
  auto it = by_id_.find(tweet.user);
  if (it == by_id_.end()) {
    return Status::InvalidArgument(
        StrFormat("tweet %lld references unknown user %lld",
                  static_cast<long long>(tweet.id),
                  static_cast<long long>(tweet.user)));
  }
  int64_t key = fault_key >= 0 ? fault_key : next_fault_key_;
  next_fault_key_ = std::max(next_fault_key_, key + 1);
  if (journal && journal_ != nullptr && journal_->is_open()) {
    Status status = journal_->Append(StreamJournal::EncodeTweet(tweet, key));
    if (!status.ok() && !journal_append_failed_) {
      journal_append_failed_ = true;
      STIR_LOG(Warning) << "stream journal append failed (journal lost "
                           "for this run): "
                        << status.message();
    }
  }

  UserState* state = it->second;
  if (tweet.gps.has_value()) ++stats_.gps_tweets;
  if (state->well_defined && tweet.gps.has_value()) {
    // The one fold this tweet ever gets; replays recompute it from the
    // journal with identical inputs, never from cached outputs.
    core::TweetFold fold =
        pipeline_->FoldTweet(tweet, key, state->refined.profile_region);
    size_t before = state->refined.tweet_regions.size();
    core::RefinementPipeline::ApplyFold(fold, &stats_,
                                        &state->refined.tweet_regions);
    if (state->refined.tweet_regions.size() > before) {
      state->dirty = true;
      if (!state->is_final) {
        state->is_final = true;
        ++stats_.final_users;
      }
    }
  }
  // Inference evidence folds from every tweet (not just GPS tweets of
  // well-defined users), through AdminDb::Locate rather than the
  // fault-injected geocoder — so the evidence never depends on a fault
  // schedule and the fold commutes across any ingest order.
  evidence_->AddTweet(tweet);
  ++ingested_tweets_;
  obs::IncrementCounter(m_ingested_tweets_);
  ++pending_tweets_;
  if (m_pending_ != nullptr) m_pending_->Set(pending_tweets_);
  dirty_ = true;
  if (options_.epoch_size > 0 && pending_tweets_ >= options_.epoch_size) {
    SealEpochLocked();
  }
  return Status::OK();
}

serve::AppendOutcome StreamEngine::Append(
    const std::vector<twitter::User>& users,
    const std::vector<twitter::Tweet>& tweets) {
  STIR_CHECK(opened_);
  std::lock_guard<std::mutex> lock(mu_);
  serve::AppendOutcome outcome;
  const int64_t epochs_before = epochs_sealed_;

  // Validate the whole batch before touching any state: a rejected batch
  // is applied not at all.
  std::unordered_set<twitter::UserId> batch_users;
  for (const twitter::User& user : users) {
    if (user.id < 0 || by_id_.count(user.id) != 0 ||
        !batch_users.insert(user.id).second) {
      outcome.ok = false;
      outcome.error = StrFormat("user %lld already exists",
                                static_cast<long long>(user.id));
      break;
    }
  }
  if (outcome.ok) {
    for (const twitter::Tweet& tweet : tweets) {
      if (by_id_.count(tweet.user) == 0 &&
          batch_users.count(tweet.user) == 0) {
        outcome.ok = false;
        outcome.error =
            StrFormat("tweet %lld references unknown user %lld",
                      static_cast<long long>(tweet.id),
                      static_cast<long long>(tweet.user));
        break;
      }
    }
  }
  if (!outcome.ok) {
    outcome.generation = generation_;
    outcome.pending_tweets = pending_tweets_;
    return outcome;
  }

  for (const twitter::User& user : users) {
    Status status = AddUserLocked(user, /*journal=*/true);
    STIR_CHECK(status.ok());
    ++outcome.users_appended;
  }
  for (const twitter::Tweet& tweet : tweets) {
    Status status = AddTweetLocked(tweet, /*fault_key=*/-1, /*journal=*/true);
    STIR_CHECK(status.ok());
    ++outcome.tweets_appended;
  }
  outcome.epochs_sealed = epochs_sealed_ - epochs_before;
  outcome.generation = generation_;
  outcome.pending_tweets = pending_tweets_;
  return outcome;
}

std::shared_ptr<const serve::StudyIndex> StreamEngine::SealEpoch() {
  STIR_CHECK(opened_);
  std::lock_guard<std::mutex> lock(mu_);
  return SealEpochLocked();
}

std::shared_ptr<const serve::StudyIndex> StreamEngine::SealEpochLocked() {
  if (!dirty_) return current_index_;
  std::chrono::steady_clock::time_point seal_t0 =
      std::chrono::steady_clock::now();

  core::StudyResult result = AssembleResultLocked(/*include_refined=*/false);
  std::shared_ptr<const serve::StudyIndex> index =
      PublishIndexLocked(serve::StudyIndex::Build(result, *db_));
  current_infer_index_ = evidence_->Build();
  ++epochs_sealed_;
  generation_ = epochs_sealed_;
  pending_tweets_ = 0;
  dirty_ = false;
  if (m_pending_ != nullptr) m_pending_->Set(0);

  // The marker is written only after the generation exists: replay
  // treats unmarked tail records as pending and re-seals them at the
  // same boundary.
  if (journal_ != nullptr && journal_->is_open()) {
    Status status =
        journal_->Append(StreamJournal::EncodeEpochSeal(epochs_sealed_));
    if (!status.ok() && !journal_append_failed_) {
      journal_append_failed_ = true;
      STIR_LOG(Warning) << "stream journal append failed (journal lost "
                           "for this run): "
                        << status.message();
    }
  }
  obs::IncrementCounter(m_epochs_sealed_);
  obs::IncrementCounter(m_seal_us_, ElapsedUs(seal_t0));

  if (scheduler_ != nullptr) {
    std::chrono::steady_clock::time_point swap_t0 =
        std::chrono::steady_clock::now();
    scheduler_->SwapIndex(index, generation_);
    scheduler_->SwapInferIndex(current_infer_index_);
    obs::RecordSample(m_swap_us_, ElapsedUs(swap_t0));
  }
  return index;
}

core::StudyResult StreamEngine::AssembleResultLocked(bool include_refined) {
  std::vector<UserState*> finals;
  finals.reserve(states_.size());
  for (const std::unique_ptr<UserState>& state : states_) {
    if (state->is_final) finals.push_back(state.get());
  }
  // Delta regrouping: only users whose tweet_regions changed since the
  // last seal recompute. GroupUser is pure and each result lands in its
  // own slot, so any thread count produces identical groupings.
  common::ParallelFor(pool_.get(), finals.size(), [&](size_t i) {
    UserState* state = finals[i];
    if (state->dirty) {
      state->grouping =
          core::GroupUser(state->refined, *db_, config_.tie_break);
      state->dirty = false;
    }
  });

  core::StudyResult result;
  result.funnel = stats_;
  result.funnel.fault_injection_enabled =
      geocoder_->fault_injection_enabled();
  result.groupings.reserve(finals.size());
  if (include_refined) result.refined.reserve(finals.size());
  for (UserState* state : finals) {
    result.groupings.push_back(state->grouping);
    if (include_refined) result.refined.push_back(state->refined);
  }
  core::AggregateGroups(&result);
  return result;
}

std::shared_ptr<const serve::StudyIndex> StreamEngine::PublishIndexLocked(
    serve::StudyIndex index) {
  // The deleter captures the sinks by value (never `this`): a reader may
  // drop the last pin on a retired generation long after the engine is
  // gone, so retirement accounting must not dereference the engine.
  obs::Counter* retired = m_retired_;
  obs::Gauge* live = m_live_;
  std::shared_ptr<const serve::StudyIndex> shared(
      new serve::StudyIndex(std::move(index)),
      [retired, live](const serve::StudyIndex* p) {
        delete p;
        obs::IncrementCounter(retired);
        if (live != nullptr) live->Add(-1);
      });
  if (live != nullptr) live->Add(1);
  current_index_ = shared;
  return shared;
}

core::StudyResult StreamEngine::SnapshotResult() {
  STIR_CHECK(opened_);
  std::lock_guard<std::mutex> lock(mu_);
  return AssembleResultLocked(/*include_refined=*/true);
}

std::shared_ptr<const serve::StudyIndex> StreamEngine::CurrentIndex() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_index_;
}

std::shared_ptr<const infer::InferenceIndex> StreamEngine::CurrentInferIndex()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_infer_index_;
}

int64_t StreamEngine::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

int64_t StreamEngine::epochs_sealed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epochs_sealed_;
}

int64_t StreamEngine::pending_tweets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_tweets_;
}

int64_t StreamEngine::ingested_users() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ingested_users_;
}

int64_t StreamEngine::ingested_tweets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ingested_tweets_;
}

bool StreamEngine::HasUser(twitter::UserId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_id_.count(id) != 0;
}

}  // namespace stir::stream
