#include "stream/stream_journal.h"

#include <utility>

#include "io/serialize.h"

namespace stir::stream {

namespace {

constexpr uint32_t kKindUser = 0;
constexpr uint32_t kKindTweet = 1;
constexpr uint32_t kKindEpochSeal = 2;

}  // namespace

std::string StreamJournal::EncodeUser(const twitter::User& user) {
  io::BinaryWriter w;
  w.U32(kKindUser);
  w.I64(user.id);
  w.I64(user.total_tweets);
  w.String(user.handle);
  w.String(user.profile_location);
  return w.Take();
}

std::string StreamJournal::EncodeTweet(const twitter::Tweet& tweet,
                                       int64_t fault_key) {
  io::BinaryWriter w;
  w.U32(kKindTweet);
  w.I64(tweet.id);
  w.I64(tweet.user);
  w.I64(tweet.time);
  w.I64(fault_key);
  w.Bool(tweet.gps.has_value());
  if (tweet.gps.has_value()) {
    w.Double(tweet.gps->lat);
    w.Double(tweet.gps->lng);
  }
  w.String(tweet.text);
  return w.Take();
}

std::string StreamJournal::EncodeEpochSeal(int64_t epoch) {
  io::BinaryWriter w;
  w.U32(kKindEpochSeal);
  w.I64(epoch);
  return w.Take();
}

bool StreamJournal::DecodeRecord(std::string_view payload, StreamRecord* out) {
  io::BinaryReader r(payload);
  uint32_t kind = 0;
  if (!r.U32(&kind)) return false;
  StreamRecord record;
  switch (kind) {
    case kKindUser: {
      record.kind = StreamRecord::Kind::kUser;
      if (!r.I64(&record.user.id) || !r.I64(&record.user.total_tweets) ||
          !r.String(&record.user.handle) ||
          !r.String(&record.user.profile_location) || !r.Done()) {
        return false;
      }
      break;
    }
    case kKindTweet: {
      record.kind = StreamRecord::Kind::kTweet;
      bool has_gps = false;
      if (!r.I64(&record.tweet.id) || !r.I64(&record.tweet.user) ||
          !r.I64(&record.tweet.time) || !r.I64(&record.fault_key) ||
          !r.Bool(&has_gps)) {
        return false;
      }
      if (has_gps) {
        geo::LatLng point;
        if (!r.Double(&point.lat) || !r.Double(&point.lng)) return false;
        record.tweet.gps = point;
      }
      if (!r.String(&record.tweet.text) || !r.Done()) return false;
      break;
    }
    case kKindEpochSeal: {
      record.kind = StreamRecord::Kind::kEpochSeal;
      if (!r.I64(&record.epoch) || !r.Done()) return false;
      break;
    }
    default:
      return false;
  }
  *out = std::move(record);
  return true;
}

StreamJournalReplay StreamJournal::Replay(const std::string& path) {
  StreamJournalReplay replay;
  int64_t decode_failures = 0;
  auto stats_or =
      io::ReplayJournal(path, kMagic, [&](std::string_view payload) {
        StreamRecord record;
        if (StreamJournal::DecodeRecord(payload, &record)) {
          replay.records.push_back(std::move(record));
        } else {
          ++decode_failures;
        }
      });
  if (!stats_or.ok()) {
    replay.usable = false;
    replay.error = stats_or.status().message();
    replay.records.clear();
    return replay;
  }
  replay.stats = *stats_or;
  // A frame whose payload decodes to garbage is as corrupt as one whose
  // CRC failed; fold both into the quarantine count.
  replay.stats.quarantined += decode_failures;
  replay.stats.records -= decode_failures;
  return replay;
}

}  // namespace stir::stream
