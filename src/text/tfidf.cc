#include "text/tfidf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace stir::text {

void TfIdf::AddDocument(const std::string& doc_key,
                        const std::vector<std::string>& tokens) {
  STIR_CHECK(!finalized_) << "AddDocument after Finalize";
  auto& counts = docs_[doc_key];
  for (const std::string& token : tokens) ++counts[token];
}

void TfIdf::Finalize() {
  STIR_CHECK(!finalized_);
  for (const auto& [doc_key, counts] : docs_) {
    for (const auto& [term, count] : counts) ++document_frequency_[term];
  }
  finalized_ = true;
}

double TfIdf::Idf(const std::string& term) const {
  if (!finalized_) return 0.0;
  auto it = document_frequency_.find(term);
  int64_t df = it == document_frequency_.end() ? 0 : it->second;
  double n = static_cast<double>(docs_.size());
  return std::log((1.0 + n) / (1.0 + static_cast<double>(df))) + 1.0;
}

namespace {

std::vector<TermScore> RankTerms(
    const std::unordered_map<std::string, int64_t>& counts,
    const TfIdf& index, size_t k) {
  std::vector<TermScore> scored;
  scored.reserve(counts.size());
  for (const auto& [term, count] : counts) {
    TermScore ts;
    ts.term = term;
    ts.count = count;
    double tf = 1.0 + std::log(static_cast<double>(count));
    ts.score = tf * index.Idf(term);
    scored.push_back(std::move(ts));
  }
  std::sort(scored.begin(), scored.end(),
            [](const TermScore& a, const TermScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.term < b.term;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

}  // namespace

StatusOr<std::vector<TermScore>> TfIdf::TopTerms(const std::string& doc_key,
                                                 size_t k) const {
  if (!finalized_) {
    return Status::FailedPrecondition("TfIdf not finalized");
  }
  auto it = docs_.find(doc_key);
  if (it == docs_.end()) {
    return Status::NotFound("no such document: " + doc_key);
  }
  return RankTerms(it->second, *this, k);
}

std::vector<TermScore> TfIdf::ScoreTokens(
    const std::vector<std::string>& tokens, size_t k) const {
  std::unordered_map<std::string, int64_t> counts;
  for (const std::string& token : tokens) ++counts[token];
  return RankTerms(counts, *this, k);
}

}  // namespace stir::text
