#include "text/location_parser.h"

#include <algorithm>

#include "common/string_util.h"
#include "text/normalize.h"

namespace stir::text {

const char* LocationQualityToString(LocationQuality quality) {
  switch (quality) {
    case LocationQuality::kEmpty:
      return "empty";
    case LocationQuality::kVague:
      return "vague";
    case LocationQuality::kInsufficient:
      return "insufficient";
    case LocationQuality::kAmbiguous:
      return "ambiguous";
    case LocationQuality::kWellDefined:
      return "well-defined";
  }
  return "unknown";
}

LocationParser::LocationParser(const geo::AdminDb* db)
    : db_(db), matcher_(db) {}

bool LocationParser::TryParseGps(std::string_view piece,
                                 geo::LatLng* out) const {
  // Accept "37.51, 126.86", "37.51 126.86", with optional leading
  // "gps:"-style prefixes stripped by the caller's normalization. Reject
  // anything with alphabetic content.
  for (char c : piece) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isalpha(u) || u >= 0x80) return false;
  }
  std::vector<std::string> parts = SplitAndTrim(piece, ',');
  if (parts.size() != 2) {
    parts = SplitAndTrim(piece, ' ');
    if (parts.size() != 2) return false;
  }
  std::optional<double> lat = ParseDouble(parts[0]);
  std::optional<double> lng = ParseDouble(parts[1]);
  if (!lat || !lng) return false;
  geo::LatLng point{*lat, *lng};
  if (!point.IsValid()) return false;
  *out = point;
  return true;
}

ParsedLocation LocationParser::ParseSingle(std::string_view piece) const {
  ParsedLocation result;
  result.normalized = NormalizeFreeText(piece);

  geo::LatLng gps;
  if (TryParseGps(piece, &gps)) {
    auto located = db_->Locate(gps);
    if (located.ok()) {
      result.quality = LocationQuality::kWellDefined;
      result.region = *located;
      result.from_gps = true;
    } else {
      result.quality = LocationQuality::kVague;  // coordinates of nowhere
    }
    return result;
  }

  std::vector<std::string> tokens = Tokenize(piece);
  if (tokens.empty()) {
    result.quality = LocationQuality::kEmpty;
    return result;
  }

  std::vector<PhraseMatch> matches = matcher_.Match(tokens);
  std::vector<geo::RegionId> county_candidates;
  std::vector<std::string> state_names;
  bool saw_country = false;
  bool used_fuzzy = false;
  for (const PhraseMatch& match : matches) {
    switch (match.kind) {
      case PhraseKind::kCounty:
        for (geo::RegionId id : match.regions) {
          if (std::find(county_candidates.begin(), county_candidates.end(),
                        id) == county_candidates.end()) {
            county_candidates.push_back(id);
          }
        }
        used_fuzzy |= match.fuzzy;
        break;
      case PhraseKind::kState:
        state_names.push_back(match.name);
        break;
      case PhraseKind::kCountry:
        saw_country = true;
        break;
    }
  }

  if (county_candidates.empty()) {
    if (!state_names.empty() || saw_country) {
      // "Seoul", "Korea", "Seoul, Korea": real place, but first-level
      // only — the paper removes these as insufficient.
      result.quality = LocationQuality::kInsufficient;
    } else {
      result.quality = LocationQuality::kVague;
    }
    return result;
  }

  // Disambiguate county candidates by any matched state name.
  if (county_candidates.size() > 1 && !state_names.empty()) {
    std::vector<geo::RegionId> filtered;
    for (geo::RegionId id : county_candidates) {
      const geo::Region& region = db_->region(id);
      for (const std::string& state : state_names) {
        if (EqualsIgnoreCase(region.state, state)) {
          filtered.push_back(id);
          break;
        }
      }
    }
    if (!filtered.empty()) county_candidates = std::move(filtered);
  }

  if (county_candidates.size() == 1) {
    result.quality = LocationQuality::kWellDefined;
    result.region = county_candidates.front();
    result.fuzzy = used_fuzzy;
    return result;
  }
  result.quality = LocationQuality::kAmbiguous;
  result.candidates = std::move(county_candidates);
  return result;
}

ParsedLocation LocationParser::Parse(std::string_view raw) const {
  std::string_view trimmed = TrimView(raw);
  if (trimmed.empty()) {
    ParsedLocation empty;
    empty.quality = LocationQuality::kEmpty;
    return empty;
  }

  // Multi-location strings: "Gold Coast Australia / Mapo-gu Seoul".
  std::vector<std::string> pieces;
  for (char separator : {'/', '|', ';'}) {
    if (trimmed.find(separator) != std::string_view::npos) {
      pieces = SplitAndTrim(trimmed, separator);
      break;
    }
  }
  if (pieces.empty()) {
    return ParseSingle(trimmed);
  }

  std::vector<ParsedLocation> parsed;
  parsed.reserve(pieces.size());
  for (const std::string& piece : pieces) parsed.push_back(ParseSingle(piece));

  std::vector<geo::RegionId> resolved;
  for (const ParsedLocation& p : parsed) {
    if (p.quality == LocationQuality::kWellDefined &&
        std::find(resolved.begin(), resolved.end(), p.region) ==
            resolved.end()) {
      resolved.push_back(p.region);
    }
  }
  if (resolved.size() == 1) {
    for (ParsedLocation& p : parsed) {
      if (p.quality == LocationQuality::kWellDefined) return p;
    }
  }
  ParsedLocation result;
  result.normalized = NormalizeFreeText(trimmed);
  if (resolved.size() > 1) {
    // Two explicit places ("we do not know which the current location of
    // the user is" — paper §III.A): ambiguous.
    result.quality = LocationQuality::kAmbiguous;
    result.candidates = std::move(resolved);
    return result;
  }
  // No piece resolved; inherit the strongest signal seen.
  result.quality = LocationQuality::kVague;
  for (const ParsedLocation& p : parsed) {
    if (p.quality == LocationQuality::kInsufficient) {
      result.quality = LocationQuality::kInsufficient;
    } else if (p.quality == LocationQuality::kAmbiguous) {
      result.quality = LocationQuality::kAmbiguous;
      result.candidates = p.candidates;
      break;
    }
  }
  return result;
}

}  // namespace stir::text
