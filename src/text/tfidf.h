#ifndef STIR_TEXT_TFIDF_H_
#define STIR_TEXT_TFIDF_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace stir::text {

/// A scored term from a TF-IDF query.
struct TermScore {
  std::string term;
  double score = 0.0;
  int64_t count = 0;  ///< Raw term frequency in the document.
};

/// Document-keyed TF-IDF index, the scoring core of the Twitris-style
/// summarizer (related work the paper builds towards): documents are
/// (time-slice, region) tweet bags, and TopTerms yields the "theme" slice
/// of the when/where/what browsing paradigm.
///
/// Usage: AddDocument(...) repeatedly (repeat keys merge), Finalize(),
/// then query. Scores use log-scaled TF and smoothed IDF:
///   tf = 1 + log(count), idf = log((1 + N) / (1 + df)) + 1.
class TfIdf {
 public:
  TfIdf() = default;

  /// Adds (or extends) the document `doc_key` with `tokens`.
  void AddDocument(const std::string& doc_key,
                   const std::vector<std::string>& tokens);

  /// Freezes the corpus and computes document frequencies. Adding more
  /// documents afterwards is an error (checked).
  void Finalize();

  bool finalized() const { return finalized_; }
  size_t num_documents() const { return docs_.size(); }
  size_t vocabulary_size() const { return document_frequency_.size(); }

  /// Smoothed inverse document frequency of `term` (0 for unseen terms
  /// before finalization).
  double Idf(const std::string& term) const;

  /// Top-k terms of a stored document by tf-idf, ties broken
  /// lexicographically for determinism. NotFound for unknown keys;
  /// FailedPrecondition before Finalize().
  StatusOr<std::vector<TermScore>> TopTerms(const std::string& doc_key,
                                            size_t k) const;

  /// Scores an ad-hoc token bag against the frozen corpus statistics.
  std::vector<TermScore> ScoreTokens(const std::vector<std::string>& tokens,
                                     size_t k) const;

 private:
  std::unordered_map<std::string, std::unordered_map<std::string, int64_t>>
      docs_;
  std::unordered_map<std::string, int64_t> document_frequency_;
  bool finalized_ = false;
};

}  // namespace stir::text

#endif  // STIR_TEXT_TFIDF_H_
