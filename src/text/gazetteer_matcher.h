#ifndef STIR_TEXT_GAZETTEER_MATCHER_H_
#define STIR_TEXT_GAZETTEER_MATCHER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geo/admin_db.h"

namespace stir::text {

/// What a matched phrase denotes.
enum class PhraseKind {
  kCounty,   ///< A second-level district (possibly in several states).
  kState,    ///< A first-level division name.
  kCountry,  ///< A country name or common alias ("korea", "usa").
};

/// One phrase match inside a token sequence.
struct PhraseMatch {
  PhraseKind kind = PhraseKind::kCounty;
  size_t token_begin = 0;  ///< First token index of the phrase.
  size_t token_count = 0;  ///< Number of tokens covered.
  /// Candidate regions for kCounty (size > 1 when the name is ambiguous
  /// across states). Empty for kState/kCountry.
  std::vector<geo::RegionId> regions;
  std::string name;  ///< Canonical matched name (state/country) or phrase.
  bool fuzzy = false;  ///< Matched via edit distance 1, not exactly.
};

/// Phrase-table matcher from free text to gazetteer entries. Built once
/// per AdminDb; lookups are O(tokens * max_phrase_len).
///
/// Handles multi-word names ("gold coast", "new york"), aliases recorded
/// in the gazetteer ("Yangchun-gu" for Yangcheon-gu), country aliases,
/// and a conservative fuzzy fallback (edit distance 1 for single-token
/// county names of >= 6 characters: "gangnam" vs "gangnm").
class GazetteerMatcher {
 public:
  /// `db` must outlive the matcher.
  explicit GazetteerMatcher(const geo::AdminDb* db);

  /// All non-overlapping matches in `tokens`, longest-phrase-first greedy
  /// scan from the left.
  std::vector<PhraseMatch> Match(const std::vector<std::string>& tokens) const;

  const geo::AdminDb& db() const { return *db_; }

 private:
  struct TableEntry {
    PhraseKind kind;
    std::vector<geo::RegionId> regions;  // counties only
    std::string canonical;
  };

  void AddPhrase(const std::string& phrase, PhraseKind kind,
                 geo::RegionId region, const std::string& canonical);

  const geo::AdminDb* db_;
  std::unordered_map<std::string, TableEntry> table_;
  /// Single-token county phrases for the fuzzy pass.
  std::vector<std::string> fuzzy_pool_;
  size_t max_phrase_tokens_ = 1;
};

}  // namespace stir::text

#endif  // STIR_TEXT_GAZETTEER_MATCHER_H_
