#include "text/normalize.h"

#include <algorithm>
#include <cctype>

namespace stir::text {

namespace {

bool IsWordChar(unsigned char c) {
  return std::isalnum(c) || c >= 0x80;  // UTF-8 continuation/lead bytes
}

}  // namespace

std::string NormalizeFreeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  for (size_t i = 0; i < text.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    char mapped;
    if (IsWordChar(c)) {
      mapped = c < 0x80 ? static_cast<char>(std::tolower(c))
                        : static_cast<char>(c);
    } else if (c == '-' && i > 0 && i + 1 < text.size() &&
               IsWordChar(static_cast<unsigned char>(text[i - 1])) &&
               IsWordChar(static_cast<unsigned char>(text[i + 1]))) {
      mapped = '-';  // intra-word hyphen survives ("seocho-gu")
    } else {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    out.push_back(mapped);
  }
  return out;
}

std::vector<std::string> Tokenize(std::string_view text) {
  std::string normalized = NormalizeFreeText(text);
  std::vector<std::string> tokens;
  size_t start = 0;
  while (start < normalized.size()) {
    size_t end = normalized.find(' ', start);
    if (end == std::string::npos) end = normalized.size();
    if (end > start) tokens.emplace_back(normalized.substr(start, end - start));
    start = end + 1;
  }
  return tokens;
}

std::vector<std::string> TokenizeTweet(std::string_view text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    // Drop URLs wholesale.
    if (text.substr(i, 7) == "http://" || text.substr(i, 8) == "https://") {
      while (i < text.size() &&
             !std::isspace(static_cast<unsigned char>(text[i]))) {
        ++i;
      }
      continue;
    }
    if (c == '@' || c == '#') {
      ++i;
      continue;  // the word itself is collected below
    }
    if (!IsWordChar(c)) {
      ++i;
      continue;
    }
    std::string token;
    while (i < text.size()) {
      unsigned char w = static_cast<unsigned char>(text[i]);
      // Keep apostrophes ("don't") and intra-word hyphens ("yangcheon-gu",
      // so place names tokenize the same way the gazetteer stores them).
      bool keep_joiner =
          (w == '\'' || w == '-') && !token.empty() && i + 1 < text.size() &&
          IsWordChar(static_cast<unsigned char>(text[i + 1]));
      if (!IsWordChar(w) && !keep_joiner) break;
      token.push_back(w < 0x80 ? static_cast<char>(std::tolower(w))
                               : static_cast<char>(w));
      ++i;
    }
    if (!token.empty()) tokens.push_back(std::move(token));
  }
  return tokens;
}

int BoundedEditDistance(std::string_view a, std::string_view b,
                        int max_distance) {
  if (a.size() > b.size()) std::swap(a, b);
  int n = static_cast<int>(a.size());
  int m = static_cast<int>(b.size());
  if (m - n > max_distance) return max_distance + 1;

  std::vector<int> prev(static_cast<size_t>(n) + 1);
  std::vector<int> cur(static_cast<size_t>(n) + 1);
  for (int j = 0; j <= n; ++j) prev[static_cast<size_t>(j)] = j;
  for (int i = 1; i <= m; ++i) {
    cur[0] = i;
    int row_min = cur[0];
    for (int j = 1; j <= n; ++j) {
      int cost = a[static_cast<size_t>(j - 1)] == b[static_cast<size_t>(i - 1)]
                     ? 0
                     : 1;
      cur[static_cast<size_t>(j)] =
          std::min({prev[static_cast<size_t>(j)] + 1,
                    cur[static_cast<size_t>(j - 1)] + 1,
                    prev[static_cast<size_t>(j - 1)] + cost});
      row_min = std::min(row_min, cur[static_cast<size_t>(j)]);
    }
    if (row_min > max_distance) return max_distance + 1;
    std::swap(prev, cur);
  }
  return std::min(prev[static_cast<size_t>(n)], max_distance + 1);
}

}  // namespace stir::text
