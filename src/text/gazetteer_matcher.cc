#include "text/gazetteer_matcher.h"

#include <algorithm>

#include "common/string_util.h"
#include "text/normalize.h"

namespace stir::text {

namespace {

/// Hand-maintained country aliases for the two built-in gazetteers.
struct CountryAlias {
  const char* alias;
  const char* canonical;
};
constexpr CountryAlias kCountryAliases[] = {
    {"korea", "South Korea"},
    {"south korea", "South Korea"},
    {"republic of korea", "South Korea"},
    {"rok", "South Korea"},
    {"usa", "United States"},
    {"us", "United States"},
    {"united states", "United States"},
    {"america", "United States"},
    {"uk", "United Kingdom"},
    {"united kingdom", "United Kingdom"},
    {"england", "United Kingdom"},
    {"japan", "Japan"},
    {"china", "China"},
    {"france", "France"},
    {"germany", "Germany"},
    {"australia", "Australia"},
    {"canada", "Canada"},
    {"brazil", "Brazil"},
};

size_t CountTokens(const std::string& phrase) {
  return static_cast<size_t>(
             std::count(phrase.begin(), phrase.end(), ' ')) + 1;
}

}  // namespace

GazetteerMatcher::GazetteerMatcher(const geo::AdminDb* db) : db_(db) {
  for (const geo::Region& region : db_->regions()) {
    std::string county = NormalizeFreeText(region.county);
    AddPhrase(county, PhraseKind::kCounty, region.id, region.county);
    for (const std::string& alias : region.aliases) {
      AddPhrase(NormalizeFreeText(alias), PhraseKind::kCounty, region.id,
                region.county);
    }
    std::string state = NormalizeFreeText(region.state);
    AddPhrase(state, PhraseKind::kState, geo::kInvalidRegion, region.state);
    std::string country = NormalizeFreeText(region.country);
    AddPhrase(country, PhraseKind::kCountry, geo::kInvalidRegion,
              region.country);
  }
  for (const CountryAlias& alias : kCountryAliases) {
    AddPhrase(alias.alias, PhraseKind::kCountry, geo::kInvalidRegion,
              alias.canonical);
  }
  // Hangul spellings of Korean first-level divisions, for gazetteers
  // that contain them ("서울 마포구" must parse like "Seoul Mapo-gu").
  for (size_t i = 0; i < geo::internal_admin_data::kHangulStateAliasCount;
       ++i) {
    const auto& alias = geo::internal_admin_data::kHangulStateAliases[i];
    if (!db_->CountiesInState(alias.state).empty()) {
      AddPhrase(NormalizeFreeText(alias.hangul), PhraseKind::kState,
                geo::kInvalidRegion, alias.state);
    }
  }
  // Fuzzy pool: unambiguous single-token county names long enough that an
  // edit-distance-1 hit is very unlikely to be a false positive.
  for (const auto& [phrase, entry] : table_) {
    if (entry.kind == PhraseKind::kCounty && phrase.size() >= 6 &&
        phrase.find(' ') == std::string::npos) {
      fuzzy_pool_.push_back(phrase);
    }
  }
  std::sort(fuzzy_pool_.begin(), fuzzy_pool_.end());
}

void GazetteerMatcher::AddPhrase(const std::string& phrase, PhraseKind kind,
                                 geo::RegionId region,
                                 const std::string& canonical) {
  if (phrase.empty()) return;
  max_phrase_tokens_ = std::max(max_phrase_tokens_, CountTokens(phrase));
  auto it = table_.find(phrase);
  if (it == table_.end()) {
    TableEntry entry;
    entry.kind = kind;
    entry.canonical = canonical;
    if (region != geo::kInvalidRegion) entry.regions.push_back(region);
    table_.emplace(phrase, std::move(entry));
    return;
  }
  TableEntry& entry = it->second;
  // County entries win over state/country homonyms (a district lookup is
  // more specific); within counties, accumulate ambiguous candidates.
  if (kind == PhraseKind::kCounty) {
    if (entry.kind != PhraseKind::kCounty) {
      entry.kind = PhraseKind::kCounty;
      entry.regions.clear();
      entry.canonical = canonical;
    }
    if (region != geo::kInvalidRegion &&
        std::find(entry.regions.begin(), entry.regions.end(), region) ==
            entry.regions.end()) {
      entry.regions.push_back(region);
    }
  }
}

std::vector<PhraseMatch> GazetteerMatcher::Match(
    const std::vector<std::string>& tokens) const {
  std::vector<PhraseMatch> matches;
  size_t i = 0;
  while (i < tokens.size()) {
    bool matched = false;
    size_t longest = std::min(max_phrase_tokens_, tokens.size() - i);
    for (size_t len = longest; len >= 1 && !matched; --len) {
      std::string phrase = tokens[i];
      for (size_t k = 1; k < len; ++k) {
        phrase += ' ';
        phrase += tokens[i + k];
      }
      auto it = table_.find(phrase);
      if (it == table_.end()) continue;
      PhraseMatch match;
      match.kind = it->second.kind;
      match.token_begin = i;
      match.token_count = len;
      match.regions = it->second.regions;
      match.name = it->second.canonical;
      matches.push_back(std::move(match));
      i += len;
      matched = true;
    }
    if (matched) continue;

    // Fuzzy pass: single token, length >= 6, edit distance exactly 1 to a
    // unique pool entry.
    const std::string& token = tokens[i];
    if (token.size() >= 6) {
      const std::string* hit = nullptr;
      bool unique = true;
      for (const std::string& candidate : fuzzy_pool_) {
        // Cheap length filter before the DP.
        if (candidate.size() + 1 < token.size() ||
            token.size() + 1 < candidate.size()) {
          continue;
        }
        if (BoundedEditDistance(token, candidate, 1) == 1) {
          if (hit != nullptr) {
            unique = false;
            break;
          }
          hit = &candidate;
        }
      }
      if (hit != nullptr && unique) {
        auto it = table_.find(*hit);
        PhraseMatch match;
        match.kind = it->second.kind;
        match.token_begin = i;
        match.token_count = 1;
        match.regions = it->second.regions;
        match.name = it->second.canonical;
        match.fuzzy = true;
        matches.push_back(std::move(match));
        ++i;
        continue;
      }
    }
    ++i;
  }
  return matches;
}

}  // namespace stir::text
