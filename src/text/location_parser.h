#ifndef STIR_TEXT_LOCATION_PARSER_H_
#define STIR_TEXT_LOCATION_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "geo/admin_db.h"
#include "text/gazetteer_matcher.h"

namespace stir::text {

/// Quality classes for free-text profile locations, mirroring the paper's
/// refinement taxonomy (§III.B): users with vague ("my home", "Earth"),
/// insufficient ("Seoul", "Korea" — first-level only) or ambiguous ("Gold
/// Coast Australia / <Seoul district>") locations are removed; only
/// well-defined locations (a unique second-level district, or literal GPS
/// coordinates) survive.
enum class LocationQuality {
  kEmpty = 0,        ///< Blank profile field.
  kVague = 1,        ///< No gazetteer signal at all.
  kInsufficient = 2, ///< Only a country or first-level division matched.
  kAmbiguous = 3,    ///< Several distinct districts are plausible.
  kWellDefined = 4,  ///< Exactly one district.
};

const char* LocationQualityToString(LocationQuality quality);

/// Parser output. `region` is valid iff quality == kWellDefined;
/// `candidates` carries the conflicting districts for kAmbiguous.
struct ParsedLocation {
  LocationQuality quality = LocationQuality::kEmpty;
  geo::RegionId region = geo::kInvalidRegion;
  std::vector<geo::RegionId> candidates;
  std::string normalized;  ///< Normalized input (diagnostics).
  bool from_gps = false;   ///< Resolved from literal coordinates.
  bool fuzzy = false;      ///< Needed an edit-distance-1 gazetteer match.
};

/// Parses the free-text location users type into their profiles (paper
/// Fig. 3): handles "State District" forms, district-only forms with
/// cross-state disambiguation ("Jung-gu" alone is ambiguous, "Busan
/// Jung-gu" is not), literal GPS coordinates, multi-location strings
/// split on '/', '|', ';', and noise.
class LocationParser {
 public:
  /// `db` must outlive the parser.
  explicit LocationParser(const geo::AdminDb* db);

  ParsedLocation Parse(std::string_view raw) const;

  const geo::AdminDb& db() const { return *db_; }

 private:
  ParsedLocation ParseSingle(std::string_view piece) const;
  /// Attempts to read "lat,lng" (or space-separated) literal coordinates.
  bool TryParseGps(std::string_view piece, geo::LatLng* out) const;

  const geo::AdminDb* db_;
  GazetteerMatcher matcher_;
};

}  // namespace stir::text

#endif  // STIR_TEXT_LOCATION_PARSER_H_
