#ifndef STIR_TEXT_NORMALIZE_H_
#define STIR_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace stir::text {

/// Canonical form used for gazetteer matching: ASCII-lowercased,
/// punctuation (except intra-word hyphens) replaced by spaces, whitespace
/// collapsed. Non-ASCII bytes pass through so UTF-8 names keep working.
std::string NormalizeFreeText(std::string_view text);

/// Splits normalized text into word tokens (keeps intra-word hyphens:
/// "yangcheon-gu" is one token).
std::vector<std::string> Tokenize(std::string_view text);

/// Tokenizer for tweet bodies used by TF-IDF and place-mention matching:
/// lowercases, strips URLs, @mentions pass through without the '@',
/// '#' hashtags keep their word, intra-word hyphens and apostrophes
/// survive ("yangcheon-gu", "don't").
std::vector<std::string> TokenizeTweet(std::string_view text);

/// Levenshtein distance with early exit once the distance exceeds
/// `max_distance` (returns max_distance + 1 in that case).
int BoundedEditDistance(std::string_view a, std::string_view b,
                        int max_distance);

}  // namespace stir::text

#endif  // STIR_TEXT_NORMALIZE_H_
