#ifndef STIR_COMMON_FAULT_H_
#define STIR_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace stir::common {

/// Configuration for a deterministic fault schedule. Every knob is keyed
/// on the *call index* the caller supplies (plus the retry attempt), so a
/// given (seed, index, attempt) triple always yields the same decision —
/// under any thread count, in any interleaving. Callers that process work
/// items with stable identities (e.g. the refinement pipeline, which keys
/// on the tweet's dataset index) therefore see byte-identical fault
/// placement whether they run serially or sharded.
struct FaultInjectorOptions {
  /// Salt for the hash that drives the stochastic knobs.
  uint64_t seed = 0;
  /// Per-attempt probability of an injected Unavailable ("the request
  /// failed; an immediate retry may succeed"). 0 disables.
  double error_rate = 0.0;
  /// Burst outage: call indices in [burst_start, burst_start+burst_length)
  /// fail with Unavailable regardless of attempt (retries land inside the
  /// same outage window, modelling a hard service outage). burst_start < 0
  /// disables.
  int64_t burst_start = -1;
  int64_t burst_length = 0;
  /// > 0 repeats the outage every `burst_period` indices (the window is
  /// applied to index modulo period).
  int64_t burst_period = 0;
  /// Simulated quota exhaustion: call indices >= exhaust_after fail with
  /// ResourceExhausted (not retryable by default). < 0 disables.
  int64_t exhaust_after = -1;
  /// Per-attempt probability of a latency spike. The spike does not fail
  /// the call; it charges `latency_spike_ms` of simulated latency, which
  /// the injector accounts so benches can price resilience overhead.
  double latency_spike_rate = 0.0;
  int64_t latency_spike_ms = 100;
  /// Deterministic hard crash: the process exits (std::_Exit, no cleanup
  /// — the point is to tear state mid-flight) when the Nth instrumented
  /// lookup starts. The kill-resume harness uses this to die at exact,
  /// reproducible points. < 1 disables. Crash scheduling deliberately
  /// does NOT count as "enabled()": a run that only crashes must behave
  /// byte-identically to a clean run right up to the exit.
  int64_t crash_after = -1;
};

/// Uniform double in [0, 1) from (seed, salt, index, attempt): the shared
/// deterministic draw behind every fault schedule in the tree, from the
/// simulated-service injector below down to io::FaultFs at the syscall
/// boundary. Identical inputs yield identical draws on every platform.
double FaultUniformAt(uint64_t seed, uint64_t salt, int64_t index,
                      int attempt);

/// Outcome of one fault decision: an injected error (or OK) plus the
/// simulated latency charged to the attempt.
struct FaultDecision {
  Status status;           ///< OK, or the injected failure.
  int64_t latency_ms = 0;  ///< Simulated latency charged to this attempt.

  bool injected() const { return !status.ok(); }
};

/// Seeded-deterministic fault injector for the simulated services
/// (ReverseGeocoder, Search/Streaming APIs). `Decide` is a pure function
/// of (options, index, attempt); the injector only accumulates counters,
/// so one instance can be shared across worker threads and replayed
/// exactly. Accounting totals are exact once concurrent callers return.
class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorOptions options = {});

  /// True when any fault knob is active (callers may skip the hook
  /// entirely otherwise). Crash scheduling is excluded — see
  /// crash_enabled().
  bool enabled() const;

  /// True when a deterministic crash point is armed.
  bool crash_enabled() const { return options_.crash_after >= 1; }

  /// Instrumentation hook for crash points: counts one lookup and
  /// hard-exits the process (status 42) when the armed crash point is
  /// reached. No-op unless crash_enabled().
  void OnLookupMaybeCrash();

  /// Exit status used by the deterministic crash point (distinct from
  /// assertion/abort codes so the harness can tell planned deaths apart).
  static constexpr int kCrashExitStatus = 42;

  /// Fault decision for retry `attempt` (0-based) of call `index`.
  /// Deterministic: identical inputs yield identical decisions on every
  /// thread of every run.
  FaultDecision Decide(int64_t index, int attempt = 0) const;

  /// Decision at the next internal sequence index — for call sites whose
  /// call order is itself deterministic (serial loops). Returns the
  /// decision for attempt 0 of the claimed index.
  FaultDecision Next();

  /// Claims and returns the next internal sequence index without
  /// deciding (callers that retry want a stable index across attempts).
  int64_t NextIndex();

  /// Current value of the internal sequence counter (indices claimed so
  /// far). Checkpoints persist this so a resumed run's Next()/NextIndex()
  /// stream continues where the crashed run left off.
  int64_t next_index_value() const {
    return next_index_.load(std::memory_order_relaxed);
  }
  /// Restores the internal sequence counter from a checkpoint.
  void RestoreNextIndex(int64_t value) {
    next_index_.store(value, std::memory_order_relaxed);
  }

  const FaultInjectorOptions& options() const { return options_; }

  /// Total decisions taken (every attempt counts).
  int64_t decisions() const {
    return decisions_.load(std::memory_order_relaxed);
  }
  /// Total injected failures across all attempts. When a caller retries
  /// per RetryPolicy, this equals its retried count plus its terminal
  /// fault count — the invariant the exactness tests pin down.
  int64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }
  int64_t latency_spikes() const {
    return latency_spikes_.load(std::memory_order_relaxed);
  }
  /// Sum of simulated latency charged (spikes only; backoff is accounted
  /// by the retrying caller).
  int64_t simulated_latency_ms() const {
    return simulated_latency_ms_.load(std::memory_order_relaxed);
  }
  void ResetCounters();

 private:
  FaultInjectorOptions options_;
  std::atomic<int64_t> next_index_{0};
  std::atomic<int64_t> lookups_started_{0};
  mutable std::atomic<int64_t> decisions_{0};
  mutable std::atomic<int64_t> faults_injected_{0};
  mutable std::atomic<int64_t> latency_spikes_{0};
  mutable std::atomic<int64_t> simulated_latency_ms_{0};
};

}  // namespace stir::common

#endif  // STIR_COMMON_FAULT_H_
