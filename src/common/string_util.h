#ifndef STIR_COMMON_STRING_UTIL_H_
#define STIR_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace stir {

/// Splits `text` on `delim`, keeping empty fields ("a##b" -> {"a","","b"}).
/// An empty input yields a single empty field, matching common CSV
/// semantics.
std::vector<std::string> Split(std::string_view text, char delim);

/// Splits and drops empty fields after trimming whitespace from each piece.
std::vector<std::string> SplitAndTrim(std::string_view text, char delim);

/// Joins `pieces` with `delim` between them.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimView(std::string_view text);
std::string Trim(std::string_view text);

/// ASCII lowercase / uppercase (bytes >= 0x80 pass through unchanged, so
/// UTF-8 content is preserved).
std::string ToLower(std::string_view text);
std::string ToUpper(std::string_view text);

/// True when `text` contains `needle` case-insensitively (ASCII folding).
bool ContainsIgnoreCase(std::string_view text, std::string_view needle);

/// True when the two strings are equal under ASCII case folding.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Parses a decimal integer / floating point number; returns nullopt on any
/// trailing garbage or empty input.
std::optional<int64_t> ParseInt64(std::string_view text);
std::optional<double> ParseDouble(std::string_view text);

/// printf-style formatting into a std::string (GCC 12 lacks std::format).
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Replaces all occurrences of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

}  // namespace stir

#endif  // STIR_COMMON_STRING_UTIL_H_
