#include "common/random.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace stir {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(sm);
}

uint64_t Rng::Next() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) {
  STIR_CHECK_LT(lo, hi);
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  STIR_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  uint64_t limit = std::numeric_limits<uint64_t>::max() -
                   (std::numeric_limits<uint64_t>::max() % range + 1) % range;
  uint64_t draw;
  do {
    draw = Next();
  } while (draw > limit && limit != std::numeric_limits<uint64_t>::max());
  return lo + static_cast<int64_t>(draw % range);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; draws a fresh pair each call (no cached spare) so the
  // stream stays position-independent.
  double u1 = Uniform();
  double u2 = Uniform();
  while (u1 <= 0.0) u1 = Uniform();
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Exponential(double lambda) {
  STIR_CHECK_GT(lambda, 0.0);
  double u = Uniform();
  while (u <= 0.0) u = Uniform();
  return -std::log(u) / lambda;
}

int64_t Rng::Poisson(double lambda) {
  STIR_CHECK_GE(lambda, 0.0);
  if (lambda == 0.0) return 0;
  if (lambda > 64.0) {
    // Normal approximation with continuity correction.
    double draw = Normal(lambda, std::sqrt(lambda));
    return draw < 0.0 ? 0 : static_cast<int64_t>(draw + 0.5);
  }
  double limit = std::exp(-lambda);
  double product = Uniform();
  int64_t count = 0;
  while (product > limit) {
    product *= Uniform();
    ++count;
  }
  return count;
}

int64_t Rng::Zipf(int64_t n, double s) {
  ZipfDistribution dist(n, s);
  return dist.Sample(*this);
}

Rng Rng::Fork(uint64_t salt) {
  uint64_t mix = s_[0] ^ Rotl(salt, 13) ^ 0xA5A5A5A5DEADBEEFULL;
  // Advance our own state so successive forks with the same salt differ.
  mix ^= Next();
  return Rng(mix);
}

ZipfDistribution::ZipfDistribution(int64_t n, double s) : n_(n), s_(s) {
  STIR_CHECK_GE(n, 1);
  STIR_CHECK_GT(s, 0.0);
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    total += std::pow(static_cast<double>(k), -s);
    cdf_[static_cast<size_t>(k - 1)] = total;
  }
  for (double& c : cdf_) c /= total;
}

int64_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.Uniform();
  size_t lo = 0;
  size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<int64_t>(lo) + 1;
}

DiscreteDistribution::DiscreteDistribution(const std::vector<double>& weights) {
  STIR_CHECK(!weights.empty());
  size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    STIR_CHECK_GE(w, 0.0);
    total += w;
  }
  normalized_.resize(n);
  if (total <= 0.0) {
    for (size_t i = 0; i < n; ++i) normalized_[i] = 1.0 / static_cast<double>(n);
  } else {
    for (size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;
  }

  // Vose's alias method.
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<size_t> small, large;
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    size_t s = small.back();
    small.pop_back();
    size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (size_t i : large) prob_[i] = 1.0;
  for (size_t i : small) prob_[i] = 1.0;
}

size_t DiscreteDistribution::Sample(Rng& rng) const {
  size_t i = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(prob_.size()) - 1));
  return rng.Uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace stir
