#ifndef STIR_COMMON_LOGGING_H_
#define STIR_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace stir {

/// Severity levels for the library logger, ordered by increasing severity.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Returns "DEBUG", "INFO", ... for `level`.
const char* LogLevelToString(LogLevel level);

/// Global minimum severity; messages below it are dropped. Defaults to
/// kInfo. Reads and writes are atomic, and sink writes are serialized, so
/// parallel pipeline stages may log (and even retune the level)
/// concurrently without tearing or interleaved lines.
void SetMinLogLevel(LogLevel level);
LogLevel GetMinLogLevel();

namespace internal_logging {

/// Stream-style log message that emits on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Turns the ostream& produced by a log expression into void so the
/// ternary in the macros below type-checks; `&` binds looser than `<<`,
/// letting callers chain stream insertions (the glog idiom).
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

#define STIR_LOG(level)                                               \
  (::stir::LogLevel::k##level < ::stir::GetMinLogLevel())             \
      ? (void)0                                                       \
      : ::stir::internal_logging::Voidify() &                         \
            ::stir::internal_logging::LogMessage(                     \
                ::stir::LogLevel::k##level, __FILE__, __LINE__)       \
                .stream()

/// Fatal assertion used for programmer errors (invariant violations),
/// enabled in all build modes.
#define STIR_CHECK(cond)                                              \
  (cond) ? (void)0                                                    \
         : ::stir::internal_logging::Voidify() &                      \
               ::stir::internal_logging::LogMessage(                  \
                   ::stir::LogLevel::kFatal, __FILE__, __LINE__)      \
                   .stream()                                          \
                   << "Check failed: " #cond " "

#define STIR_CHECK_EQ(a, b) STIR_CHECK((a) == (b))
#define STIR_CHECK_NE(a, b) STIR_CHECK((a) != (b))
#define STIR_CHECK_LT(a, b) STIR_CHECK((a) < (b))
#define STIR_CHECK_LE(a, b) STIR_CHECK((a) <= (b))
#define STIR_CHECK_GT(a, b) STIR_CHECK((a) > (b))
#define STIR_CHECK_GE(a, b) STIR_CHECK((a) >= (b))

}  // namespace stir

#endif  // STIR_COMMON_LOGGING_H_
