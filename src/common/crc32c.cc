#include "common/crc32c.h"

#include <array>

namespace stir {

namespace {

/// Table for the reflected Castagnoli polynomial 0x82F63B78, built once
/// at static-init time (256 entries, byte-at-a-time form).
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t state, std::string_view data) {
  const std::array<uint32_t, 256>& table = Table();
  for (char c : data) {
    state = (state >> 8) ^ table[(state ^ static_cast<unsigned char>(c)) & 0xFFu];
  }
  return state;
}

uint32_t Crc32c(std::string_view data) {
  return Crc32cFinish(Crc32cExtend(kCrc32cInit, data));
}

}  // namespace stir
