#ifndef STIR_COMMON_CLOCK_H_
#define STIR_COMMON_CLOCK_H_

#include <cstdint>
#include <string>

namespace stir {

/// Seconds since the simulation epoch. The library never reads the wall
/// clock; all timestamps come from generators or from a SimClock that the
/// harness advances, keeping every run reproducible.
using SimTime = int64_t;

inline constexpr SimTime kSecondsPerMinute = 60;
inline constexpr SimTime kSecondsPerHour = 3600;
inline constexpr SimTime kSecondsPerDay = 86400;

/// Simulated clock for drivers (crawler rate limits, streaming APIs,
/// event detectors). Advancing is explicit; nothing moves time implicitly.
class SimClock {
 public:
  explicit SimClock(SimTime start = 0) : now_(start) {}

  SimTime Now() const { return now_; }
  void Advance(SimTime seconds) { now_ += seconds; }
  void Set(SimTime t) { now_ = t; }

 private:
  SimTime now_;
};

/// Hour-of-day in [0, 24) for a timestamp.
inline int HourOfDay(SimTime t) {
  SimTime s = ((t % kSecondsPerDay) + kSecondsPerDay) % kSecondsPerDay;
  return static_cast<int>(s / kSecondsPerHour);
}

/// The shared night window [kNightStartHour, 24) ∪ [0, kNightEndHour):
/// the hours when people overwhelmingly post from home rather than from
/// work or leisure spots. One definition used by both the synthetic
/// mobility model (twitter::MobilityModelOptions::night_home_bias) and
/// the diurnal home inferrer (stir::infer), so the generator's signal
/// and the estimator's prior can never silently disagree.
inline constexpr int kNightStartHour = 21;
inline constexpr int kNightEndHour = 6;

inline constexpr bool IsNightHour(int hour) {
  return hour >= kNightStartHour || hour < kNightEndHour;
}

/// Day index since the epoch (floor division).
inline int64_t DayIndex(SimTime t) {
  return t >= 0 ? t / kSecondsPerDay : (t - kSecondsPerDay + 1) / kSecondsPerDay;
}

/// "dD hh:mm:ss" rendering for logs and reports.
inline std::string FormatSimTime(SimTime t) {
  int64_t day = DayIndex(t);
  SimTime rem = ((t % kSecondsPerDay) + kSecondsPerDay) % kSecondsPerDay;
  int h = static_cast<int>(rem / kSecondsPerHour);
  int m = static_cast<int>((rem % kSecondsPerHour) / kSecondsPerMinute);
  int s = static_cast<int>(rem % kSecondsPerMinute);
  char buf[48];
  snprintf(buf, sizeof(buf), "d%lld %02d:%02d:%02d",
           static_cast<long long>(day), h, m, s);
  return buf;
}

}  // namespace stir

#endif  // STIR_COMMON_CLOCK_H_
