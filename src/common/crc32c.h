#ifndef STIR_COMMON_CRC32C_H_
#define STIR_COMMON_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace stir {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected) over bytes.
/// The integrity check used by every durable artifact in the tree: the
/// io journal record frames, atomic snapshot files, and the column
/// store's v2 container (DESIGN.md §9). Stable across platforms.
uint32_t Crc32c(std::string_view data);

/// Incremental form: feeds `data` into a running checksum. Start from
/// `kCrc32cInit` and finish with Crc32cFinish, or just call Crc32c for
/// one-shot use.
inline constexpr uint32_t kCrc32cInit = 0xFFFFFFFFu;
uint32_t Crc32cExtend(uint32_t state, std::string_view data);
inline uint32_t Crc32cFinish(uint32_t state) { return state ^ 0xFFFFFFFFu; }

}  // namespace stir

#endif  // STIR_COMMON_CRC32C_H_
