#ifndef STIR_COMMON_THREAD_POOL_H_
#define STIR_COMMON_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"

namespace stir::common {

/// Fixed-size worker pool for the parallel study pipeline. Tasks are
/// FIFO-scheduled onto `num_threads` workers; with zero threads the pool
/// degenerates to inline execution on the submitting thread, so callers
/// can treat "no parallelism" as just another pool size. Destruction
/// drains the queue (every submitted task runs) before joining.
///
/// With a `metrics` registry the pool reports its runtime behaviour
/// (DESIGN.md §8): counters `pool.tasks_submitted` / `pool.tasks_completed`
/// and per-worker `pool.worker.<i>.tasks` / `pool.worker.<i>.busy_us`,
/// gauges `pool.queue_depth` (live) and `pool.queue_depth_max`
/// (high-water), histograms `pool.queue_wait_us` and `pool.task_run_us`.
/// A null registry keeps every code path timing-free.
class ThreadPool {
 public:
  /// `num_threads` <= 0 creates an inline pool (no workers). `metrics`
  /// (optional, not owned) must outlive the pool.
  explicit ThreadPool(int num_threads,
                      obs::MetricsRegistry* metrics = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for an inline pool).
  int size() const { return static_cast<int>(workers_.size()); }

  /// Schedules `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` surface from future.get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Schedule([task] { (*task)(); });
    return future;
  }

 private:
  struct QueuedTask {
    std::function<void()> fn;
    /// Enqueue time; only sampled when metrics are attached.
    std::chrono::steady_clock::time_point enqueued;
  };

  void Schedule(std::function<void()> fn);
  void WorkerLoop(size_t worker_index);
  /// Runs one task, charging run time / completion to `worker_index`
  /// (worker slots are resolved in the constructor; the inline path uses
  /// the shared counters only).
  void RunTask(QueuedTask task, size_t worker_index);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedTask> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  // Observability (all null when no registry is attached).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* tasks_submitted_ = nullptr;
  obs::Counter* tasks_completed_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Gauge* queue_depth_max_ = nullptr;
  obs::Histogram* queue_wait_us_ = nullptr;
  obs::Histogram* task_run_us_ = nullptr;
  std::vector<obs::Counter*> worker_tasks_;
  std::vector<obs::Counter*> worker_busy_us_;
};

/// Number of contiguous shards ParallelFor/ParallelForShards split `n`
/// items into for `pool`: min(n, worker count), at least 1. Shard
/// boundaries depend only on (n, shard count), never on scheduling, which
/// is what makes ordered merges of per-shard results deterministic.
size_t NumShards(const ThreadPool* pool, size_t n);

/// Runs `fn(shard, begin, end)` for each of NumShards(pool, n) contiguous,
/// disjoint index ranges covering [0, n), in parallel on `pool` (inline
/// when `pool` is null or has no workers). Blocks until all shards finish;
/// the first exception thrown by any shard is rethrown after the barrier.
void ParallelForShards(
    ThreadPool* pool, size_t n,
    const std::function<void(size_t shard, size_t begin, size_t end)>& fn);

/// Runs `fn(i)` for every i in [0, n), chunked per ParallelForShards.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t i)>& fn);

}  // namespace stir::common

#endif  // STIR_COMMON_THREAD_POOL_H_
