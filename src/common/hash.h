#ifndef STIR_COMMON_HASH_H_
#define STIR_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace stir {

/// 64-bit FNV-1a over bytes; stable across platforms, used for string
/// interning and deterministic salts.
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// Strong 64-bit integer mixer (splitmix64 finalizer).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Combines two 64-bit hashes (boost-style with a 64-bit constant).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
}

}  // namespace stir

#endif  // STIR_COMMON_HASH_H_
