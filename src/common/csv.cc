#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace stir {

namespace {

bool NeedsQuoting(std::string_view field, const CsvOptions& options) {
  for (char c : field) {
    if (c == options.delimiter || c == options.quote || c == '\n' ||
        c == '\r') {
      return true;
    }
  }
  return false;
}

}  // namespace

std::string FormatCsvRow(const std::vector<std::string>& fields,
                         const CsvOptions& options) {
  std::string row;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) row.push_back(options.delimiter);
    const std::string& field = fields[i];
    if (NeedsQuoting(field, options)) {
      row.push_back(options.quote);
      for (char c : field) {
        row.push_back(c);
        if (c == options.quote) row.push_back(options.quote);
      }
      row.push_back(options.quote);
    } else {
      row.append(field);
    }
  }
  return row;
}

StatusOr<std::vector<std::string>> ParseCsvRow(std::string_view line,
                                               const CsvOptions& options) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == options.quote) {
        if (i + 1 < line.size() && line[i + 1] == options.quote) {
          current.push_back(options.quote);
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        current.push_back(c);
        ++i;
      }
    } else if (c == options.quote && current.empty()) {
      in_quotes = true;
      ++i;
    } else if (c == options.delimiter) {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
    } else {
      current.push_back(c);
      ++i;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  fields.push_back(std::move(current));
  return fields;
}

StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view text, const CsvOptions& options) {
  std::vector<std::vector<std::string>> rows;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line;
    if (end == std::string_view::npos) {
      line = text.substr(start);
      start = text.size() + 1;
    } else {
      line = text.substr(start, end - start);
      start = end + 1;
    }
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    STIR_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                          ParseCsvRow(line, options));
    rows.push_back(std::move(fields));
  }
  return rows;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  for (const auto& row : rows) {
    out << FormatCsvRow(row, options) << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), options);
}

}  // namespace stir
