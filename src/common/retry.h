#ifndef STIR_COMMON_RETRY_H_
#define STIR_COMMON_RETRY_H_

#include <cstdint>
#include <mutex>

#include "common/status.h"
#include "obs/metrics.h"

namespace stir::common {

/// Knobs for retrying a fallible service call. Backoff is *simulated*
/// (accounted in milliseconds, never slept), keeping faulty runs exactly
/// reproducible and fast; jitter is derived from (seed, attempt, key) so
/// the schedule is deterministic under any thread count.
struct RetryPolicyOptions {
  /// Total attempts including the first; 1 disables retries.
  int max_attempts = 3;
  /// Backoff before retry k (1-based) is base * multiplier^(k-1), capped.
  int64_t base_backoff_ms = 100;
  double multiplier = 2.0;
  int64_t max_backoff_ms = 10'000;
  /// Adds up to `jitter` fraction of the capped backoff, deterministically
  /// per (seed, attempt, key). 0 disables.
  double jitter = 0.1;
  uint64_t seed = 0;
  /// Whether ResourceExhausted counts as retryable. Off by default: a
  /// spent quota will not recover within a retry loop, unlike a rate
  /// limit window.
  bool retry_resource_exhausted = false;
};

/// Retryable-status classification + deterministic backoff schedule.
/// Stateless and cheap to copy; safe to share across threads.
class RetryPolicy {
 public:
  explicit RetryPolicy(RetryPolicyOptions options = {});

  /// Transient-failure classification: Unavailable and IOError are
  /// retryable; everything else (bad input, missing data, spent quota,
  /// logic errors) is not.
  static bool IsRetryable(StatusCode code);

  /// True when a call that has already made `attempts_made` attempts and
  /// just failed with `status` should try again.
  bool ShouldRetry(const Status& status, int attempts_made) const;

  /// Simulated backoff in ms before retry `attempt` (1-based), including
  /// deterministic jitter keyed on `key` (callers pass their call index).
  int64_t BackoffMs(int attempt, uint64_t key = 0) const;

  const RetryPolicyOptions& options() const { return options_; }

 private:
  RetryPolicyOptions options_;
};

/// Knobs for the circuit breaker. Cooldown is measured in *rejected
/// calls* rather than wall time, keeping the state machine deterministic
/// for a fixed call sequence.
struct CircuitBreakerOptions {
  /// Consecutive failures that trip the breaker open.
  int failure_threshold = 5;
  /// Requests rejected while open before the breaker half-opens to probe.
  int64_t cooldown_rejections = 50;
  /// Consecutive successes in half-open that close the breaker.
  int success_threshold = 2;
  /// Optional metrics sink (not owned; must outlive the breaker). Reports
  /// state transitions as counters `breaker.opened` / `breaker.half_opened`
  /// / `breaker.closed` plus `breaker.rejected` (DESIGN.md §8).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Minimal three-state circuit breaker (closed -> open -> half-open).
/// Thread-safe; all transitions happen under one mutex. Note that under
/// concurrency the *placement* of trips depends on call interleaving, so
/// pipelines that guarantee bit-identical parallel output leave the
/// breaker disabled (see DESIGN.md §7).
class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  /// True when the protected call may proceed. While open, counts the
  /// rejection and half-opens once `cooldown_rejections` have been
  /// rejected.
  bool AllowRequest();

  /// Reports the outcome of an allowed call.
  void RecordSuccess();
  void RecordFailure();

  State state() const;
  /// Total calls rejected while open.
  int64_t rejected() const;
  /// Times the breaker tripped from closed/half-open to open.
  int64_t times_opened() const;

  const CircuitBreakerOptions& options() const { return options_; }

 private:
  CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int consecutive_successes_ = 0;
  int64_t open_rejections_ = 0;  ///< Rejections in the current open spell.
  int64_t total_rejected_ = 0;
  int64_t times_opened_ = 0;

  // Transition counters (null when no metrics sink is configured).
  obs::Counter* m_opened_ = nullptr;
  obs::Counter* m_half_opened_ = nullptr;
  obs::Counter* m_closed_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
};

const char* CircuitBreakerStateToString(CircuitBreaker::State state);

}  // namespace stir::common

#endif  // STIR_COMMON_RETRY_H_
