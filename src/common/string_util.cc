#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace stir {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::vector<std::string> SplitAndTrim(std::string_view text, char delim) {
  std::vector<std::string> pieces;
  for (const std::string& raw : Split(text, delim)) {
    std::string trimmed = Trim(raw);
    if (!trimmed.empty()) pieces.push_back(std::move(trimmed));
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view delim) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) result.append(delim);
    result.append(pieces[i]);
  }
  return result;
}

std::string_view TrimView(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Trim(std::string_view text) { return std::string(TrimView(text)); }

std::string ToLower(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x80) c = static_cast<char>(std::tolower(u));
  }
  return result;
}

std::string ToUpper(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x80) c = static_cast<char>(std::toupper(u));
  }
  return result;
}

namespace {
char AsciiLower(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return u < 0x80 ? static_cast<char>(std::tolower(u)) : c;
}
}  // namespace

bool ContainsIgnoreCase(std::string_view text, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > text.size()) return false;
  for (size_t i = 0; i + needle.size() <= text.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < needle.size(); ++j) {
      if (AsciiLower(text[i + j]) != AsciiLower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiLower(a[i]) != AsciiLower(b[i])) return false;
  }
  return true;
}

std::optional<int64_t> ParseInt64(std::string_view text) {
  std::string_view trimmed = TrimView(text);
  if (trimmed.empty()) return std::nullopt;
  std::string buf(trimmed);
  char* end = nullptr;
  errno = 0;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<int64_t>(value);
}

std::optional<double> ParseDouble(std::string_view text) {
  std::string_view trimmed = TrimView(text);
  if (trimmed.empty()) return std::nullopt;
  std::string buf(trimmed);
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return result;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string result;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      result.append(text.substr(start));
      break;
    }
    result.append(text.substr(start, pos - start));
    result.append(to);
    start = pos + from.size();
  }
  return result;
}

}  // namespace stir
