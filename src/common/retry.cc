#include "common/retry.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/logging.h"

namespace stir::common {

RetryPolicy::RetryPolicy(RetryPolicyOptions options) : options_(options) {
  STIR_CHECK(options_.max_attempts >= 1);
  STIR_CHECK(options_.base_backoff_ms >= 0);
  STIR_CHECK(options_.multiplier >= 1.0);
}

bool RetryPolicy::IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kIOError;
}

bool RetryPolicy::ShouldRetry(const Status& status, int attempts_made) const {
  if (status.ok()) return false;
  if (attempts_made >= options_.max_attempts) return false;
  if (IsRetryable(status.code())) return true;
  return options_.retry_resource_exhausted &&
         status.code() == StatusCode::kResourceExhausted;
}

int64_t RetryPolicy::BackoffMs(int attempt, uint64_t key) const {
  STIR_CHECK(attempt >= 1);
  double backoff = static_cast<double>(options_.base_backoff_ms) *
                   std::pow(options_.multiplier, attempt - 1);
  backoff = std::min(backoff, static_cast<double>(options_.max_backoff_ms));
  int64_t backoff_ms = static_cast<int64_t>(backoff);
  if (options_.jitter > 0.0 && backoff_ms > 0) {
    uint64_t h = Mix64(options_.seed ^ 0x7C6B5A49382716F5ULL);
    h = Mix64(HashCombine(h, static_cast<uint64_t>(attempt)));
    h = Mix64(HashCombine(h, key));
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    backoff_ms += static_cast<int64_t>(static_cast<double>(backoff_ms) *
                                       options_.jitter * u);
  }
  return backoff_ms;
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options) {
  STIR_CHECK(options_.failure_threshold >= 1);
  STIR_CHECK(options_.cooldown_rejections >= 1);
  STIR_CHECK(options_.success_threshold >= 1);
  if (options_.metrics != nullptr) {
    m_opened_ = options_.metrics->GetCounter("breaker.opened");
    m_half_opened_ = options_.metrics->GetCounter("breaker.half_opened");
    m_closed_ = options_.metrics->GetCounter("breaker.closed");
    m_rejected_ = options_.metrics->GetCounter("breaker.rejected");
  }
}

bool CircuitBreaker::AllowRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != State::kOpen) return true;
  ++total_rejected_;
  obs::IncrementCounter(m_rejected_);
  if (++open_rejections_ >= options_.cooldown_rejections) {
    state_ = State::kHalfOpen;
    consecutive_successes_ = 0;
    obs::IncrementCounter(m_half_opened_);
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen &&
      ++consecutive_successes_ >= options_.success_threshold) {
    state_ = State::kClosed;
    consecutive_successes_ = 0;
    obs::IncrementCounter(m_closed_);
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_successes_ = 0;
  if (state_ == State::kHalfOpen ||
      (state_ == State::kClosed &&
       ++consecutive_failures_ >= options_.failure_threshold)) {
    state_ = State::kOpen;
    consecutive_failures_ = 0;
    open_rejections_ = 0;
    ++times_opened_;
    obs::IncrementCounter(m_opened_);
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int64_t CircuitBreaker::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_rejected_;
}

int64_t CircuitBreaker::times_opened() const {
  std::lock_guard<std::mutex> lock(mu_);
  return times_opened_;
}

const char* CircuitBreakerStateToString(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace stir::common
