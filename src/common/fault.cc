#include "common/fault.h"

#include <cstdlib>

#include "common/hash.h"

namespace stir::common {

namespace {

/// Independent decision streams per knob, decorrelated by salt.
constexpr uint64_t kErrorSalt = 0x9E2F6E15A4C1D3B7ULL;
constexpr uint64_t kLatencySalt = 0x51D7A3E94B8C6F21ULL;

}  // namespace

/// The same construction as splitmix64-seeded draws in common/random, so
/// the stream is stable across platforms.
double FaultUniformAt(uint64_t seed, uint64_t salt, int64_t index,
                      int attempt) {
  uint64_t h = Mix64(seed ^ salt);
  h = Mix64(HashCombine(h, static_cast<uint64_t>(index)));
  h = Mix64(HashCombine(h, static_cast<uint64_t>(attempt)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultInjector::FaultInjector(FaultInjectorOptions options)
    : options_(options) {}

bool FaultInjector::enabled() const {
  return options_.error_rate > 0.0 ||
         (options_.burst_start >= 0 && options_.burst_length > 0) ||
         options_.exhaust_after >= 0 || options_.latency_spike_rate > 0.0;
}

FaultDecision FaultInjector::Decide(int64_t index, int attempt) const {
  decisions_.fetch_add(1, std::memory_order_relaxed);
  FaultDecision decision;

  if (options_.latency_spike_rate > 0.0 &&
      FaultUniformAt(options_.seed, kLatencySalt, index, attempt) <
          options_.latency_spike_rate) {
    decision.latency_ms = options_.latency_spike_ms;
    latency_spikes_.fetch_add(1, std::memory_order_relaxed);
    simulated_latency_ms_.fetch_add(options_.latency_spike_ms,
                                    std::memory_order_relaxed);
  }

  // Deterministic hard failures first: they are attempt-independent, so
  // retries cannot escape them (a real outage / spent quota behaves the
  // same way).
  if (options_.exhaust_after >= 0 && index >= options_.exhaust_after) {
    decision.status =
        Status::ResourceExhausted("injected quota exhaustion at call " +
                                  std::to_string(index));
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }
  if (options_.burst_start >= 0 && options_.burst_length > 0) {
    int64_t position = index;
    if (options_.burst_period > 0) position = index % options_.burst_period;
    if (position >= options_.burst_start &&
        position < options_.burst_start + options_.burst_length) {
      decision.status = Status::Unavailable("injected burst outage at call " +
                                            std::to_string(index));
      faults_injected_.fetch_add(1, std::memory_order_relaxed);
      return decision;
    }
  }
  if (options_.error_rate > 0.0 &&
      FaultUniformAt(options_.seed, kErrorSalt, index, attempt) <
          options_.error_rate) {
    decision.status = Status::Unavailable(
        "injected transient fault at call " + std::to_string(index) +
        " attempt " + std::to_string(attempt));
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

void FaultInjector::OnLookupMaybeCrash() {
  if (!crash_enabled()) return;
  int64_t count = lookups_started_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (count == options_.crash_after) {
    // _Exit, not exit/abort: skip destructors and flushes so the death is
    // as rude as a kill -9 — the recovery path must not rely on any
    // shutdown-time cleanup having happened.
    std::_Exit(static_cast<int>(kCrashExitStatus));
  }
}

FaultDecision FaultInjector::Next() { return Decide(NextIndex(), 0); }

int64_t FaultInjector::NextIndex() {
  return next_index_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::ResetCounters() {
  decisions_.store(0, std::memory_order_relaxed);
  faults_injected_.store(0, std::memory_order_relaxed);
  latency_spikes_.store(0, std::memory_order_relaxed);
  simulated_latency_ms_.store(0, std::memory_order_relaxed);
}

}  // namespace stir::common
