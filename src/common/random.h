#ifndef STIR_COMMON_RANDOM_H_
#define STIR_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace stir {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). All randomness in the library flows through an Rng that the
/// caller seeds, so every dataset, crawl, and simulation is reproducible
/// bit-for-bit across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi). Requires lo < hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with rate `lambda` (> 0).
  double Exponential(double lambda);

  /// Poisson-distributed count with mean `lambda` (>= 0). Uses Knuth's
  /// method for small lambda and a normal approximation above 64.
  int64_t Poisson(double lambda);

  /// Zipf-distributed value in [1, n] with exponent s (> 0): P(k) ~ k^-s.
  /// Uses inversion on the precomputed CDF is avoided; this draws by
  /// rejection-free inversion over the harmonic partial sums computed
  /// lazily per call for small n, so prefer ZipfDistribution for hot loops.
  int64_t Zipf(int64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j =
          static_cast<std::size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child generator; streams are decorrelated by
  /// splitmix64 over (state, salt).
  Rng Fork(uint64_t salt);

 private:
  uint64_t s_[4];
};

/// Precomputed Zipf sampler over [1, n]: P(k) proportional to k^-s.
/// O(log n) per draw via binary search over the CDF.
class ZipfDistribution {
 public:
  ZipfDistribution(int64_t n, double s);

  int64_t Sample(Rng& rng) const;
  int64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  int64_t n_;
  double s_;
  std::vector<double> cdf_;
};

/// Alias-method sampler over arbitrary non-negative weights; O(1) per draw.
/// Indices are 0-based. All-zero weights degenerate to uniform.
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(const std::vector<double>& weights);

  size_t Sample(Rng& rng) const;
  size_t size() const { return prob_.size(); }
  /// Normalized probability of index i (for tests).
  double probability(size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
  std::vector<double> normalized_;
};

}  // namespace stir

#endif  // STIR_COMMON_RANDOM_H_
