#ifndef STIR_COMMON_XML_H_
#define STIR_COMMON_XML_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace stir {

/// Minimal XML document tree, sufficient for the Yahoo-Open-API-shaped
/// reverse geocoding responses the paper's pipeline consumed (Fig. 5):
/// nested elements, attributes, and text content. Not a general XML
/// implementation: no namespaces, DTDs, or processing instructions.
class XmlNode {
 public:
  explicit XmlNode(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  void AddAttribute(std::string key, std::string value) {
    attributes_.emplace_back(std::move(key), std::move(value));
  }
  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }
  /// Returns the attribute value or nullptr.
  const std::string* FindAttribute(std::string_view key) const;

  /// Appends a child element and returns a reference to it.
  XmlNode& AddChild(std::string name);
  /// Appends an already-built child element.
  void AdoptChild(std::unique_ptr<XmlNode> child) {
    children_.push_back(std::move(child));
  }
  const std::vector<std::unique_ptr<XmlNode>>& children() const {
    return children_;
  }
  /// First child with the given element name, or nullptr.
  const XmlNode* FindChild(std::string_view name) const;
  /// Text of the first child with the given name, or "" when absent.
  std::string ChildText(std::string_view name) const;

  /// Serializes the subtree. `indent` < 0 emits a compact single line.
  std::string ToString(int indent = 2) const;

 private:
  void AppendTo(std::string& out, int indent, int depth) const;

  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<XmlNode>> children_;
};

/// Escapes &, <, >, ", ' for use in XML text or attribute values.
std::string XmlEscape(std::string_view text);

/// Parses a single-rooted XML document produced by XmlNode::ToString (or
/// any equally simple document). Skips an optional <?xml ...?> prolog and
/// comments.
StatusOr<std::unique_ptr<XmlNode>> ParseXml(std::string_view text);

}  // namespace stir

#endif  // STIR_COMMON_XML_H_
