#ifndef STIR_COMMON_STATUS_H_
#define STIR_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace stir {

/// Error codes for Status, loosely following the canonical set used by
/// Arrow/RocksDB-style database libraries.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kUnavailable = 7,
  kIOError = 8,
  kInternal = 9,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Cheap to copy in the OK case
/// (no allocation); carries a code + message otherwise. The library does
/// not throw exceptions across API boundaries; fallible operations return
/// Status or StatusOr<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// A Status or a value of type T. Access to the value when the status is
/// not OK aborts in debug builds (assert); callers must check ok() first.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or from an error Status mirrors
  /// absl::StatusOr and keeps call sites readable: `return value;` /
  /// `return Status::NotFound(...)`.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define STIR_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::stir::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Evaluates a StatusOr expression, propagating errors; on success binds
/// the value to `lhs`. `lhs` may include a type declaration.
#define STIR_ASSIGN_OR_RETURN(lhs, expr)                     \
  STIR_ASSIGN_OR_RETURN_IMPL(                                \
      STIR_STATUS_CONCAT(_status_or, __LINE__), lhs, expr)
#define STIR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()
#define STIR_STATUS_CONCAT(a, b) STIR_STATUS_CONCAT_IMPL(a, b)
#define STIR_STATUS_CONCAT_IMPL(a, b) a##b

}  // namespace stir

#endif  // STIR_COMMON_STATUS_H_
