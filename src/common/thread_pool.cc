#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <string>

namespace stir::common {

namespace {

/// Microsecond latency buckets shared by the pool's histograms: spans
/// queue waits of a few µs through multi-second stalls.
std::vector<int64_t> LatencyBucketsUs() {
  return {10, 100, 1'000, 10'000, 100'000, 1'000'000};
}

int64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

ThreadPool::ThreadPool(int num_threads, obs::MetricsRegistry* metrics)
    : metrics_(metrics) {
  if (metrics_ != nullptr) {
    tasks_submitted_ = metrics_->GetCounter("pool.tasks_submitted");
    tasks_completed_ = metrics_->GetCounter("pool.tasks_completed");
    queue_depth_ = metrics_->GetGauge("pool.queue_depth");
    queue_depth_max_ = metrics_->GetGauge("pool.queue_depth_max");
    queue_wait_us_ =
        metrics_->GetHistogram("pool.queue_wait_us", LatencyBucketsUs());
    task_run_us_ =
        metrics_->GetHistogram("pool.task_run_us", LatencyBucketsUs());
  }
  if (num_threads <= 0) return;
  workers_.reserve(static_cast<size_t>(num_threads));
  if (metrics_ != nullptr) {
    worker_tasks_.reserve(static_cast<size_t>(num_threads));
    worker_busy_us_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      std::string prefix = "pool.worker." + std::to_string(i);
      worker_tasks_.push_back(metrics_->GetCounter(prefix + ".tasks"));
      worker_busy_us_.push_back(metrics_->GetCounter(prefix + ".busy_us"));
    }
  }
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunTask(QueuedTask task, size_t worker_index) {
  if (metrics_ == nullptr) {
    task.fn();
    return;
  }
  std::chrono::steady_clock::time_point started =
      std::chrono::steady_clock::now();
  task.fn();
  int64_t run_us = ElapsedUs(started);
  obs::RecordSample(task_run_us_, run_us);
  obs::IncrementCounter(tasks_completed_);
  if (worker_index < worker_tasks_.size()) {
    obs::IncrementCounter(worker_tasks_[worker_index]);
    obs::IncrementCounter(worker_busy_us_[worker_index], run_us);
  }
}

void ThreadPool::Schedule(std::function<void()> fn) {
  obs::IncrementCounter(tasks_submitted_);
  if (workers_.empty()) {
    // Inline pool: the packaged_task captures any exception.
    RunTask(QueuedTask{std::move(fn), {}}, static_cast<size_t>(-1));
    return;
  }
  QueuedTask task{std::move(fn), {}};
  if (metrics_ != nullptr) task.enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    if (queue_depth_ != nullptr) {
      queue_depth_->Add(1);
      queue_depth_max_->SetMax(static_cast<int64_t>(queue_.size()));
    }
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_ != nullptr) queue_depth_->Add(-1);
    }
    if (metrics_ != nullptr) {
      obs::RecordSample(queue_wait_us_, ElapsedUs(task.enqueued));
    }
    RunTask(std::move(task), worker_index);
  }
}

size_t NumShards(const ThreadPool* pool, size_t n) {
  size_t workers = pool != nullptr && pool->size() > 0
                       ? static_cast<size_t>(pool->size())
                       : 1;
  return std::max<size_t>(1, std::min(workers, n));
}

void ParallelForShards(
    ThreadPool* pool, size_t n,
    const std::function<void(size_t shard, size_t begin, size_t end)>& fn) {
  if (n == 0) return;
  size_t shards = NumShards(pool, n);
  // Stable boundaries: the first (n % shards) shards take one extra item.
  size_t base = n / shards;
  size_t extra = n % shards;
  if (shards == 1) {
    fn(0, 0, n);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(shards);
  size_t begin = 0;
  for (size_t shard = 0; shard < shards; ++shard) {
    size_t end = begin + base + (shard < extra ? 1 : 0);
    futures.push_back(
        pool->Submit([&fn, shard, begin, end] { fn(shard, begin, end); }));
    begin = end;
  }
  // Wait for every shard before rethrowing so no shard outlives the call.
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t i)>& fn) {
  ParallelForShards(pool, n,
                    [&fn](size_t /*shard*/, size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) fn(i);
                    });
}

}  // namespace stir::common
