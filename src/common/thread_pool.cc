#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

namespace stir::common {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) return;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  if (workers_.empty()) {
    fn();  // Inline pool: the packaged_task captures any exception.
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
  }
}

size_t NumShards(const ThreadPool* pool, size_t n) {
  size_t workers = pool != nullptr && pool->size() > 0
                       ? static_cast<size_t>(pool->size())
                       : 1;
  return std::max<size_t>(1, std::min(workers, n));
}

void ParallelForShards(
    ThreadPool* pool, size_t n,
    const std::function<void(size_t shard, size_t begin, size_t end)>& fn) {
  if (n == 0) return;
  size_t shards = NumShards(pool, n);
  // Stable boundaries: the first (n % shards) shards take one extra item.
  size_t base = n / shards;
  size_t extra = n % shards;
  if (shards == 1) {
    fn(0, 0, n);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(shards);
  size_t begin = 0;
  for (size_t shard = 0; shard < shards; ++shard) {
    size_t end = begin + base + (shard < extra ? 1 : 0);
    futures.push_back(
        pool->Submit([&fn, shard, begin, end] { fn(shard, begin, end); }));
    begin = end;
  }
  // Wait for every shard before rethrowing so no shard outlives the call.
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t i)>& fn) {
  ParallelForShards(pool, n,
                    [&fn](size_t /*shard*/, size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) fn(i);
                    });
}

}  // namespace stir::common
