#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace stir {

namespace {
std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

/// Serializes sink writes so concurrent log statements never interleave
/// within a line. fprintf is applied under the lock, not message
/// formatting, so contention stays bounded by the write itself.
std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}
}  // namespace

const char* LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}
LogLevel GetMinLogLevel() {
  return g_min_level.load(std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  // Strip the directory part of the path for compact output.
  const char* basename = file_;
  for (const char* p = file_; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  const std::string message = stream_.str();
  {
    std::lock_guard<std::mutex> lock(SinkMutex());
    std::fprintf(stderr, "[%s %s:%d] %s\n", LogLevelToString(level_),
                 basename, line_, message.c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace stir
