#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace stir {

namespace {
LogLevel g_min_level = LogLevel::kInfo;
}  // namespace

const char* LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

void SetMinLogLevel(LogLevel level) { g_min_level = level; }
LogLevel GetMinLogLevel() { return g_min_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  // Strip the directory part of the path for compact output.
  const char* basename = file_;
  for (const char* p = file_; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LogLevelToString(level_), basename,
               line_, stream_.str().c_str());
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace stir
