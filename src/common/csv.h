#ifndef STIR_COMMON_CSV_H_
#define STIR_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace stir {

/// Options shared by the CSV/TSV reader and writer.
struct CsvOptions {
  char delimiter = ',';
  /// Quote fields that contain the delimiter, quotes, or newlines.
  char quote = '"';
};

/// Serializes one row, quoting fields as needed (RFC 4180 style: quotes
/// inside quoted fields are doubled). No trailing newline.
std::string FormatCsvRow(const std::vector<std::string>& fields,
                         const CsvOptions& options = {});

/// Parses a single CSV line into fields. Fails on an unterminated quoted
/// field. Does not handle embedded newlines (rows must be pre-split).
StatusOr<std::vector<std::string>> ParseCsvRow(std::string_view line,
                                               const CsvOptions& options = {});

/// Parses a whole document: splits on '\n' (tolerating trailing '\r') and
/// parses each non-empty line.
StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view text, const CsvOptions& options = {});

/// Writes rows to `path`, one FormatCsvRow per line.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    const CsvOptions& options = {});

/// Reads and parses a CSV file.
StatusOr<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path, const CsvOptions& options = {});

}  // namespace stir

#endif  // STIR_COMMON_CSV_H_
