#include "common/xml.h"

#include <cctype>

namespace stir {

const std::string* XmlNode::FindAttribute(std::string_view key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return &v;
  }
  return nullptr;
}

XmlNode& XmlNode::AddChild(std::string name) {
  children_.push_back(std::make_unique<XmlNode>(std::move(name)));
  return *children_.back();
}

const XmlNode* XmlNode::FindChild(std::string_view name) const {
  for (const auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

std::string XmlNode::ChildText(std::string_view name) const {
  const XmlNode* child = FindChild(name);
  return child != nullptr ? child->text() : std::string();
}

std::string XmlEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

std::string XmlUnescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] == '&') {
      auto try_entity = [&](std::string_view entity, char replacement) {
        if (text.substr(i, entity.size()) == entity) {
          out.push_back(replacement);
          i += entity.size();
          return true;
        }
        return false;
      };
      if (try_entity("&amp;", '&') || try_entity("&lt;", '<') ||
          try_entity("&gt;", '>') || try_entity("&quot;", '"') ||
          try_entity("&apos;", '\'')) {
        continue;
      }
    }
    out.push_back(text[i]);
    ++i;
  }
  return out;
}

}  // namespace

void XmlNode::AppendTo(std::string& out, int indent, int depth) const {
  std::string pad =
      indent >= 0 ? std::string(static_cast<size_t>(indent * depth), ' ') : "";
  const char* newline = indent >= 0 ? "\n" : "";
  out += pad;
  out += '<';
  out += name_;
  for (const auto& [k, v] : attributes_) {
    out += ' ';
    out += k;
    out += "=\"";
    out += XmlEscape(v);
    out += '"';
  }
  if (text_.empty() && children_.empty()) {
    out += "/>";
    out += newline;
    return;
  }
  out += '>';
  if (children_.empty()) {
    out += XmlEscape(text_);
  } else {
    out += newline;
    for (const auto& child : children_) {
      child->AppendTo(out, indent, depth + 1);
    }
    if (!text_.empty()) {
      out += pad;
      out += XmlEscape(text_);
      out += newline;
    }
    out += pad;
  }
  out += "</";
  out += name_;
  out += '>';
  out += newline;
}

std::string XmlNode::ToString(int indent) const {
  std::string out;
  AppendTo(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over a string_view with a cursor.
class XmlParser {
 public:
  explicit XmlParser(std::string_view text) : text_(text) {}

  StatusOr<std::unique_ptr<XmlNode>> Parse() {
    SkipProlog();
    STIR_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> root, ParseElement());
    SkipWhitespaceAndComments();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing content after root element");
    }
    return root;
  }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      if (std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      } else if (text_.substr(pos_, 4) == "<!--") {
        size_t end = text_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? text_.size() : end + 3;
      } else {
        break;
      }
    }
  }

  void SkipProlog() {
    SkipWhitespaceAndComments();
    if (text_.substr(pos_, 5) == "<?xml") {
      size_t end = text_.find("?>", pos_);
      pos_ = end == std::string_view::npos ? text_.size() : end + 2;
    }
    SkipWhitespaceAndComments();
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == ':' || c == '.';
  }

  StatusOr<std::string> ParseName() {
    size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    if (pos_ == start) return Status::InvalidArgument("expected XML name");
    return std::string(text_.substr(start, pos_ - start));
  }

  StatusOr<std::unique_ptr<XmlNode>> ParseElement() {
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Status::InvalidArgument("expected '<'");
    }
    ++pos_;
    STIR_ASSIGN_OR_RETURN(std::string name, ParseName());
    auto node = std::make_unique<XmlNode>(name);

    // Attributes.
    while (true) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated element: " + name);
      }
      if (text_[pos_] == '/' || text_[pos_] == '>') break;
      STIR_ASSIGN_OR_RETURN(std::string key, ParseName());
      if (pos_ >= text_.size() || text_[pos_] != '=') {
        return Status::InvalidArgument("expected '=' in attribute");
      }
      ++pos_;
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
        return Status::InvalidArgument("expected quoted attribute value");
      }
      char quote = text_[pos_++];
      size_t end = text_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return Status::InvalidArgument("unterminated attribute value");
      }
      node->AddAttribute(std::move(key),
                         XmlUnescape(text_.substr(pos_, end - pos_)));
      pos_ = end + 1;
    }

    if (text_[pos_] == '/') {
      if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '>') {
        return Status::InvalidArgument("malformed self-closing tag");
      }
      pos_ += 2;
      return node;
    }
    ++pos_;  // consume '>'

    // Content: text and child elements until </name>.
    std::string content;
    while (true) {
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("missing close tag for: " + name);
      }
      if (text_[pos_] == '<') {
        if (text_.substr(pos_, 4) == "<!--") {
          size_t end = text_.find("-->", pos_ + 4);
          if (end == std::string_view::npos) {
            return Status::InvalidArgument("unterminated comment");
          }
          pos_ = end + 3;
          continue;
        }
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
          pos_ += 2;
          STIR_ASSIGN_OR_RETURN(std::string close_name, ParseName());
          if (close_name != name) {
            return Status::InvalidArgument("mismatched close tag: expected " +
                                           name + ", got " + close_name);
          }
          if (pos_ >= text_.size() || text_[pos_] != '>') {
            return Status::InvalidArgument("malformed close tag");
          }
          ++pos_;
          break;
        }
        STIR_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> child, ParseElement());
        node->AdoptChild(std::move(child));
        continue;
      }
      content.push_back(text_[pos_]);
      ++pos_;
    }

    // Trim pure-whitespace interleaving text (indentation).
    size_t begin = content.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) {
      content.clear();
    } else {
      size_t last = content.find_last_not_of(" \t\r\n");
      content = content.substr(begin, last - begin + 1);
    }
    node->set_text(XmlUnescape(content));
    return node;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<std::unique_ptr<XmlNode>> ParseXml(std::string_view text) {
  return XmlParser(text).Parse();
}

}  // namespace stir
