#include "net/epoll_server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/string_util.h"
#include "serve/protocol.h"

namespace stir::net {
namespace {

// epoll_event.data.u64 routing tags; connection ids start above these.
constexpr uint64_t kTagListen = 0;
constexpr uint64_t kTagWake = 1;
constexpr uint64_t kFirstConnId = 2;

constexpr int kMaxEvents = 64;
constexpr int kListenBacklog = 1024;
/// Write-side backpressure: once this many unsent response bytes are
/// buffered for a connection, its read side is parked until the peer
/// drains — the lever that bounds per-connection memory even against a
/// client that pipelines forever without reading.
constexpr size_t kMaxOutBuffered = 256 * 1024;

int SetNonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return -1;
  if ((flags & O_NONBLOCK) == 0 &&
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return -1;
  }
  return flags;
}

}  // namespace

EpollServer::EpollServer(serve::Server* server, const NetOptions& options)
    : server_(server), options_(options) {
  options_.max_pipeline =
      std::clamp(options_.max_pipeline, 1,
                 server_->scheduler().GuaranteedAdmissionWindow());
  options_.read_chunk_bytes = std::max<size_t>(options_.read_chunk_bytes, 512);
  options_.max_line_bytes = std::max<size_t>(options_.max_line_bytes, 64);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ >= 0 && wake_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTagWake;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
  next_conn_id_ = kFirstConnId;
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* r = options_.metrics;
    m_accepted_ = r->GetCounter("net.connections.accepted");
    m_closed_ = r->GetCounter("net.connections.closed");
    m_dropped_ = r->GetCounter("net.connections.dropped");
    m_live_ = r->GetGauge("net.connections.live");
    m_bytes_in_ = r->GetCounter("net.bytes.in");
    m_bytes_out_ = r->GetCounter("net.bytes.out");
    m_lines_in_ = r->GetCounter("net.lines.in");
    m_responses_out_ = r->GetCounter("net.responses.out");
    m_oversized_ = r->GetCounter("net.oversized");
    for (int t = 0; t < serve::kNumShedTiers; ++t) {
      m_shed_tier_[t] =
          r->GetCounter(StrFormat("net.shed.tier%d", t));
    }
    m_drain_us_ = r->GetHistogram(
        "net.drain.latency_us",
        {100, 1'000, 10'000, 100'000, 1'000'000, 10'000'000});
  }
}

EpollServer::~EpollServer() {
  Stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EpollServer::Listen(uint16_t port) {
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    return Status::Internal("epoll/eventfd setup failed");
  }
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("Listen() already called");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket: %s", ::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IOError(
        StrFormat("bind 127.0.0.1:%u: %s", port, ::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, kListenBacklog) < 0) {
    Status st = Status::IOError(StrFormat("listen: %s", ::strerror(errno)));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kTagListen;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    Status st = Status::IOError(
        StrFormat("epoll_ctl(listen): %s", ::strerror(errno)));
    ::close(fd);
    return st;
  }
  listen_fd_ = fd;
  return Status::OK();
}

Status EpollServer::AdoptStdio(int in_fd, int out_fd) {
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    return Status::Internal("epoll/eventfd setup failed");
  }
  auto conn = std::make_unique<Conn>();
  conn->id = next_conn_id_++;
  conn->in_fd = in_fd;
  conn->out_fd = out_fd;
  conn->own_fds = false;

  conn->in_fd_restore_flags = SetNonblocking(in_fd);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, in_fd, &ev) < 0) {
    if (errno != EPERM) {
      return Status::IOError(
          StrFormat("epoll_ctl(stdin): %s", ::strerror(errno)));
    }
    // Regular file (cmake INPUT_FILE redirection): not epollable, but
    // always readable — the loop polls it whenever it can make progress.
    conn->file_in = true;
    if (conn->in_fd_restore_flags >= 0) {
      ::fcntl(in_fd, F_SETFL, conn->in_fd_restore_flags);
      conn->in_fd_restore_flags = -1;
    }
  } else {
    conn->epoll_in = true;
  }

  if (out_fd != in_fd) {
    conn->out_fd_restore_flags = SetNonblocking(out_fd);
    epoll_event wev{};
    wev.events = 0;  // EPOLLOUT armed on the first short write.
    wev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, out_fd, &wev) < 0) {
      if (errno != EPERM) {
        return Status::IOError(
            StrFormat("epoll_ctl(stdout): %s", ::strerror(errno)));
      }
      // Regular file: writes complete synchronously, no readiness needed.
      conn->file_out = true;
      if (conn->out_fd_restore_flags >= 0) {
        ::fcntl(out_fd, F_SETFL, conn->out_fd_restore_flags);
        conn->out_fd_restore_flags = -1;
      }
    }
  } else {
    conn->file_out = conn->file_in;
  }

  {
    std::lock_guard<std::mutex> g(stats_mu_);
    ++stats_.accepted;
    ++stats_.live;
  }
  obs::IncrementCounter(m_accepted_);
  if (m_live_ != nullptr) m_live_->Add(1);
  conns_.emplace(conn->id, std::move(conn));
  return Status::OK();
}

void EpollServer::Run() {
  loop_thread_ = std::this_thread::get_id();
  RunLoop();
  // Quiesce the scheduler before anyone tears this object down: after
  // Drain() returns, no completion callback can still be touching
  // completions_mu_ / wake_fd_.
  server_->Drain();
  loop_finished_ = true;
}

Status EpollServer::Start() {
  if (background_.joinable()) {
    return Status::FailedPrecondition("Start() already called");
  }
  background_ = std::thread([this] { Run(); });
  return Status::OK();
}

void EpollServer::Stop() {
  stop_called_.store(true, std::memory_order_release);
  RequestDrain();
  if (background_.joinable()) background_.join();
}

void EpollServer::RequestDrain() {
  // Async-signal-safe: one atomic store + one write(2).
  drain_requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

NetStats EpollServer::stats() const {
  std::lock_guard<std::mutex> g(stats_mu_);
  return stats_;
}

void EpollServer::RunLoop() {
  std::vector<uint64_t> touched;
  epoll_event events[kMaxEvents];
  bool pump_all = false;
  for (;;) {
    if (conns_.empty() && (draining_ || listen_fd_ < 0)) break;
    const int timeout = (pump_all || FileConnRunnable()) ? 0 : -1;
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — unrecoverable; drain below still runs.
    }
    touched.clear();
    bool accept_ready = false;
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kTagWake) {
        uint64_t count = 0;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &count, sizeof(count));
      } else if (tag == kTagListen) {
        accept_ready = true;
      } else {
        touched.push_back(tag);
      }
    }
    if (drain_requested_.load(std::memory_order_acquire) && !draining_) {
      TriggerDrain();
    }
    if (accept_ready && listen_fd_ >= 0) AcceptReady();
    ProcessCompletions();
    for (const Completion& c : ready_) touched.push_back(c.conn_id);
    ready_.clear();
    for (const auto& [id, conn] : conns_) {
      if (conn->file_in && WantsRead(*conn)) touched.push_back(id);
    }
    if (draining_ && !pumped_drain_) {
      pumped_drain_ = true;
      pump_all = true;
    }
    if (pump_all) {
      pump_all = false;
      touched.clear();
      touched.reserve(conns_.size());
      for (const auto& [id, conn] : conns_) touched.push_back(id);
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    for (uint64_t id : touched) {
      auto it = conns_.find(id);
      if (it != conns_.end()) Pump(it->second.get());
    }
  }
  if (draining_) {
    const int64_t micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - drain_start_)
            .count();
    {
      std::lock_guard<std::mutex> g(stats_mu_);
      stats_.drain_micros = micros;
    }
    obs::RecordSample(m_drain_us_, micros);
  }
}

void EpollServer::TriggerDrain() {
  if (draining_) return;
  draining_ = true;
  pumped_drain_ = false;
  drain_start_ = std::chrono::steady_clock::now();
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Later submissions — including lines already buffered for connections,
  // which keep flowing below — get typed shutting_down envelopes with
  // their ids echoed, exactly as a draining stdio server answers them.
  server_->BeginDrain();
  for (auto& [id, conn] : conns_) conn->read_closed = true;
}

void EpollServer::AcceptReady() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or transient (EMFILE/ECONNABORTED): retry later.
    }
    if (draining_ ||
        static_cast<int>(conns_.size()) >= options_.max_connections) {
      ::close(fd);
      {
        std::lock_guard<std::mutex> g(stats_mu_);
        ++stats_.dropped;
      }
      obs::IncrementCounter(m_dropped_);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->in_fd = fd;
    conn->out_fd = fd;
    conn->is_socket = true;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conn->epoll_in = true;
    {
      std::lock_guard<std::mutex> g(stats_mu_);
      ++stats_.accepted;
      ++stats_.live;
    }
    obs::IncrementCounter(m_accepted_);
    if (m_live_ != nullptr) m_live_->Add(1);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void EpollServer::ProcessCompletions() {
  {
    std::lock_guard<std::mutex> g(completions_mu_);
    ready_.swap(completions_);
  }
  for (Completion& comp : ready_) {
    auto it = conns_.find(comp.conn_id);
    if (it == conns_.end()) continue;  // Closed while in flight; drop.
    Conn* conn = it->second.get();
    const size_t idx = static_cast<size_t>(comp.seq - conn->base_seq);
    if (idx >= conn->slots.size()) continue;  // Unreachable by contract.
    conn->slots[idx].response = std::move(comp.response);
    conn->slots[idx].ready = true;
    --conn->in_scheduler;
    if (comp.meta.shed && comp.meta.tier >= 0 &&
        comp.meta.tier < serve::kNumShedTiers) {
      {
        std::lock_guard<std::mutex> g(stats_mu_);
        ++stats_.shed_by_tier[comp.meta.tier];
      }
      obs::IncrementCounter(m_shed_tier_[comp.meta.tier]);
    }
    if (comp.meta.deadline_expired) {
      {
        std::lock_guard<std::mutex> g(stats_mu_);
        ++stats_.deadline_expired;
      }
      if (m_deadline_expired_ == nullptr && options_.metrics != nullptr) {
        m_deadline_expired_ = options_.metrics->GetCounter(
            "net.deadline.expired");
      }
      obs::IncrementCounter(m_deadline_expired_);
    }
  }
}

void EpollServer::Pump(Conn* conn) {
  if (WantsRead(*conn)) ReadInto(conn);
  if (conn->peer_dead) {
    CloseConn(conn);
    return;
  }
  FrameAndSubmit(conn);
  FlushReadySlots(conn);
  WriteOut(conn);
  if (conn->peer_dead || FinishedWith(*conn)) {
    CloseConn(conn);
    return;
  }
  UpdateEpollInterest(conn);
}

bool EpollServer::WantsRead(const Conn& conn) const {
  if (conn.read_closed || conn.peer_dead) return false;
  const size_t in_pending = conn.in_buf.size() - conn.in_off;
  if (in_pending >= options_.max_line_bytes + options_.read_chunk_bytes) {
    return false;
  }
  return conn.out_buf.size() - conn.out_off < kMaxOutBuffered;
}

bool EpollServer::FileConnRunnable() const {
  for (const auto& [id, conn] : conns_) {
    if (conn->file_in && WantsRead(*conn)) return true;
  }
  return false;
}

void EpollServer::ReadInto(Conn* conn) {
  if (conn->in_off > 0 &&
      (conn->in_off >= conn->in_buf.size() ||
       conn->in_off > options_.read_chunk_bytes)) {
    conn->in_buf.erase(0, conn->in_off);
    conn->in_off = 0;
  }
  const size_t cap = options_.max_line_bytes + options_.read_chunk_bytes;
  while (WantsRead(*conn) && conn->in_buf.size() - conn->in_off < cap) {
    const size_t old_size = conn->in_buf.size();
    conn->in_buf.resize(old_size + options_.read_chunk_bytes);
    const ssize_t n =
        ::read(conn->in_fd, conn->in_buf.data() + old_size,
               options_.read_chunk_bytes);
    if (n > 0) {
      conn->in_buf.resize(old_size + static_cast<size_t>(n));
      std::lock_guard<std::mutex> g(stats_mu_);
      stats_.bytes_in += n;
      obs::IncrementCounter(m_bytes_in_, n);
    } else if (n == 0) {
      conn->in_buf.resize(old_size);
      conn->read_closed = true;
      conn->saw_eof = true;
      break;
    } else {
      conn->in_buf.resize(old_size);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      // Mid-request disconnect (ECONNRESET and friends): there is no
      // peer left to answer, so the partial line is dropped and the
      // connection torn down; in-flight completions are discarded by id.
      conn->peer_dead = true;
      conn->read_closed = true;
      break;
    }
  }
}

void EpollServer::FrameAndSubmit(Conn* conn) {
  std::string& buf = conn->in_buf;
  for (;;) {
    if (conn->discarding) {
      const size_t pos = buf.find('\n', conn->in_off);
      if (pos == std::string::npos) {
        if (buf.size() > conn->in_off) {
          conn->discard_bytes += buf.size() - conn->in_off;
          conn->discard_last = buf.back();
          conn->in_off = buf.size();
        }
        if (conn->saw_eof) {
          // The oversized line was the last thing the client sent; answer
          // for the bytes that did arrive, like getline's final line.
          size_t len = conn->discard_bytes;
          if (conn->discard_last == '\r' && len > 0) --len;
          conn->discarding = false;
          conn->discard_bytes = 0;
          conn->discard_last = '\0';
          EmitOversized(conn, len);
        }
        break;
      }
      size_t len = conn->discard_bytes + (pos - conn->in_off);
      const char last =
          pos > conn->in_off ? buf[pos - 1] : conn->discard_last;
      if (last == '\r' && len > 0) --len;
      conn->in_off = pos + 1;
      conn->discarding = false;
      conn->discard_bytes = 0;
      conn->discard_last = '\0';
      EmitOversized(conn, len);
      continue;
    }
    const size_t pos = buf.find('\n', conn->in_off);
    if (pos == std::string::npos) {
      const size_t pending = buf.size() - conn->in_off;
      if (pending > options_.max_line_bytes) {
        // The line can no longer fit under the cap no matter how it ends:
        // stop buffering it and count the rest as it streams past.
        conn->discarding = true;
        conn->discard_bytes = pending;
        conn->discard_last = buf.back();
        conn->in_off = buf.size();
        continue;
      }
      if (conn->saw_eof && pending > 0) {
        if (conn->in_scheduler >= options_.max_pipeline) break;
        // Final line without a trailing newline, as getline serves it.
        std::string_view line(buf.data() + conn->in_off, pending);
        conn->in_off = buf.size();
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        if (!line.empty()) SubmitLine(conn, line);
      }
      break;
    }
    std::string_view line(buf.data() + conn->in_off, pos - conn->in_off);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) {  // Blank lines are keep-alive no-ops (ServeStream).
      conn->in_off = pos + 1;
      continue;
    }
    if (conn->in_scheduler >= options_.max_pipeline) break;
    conn->in_off = pos + 1;
    SubmitLine(conn, line);
  }
}

void EpollServer::SubmitLine(Conn* conn, std::string_view line) {
  conn->slots.emplace_back();
  ++conn->next_seq;
  ++conn->in_scheduler;
  {
    std::lock_guard<std::mutex> g(stats_mu_);
    ++stats_.lines_in;
  }
  obs::IncrementCounter(m_lines_in_);
  const uint64_t id = conn->id;
  const uint64_t seq = conn->next_seq - 1;
  server_->SubmitLineWith(
      line, [this, id, seq](std::string response,
                            const serve::ResponseMeta& meta) {
        {
          std::lock_guard<std::mutex> g(completions_mu_);
          completions_.push_back(
              Completion{id, seq, std::move(response), meta});
        }
        uint64_t one = 1;
        [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
      });
  ++total_lines_;
  if (options_.drain_after_lines > 0 &&
      total_lines_ == options_.drain_after_lines) {
    TriggerDrain();
  }
}

void EpollServer::EmitOversized(Conn* conn, size_t line_bytes) {
  {
    std::lock_guard<std::mutex> g(stats_mu_);
    ++stats_.lines_in;
    ++stats_.oversized;
  }
  obs::IncrementCounter(m_lines_in_);
  obs::IncrementCounter(m_oversized_);
  Slot slot;
  slot.ready = true;
  slot.response =
      serve::OversizedResponse(line_bytes, options_.max_line_bytes);
  conn->slots.push_back(std::move(slot));
  ++conn->next_seq;
}

void EpollServer::FlushReadySlots(Conn* conn) {
  while (!conn->slots.empty() && conn->slots.front().ready) {
    if (!conn->peer_dead) {
      conn->out_buf.append(conn->slots.front().response);
      conn->out_buf.push_back('\n');
      {
        std::lock_guard<std::mutex> g(stats_mu_);
        ++stats_.responses_out;
      }
      obs::IncrementCounter(m_responses_out_);
    }
    conn->slots.pop_front();
    ++conn->base_seq;
  }
}

void EpollServer::WriteOut(Conn* conn) {
  if (conn->peer_dead) {
    conn->out_buf.clear();
    conn->out_off = 0;
    return;
  }
  while (conn->out_off < conn->out_buf.size()) {
    const size_t pending = conn->out_buf.size() - conn->out_off;
    ssize_t n;
    if (conn->is_socket) {
      n = ::send(conn->out_fd, conn->out_buf.data() + conn->out_off, pending,
                 MSG_NOSIGNAL);
    } else {
      n = ::write(conn->out_fd, conn->out_buf.data() + conn->out_off,
                  pending);
    }
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      std::lock_guard<std::mutex> g(stats_mu_);
      stats_.bytes_out += n;
      obs::IncrementCounter(m_bytes_out_, n);
    } else {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      conn->peer_dead = true;  // EPIPE/ECONNRESET: discard the rest.
      conn->out_buf.clear();
      conn->out_off = 0;
      return;
    }
  }
  if (conn->out_off >= conn->out_buf.size()) {
    conn->out_buf.clear();
    conn->out_off = 0;
  } else if (conn->out_off > kMaxOutBuffered / 2) {
    conn->out_buf.erase(0, conn->out_off);
    conn->out_off = 0;
  }
}

bool EpollServer::FinishedWith(const Conn& conn) const {
  if (conn.peer_dead) return true;
  if (!conn.read_closed || !conn.slots.empty()) return false;
  // Complete lines still buffered (the window was full when framing
  // stopped) keep the connection alive until they are answered.
  if (conn.in_buf.find('\n', conn.in_off) != std::string::npos) return false;
  // At true EOF a trailing newline-less line still counts as a request;
  // a drain-truncated partial line does not.
  if (conn.saw_eof && conn.in_off < conn.in_buf.size()) return false;
  if (conn.discarding && conn.saw_eof) return false;
  return conn.out_off >= conn.out_buf.size();
}

void EpollServer::CloseConn(Conn* conn) {
  if (conn->in_fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->in_fd, nullptr);
  }
  if (conn->out_fd >= 0 && conn->out_fd != conn->in_fd) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->out_fd, nullptr);
  }
  if (conn->own_fds) {
    ::close(conn->in_fd);
    if (conn->out_fd != conn->in_fd) ::close(conn->out_fd);
  } else {
    // Adopted stdio fds stay open; undo our O_NONBLOCK.
    if (conn->in_fd_restore_flags >= 0) {
      ::fcntl(conn->in_fd, F_SETFL, conn->in_fd_restore_flags);
    }
    if (conn->out_fd_restore_flags >= 0) {
      ::fcntl(conn->out_fd, F_SETFL, conn->out_fd_restore_flags);
    }
  }
  {
    std::lock_guard<std::mutex> g(stats_mu_);
    ++stats_.closed;
    --stats_.live;
  }
  obs::IncrementCounter(m_closed_);
  if (m_live_ != nullptr) m_live_->Add(-1);
  conns_.erase(conn->id);  // Invalidates conn.
}

void EpollServer::UpdateEpollInterest(Conn* conn) {
  const bool want_read = WantsRead(*conn) && !conn->file_in;
  const bool want_write =
      conn->out_off < conn->out_buf.size() && !conn->file_out &&
      !conn->peer_dead;
  if (conn->out_fd == conn->in_fd) {
    if (want_read == conn->epoll_in && want_write == conn->epoll_out) return;
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->in_fd, &ev) == 0) {
      conn->epoll_in = want_read;
      conn->epoll_out = want_write;
    }
    return;
  }
  if (!conn->file_in && want_read != conn->epoll_in) {
    epoll_event ev{};
    ev.events = want_read ? EPOLLIN : 0u;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->in_fd, &ev) == 0) {
      conn->epoll_in = want_read;
    }
  }
  if (!conn->file_out && want_write != conn->epoll_out) {
    epoll_event ev{};
    ev.events = want_write ? EPOLLOUT : 0u;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->out_fd, &ev) == 0) {
      conn->epoll_out = want_write;
    }
  }
}

}  // namespace stir::net
