#ifndef STIR_NET_EPOLL_SERVER_H_
#define STIR_NET_EPOLL_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "serve/scheduler.h"
#include "serve/server.h"

namespace stir::net {

/// Knobs for the epoll front-end (DESIGN.md §13).
struct NetOptions {
  /// Per-connection pipelining window: at most this many requests of one
  /// connection are in flight in the scheduler at once. Further complete
  /// lines wait in the connection's read buffer; further bytes wait in
  /// the kernel (the read side is de-registered once the buffer fills) —
  /// per-connection backpressure that can never block the event loop.
  /// Clamped to the scheduler's guaranteed-admission window so a lone
  /// connection can never shed itself.
  int max_pipeline = 64;
  /// Accept cap: connections beyond this are accepted and immediately
  /// closed (counted in net.connections.dropped) so the kernel backlog
  /// cannot grow unboundedly.
  int max_connections = 4096;
  /// recv() chunk size.
  size_t read_chunk_bytes = 16 * 1024;
  /// Framing cap, normally = ServeOptions::max_request_bytes: a line
  /// longer than this is answered with the same `oversized` envelope the
  /// parser would emit, and its bytes are discarded as they arrive — the
  /// server never buffers more than ~this per connection, no matter how
  /// the line is split across reads.
  size_t max_line_bytes = 64 * 1024;
  /// Testing hook: when > 0, begin a graceful drain (as if SIGTERM had
  /// arrived) right after the Nth request line has been submitted, before
  /// any later buffered line — deterministic drain coverage for the
  /// smoke test, identical in stdio and TCP modes.
  int64_t drain_after_lines = 0;
  /// Metrics sink (not owned); populates the net.* namespace.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Point-in-time counters mirrored into net.* metrics when a registry is
/// attached. The shed counters reconcile exactly with the scheduler's
/// rejected_by_tier when all traffic arrives through this front-end.
struct NetStats {
  int64_t accepted = 0;
  int64_t closed = 0;
  int64_t dropped = 0;  ///< Over the accept cap (closed without serving).
  int64_t live = 0;
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  int64_t lines_in = 0;       ///< Lines submitted (+ framing rejections).
  int64_t responses_out = 0;  ///< Response lines queued for writing.
  int64_t oversized = 0;      ///< Lines rejected by the framer.
  int64_t shed_by_tier[serve::kNumShedTiers] = {};
  /// Responses that were the retryable `deadline_exceeded` envelope —
  /// reconciles with the scheduler's deadline_exceeded when all traffic
  /// arrives through this front-end. Zero without deadlines.
  int64_t deadline_expired = 0;
  int64_t drain_micros = -1;  ///< Drain-request-to-loop-exit; -1 = none.
};

/// Single-threaded epoll event loop multiplexing many line-protocol
/// connections over one serve::Server (DESIGN.md §13). Nonblocking
/// accept + read/write buffering over raw fds; per-connection request
/// pipelining with responses re-ordered back to request order; tiered
/// admission metadata surfaced as net.shed.* counters; graceful drain
/// (stop accepting, flush in-flight, close idle) on RequestDrain — which
/// is async-signal-safe, so a SIGINT/SIGTERM handler may call it.
///
/// Determinism contract: a connection's response stream depends only on
/// its own request stream — responses come back in request order, and
/// every index-answered method is pure — so for any interleaving of N
/// connections and any worker count, each connection's bytes equal the
/// same requests served alone over stdio (absent overload shedding and
/// the explicitly history-dependent server_stats).
class EpollServer {
 public:
  /// `server` must outlive the EpollServer.
  EpollServer(serve::Server* server, const NetOptions& options);
  ~EpollServer();

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — read it back
  /// with port()) with a nonblocking listener. Call before Run/Start.
  Status Listen(uint16_t port);

  /// Registers an already-open fd pair as one connection speaking the
  /// line protocol (the stdio front-end: in_fd=0, out_fd=1). Regular
  /// files — not epollable — are handled by a ready-when-idle fallback,
  /// so `stir_serve --stdio < requests.txt` works unchanged. The fds are
  /// not closed on teardown; their O_NONBLOCK state is restored.
  Status AdoptStdio(int in_fd = 0, int out_fd = 1);

  /// Runs the event loop on the calling thread until it finishes: with a
  /// listener, until a drain completes; stdio-only, until the connection
  /// reaches EOF and its last response is flushed (or a drain). Drains
  /// the underlying server before returning, so no completion callback
  /// is in flight afterwards.
  void Run();

  /// Run() on a background thread (tests / benches).
  Status Start();
  /// RequestDrain + join the Start() thread. Idempotent.
  void Stop();

  /// Begins a graceful drain: stop accepting, stop reading, flush every
  /// in-flight response, answer already-buffered lines through the
  /// draining scheduler (typed `shutting_down` envelopes), close.
  /// Async-signal-safe (atomic store + eventfd write).
  void RequestDrain();

  uint16_t port() const { return port_; }
  NetStats stats() const;

 private:
  struct Slot {
    bool ready = false;
    std::string response;
  };

  struct Conn {
    uint64_t id = 0;
    int in_fd = -1;
    int out_fd = -1;
    bool own_fds = true;      ///< TCP: close on teardown; stdio: keep.
    bool is_socket = false;   ///< send(MSG_NOSIGNAL) instead of write.
    bool file_in = false;     ///< in_fd not epollable: poll when idle.
    bool file_out = false;    ///< out_fd not epollable: write blocking.
    bool epoll_in = false;    ///< Registered interest, kept in sync.
    bool epoll_out = false;
    int in_fd_restore_flags = -1;   ///< Adopted fds get O_NONBLOCK undone.
    int out_fd_restore_flags = -1;
    std::string in_buf;       ///< Unframed bytes; in_off consumed prefix.
    size_t in_off = 0;
    bool discarding = false;  ///< Oversized line being skipped.
    size_t discard_bytes = 0;
    char discard_last = '\0';
    std::deque<Slot> slots;   ///< In-flight, request order.
    uint64_t base_seq = 0;    ///< Slot seq of slots.front().
    uint64_t next_seq = 0;
    int in_scheduler = 0;     ///< Unanswered submissions (window gauge).
    std::string out_buf;
    size_t out_off = 0;
    bool read_closed = false;
    bool saw_eof = false;     ///< True EOF (vs. drain-forced read stop).
    bool peer_dead = false;   ///< Write side broken: discard responses.
  };

  struct Completion {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    std::string response;
    serve::ResponseMeta meta;
  };

  void RunLoop();
  void AcceptReady();
  void ProcessCompletions();
  /// Advances one connection as far as it can go without blocking:
  /// read -> frame/submit (within the window) -> flush ready responses ->
  /// write. Closes and erases the connection when fully finished.
  void Pump(Conn* conn);
  void ReadInto(Conn* conn);
  void FrameAndSubmit(Conn* conn);
  void SubmitLine(Conn* conn, std::string_view line);
  /// A framer-rejected oversized line: consumes an ordering slot and
  /// answers it locally with the parser's exact envelope.
  void EmitOversized(Conn* conn, size_t line_bytes);
  void FlushReadySlots(Conn* conn);
  void WriteOut(Conn* conn);
  bool FinishedWith(const Conn& conn) const;
  void CloseConn(Conn* conn);
  void UpdateEpollInterest(Conn* conn);
  bool WantsRead(const Conn& conn) const;
  /// A file-backed (non-epollable) input that could make progress now.
  bool FileConnRunnable() const;
  void TriggerDrain();

  serve::Server* server_;
  NetOptions options_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool draining_ = false;
  bool pumped_drain_ = false;  ///< Drain-start pump-all happened.
  bool loop_finished_ = false;
  std::chrono::steady_clock::time_point drain_start_;
  std::thread::id loop_thread_;
  std::thread background_;
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> stop_called_{false};

  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  int64_t total_lines_ = 0;  ///< Across connections; drives drain_after.

  std::mutex completions_mu_;
  std::vector<Completion> completions_;
  /// Loop-thread scratch: completions being applied this iteration.
  std::vector<Completion> ready_;

  mutable std::mutex stats_mu_;
  NetStats stats_;

  // net.* metric handles (null without a registry).
  obs::Counter* m_accepted_ = nullptr;
  obs::Counter* m_closed_ = nullptr;
  obs::Counter* m_dropped_ = nullptr;
  obs::Gauge* m_live_ = nullptr;
  obs::Counter* m_bytes_in_ = nullptr;
  obs::Counter* m_bytes_out_ = nullptr;
  obs::Counter* m_lines_in_ = nullptr;
  obs::Counter* m_responses_out_ = nullptr;
  obs::Counter* m_oversized_ = nullptr;
  obs::Counter* m_shed_tier_[serve::kNumShedTiers] = {};
  /// Registered lazily on the first expired deadline so deadline-free
  /// runs leave the metric dump untouched (loop thread only).
  obs::Counter* m_deadline_expired_ = nullptr;
  obs::Histogram* m_drain_us_ = nullptr;
};

}  // namespace stir::net

#endif  // STIR_NET_EPOLL_SERVER_H_
