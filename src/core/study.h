#ifndef STIR_CORE_STUDY_H_
#define STIR_CORE_STUDY_H_

#include <string>
#include <vector>

#include "common/fault.h"
#include "common/retry.h"
#include "core/grouping.h"
#include "core/refinement.h"
#include "core/study_config.h"
#include "geo/admin_db.h"
#include "geo/reverse_geocoder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/location_parser.h"
#include "twitter/dataset.h"

namespace stir::core {

/// Aggregates for one Top-k group — the quantities behind the paper's
/// Fig. 6 (avg number of tweet locations), Fig. 7 (user share) and the
/// slide-deck tweets-per-group figure.
struct GroupStats {
  int64_t users = 0;
  double user_share = 0.0;  ///< Fraction of final users, [0, 1].
  int64_t gps_tweets = 0;
  double tweet_share = 0.0;  ///< Fraction of geocoded GPS tweets.
  double avg_tweet_locations = 0.0;  ///< Mean distinct districts per user.
};

/// Full output of one study run.
struct StudyResult {
  FunnelStats funnel;
  GroupStats groups[kNumTopKGroups];
  /// User-weighted mean of distinct tweet districts over all final users
  /// ("they have ~3 tweet locations in average", §IV).
  double overall_avg_locations = 0.0;
  int64_t final_users = 0;
  /// Per-user detail (Table II rows, ranks, groups).
  std::vector<UserGrouping> groupings;
  std::vector<RefinedUser> refined;

  /// Observability output (empty unless config.obs enabled the collector;
  /// snapshotted from the per-run registry/tracer at the end of Run).
  obs::MetricsSnapshot metrics;
  obs::TraceSnapshot trace;

  /// True when the run stopped early at the durability test hook
  /// (config.durability.halt_after_users) — refinement progress is on
  /// disk, but funnel/groups in this result are partial and must not be
  /// reported. A resumed run completes them.
  bool incomplete = false;

  const GroupStats& group(TopKGroup g) const {
    return groups[static_cast<int>(g)];
  }

  /// Human-readable group table (one row per Top-k group).
  std::string GroupTableString() const;
  /// Human-readable funnel rendering (§III.B stages).
  std::string FunnelString() const;
};

/// Recomputes `result->groups`, `overall_avg_locations` and
/// `final_users` from `result->groupings`. Summation runs in groupings
/// order (= dataset user order), so the floating-point aggregates are
/// byte-stable for a fixed user order — the batch pipeline and the
/// incremental stream engine share this exact code path, which is part of
/// the streaming determinism contract (DESIGN.md §12).
void AggregateGroups(StudyResult* result);

/// Deprecated shim: the pre-StudyConfig flat options struct. Kept so
/// existing call sites compile unchanged; internally converted via
/// ToConfig(). New code should build a stir::StudyConfig directly.
struct CorrelationStudyOptions {
  RefinementOptions refinement;
  geo::ReverseGeocoderOptions geocoder;
  /// Tie rule for equal string multiplicities (ablation knob; the
  /// paper's results must not depend on it).
  TieBreak tie_break = TieBreak::kLexicographic;
  /// Worker threads for refinement and grouping; <= 1 runs serially.
  /// Results are bit-identical across thread counts (sharded execution
  /// with ordered merges) as long as the geocoder quota is unlimited.
  int threads = 1;
  /// Fault schedule injected into the reverse geocoder (CLI --fault-rate
  /// and friends). All knobs off — the default — leaves the fault layer
  /// disengaged and the output byte-identical to a fault-free build.
  /// Faults are keyed on tweet dataset indices, so a faulty run is also
  /// bit-identical across thread counts.
  common::FaultInjectorOptions fault;
  /// Retry schedule for injected faults (forwarded to the geocoder).
  common::RetryPolicyOptions retry;

  /// Field-for-field mapping onto the unified config (DESIGN.md §8 has
  /// the full migration table). Observability stays at its defaults —
  /// the legacy surface never had it.
  StudyConfig ToConfig() const;
};

/// The paper's end-to-end analysis: refinement funnel -> text-based
/// grouping -> Top-k classification -> group aggregates. Deterministic
/// for a given dataset and gazetteer, and for any `config.threads`
/// setting.
class CorrelationStudy {
 public:
  /// `db` must outlive the study. The config is copied.
  CorrelationStudy(const geo::AdminDb* db, const StudyConfig& config);

  /// Deprecated shim: accepts the legacy flat options struct.
  explicit CorrelationStudy(const geo::AdminDb* db,
                            CorrelationStudyOptions options = {});

  StudyResult Run(const twitter::Dataset& dataset) const;

  const geo::AdminDb& db() const { return *db_; }
  const text::LocationParser& parser() const { return parser_; }
  const StudyConfig& config() const { return config_; }

 private:
  /// The instrumented pipeline stages (refine -> group -> aggregate),
  /// run with the *effective* config (observability pointers resolved).
  /// Split out of Run so the "study" root span closes before Run
  /// snapshots the sinks into the result.
  void RunStages(const twitter::Dataset& dataset, const StudyConfig& cfg,
                 StudyResult* result) const;

  const geo::AdminDb* db_;
  StudyConfig config_;
  text::LocationParser parser_;
};

}  // namespace stir::core

#endif  // STIR_CORE_STUDY_H_
