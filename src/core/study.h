#ifndef STIR_CORE_STUDY_H_
#define STIR_CORE_STUDY_H_

#include <functional>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/retry.h"
#include "core/grouping.h"
#include "core/refinement.h"
#include "core/study_config.h"
#include "geo/admin_db.h"
#include "geo/reverse_geocoder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/location_parser.h"
#include "twitter/dataset.h"

namespace stir::core {

/// Aggregates for one Top-k group — the quantities behind the paper's
/// Fig. 6 (avg number of tweet locations), Fig. 7 (user share) and the
/// slide-deck tweets-per-group figure.
struct GroupStats {
  int64_t users = 0;
  double user_share = 0.0;  ///< Fraction of final users, [0, 1].
  int64_t gps_tweets = 0;
  double tweet_share = 0.0;  ///< Fraction of geocoded GPS tweets.
  double avg_tweet_locations = 0.0;  ///< Mean distinct districts per user.
};

/// Full output of one study run.
struct StudyResult {
  FunnelStats funnel;
  GroupStats groups[kNumTopKGroups];
  /// User-weighted mean of distinct tweet districts over all final users
  /// ("they have ~3 tweet locations in average", §IV).
  double overall_avg_locations = 0.0;
  int64_t final_users = 0;
  /// Per-user detail (Table II rows, ranks, groups).
  std::vector<UserGrouping> groupings;
  std::vector<RefinedUser> refined;

  /// Observability output (empty unless config.obs enabled the collector;
  /// snapshotted from the per-run registry/tracer at the end of Run).
  obs::MetricsSnapshot metrics;
  obs::TraceSnapshot trace;

  /// True when the run stopped early at the durability test hook
  /// (config.durability.halt_after_users) — refinement progress is on
  /// disk, but funnel/groups in this result are partial and must not be
  /// reported. A resumed run completes them.
  bool incomplete = false;

  const GroupStats& group(TopKGroup g) const {
    return groups[static_cast<int>(g)];
  }

  /// Human-readable group table (one row per Top-k group).
  std::string GroupTableString() const;
  /// Human-readable funnel rendering (§III.B stages).
  std::string FunnelString() const;
};

/// Recomputes `result->groups`, `overall_avg_locations` and
/// `final_users` from `result->groupings`. Summation runs in groupings
/// order (= dataset user order), so the floating-point aggregates are
/// byte-stable for a fixed user order — the batch pipeline and the
/// incremental stream engine share this exact code path, which is part of
/// the streaming determinism contract (DESIGN.md §12).
void AggregateGroups(StudyResult* result);

/// The paper's end-to-end analysis: refinement funnel -> text-based
/// grouping -> Top-k classification -> group aggregates. Deterministic
/// for a given dataset and gazetteer, and for any `config.threads`
/// setting.
class CorrelationStudy {
 public:
  /// `db` must outlive the study. The config is copied. (The former
  /// CorrelationStudyOptions shim is gone — DESIGN.md §8 maps its
  /// fields onto StudyConfig.)
  explicit CorrelationStudy(const geo::AdminDb* db,
                            const StudyConfig& config = StudyConfig());

  StudyResult Run(const twitter::Dataset& dataset) const;

  /// Columnar overload: runs the study straight off a mapped arena
  /// corpus (io::CorpusView) — no Dataset materialization, resident set
  /// bounded by the refinement working set. Output is byte-identical to
  /// Run(Dataset) on the same corpus. Durability is the one Dataset-path
  /// feature the columnar path does not carry: a configured
  /// checkpoint_dir logs a warning and the run proceeds without it.
  StudyResult Run(const io::CorpusView& corpus) const;

  const geo::AdminDb& db() const { return *db_; }
  const text::LocationParser& parser() const { return parser_; }
  const StudyConfig& config() const { return config_; }

 private:
  /// The instrumented pipeline stages (refine -> group -> aggregate),
  /// run with the *effective* config (observability pointers resolved).
  /// Split out of Run so the "study" root span closes before Run
  /// snapshots the sinks into the result.
  void RunStages(const twitter::Dataset& dataset, const StudyConfig& cfg,
                 StudyResult* result) const;
  void RunStages(const io::CorpusView& corpus, const StudyConfig& cfg,
                 StudyResult* result) const;

  /// Shared Run scaffolding: resolves the effective observability sinks,
  /// invokes `stages`, then snapshots metrics/trace into the result.
  StudyResult RunWithEffectiveConfig(
      const std::function<void(const StudyConfig&, StudyResult*)>& stages)
      const;

  const geo::AdminDb* db_;
  StudyConfig config_;
  text::LocationParser parser_;
};

}  // namespace stir::core

#endif  // STIR_CORE_STUDY_H_
