#include "core/grouping.h"

#include <algorithm>

namespace stir::core {

const char* TopKGroupToString(TopKGroup group) {
  switch (group) {
    case TopKGroup::kTop1:
      return "Top-1";
    case TopKGroup::kTop2:
      return "Top-2";
    case TopKGroup::kTop3:
      return "Top-3";
    case TopKGroup::kTop4:
      return "Top-4";
    case TopKGroup::kTop5:
      return "Top-5";
    case TopKGroup::kTopPlus:
      return "Top-6+";
    case TopKGroup::kNone:
      return "None";
  }
  return "unknown";
}

TopKGroup GroupForRank(int rank) {
  if (rank < 1) return TopKGroup::kNone;
  if (rank <= 5) return static_cast<TopKGroup>(rank - 1);
  return TopKGroup::kTopPlus;
}

UserGrouping GroupUser(const RefinedUser& user, const geo::AdminDb& db,
                       TieBreak tie_break) {
  // Integer merge over precomputed name keys instead of rendering a
  // Table I string per GPS tweet and merging through a std::map. The
  // string path keys the map on "user#pstate#pcounty#tstate#tcounty";
  // within one user the "user#pstate#pcounty#" prefix is constant, so
  // (a) two records collide exactly when their tweet (state, county)
  // names coincide — i.e. when they share a DistrictNameTable key — and
  // (b) the map's byte-wise order is the byte-wise order of
  // "tstate#tcounty", which is each key's lex_rank. Counting per key
  // and sorting by (count desc, lex_rank) therefore reproduces
  // MergeAndOrder bit for bit while never hashing a string.
  const geo::DistrictNameTable& names = db.district_names();
  const uint32_t profile_key = names.key_of_region[
      static_cast<size_t>(user.profile_region)];

  struct Merged {
    uint32_t key;
    int64_t count;
  };
  // First-seen linear vector: users tweet from a handful of districts,
  // so a scan beats any hash map at this size.
  std::vector<Merged> merged;
  for (geo::RegionId tweet_region : user.tweet_regions) {
    const uint32_t key = names.key_of_region[static_cast<size_t>(tweet_region)];
    auto it = std::find_if(merged.begin(), merged.end(),
                           [key](const Merged& m) { return m.key == key; });
    if (it == merged.end()) {
      merged.push_back(Merged{key, 1});
    } else {
      ++it->count;
    }
  }

  // Count descending; ties by the rank of "tstate#tcounty" — ascending
  // for the default policy, descending for the reverse ablation (the
  // string path reverses its lexicographically-ascending merge output
  // before the stable count sort). Distinct keys have distinct ranks,
  // so the comparator is a strict weak ordering and std::sort is
  // deterministic here.
  std::sort(merged.begin(), merged.end(),
            [&](const Merged& a, const Merged& b) {
              if (a.count != b.count) return a.count > b.count;
              const uint32_t ra = names.names[a.key].lex_rank;
              const uint32_t rb = names.names[b.key].lex_rank;
              return tie_break == TieBreak::kLexicographic ? ra < rb : ra > rb;
            });

  UserGrouping grouping;
  grouping.user = user.user;
  grouping.profile_name_key = profile_key;
  grouping.gps_tweet_count = static_cast<int64_t>(user.tweet_regions.size());
  const geo::DistrictNameTable::Name& profile = names.names[profile_key];
  grouping.ordered.reserve(merged.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    const geo::DistrictNameTable::Name& tweet = names.names[merged[i].key];
    MergedLocationString row;
    row.record.user = user.user;
    row.record.profile_state = profile.state;
    row.record.profile_county = profile.county;
    row.record.tweet_state = tweet.state;
    row.record.tweet_county = tweet.county;
    row.count = merged[i].count;
    row.name_key = merged[i].key;
    grouping.ordered.push_back(std::move(row));
    if (merged[i].key == profile_key && grouping.match_rank < 0) {
      grouping.match_rank = static_cast<int>(i) + 1;
      grouping.matched_tweet_count = merged[i].count;
    }
  }
  grouping.group = GroupForRank(grouping.match_rank);
  return grouping;
}

std::vector<UserGrouping> GroupUsers(const std::vector<RefinedUser>& users,
                                     const geo::AdminDb& db,
                                     TieBreak tie_break,
                                     common::ThreadPool* pool) {
  std::vector<UserGrouping> groupings(users.size());
  common::ParallelFor(pool, users.size(), [&](size_t i) {
    groupings[i] = GroupUser(users[i], db, tie_break);
  });
  return groupings;
}

}  // namespace stir::core
