#include "core/grouping.h"

namespace stir::core {

const char* TopKGroupToString(TopKGroup group) {
  switch (group) {
    case TopKGroup::kTop1:
      return "Top-1";
    case TopKGroup::kTop2:
      return "Top-2";
    case TopKGroup::kTop3:
      return "Top-3";
    case TopKGroup::kTop4:
      return "Top-4";
    case TopKGroup::kTop5:
      return "Top-5";
    case TopKGroup::kTopPlus:
      return "Top-6+";
    case TopKGroup::kNone:
      return "None";
  }
  return "unknown";
}

TopKGroup GroupForRank(int rank) {
  if (rank < 1) return TopKGroup::kNone;
  if (rank <= 5) return static_cast<TopKGroup>(rank - 1);
  return TopKGroup::kTopPlus;
}

UserGrouping GroupUser(const RefinedUser& user, const geo::AdminDb& db,
                       TieBreak tie_break) {
  const geo::Region& profile = db.region(user.profile_region);

  std::vector<LocationRecord> records;
  records.reserve(user.tweet_regions.size());
  for (geo::RegionId tweet_region : user.tweet_regions) {
    const geo::Region& region = db.region(tweet_region);
    LocationRecord record;
    record.user = user.user;
    record.profile_state = profile.state;
    record.profile_county = profile.county;
    record.tweet_state = region.state;
    record.tweet_county = region.county;
    records.push_back(std::move(record));
  }

  UserGrouping grouping;
  grouping.user = user.user;
  grouping.gps_tweet_count = static_cast<int64_t>(records.size());
  grouping.ordered = MergeAndOrder(records, tie_break);
  for (size_t i = 0; i < grouping.ordered.size(); ++i) {
    if (grouping.ordered[i].record.IsMatched()) {
      grouping.match_rank = static_cast<int>(i) + 1;
      grouping.matched_tweet_count = grouping.ordered[i].count;
      break;
    }
  }
  grouping.group = GroupForRank(grouping.match_rank);
  return grouping;
}

std::vector<UserGrouping> GroupUsers(const std::vector<RefinedUser>& users,
                                     const geo::AdminDb& db,
                                     TieBreak tie_break,
                                     common::ThreadPool* pool) {
  std::vector<UserGrouping> groupings(users.size());
  common::ParallelFor(pool, users.size(), [&](size_t i) {
    groupings[i] = GroupUser(users[i], db, tie_break);
  });
  return groupings;
}

}  // namespace stir::core
