#include "core/location_string.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/string_util.h"

namespace stir::core {

std::string LocationRecord::ToString() const {
  return StrFormat("%lld#%s#%s#%s#%s", static_cast<long long>(user),
                   profile_state.c_str(), profile_county.c_str(),
                   tweet_state.c_str(), tweet_county.c_str());
}

StatusOr<LocationRecord> LocationRecord::FromString(std::string_view text) {
  std::vector<std::string> fields = Split(text, '#');
  if (fields.size() != 5) {
    return Status::InvalidArgument(
        StrFormat("expected 5 '#'-fields, got %zu", fields.size()));
  }
  auto user = ParseInt64(fields[0]);
  if (!user) {
    return Status::InvalidArgument("bad user id: " + fields[0]);
  }
  LocationRecord record;
  record.user = *user;
  record.profile_state = fields[1];
  record.profile_county = fields[2];
  record.tweet_state = fields[3];
  record.tweet_county = fields[4];
  return record;
}

bool operator==(const LocationRecord& a, const LocationRecord& b) {
  return a.user == b.user && a.profile_state == b.profile_state &&
         a.profile_county == b.profile_county &&
         a.tweet_state == b.tweet_state && a.tweet_county == b.tweet_county;
}

std::string MergedLocationString::ToString() const {
  return StrFormat("%s (%lld)", record.ToString().c_str(),
                   static_cast<long long>(count));
}

std::vector<MergedLocationString> MergeAndOrder(
    const std::vector<LocationRecord>& records, TieBreak tie_break) {
  // Keyed by the serialized record; std::map gives the deterministic
  // lexicographic tie order for free.
  std::map<std::string, MergedLocationString> merged;
  for (const LocationRecord& record : records) {
    STIR_CHECK_EQ(record.user, records.front().user)
        << "MergeAndOrder expects a single user's records";
    auto [it, inserted] =
        merged.try_emplace(record.ToString(), MergedLocationString{record, 0});
    ++it->second.count;
  }
  std::vector<MergedLocationString> ordered;
  ordered.reserve(merged.size());
  for (auto& [key, value] : merged) ordered.push_back(std::move(value));
  if (tie_break == TieBreak::kReverseLexicographic) {
    std::reverse(ordered.begin(), ordered.end());
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const MergedLocationString& a,
                      const MergedLocationString& b) {
                     return a.count > b.count;  // stable keeps tie order
                   });
  return ordered;
}

}  // namespace stir::core
