#ifndef STIR_CORE_GROUPING_H_
#define STIR_CORE_GROUPING_H_

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/location_string.h"
#include "core/refinement.h"
#include "geo/admin_db.h"

namespace stir::core {

/// The paper's user categories: Top-k when the matched string (profile
/// district == tweet district) ranks k-th in the user's merged, ordered
/// list; None when no tweet was ever posted from the profile district.
enum class TopKGroup : int {
  kTop1 = 0,
  kTop2 = 1,
  kTop3 = 2,
  kTop4 = 3,
  kTop5 = 4,
  kTopPlus = 5,  ///< Matched rank 6 or beyond ("Top-6+").
  kNone = 6,
};

inline constexpr int kNumTopKGroups = 7;

/// "Top-1" ... "Top-5", "Top-6+", "None".
const char* TopKGroupToString(TopKGroup group);

/// Maps a 1-based matched rank (or -1 for no match) to its group.
TopKGroup GroupForRank(int rank);

/// A classified user: the Table II rows plus the derived rank/group.
struct UserGrouping {
  twitter::UserId user = twitter::kInvalidUser;
  /// Merged and ordered per-tweet strings (the paper's Table II).
  std::vector<MergedLocationString> ordered;
  /// 1-based rank of the matched string; -1 when absent.
  int match_rank = -1;
  TopKGroup group = TopKGroup::kNone;
  /// Number of GPS tweets that produced the strings.
  int64_t gps_tweet_count = 0;
  /// Number of matched (profile == tweet district) GPS tweets.
  int64_t matched_tweet_count = 0;
  /// Distinct districts the user tweeted from — |ordered| (the profile
  /// part of each string is constant per user).
  int64_t distinct_tweet_locations() const {
    return static_cast<int64_t>(ordered.size());
  }
  /// Dense geo::DistrictNameTable key of the profile (state, county)
  /// pair; kInvalidNameKey only for groupings assembled outside
  /// GroupUser (hand-built test fixtures).
  uint32_t profile_name_key = kInvalidNameKey;
};

/// Builds the text-based grouping for one refined user: renders each GPS
/// tweet into a Table I record using the gazetteer's (state, county)
/// names, merges, orders (breaking count ties per `tie_break`), and
/// locates the matched string.
UserGrouping GroupUser(const RefinedUser& user, const geo::AdminDb& db,
                       TieBreak tie_break = TieBreak::kLexicographic);

/// Classifies every refined user. Output order always matches `users`
/// order: with a worker-carrying `pool` each grouping is computed in
/// parallel but written to its input index, so the result is bit-identical
/// to the serial run for any thread count.
std::vector<UserGrouping> GroupUsers(
    const std::vector<RefinedUser>& users, const geo::AdminDb& db,
    TieBreak tie_break = TieBreak::kLexicographic,
    common::ThreadPool* pool = nullptr);

}  // namespace stir::core

#endif  // STIR_CORE_GROUPING_H_
