#include "core/report.h"

#include <algorithm>

#include "common/csv.h"
#include "common/string_util.h"
#include "stats/descriptive.h"

namespace stir::core {

Status WriteStudyReportCsv(const StudyResult& result,
                           const std::string& directory) {
  auto number = [](double v) { return StrFormat("%.6f", v); };
  auto integer = [](int64_t v) {
    return StrFormat("%lld", static_cast<long long>(v));
  };

  std::vector<std::vector<std::string>> funnel_rows = {
      {"stage", "value"},
      {"crawled_users", integer(result.funnel.crawled_users)},
      {"empty_profiles", integer(result.funnel.quality_counts[0])},
      {"vague_profiles", integer(result.funnel.quality_counts[1])},
      {"insufficient_profiles", integer(result.funnel.quality_counts[2])},
      {"ambiguous_profiles", integer(result.funnel.quality_counts[3])},
      {"well_defined_profiles", integer(result.funnel.well_defined_users)},
      {"total_tweets", integer(result.funnel.total_tweets)},
      {"gps_tweets", integer(result.funnel.gps_tweets)},
      {"geocode_failures", integer(result.funnel.geocode_failures)},
      {"final_users", integer(result.funnel.final_users)},
  };
  if (result.funnel.fault_injection_enabled) {
    // Failure-model rows only appear on faulty runs, keeping fault-free
    // reports byte-identical to earlier versions.
    funnel_rows.push_back(
        {"geocode_faulted", integer(result.funnel.geocode_faulted)});
    funnel_rows.push_back(
        {"geocode_retried", integer(result.funnel.geocode_retried)});
    funnel_rows.push_back(
        {"geocode_degraded", integer(result.funnel.geocode_degraded)});
    funnel_rows.push_back(
        {"simulated_backoff_ms", integer(result.funnel.backoff_ms)});
  }
  STIR_RETURN_IF_ERROR(
      WriteCsvFile(directory + "/funnel.csv", funnel_rows));

  std::vector<std::vector<std::string>> group_rows = {
      {"group", "users", "user_share", "gps_tweets", "tweet_share",
       "avg_tweet_locations"}};
  for (int g = 0; g < kNumTopKGroups; ++g) {
    const GroupStats& stats = result.groups[g];
    group_rows.push_back({TopKGroupToString(static_cast<TopKGroup>(g)),
                          integer(stats.users), number(stats.user_share),
                          integer(stats.gps_tweets),
                          number(stats.tweet_share),
                          number(stats.avg_tweet_locations)});
  }
  STIR_RETURN_IF_ERROR(
      WriteCsvFile(directory + "/groups.csv", group_rows));

  std::vector<std::vector<std::string>> user_rows = {
      {"user", "group", "match_rank", "gps_tweets", "matched_tweets",
       "distinct_locations"}};
  for (const UserGrouping& grouping : result.groupings) {
    user_rows.push_back(
        {integer(grouping.user), TopKGroupToString(grouping.group),
         integer(grouping.match_rank), integer(grouping.gps_tweet_count),
         integer(grouping.matched_tweet_count),
         integer(grouping.distinct_tweet_locations())});
  }
  return WriteCsvFile(directory + "/users.csv", user_rows);
}

std::string RenderGpsTweetHistogram(const StudyResult& result, int buckets) {
  int64_t max_count = 1;
  for (const UserGrouping& grouping : result.groupings) {
    max_count = std::max(max_count, grouping.gps_tweet_count);
  }
  stats::Histogram histogram(0.0, static_cast<double>(max_count) + 1.0,
                             buckets);
  for (const UserGrouping& grouping : result.groupings) {
    histogram.Add(static_cast<double>(grouping.gps_tweet_count));
  }
  return "GPS tweets per final user:\n" + histogram.ToString();
}

}  // namespace stir::core
