#include "core/report.h"

#include <algorithm>
#include <fstream>

#include "common/csv.h"
#include "common/string_util.h"
#include "obs/json.h"
#include "stats/descriptive.h"

namespace stir::core {

Status WriteStudyReportCsv(const StudyResult& result,
                           const std::string& directory) {
  auto number = [](double v) { return StrFormat("%.6f", v); };
  auto integer = [](int64_t v) {
    return StrFormat("%lld", static_cast<long long>(v));
  };

  std::vector<std::vector<std::string>> funnel_rows = {
      {"stage", "value"},
      {"crawled_users", integer(result.funnel.crawled_users)},
      {"empty_profiles", integer(result.funnel.quality_counts[0])},
      {"vague_profiles", integer(result.funnel.quality_counts[1])},
      {"insufficient_profiles", integer(result.funnel.quality_counts[2])},
      {"ambiguous_profiles", integer(result.funnel.quality_counts[3])},
      {"well_defined_profiles", integer(result.funnel.well_defined_users)},
      {"total_tweets", integer(result.funnel.total_tweets)},
      {"gps_tweets", integer(result.funnel.gps_tweets)},
      {"geocode_failures", integer(result.funnel.geocode_failures)},
      {"final_users", integer(result.funnel.final_users)},
  };
  if (result.funnel.fault_injection_enabled) {
    // Failure-model rows only appear on faulty runs, keeping fault-free
    // reports byte-identical to earlier versions.
    funnel_rows.push_back(
        {"geocode_faulted", integer(result.funnel.geocode_faulted)});
    funnel_rows.push_back(
        {"geocode_retried", integer(result.funnel.geocode_retried)});
    funnel_rows.push_back(
        {"geocode_degraded", integer(result.funnel.geocode_degraded)});
    funnel_rows.push_back(
        {"simulated_backoff_ms", integer(result.funnel.backoff_ms)});
  }
  STIR_RETURN_IF_ERROR(
      WriteCsvFile(directory + "/funnel.csv", funnel_rows));

  std::vector<std::vector<std::string>> group_rows = {
      {"group", "users", "user_share", "gps_tweets", "tweet_share",
       "avg_tweet_locations"}};
  for (int g = 0; g < kNumTopKGroups; ++g) {
    const GroupStats& stats = result.groups[g];
    group_rows.push_back({TopKGroupToString(static_cast<TopKGroup>(g)),
                          integer(stats.users), number(stats.user_share),
                          integer(stats.gps_tweets),
                          number(stats.tweet_share),
                          number(stats.avg_tweet_locations)});
  }
  STIR_RETURN_IF_ERROR(
      WriteCsvFile(directory + "/groups.csv", group_rows));

  std::vector<std::vector<std::string>> user_rows = {
      {"user", "group", "match_rank", "gps_tweets", "matched_tweets",
       "distinct_locations"}};
  for (const UserGrouping& grouping : result.groupings) {
    user_rows.push_back(
        {integer(grouping.user), TopKGroupToString(grouping.group),
         integer(grouping.match_rank), integer(grouping.gps_tweet_count),
         integer(grouping.matched_tweet_count),
         integer(grouping.distinct_tweet_locations())});
  }
  return WriteCsvFile(directory + "/users.csv", user_rows);
}

std::string StudyReportJsonString(const StudyResult& result,
                                  int schema_version) {
  const FunnelStats& funnel = result.funnel;
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(schema_version);

  w.Key("funnel");
  w.BeginObject();
  w.Key("crawled_users"); w.Int(funnel.crawled_users);
  w.Key("empty_profiles"); w.Int(funnel.quality_counts[0]);
  w.Key("vague_profiles"); w.Int(funnel.quality_counts[1]);
  w.Key("insufficient_profiles"); w.Int(funnel.quality_counts[2]);
  w.Key("ambiguous_profiles"); w.Int(funnel.quality_counts[3]);
  w.Key("well_defined_profiles"); w.Int(funnel.well_defined_users);
  w.Key("total_tweets"); w.Int(funnel.total_tweets);
  w.Key("gps_tweets"); w.Int(funnel.gps_tweets);
  w.Key("geocode_failures"); w.Int(funnel.geocode_failures);
  w.Key("final_users"); w.Int(funnel.final_users);
  if (schema_version == 1 && funnel.fault_injection_enabled) {
    // Legacy layout: fault counters inlined into the funnel, and only
    // when the fault layer was engaged (mirrors funnel.csv).
    w.Key("geocode_faulted"); w.Int(funnel.geocode_faulted);
    w.Key("geocode_retried"); w.Int(funnel.geocode_retried);
    w.Key("geocode_degraded"); w.Int(funnel.geocode_degraded);
    w.Key("simulated_backoff_ms"); w.Int(funnel.backoff_ms);
  }
  w.EndObject();

  if (schema_version >= 2) {
    // Schema 2: the failure model is always reported, under its own
    // object, with an explicit enabled marker (all-zero counters on a
    // fault-free run are data, not absence).
    w.Key("resilience");
    w.BeginObject();
    w.Key("fault_injection_enabled");
    w.Bool(funnel.fault_injection_enabled);
    w.Key("geocode_faulted"); w.Int(funnel.geocode_faulted);
    w.Key("geocode_retried"); w.Int(funnel.geocode_retried);
    w.Key("geocode_degraded"); w.Int(funnel.geocode_degraded);
    w.Key("simulated_backoff_ms"); w.Int(funnel.backoff_ms);
    w.EndObject();
  }

  w.Key("groups");
  w.BeginArray();
  for (int g = 0; g < kNumTopKGroups; ++g) {
    const GroupStats& stats = result.groups[g];
    w.BeginObject();
    w.Key("group"); w.String(TopKGroupToString(static_cast<TopKGroup>(g)));
    w.Key("users"); w.Int(stats.users);
    w.Key("user_share"); w.FixedDouble(stats.user_share, 6);
    w.Key("gps_tweets"); w.Int(stats.gps_tweets);
    w.Key("tweet_share"); w.FixedDouble(stats.tweet_share, 6);
    w.Key("avg_tweet_locations"); w.FixedDouble(stats.avg_tweet_locations, 6);
    w.EndObject();
  }
  w.EndArray();

  w.Key("final_users");
  w.Int(result.final_users);
  w.Key("overall_avg_locations");
  w.FixedDouble(result.overall_avg_locations, 6);
  w.EndObject();
  return w.TakeString();
}

Status WriteStudyReportJson(const StudyResult& result,
                            const std::string& directory,
                            int schema_version) {
  if (schema_version < 1 || schema_version > kReportSchemaVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported report schema version %d (supported: 1..%d)",
                  schema_version, kReportSchemaVersion));
  }
  std::string path = directory + "/report.json";
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << StudyReportJsonString(result, schema_version) << '\n';
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

std::string RenderGpsTweetHistogram(const StudyResult& result, int buckets) {
  int64_t max_count = 1;
  for (const UserGrouping& grouping : result.groupings) {
    max_count = std::max(max_count, grouping.gps_tweet_count);
  }
  stats::Histogram histogram(0.0, static_cast<double>(max_count) + 1.0,
                             buckets);
  for (const UserGrouping& grouping : result.groupings) {
    histogram.Add(static_cast<double>(grouping.gps_tweet_count));
  }
  return "GPS tweets per final user:\n" + histogram.ToString();
}

}  // namespace stir::core
