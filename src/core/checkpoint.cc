#include "core/checkpoint.h"

#include <cstring>

#include "common/hash.h"
#include "common/logging.h"
#include "core/study_config.h"
#include "io/atomic_file.h"
#include "io/serialize.h"
#include "io/snapshot.h"

namespace stir::core {

namespace {

constexpr std::string_view kCheckpointMagic = "STIRCKP1";
constexpr char kCheckpointFileName[] = "study.ckpt";

void PutFunnel(io::BinaryWriter& w, const FunnelStats& stats) {
  w.I64(stats.crawled_users);
  for (int q = 0; q < 5; ++q) w.I64(stats.quality_counts[q]);
  w.I64(stats.well_defined_users);
  w.I64(stats.total_tweets);
  w.I64(stats.gps_tweets);
  w.I64(stats.geocode_failures);
  w.I64(stats.final_users);
  w.Bool(stats.fault_injection_enabled);
  w.I64(stats.geocode_faulted);
  w.I64(stats.geocode_retried);
  w.I64(stats.geocode_degraded);
  w.I64(stats.backoff_ms);
}

bool GetFunnel(io::BinaryReader& r, FunnelStats* stats) {
  bool ok = r.I64(&stats->crawled_users);
  for (int q = 0; q < 5; ++q) ok = ok && r.I64(&stats->quality_counts[q]);
  ok = ok && r.I64(&stats->well_defined_users);
  ok = ok && r.I64(&stats->total_tweets);
  ok = ok && r.I64(&stats->gps_tweets);
  ok = ok && r.I64(&stats->geocode_failures);
  ok = ok && r.I64(&stats->final_users);
  ok = ok && r.Bool(&stats->fault_injection_enabled);
  ok = ok && r.I64(&stats->geocode_faulted);
  ok = ok && r.I64(&stats->geocode_retried);
  ok = ok && r.I64(&stats->geocode_degraded);
  ok = ok && r.I64(&stats->backoff_ms);
  return ok;
}

void PutRefinedUser(io::BinaryWriter& w, const RefinedUser& user) {
  w.I64(user.user);
  w.I32(user.profile_region);
  w.I64(user.total_tweets);
  w.U64(user.tweet_regions.size());
  for (geo::RegionId region : user.tweet_regions) w.I32(region);
}

bool GetRefinedUser(io::BinaryReader& r, RefinedUser* user) {
  int64_t id = twitter::kInvalidUser;
  int32_t profile_region = geo::kInvalidRegion;
  uint64_t count = 0;
  if (!r.I64(&id) || !r.I32(&profile_region) || !r.I64(&user->total_tweets) ||
      !r.U64(&count) || count > r.remaining() / sizeof(int32_t)) {
    return false;
  }
  user->user = id;
  user->profile_region = profile_region;
  user->tweet_regions.resize(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    int32_t region = geo::kInvalidRegion;
    if (!r.I32(&region)) return false;
    user->tweet_regions[static_cast<size_t>(i)] = region;
  }
  return true;
}

void PutRefinedUsers(io::BinaryWriter& w,
                     const std::vector<RefinedUser>& users) {
  w.U64(users.size());
  for (const RefinedUser& user : users) PutRefinedUser(w, user);
}

bool GetRefinedUsers(io::BinaryReader& r, std::vector<RefinedUser>* users) {
  uint64_t count = 0;
  if (!r.U64(&count) || count > r.remaining()) return false;
  users->resize(static_cast<size_t>(count));
  for (RefinedUser& user : *users) {
    if (!GetRefinedUser(r, &user)) return false;
  }
  return true;
}

uint64_t HashDouble(uint64_t h, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return HashCombine(h, bits);
}

}  // namespace

std::string StudyCheckpoint::Serialize() const {
  io::BinaryWriter w;
  w.U32(static_cast<uint32_t>(stage));
  w.U64(dataset_fingerprint);
  w.U64(config_fingerprint);
  w.I64(fault_next_index);
  if (stage == kRefinementInProgress) {
    w.U64(shards.size());
    for (const ShardProgress& shard : shards) {
      w.I64(shard.next_user);
      w.Bool(shard.done);
      PutFunnel(w, shard.stats);
      PutRefinedUsers(w, shard.refined);
    }
  } else {
    PutFunnel(w, funnel);
    PutRefinedUsers(w, refined);
  }
  return w.Take();
}

StatusOr<StudyCheckpoint> StudyCheckpoint::Deserialize(
    std::string_view payload) {
  Status corrupt = Status::InvalidArgument("corrupt study checkpoint payload");
  io::BinaryReader r(payload);
  StudyCheckpoint checkpoint;
  uint32_t stage = 0;
  if (!r.U32(&stage) || stage > kRefinementDone ||
      !r.U64(&checkpoint.dataset_fingerprint) ||
      !r.U64(&checkpoint.config_fingerprint) ||
      !r.I64(&checkpoint.fault_next_index)) {
    return corrupt;
  }
  checkpoint.stage = static_cast<Stage>(stage);
  if (checkpoint.stage == kRefinementInProgress) {
    uint64_t shard_count = 0;
    if (!r.U64(&shard_count) || shard_count > r.remaining()) return corrupt;
    checkpoint.shards.resize(static_cast<size_t>(shard_count));
    for (ShardProgress& shard : checkpoint.shards) {
      if (!r.I64(&shard.next_user) || !r.Bool(&shard.done) ||
          !GetFunnel(r, &shard.stats) || !GetRefinedUsers(r, &shard.refined)) {
        return corrupt;
      }
    }
  } else {
    if (!GetFunnel(r, &checkpoint.funnel) ||
        !GetRefinedUsers(r, &checkpoint.refined)) {
      return corrupt;
    }
  }
  if (!r.Done()) return corrupt;
  return checkpoint;
}

uint64_t DatasetFingerprint(const twitter::Dataset& dataset) {
  uint64_t h = Fnv1a64("stir.dataset");
  h = HashCombine(h, dataset.users().size());
  h = HashCombine(h, static_cast<uint64_t>(dataset.total_tweet_count()));
  h = HashCombine(h, static_cast<uint64_t>(dataset.gps_tweet_count()));
  for (const twitter::User& user : dataset.users()) {
    h = HashCombine(h, static_cast<uint64_t>(user.id));
    h = HashCombine(h, static_cast<uint64_t>(user.total_tweets));
    h = HashCombine(h, Fnv1a64(user.profile_location));
  }
  h = HashCombine(h, dataset.tweets().size());
  return Mix64(h);
}

uint64_t ConfigFingerprint(const StudyConfig& config) {
  uint64_t h = Fnv1a64("stir.config");
  h = HashCombine(h, static_cast<uint64_t>(config.threads));
  h = HashCombine(h, static_cast<uint64_t>(config.tie_break));
  h = HashCombine(h,
                  static_cast<uint64_t>(config.refinement.faithful_xml_pipeline));
  h = HashCombine(
      h, static_cast<uint64_t>(config.refinement.degraded_text_fallback));
  h = HashCombine(h, static_cast<uint64_t>(config.geocoder.enable_cache));
  h = HashCombine(h, static_cast<uint64_t>(config.geocoder.cache_precision));
  h = HashCombine(h, static_cast<uint64_t>(config.geocoder.quota));
  h = HashCombine(h, config.fault.seed);
  h = HashDouble(h, config.fault.error_rate);
  h = HashCombine(h, static_cast<uint64_t>(config.fault.burst_start));
  h = HashCombine(h, static_cast<uint64_t>(config.fault.burst_length));
  h = HashCombine(h, static_cast<uint64_t>(config.fault.burst_period));
  h = HashCombine(h, static_cast<uint64_t>(config.fault.exhaust_after));
  h = HashDouble(h, config.fault.latency_spike_rate);
  h = HashCombine(h, static_cast<uint64_t>(config.fault.latency_spike_ms));
  h = HashCombine(h, static_cast<uint64_t>(config.retry.max_attempts));
  h = HashCombine(h, static_cast<uint64_t>(config.retry.base_backoff_ms));
  h = HashDouble(h, config.retry.multiplier);
  h = HashCombine(h, static_cast<uint64_t>(config.retry.max_backoff_ms));
  h = HashDouble(h, config.retry.jitter);
  h = HashCombine(h, config.retry.seed);
  h = HashCombine(h,
                  static_cast<uint64_t>(config.retry.retry_resource_exhausted));
  return Mix64(h);
}

CheckpointManager::CheckpointManager(std::string dir, bool fsync)
    : dir_(std::move(dir)), fsync_(fsync) {}

std::string CheckpointManager::checkpoint_path() const {
  return dir_ + "/" + kCheckpointFileName;
}

Status CheckpointManager::Save(const StudyCheckpoint& checkpoint) {
  Status s = io::WriteSnapshotFile(checkpoint_path(), kCheckpointMagic,
                                   checkpoint.Serialize(), fsync_);
  if (s.ok()) ++writes_;
  return s;
}

StatusOr<StudyCheckpoint> CheckpointManager::Load() const {
  STIR_ASSIGN_OR_RETURN(std::string payload,
                        io::ReadSnapshotFile(checkpoint_path(),
                                             kCheckpointMagic));
  return StudyCheckpoint::Deserialize(payload);
}

StudyCheckpointer::StudyCheckpointer(const io::DurabilityOptions& options,
                                     uint64_t dataset_fingerprint,
                                     uint64_t config_fingerprint)
    : options_(options),
      manager_(options.checkpoint_dir, options.fsync),
      dataset_fingerprint_(dataset_fingerprint),
      config_fingerprint_(config_fingerprint) {}

bool StudyCheckpointer::TryRestore() {
  if (!io::PathExists(manager_.checkpoint_path())) return false;
  StatusOr<StudyCheckpoint> loaded = manager_.Load();
  if (!loaded.ok()) {
    STIR_LOG(Warning) << "study checkpoint unusable, starting fresh: "
                      << loaded.status().message();
    return false;
  }
  if (loaded->dataset_fingerprint != dataset_fingerprint_ ||
      loaded->config_fingerprint != config_fingerprint_) {
    STIR_LOG(Warning) << "study checkpoint is for a different dataset or "
                         "configuration, starting fresh";
    return false;
  }
  restored_ = *std::move(loaded);
  has_restored_ = true;
  return true;
}

void StudyCheckpointer::InitShards(size_t shard_count) {
  std::lock_guard<std::mutex> lock(mu_);
  progress_.assign(shard_count, ShardProgress{});
  users_since_snapshot_.assign(shard_count, 0);
  if (has_restored_ && restored_.stage == StudyCheckpoint::kRefinementInProgress) {
    if (restored_.shards.size() == shard_count) {
      progress_ = restored_.shards;
    } else {
      STIR_LOG(Warning) << "study checkpoint has " << restored_.shards.size()
                        << " shards but this run partitions into "
                        << shard_count << "; restarting refinement";
      has_restored_ = false;
      restored_ = StudyCheckpoint{};
    }
  }
}

const ShardProgress* StudyCheckpointer::RestoredShard(size_t shard) const {
  if (!has_restored_ ||
      restored_.stage != StudyCheckpoint::kRefinementInProgress ||
      shard >= restored_.shards.size()) {
    return nullptr;
  }
  return &restored_.shards[shard];
}

std::vector<RefinedUser> StudyCheckpointer::TakeRestoredShardRefined(
    size_t shard) {
  const ShardProgress* restored = RestoredShard(shard);
  if (restored == nullptr) return {};
  return std::move(restored_.shards[shard].refined);
}

void StudyCheckpointer::NoteUserProcessed(
    size_t shard, int64_t next_user, const FunnelStats& stats,
    const std::vector<RefinedUser>& refined, bool shard_done) {
  int64_t total = total_processed_.fetch_add(1, std::memory_order_relaxed) + 1;
  bool halt = options_.halt_after_users >= 0 &&
              total >= options_.halt_after_users;
  if (halt) halted_.store(true, std::memory_order_relaxed);

  int64_t& pending = users_since_snapshot_[shard];
  ++pending;
  if (!shard_done && !halt && pending < options_.checkpoint_every_users) {
    return;
  }
  pending = 0;

  std::lock_guard<std::mutex> lock(mu_);
  ShardProgress& slot = progress_[shard];
  slot.next_user = next_user;
  slot.done = shard_done;
  slot.stats = stats;
  slot.refined = refined;
  SaveLocked();
}

void StudyCheckpointer::SaveLocked() {
  StudyCheckpoint checkpoint;
  checkpoint.stage = StudyCheckpoint::kRefinementInProgress;
  checkpoint.dataset_fingerprint = dataset_fingerprint_;
  checkpoint.config_fingerprint = config_fingerprint_;
  checkpoint.fault_next_index =
      injector_ != nullptr ? injector_->next_index_value() : 0;
  checkpoint.shards = progress_;
  Status s = manager_.Save(checkpoint);
  if (!s.ok()) {
    STIR_LOG(Warning) << "checkpoint write failed (continuing without): "
                      << s.message();
  }
}

Status StudyCheckpointer::SaveRefinementDone(
    const FunnelStats& funnel, const std::vector<RefinedUser>& refined) {
  StudyCheckpoint checkpoint;
  checkpoint.stage = StudyCheckpoint::kRefinementDone;
  checkpoint.dataset_fingerprint = dataset_fingerprint_;
  checkpoint.config_fingerprint = config_fingerprint_;
  checkpoint.fault_next_index =
      injector_ != nullptr ? injector_->next_index_value() : 0;
  checkpoint.funnel = funnel;
  checkpoint.refined = refined;
  std::lock_guard<std::mutex> lock(mu_);
  return manager_.Save(checkpoint);
}

bool StudyCheckpointer::ShouldStop() const {
  return halted_.load(std::memory_order_relaxed);
}

}  // namespace stir::core
