#include "core/temporal.h"

#include <cmath>

#include "common/clock.h"
#include "common/string_util.h"

namespace stir::core {

int PostingProfile::PeakHour() const {
  int best = 0;
  for (int h = 1; h < 24; ++h) {
    if (hour_share[static_cast<size_t>(h)] >
        hour_share[static_cast<size_t>(best)]) {
      best = h;
    }
  }
  return best;
}

int PostingProfile::TroughHour() const {
  int best = 0;
  for (int h = 1; h < 24; ++h) {
    if (hour_share[static_cast<size_t>(h)] <
        hour_share[static_cast<size_t>(best)]) {
      best = h;
    }
  }
  return best;
}

double PostingProfile::EntropyBits() const {
  double entropy = 0.0;
  for (double p : hour_share) {
    if (p > 0.0) entropy -= p * std::log2(p);
  }
  return entropy;
}

std::string PostingProfile::ToString() const {
  double peak = 1e-12;
  for (double p : hour_share) peak = std::max(peak, p);
  std::string out;
  for (int h = 0; h < 24; ++h) {
    double p = hour_share[static_cast<size_t>(h)];
    int bar = static_cast<int>(p / peak * 40.0);
    out += StrFormat("%02d:00 %6.2f%% |%s\n", h, p * 100.0,
                     std::string(static_cast<size_t>(bar), '#').c_str());
  }
  return out;
}

namespace {

PostingProfile FromCounts(const std::array<int64_t, 24>& counts,
                          int64_t total) {
  PostingProfile profile;
  profile.tweet_count = total;
  for (int h = 0; h < 24; ++h) {
    profile.hour_share[static_cast<size_t>(h)] =
        static_cast<double>(counts[static_cast<size_t>(h)]) /
        static_cast<double>(total);
  }
  return profile;
}

}  // namespace

StatusOr<PostingProfile> ComputePostingProfile(
    const twitter::Dataset& dataset) {
  if (dataset.tweets().empty()) {
    return Status::InvalidArgument("no materialized tweets in dataset");
  }
  std::array<int64_t, 24> counts{};
  for (const twitter::Tweet& tweet : dataset.tweets()) {
    ++counts[static_cast<size_t>(HourOfDay(tweet.time))];
  }
  return FromCounts(counts, static_cast<int64_t>(dataset.tweets().size()));
}

StatusOr<PostingProfile> ComputeUserPostingProfile(
    const twitter::Dataset& dataset, twitter::UserId user) {
  const std::vector<size_t>& indices = dataset.TweetIndicesOf(user);
  if (indices.empty()) {
    return Status::NotFound("user has no materialized tweets");
  }
  std::array<int64_t, 24> counts{};
  for (size_t index : indices) {
    ++counts[static_cast<size_t>(HourOfDay(dataset.tweets()[index].time))];
  }
  return FromCounts(counts, static_cast<int64_t>(indices.size()));
}

double ProfileDistance(const PostingProfile& a, const PostingProfile& b) {
  double distance = 0.0;
  for (int h = 0; h < 24; ++h) {
    distance += std::fabs(a.hour_share[static_cast<size_t>(h)] -
                          b.hour_share[static_cast<size_t>(h)]);
  }
  return distance;
}

}  // namespace stir::core
