#ifndef STIR_CORE_CHECKPOINT_H_
#define STIR_CORE_CHECKPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/refinement.h"
#include "io/options.h"
#include "twitter/dataset.h"

namespace stir {
struct StudyConfig;
}

namespace stir::core {

/// Refinement progress of one shard: everything needed to restart the
/// shard's loop at `next_user` as if it had never stopped.
struct ShardProgress {
  /// Absolute dataset user index the shard resumes at (== its shard `end`
  /// once the shard has finished).
  int64_t next_user = 0;
  bool done = false;
  /// Per-user funnel counters accumulated over *completed* users only —
  /// an in-flight user's partial counts are never persisted, so its work
  /// simply re-runs (deterministically) after a crash.
  FunnelStats stats;
  std::vector<RefinedUser> refined;
};

/// The durable study state (snapshot magic "STIRCKP1"). One snapshot file
/// holds either mid-refinement shard progress or the completed
/// refinement output; grouping and aggregation are cheap, deterministic
/// functions of the refined vector, so they are recomputed on resume
/// rather than persisted.
struct StudyCheckpoint {
  enum Stage : uint32_t {
    kRefinementInProgress = 0,
    kRefinementDone = 1,
  };

  Stage stage = kRefinementInProgress;
  /// Guards against resuming against the wrong inputs: a mismatch means
  /// the checkpoint describes some other run, and resume degrades to a
  /// fresh start (never to silently wrong output).
  uint64_t dataset_fingerprint = 0;
  uint64_t config_fingerprint = 0;
  /// FaultInjector sequence position (Next()/NextIndex() stream), so
  /// sequence-indexed fault schedules continue instead of restarting.
  int64_t fault_next_index = 0;
  /// kRefinementInProgress payload.
  std::vector<ShardProgress> shards;
  /// kRefinementDone payload.
  FunnelStats funnel;
  std::vector<RefinedUser> refined;

  std::string Serialize() const;
  static StatusOr<StudyCheckpoint> Deserialize(std::string_view payload);
};

/// Stable fingerprints for resume validation.
uint64_t DatasetFingerprint(const twitter::Dataset& dataset);
/// Hashes the result-affecting config knobs (threads, tie-break,
/// refinement, fault schedule, retry, geocoder quota/cache). Durability,
/// crash-point, and observability knobs are deliberately excluded: the
/// crashed run and its resume differ in exactly those.
uint64_t ConfigFingerprint(const StudyConfig& config);

/// Atomic persistence of StudyCheckpoint under a checkpoint directory.
class CheckpointManager {
 public:
  CheckpointManager(std::string dir, bool fsync);

  std::string checkpoint_path() const;
  Status Save(const StudyCheckpoint& checkpoint);
  /// IOError when no checkpoint exists; InvalidArgument when the file is
  /// corrupt (bad magic/CRC/payload).
  StatusOr<StudyCheckpoint> Load() const;

  int64_t writes() const { return writes_; }

 private:
  std::string dir_;
  bool fsync_;
  int64_t writes_ = 0;
};

/// Orchestrates checkpointing for one pipeline run: holds the restored
/// state (if any), collects per-shard progress as workers report it, and
/// writes a consistent snapshot every `checkpoint_every_users` completed
/// users per shard (and at every shard completion).
///
/// Thread model: each shard is owned by one worker thread;
/// NoteUserProcessed is called only by the owning worker, which serializes
/// all shards' latest *published* progress under one mutex. Workers
/// publish copies, so a snapshot taken while other shards keep running is
/// internally consistent (every shard at some completed-user boundary).
class StudyCheckpointer {
 public:
  StudyCheckpointer(const io::DurabilityOptions& options,
                    uint64_t dataset_fingerprint, uint64_t config_fingerprint);

  /// Loads + validates a prior checkpoint (resume mode). Returns true
  /// when restored state is available; false (with a warning logged) on
  /// missing/corrupt/mismatched checkpoints — the degrade-to-fresh path.
  bool TryRestore();

  bool restored() const { return has_restored_; }
  StudyCheckpoint::Stage restored_stage() const { return restored_.stage; }
  int64_t restored_fault_next_index() const {
    return restored_.fault_next_index;
  }
  /// Completed-refinement payload (valid when restored() and the stage is
  /// kRefinementDone).
  const FunnelStats& restored_funnel() const { return restored_.funnel; }
  std::vector<RefinedUser> TakeRestoredRefined() {
    return std::move(restored_.refined);
  }

  /// Prepares the progress table for `shard_count` shards. Restored
  /// mid-refinement progress is kept only when its shard count matches
  /// (a different thread count re-partitions users; starting fresh is
  /// always correct, merely slower).
  void InitShards(size_t shard_count);

  /// Restored progress for one shard (null when starting fresh).
  const ShardProgress* RestoredShard(size_t shard) const;
  /// Moves the restored shard's refined users out (the worker extends it).
  std::vector<RefinedUser> TakeRestoredShardRefined(size_t shard);

  /// Reports one completed user. `stats`/`refined` are the shard's
  /// *complete* progress so far (not deltas). Writes a snapshot on the
  /// cadence boundary, when the shard finishes, or when a halt was
  /// requested (so the halt point is always durable).
  void NoteUserProcessed(size_t shard, int64_t next_user,
                         const FunnelStats& stats,
                         const std::vector<RefinedUser>& refined,
                         bool shard_done);

  /// Records the completed refinement stage (funnel globals + merged
  /// refined vector).
  Status SaveRefinementDone(const FunnelStats& funnel,
                            const std::vector<RefinedUser>& refined);

  /// Test hook: true once halt_after_users users have been processed
  /// (the pipeline then stops cleanly, leaving checkpoints behind as a
  /// simulated crash).
  bool ShouldStop() const;
  bool halted() const { return halted_.load(std::memory_order_relaxed); }

  /// Sampled by snapshots; set by the study before the pipeline runs.
  void set_fault_injector(common::FaultInjector* injector) {
    injector_ = injector;
  }

  int64_t snapshot_writes() const { return manager_.writes(); }

 private:
  void SaveLocked();  // mu_ must be held.

  io::DurabilityOptions options_;
  CheckpointManager manager_;
  uint64_t dataset_fingerprint_;
  uint64_t config_fingerprint_;
  common::FaultInjector* injector_ = nullptr;

  bool has_restored_ = false;
  StudyCheckpoint restored_;

  std::mutex mu_;
  std::vector<ShardProgress> progress_;        // guarded by mu_
  std::vector<int64_t> users_since_snapshot_;  // owner-thread only, per shard

  std::atomic<int64_t> total_processed_{0};
  std::atomic<bool> halted_{false};
};

}  // namespace stir::core

#endif  // STIR_CORE_CHECKPOINT_H_
