#include "core/study.h"

#include <memory>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "geo/geocode_journal.h"
#include "io/atomic_file.h"
#include "io/corpus.h"

namespace stir::core {

std::string StudyResult::GroupTableString() const {
  std::string out;
  out += StrFormat("%-8s %8s %8s %12s %9s %14s\n", "group", "users", "user%",
                   "gps_tweets", "tweet%", "avg_locations");
  for (int g = 0; g < kNumTopKGroups; ++g) {
    const GroupStats& stats = groups[g];
    out += StrFormat("%-8s %8lld %7.2f%% %12lld %8.2f%% %14.2f\n",
                     TopKGroupToString(static_cast<TopKGroup>(g)),
                     static_cast<long long>(stats.users),
                     stats.user_share * 100.0,
                     static_cast<long long>(stats.gps_tweets),
                     stats.tweet_share * 100.0, stats.avg_tweet_locations);
  }
  out += StrFormat("overall avg tweet locations per user: %.2f\n",
                   overall_avg_locations);
  return out;
}

std::string StudyResult::FunnelString() const {
  std::string out;
  out += StrFormat("crawled users:               %lld\n",
                   static_cast<long long>(funnel.crawled_users));
  out += StrFormat("  empty profile location:    %lld\n",
                   static_cast<long long>(funnel.quality_counts[0]));
  out += StrFormat("  vague:                     %lld\n",
                   static_cast<long long>(funnel.quality_counts[1]));
  out += StrFormat("  insufficient:              %lld\n",
                   static_cast<long long>(funnel.quality_counts[2]));
  out += StrFormat("  ambiguous:                 %lld\n",
                   static_cast<long long>(funnel.quality_counts[3]));
  out += StrFormat("well-defined profiles:       %lld\n",
                   static_cast<long long>(funnel.well_defined_users));
  out += StrFormat("total tweets (corpus):       %lld\n",
                   static_cast<long long>(funnel.total_tweets));
  out += StrFormat("GPS-tagged tweets:           %lld\n",
                   static_cast<long long>(funnel.gps_tweets));
  out += StrFormat("geocode failures:            %lld\n",
                   static_cast<long long>(funnel.geocode_failures));
  if (funnel.fault_injection_enabled) {
    out += StrFormat("  service faults (terminal): %lld\n",
                     static_cast<long long>(funnel.geocode_faulted));
    out += StrFormat("  retried attempts:          %lld\n",
                     static_cast<long long>(funnel.geocode_retried));
    out += StrFormat("  degraded (text fallback):  %lld\n",
                     static_cast<long long>(funnel.geocode_degraded));
    out += StrFormat("  simulated backoff (ms):    %lld\n",
                     static_cast<long long>(funnel.backoff_ms));
  }
  out += StrFormat("final users (study sample):  %lld\n",
                   static_cast<long long>(funnel.final_users));
  return out;
}

void AggregateGroups(StudyResult* result) {
  for (int g = 0; g < kNumTopKGroups; ++g) result->groups[g] = GroupStats{};
  result->final_users = static_cast<int64_t>(result->groupings.size());
  int64_t total_gps = 0;
  double location_sum_all = 0.0;
  double location_sum[kNumTopKGroups] = {};
  for (const UserGrouping& grouping : result->groupings) {
    GroupStats& stats = result->groups[static_cast<int>(grouping.group)];
    ++stats.users;
    stats.gps_tweets += grouping.gps_tweet_count;
    total_gps += grouping.gps_tweet_count;
    location_sum[static_cast<int>(grouping.group)] +=
        static_cast<double>(grouping.distinct_tweet_locations());
    location_sum_all +=
        static_cast<double>(grouping.distinct_tweet_locations());
  }
  for (int g = 0; g < kNumTopKGroups; ++g) {
    GroupStats& stats = result->groups[g];
    if (result->final_users > 0) {
      stats.user_share = static_cast<double>(stats.users) /
                         static_cast<double>(result->final_users);
    }
    if (total_gps > 0) {
      stats.tweet_share = static_cast<double>(stats.gps_tweets) /
                          static_cast<double>(total_gps);
    }
    if (stats.users > 0) {
      stats.avg_tweet_locations =
          location_sum[g] / static_cast<double>(stats.users);
    }
  }
  result->overall_avg_locations =
      result->final_users > 0
          ? location_sum_all / static_cast<double>(result->final_users)
          : 0.0;
}

CorrelationStudy::CorrelationStudy(const geo::AdminDb* db,
                                   const StudyConfig& config)
    : db_(db), config_(config), parser_(db) {}

StudyResult CorrelationStudy::RunWithEffectiveConfig(
    const std::function<void(const StudyConfig&, StudyResult*)>& stages)
    const {
  StudyResult result;

  // Resolve the effective observability sinks: a caller-owned instance
  // wins; an enable flag with no instance gets a per-run one; otherwise
  // the pointers stay null and every component takes its
  // pre-observability path (the byte-identical guarantee).
  StudyConfig cfg = config_;
  std::unique_ptr<obs::MetricsRegistry> run_metrics;
  if (cfg.obs.metrics == nullptr && cfg.obs.enable_metrics) {
    run_metrics = std::make_unique<obs::MetricsRegistry>();
    cfg.obs.metrics = run_metrics.get();
  }
  std::unique_ptr<obs::SteadyClock> steady_clock;
  std::unique_ptr<obs::Tracer> run_tracer;
  if (cfg.obs.tracer == nullptr && cfg.obs.enable_trace) {
    obs::Tracer::Options tracer_options;
    if (cfg.obs.real_time_trace) {
      steady_clock = std::make_unique<obs::SteadyClock>();
      tracer_options.clock = steady_clock.get();
    }
    run_tracer = std::make_unique<obs::Tracer>(tracer_options);
    cfg.obs.tracer = run_tracer.get();
  }

  // The stages close the "study" root span on return, so the snapshots
  // below see every span complete.
  stages(cfg, &result);

  if (cfg.obs.metrics != nullptr) {
    result.metrics = cfg.obs.metrics->Snapshot();
  }
  if (cfg.obs.tracer != nullptr) {
    result.trace = cfg.obs.tracer->Snapshot();
  }
  return result;
}

StudyResult CorrelationStudy::Run(const twitter::Dataset& dataset) const {
  return RunWithEffectiveConfig(
      [&](const StudyConfig& cfg, StudyResult* result) {
        RunStages(dataset, cfg, result);
      });
}

StudyResult CorrelationStudy::Run(const io::CorpusView& corpus) const {
  return RunWithEffectiveConfig(
      [&](const StudyConfig& cfg, StudyResult* result) {
        RunStages(corpus, cfg, result);
      });
}

void CorrelationStudy::RunStages(const twitter::Dataset& dataset,
                                 const StudyConfig& cfg,
                                 StudyResult* result) const {
  obs::Tracer::ScopedSpan study_span(cfg.obs.tracer, "study");

  geo::ReverseGeocoderOptions geocoder_options = cfg.geocoder;
  // Each run owns a fresh injector so fault schedules restart at call
  // index zero; a caller-supplied injector (cfg.geocoder.fault_injector)
  // takes precedence. Crash scheduling alone (crash_after with every
  // fault knob off) also wires the injector in: the crash hook lives in
  // the geocoder, but enabled() stays false so reporting is untouched.
  common::FaultInjector injector(cfg.fault);
  if (geocoder_options.fault_injector == nullptr &&
      (injector.enabled() || injector.crash_enabled())) {
    geocoder_options.fault_injector = &injector;
    geocoder_options.retry = cfg.retry;
  }
  if (geocoder_options.metrics == nullptr) {
    geocoder_options.metrics = cfg.obs.metrics;
  }
  if (geocoder_options.tracer == nullptr) {
    geocoder_options.tracer = cfg.obs.tracer;
    geocoder_options.trace_lookups = cfg.obs.trace_geocode_calls;
  }

  // --- Durability (DESIGN.md §9). Every failure on this path degrades
  // to running without the affected piece; corruption never aborts. ---
  const io::DurabilityOptions& durability = cfg.durability;
  std::unique_ptr<StudyCheckpointer> checkpointer;
  std::unique_ptr<geo::GeocodeJournal> journal;
  geo::GeocodeJournalReplay journal_replay;
  bool resumed = false;
  if (!durability.checkpoint_dir.empty()) {
    Status dir_status = io::EnsureDirectory(durability.checkpoint_dir);
    if (!dir_status.ok()) {
      STIR_LOG(Warning) << "checkpoint directory unavailable, durability "
                           "disabled for this run: "
                        << dir_status.message();
    } else {
      checkpointer = std::make_unique<StudyCheckpointer>(
          durability, DatasetFingerprint(dataset), ConfigFingerprint(cfg));
      checkpointer->set_fault_injector(&injector);
      std::string journal_path =
          durability.checkpoint_dir + "/geocode.journal";
      journal = std::make_unique<geo::GeocodeJournal>();
      Status journal_status;
      if (durability.resume) {
        journal_replay = geo::GeocodeJournal::Replay(journal_path);
        if (!journal_replay.usable) {
          STIR_LOG(Warning)
              << "geocode journal unusable, starting a fresh one: "
              << journal_replay.error;
          journal_replay = geo::GeocodeJournalReplay{};
          journal_status = journal->OpenFresh(journal_path, durability.fsync);
        } else {
          journal_status = journal->OpenForResume(
              journal_path, journal_replay.stats.valid_bytes,
              durability.fsync);
        }
        resumed = checkpointer->TryRestore();
        if (resumed) {
          injector.RestoreNextIndex(checkpointer->restored_fault_next_index());
        }
      } else {
        journal_status = journal->OpenFresh(journal_path, durability.fsync);
      }
      if (!journal_status.ok()) {
        STIR_LOG(Warning) << "geocode journal unavailable (lookups will not "
                             "be journaled): "
                          << journal_status.message();
        journal.reset();
      }
      geocoder_options.journal = journal.get();
    }
  }

  geo::ReverseGeocoder geocoder(db_, geocoder_options);
  // Pre-warm the cache from the journal: every lookup the crashed run
  // resolved is served as a cache hit, spending zero additional quota.
  for (const geo::GeocodeJournalEntry& entry : journal_replay.entries) {
    geocoder.PreloadCache(entry.cache_key, entry.result);
  }

  auto publish_io_metrics = [&] {
    if (cfg.obs.metrics == nullptr || durability.checkpoint_dir.empty()) {
      return;
    }
    obs::MetricsRegistry* m = cfg.obs.metrics;
    m->GetCounter("io.journal.replayed")
        ->Increment(journal_replay.stats.records);
    m->GetCounter("io.journal.quarantined")
        ->Increment(journal_replay.stats.quarantined);
    m->GetCounter("io.journal.truncated_bytes")
        ->Increment(journal_replay.stats.truncated_bytes);
    m->GetCounter("io.journal.appended")
        ->Increment(journal != nullptr ? journal->appended() : 0);
    if (checkpointer != nullptr) {
      m->GetCounter("io.snapshot.writes")
          ->Increment(checkpointer->snapshot_writes());
    }
    m->GetCounter("io.checkpoint.resumed")->Increment(resumed ? 1 : 0);
  };

  RefinementPipeline pipeline(&parser_, &geocoder, cfg);
  std::unique_ptr<common::ThreadPool> pool;
  if (cfg.threads > 1) {
    pool = std::make_unique<common::ThreadPool>(cfg.threads, cfg.obs.metrics);
  }
  if (resumed &&
      checkpointer->restored_stage() == StudyCheckpoint::kRefinementDone) {
    // Refinement completed before the crash; grouping and aggregation are
    // recomputed from the persisted refined vector.
    result->funnel = checkpointer->restored_funnel();
    result->refined = checkpointer->TakeRestoredRefined();
  } else {
    result->refined = pipeline.Run(dataset, &result->funnel, pool.get(),
                                   checkpointer.get());
    if (checkpointer != nullptr && checkpointer->halted()) {
      result->incomplete = true;
      publish_io_metrics();
      return;
    }
    if (checkpointer != nullptr) {
      Status s = checkpointer->SaveRefinementDone(result->funnel,
                                                  result->refined);
      if (!s.ok()) {
        STIR_LOG(Warning) << "refinement-done checkpoint failed: "
                          << s.message();
      }
    }
  }
  publish_io_metrics();
  {
    obs::Tracer::ScopedSpan grouping_span(cfg.obs.tracer, "grouping");
    result->groupings =
        GroupUsers(result->refined, *db_, cfg.tie_break, pool.get());
  }
  obs::Tracer::ScopedSpan aggregate_span(cfg.obs.tracer, "aggregate");
  AggregateGroups(result);
}

void CorrelationStudy::RunStages(const io::CorpusView& corpus,
                                 const StudyConfig& cfg,
                                 StudyResult* result) const {
  obs::Tracer::ScopedSpan study_span(cfg.obs.tracer, "study");

  // Same geocoder / fault wiring as the Dataset path — the fault
  // schedule is keyed on tweet rows, which equal dataset indices for a
  // corpus written in dataset order, so faulty runs stay byte-identical
  // across the two paths too.
  geo::ReverseGeocoderOptions geocoder_options = cfg.geocoder;
  common::FaultInjector injector(cfg.fault);
  if (geocoder_options.fault_injector == nullptr &&
      (injector.enabled() || injector.crash_enabled())) {
    geocoder_options.fault_injector = &injector;
    geocoder_options.retry = cfg.retry;
  }
  if (geocoder_options.metrics == nullptr) {
    geocoder_options.metrics = cfg.obs.metrics;
  }
  if (geocoder_options.tracer == nullptr) {
    geocoder_options.tracer = cfg.obs.tracer;
    geocoder_options.trace_lookups = cfg.obs.trace_geocode_calls;
  }
  if (!cfg.durability.checkpoint_dir.empty()) {
    STIR_LOG(Warning) << "checkpoint_dir is set but the columnar corpus "
                         "path does not checkpoint; running without "
                         "durability (re-running a mapped shard is cheaper "
                         "than journaling it)";
  }

  geo::ReverseGeocoder geocoder(db_, geocoder_options);
  RefinementPipeline pipeline(&parser_, &geocoder, cfg);
  std::unique_ptr<common::ThreadPool> pool;
  if (cfg.threads > 1) {
    pool = std::make_unique<common::ThreadPool>(cfg.threads, cfg.obs.metrics);
  }
  result->refined = pipeline.Run(corpus, &result->funnel, pool.get());
  {
    obs::Tracer::ScopedSpan grouping_span(cfg.obs.tracer, "grouping");
    result->groupings =
        GroupUsers(result->refined, *db_, cfg.tie_break, pool.get());
  }
  obs::Tracer::ScopedSpan aggregate_span(cfg.obs.tracer, "aggregate");
  AggregateGroups(result);
}

}  // namespace stir::core
