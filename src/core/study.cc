#include "core/study.h"

#include <memory>

#include "common/string_util.h"
#include "common/thread_pool.h"

namespace stir::core {

std::string StudyResult::GroupTableString() const {
  std::string out;
  out += StrFormat("%-8s %8s %8s %12s %9s %14s\n", "group", "users", "user%",
                   "gps_tweets", "tweet%", "avg_locations");
  for (int g = 0; g < kNumTopKGroups; ++g) {
    const GroupStats& stats = groups[g];
    out += StrFormat("%-8s %8lld %7.2f%% %12lld %8.2f%% %14.2f\n",
                     TopKGroupToString(static_cast<TopKGroup>(g)),
                     static_cast<long long>(stats.users),
                     stats.user_share * 100.0,
                     static_cast<long long>(stats.gps_tweets),
                     stats.tweet_share * 100.0, stats.avg_tweet_locations);
  }
  out += StrFormat("overall avg tweet locations per user: %.2f\n",
                   overall_avg_locations);
  return out;
}

std::string StudyResult::FunnelString() const {
  std::string out;
  out += StrFormat("crawled users:               %lld\n",
                   static_cast<long long>(funnel.crawled_users));
  out += StrFormat("  empty profile location:    %lld\n",
                   static_cast<long long>(funnel.quality_counts[0]));
  out += StrFormat("  vague:                     %lld\n",
                   static_cast<long long>(funnel.quality_counts[1]));
  out += StrFormat("  insufficient:              %lld\n",
                   static_cast<long long>(funnel.quality_counts[2]));
  out += StrFormat("  ambiguous:                 %lld\n",
                   static_cast<long long>(funnel.quality_counts[3]));
  out += StrFormat("well-defined profiles:       %lld\n",
                   static_cast<long long>(funnel.well_defined_users));
  out += StrFormat("total tweets (corpus):       %lld\n",
                   static_cast<long long>(funnel.total_tweets));
  out += StrFormat("GPS-tagged tweets:           %lld\n",
                   static_cast<long long>(funnel.gps_tweets));
  out += StrFormat("geocode failures:            %lld\n",
                   static_cast<long long>(funnel.geocode_failures));
  if (funnel.fault_injection_enabled) {
    out += StrFormat("  service faults (terminal): %lld\n",
                     static_cast<long long>(funnel.geocode_faulted));
    out += StrFormat("  retried attempts:          %lld\n",
                     static_cast<long long>(funnel.geocode_retried));
    out += StrFormat("  degraded (text fallback):  %lld\n",
                     static_cast<long long>(funnel.geocode_degraded));
    out += StrFormat("  simulated backoff (ms):    %lld\n",
                     static_cast<long long>(funnel.backoff_ms));
  }
  out += StrFormat("final users (study sample):  %lld\n",
                   static_cast<long long>(funnel.final_users));
  return out;
}

CorrelationStudy::CorrelationStudy(const geo::AdminDb* db,
                                   CorrelationStudyOptions options)
    : db_(db), options_(options), parser_(db) {}

StudyResult CorrelationStudy::Run(const twitter::Dataset& dataset) const {
  StudyResult result;

  geo::ReverseGeocoderOptions geocoder_options = options_.geocoder;
  // Each run owns a fresh injector so fault schedules restart at call
  // index zero; a caller-supplied injector (options_.geocoder
  // .fault_injector) takes precedence.
  common::FaultInjector injector(options_.fault);
  if (geocoder_options.fault_injector == nullptr && injector.enabled()) {
    geocoder_options.fault_injector = &injector;
    geocoder_options.retry = options_.retry;
  }
  geo::ReverseGeocoder geocoder(db_, geocoder_options);
  RefinementPipeline pipeline(&parser_, &geocoder, options_.refinement);
  std::unique_ptr<common::ThreadPool> pool;
  if (options_.threads > 1) {
    pool = std::make_unique<common::ThreadPool>(options_.threads);
  }
  result.refined = pipeline.Run(dataset, &result.funnel, pool.get());
  result.groupings =
      GroupUsers(result.refined, *db_, options_.tie_break, pool.get());
  result.final_users = static_cast<int64_t>(result.groupings.size());

  int64_t total_gps = 0;
  double location_sum_all = 0.0;
  double location_sum[kNumTopKGroups] = {};
  for (const UserGrouping& grouping : result.groupings) {
    GroupStats& stats = result.groups[static_cast<int>(grouping.group)];
    ++stats.users;
    stats.gps_tweets += grouping.gps_tweet_count;
    total_gps += grouping.gps_tweet_count;
    location_sum[static_cast<int>(grouping.group)] +=
        static_cast<double>(grouping.distinct_tweet_locations());
    location_sum_all +=
        static_cast<double>(grouping.distinct_tweet_locations());
  }
  for (int g = 0; g < kNumTopKGroups; ++g) {
    GroupStats& stats = result.groups[g];
    if (result.final_users > 0) {
      stats.user_share = static_cast<double>(stats.users) /
                         static_cast<double>(result.final_users);
    }
    if (total_gps > 0) {
      stats.tweet_share = static_cast<double>(stats.gps_tweets) /
                          static_cast<double>(total_gps);
    }
    if (stats.users > 0) {
      stats.avg_tweet_locations =
          location_sum[g] / static_cast<double>(stats.users);
    }
  }
  if (result.final_users > 0) {
    result.overall_avg_locations =
        location_sum_all / static_cast<double>(result.final_users);
  }
  return result;
}

}  // namespace stir::core
