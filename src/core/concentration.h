#ifndef STIR_CORE_CONCENTRATION_H_
#define STIR_CORE_CONCENTRATION_H_

#include <vector>

#include "common/status.h"
#include "core/grouping.h"

namespace stir::core {

/// Continuous alternatives to the paper's ordinal Top-k classification,
/// computed from the same merged per-user district counts: how
/// *concentrated* is a user's tweeting across districts? These back the
/// extension analysis (bench_ext_concentration): the Top-k rank is a
/// coarse view of the same underlying concentration signal.
struct ConcentrationMetrics {
  /// Shannon entropy of the tweet-district distribution, in bits.
  double entropy_bits = 0.0;
  /// Entropy / log2(#districts); 0 for single-district users, defined 0
  /// when only one district exists.
  double normalized_entropy = 0.0;
  /// Gini coefficient of the district counts (0 = perfectly even,
  /// -> 1 = all mass in one district among many).
  double gini = 0.0;
  /// Share of the most-visited district.
  double top_share = 0.0;
  /// Share of GPS tweets posted from the profile district (0 for None).
  double matched_share = 0.0;
};

/// Computes the metrics from a classified user. Users must have at least
/// one GPS tweet (guaranteed by refinement).
ConcentrationMetrics ComputeConcentration(const UserGrouping& grouping);

/// Corpus-level summary of the relationship between the ordinal group
/// and the continuous concentration view.
struct ConcentrationStudyResult {
  /// Mean entropy (bits) per Top-k group, indexed like TopKGroup.
  double mean_entropy[kNumTopKGroups] = {};
  /// Mean matched share per group.
  double mean_matched_share[kNumTopKGroups] = {};
  /// Spearman correlation between matched rank and entropy over matched
  /// users only (None has no rank): positive — deeper ranks come with
  /// more dispersed tweeting.
  double rank_entropy_spearman = 0.0;
  /// Spearman correlation between matched share and (negated) rank.
  double share_rank_spearman = 0.0;
};

/// Runs the concentration analysis over all classified users. Fails when
/// fewer than 3 users are available.
StatusOr<ConcentrationStudyResult> AnalyzeConcentration(
    const std::vector<UserGrouping>& groupings);

}  // namespace stir::core

#endif  // STIR_CORE_CONCENTRATION_H_
