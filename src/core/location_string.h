#ifndef STIR_CORE_LOCATION_STRING_H_
#define STIR_CORE_LOCATION_STRING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "twitter/model.h"

namespace stir::core {

/// One per-tweet location record, the paper's Table I row:
/// "user id # state in profile # county in profile # state in tweet #
///  county in tweet" with '#' as the delimiter.
struct LocationRecord {
  twitter::UserId user = twitter::kInvalidUser;
  std::string profile_state;
  std::string profile_county;
  std::string tweet_state;
  std::string tweet_county;

  /// True when the tweet was posted from the profile district.
  bool IsMatched() const {
    return profile_state == tweet_state && profile_county == tweet_county;
  }

  /// Table I rendering: "123#Seoul#Yangcheon-gu#Seoul#Jung-gu".
  std::string ToString() const;

  /// Parses a Table I string. Fails unless exactly 5 '#'-fields.
  static StatusOr<LocationRecord> FromString(std::string_view text);
};

bool operator==(const LocationRecord& a, const LocationRecord& b);

/// Sentinel for MergedLocationString::name_key: entry was produced by a
/// string-path merge and carries no gazetteer name key.
inline constexpr uint32_t kInvalidNameKey = 0xFFFFFFFFu;

/// A merged row of the paper's Table II: a distinct record with its
/// multiplicity, e.g. "123#Seoul#...#Yangcheon-gu (4)".
struct MergedLocationString {
  LocationRecord record;
  int64_t count = 0;
  /// Dense geo::DistrictNameTable key of the tweet (state, county) pair,
  /// set by the integer grouping pass in GroupUser; kInvalidNameKey when
  /// the row came from a plain MergeAndOrder over parsed records.
  /// Consumers (serve::StudyIndex) use it to intern district names once
  /// instead of re-deriving them per row.
  uint32_t name_key = kInvalidNameKey;

  std::string ToString() const;
};

/// Tie rule for equal multiplicities. The paper is silent on ties; the
/// default is lexicographic-ascending on the record string. The reverse
/// policy exists for the robustness ablation (bench_ablation_tiebreak):
/// if the study's conclusions moved under a different tie order they
/// would be artifacts.
enum class TieBreak : int {
  kLexicographic = 0,
  kReverseLexicographic = 1,
};

/// Merges identical records and orders them by multiplicity, descending,
/// breaking ties per `tie_break`. Records must all belong to the same
/// user (checked).
std::vector<MergedLocationString> MergeAndOrder(
    const std::vector<LocationRecord>& records,
    TieBreak tie_break = TieBreak::kLexicographic);

}  // namespace stir::core

#endif  // STIR_CORE_LOCATION_STRING_H_
