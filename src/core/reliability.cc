#include "core/reliability.h"

namespace stir::core {

const char* ReliabilityGranularityToString(ReliabilityGranularity g) {
  switch (g) {
    case ReliabilityGranularity::kPerUser:
      return "per-user";
    case ReliabilityGranularity::kPerGroup:
      return "per-group";
    case ReliabilityGranularity::kGlobal:
      return "global";
  }
  return "unknown";
}

ReliabilityModel ReliabilityModel::FromGroupings(
    const std::vector<UserGrouping>& groupings, ReliabilityOptions options) {
  ReliabilityModel model;
  double alpha = options.smoothing_alpha;
  int64_t group_matched[kNumTopKGroups] = {};
  int64_t group_total[kNumTopKGroups] = {};
  int64_t all_matched = 0;
  int64_t all_total = 0;
  for (const UserGrouping& grouping : groupings) {
    double weight =
        (static_cast<double>(grouping.matched_tweet_count) + alpha) /
        (static_cast<double>(grouping.gps_tweet_count) + 2.0 * alpha);
    model.user_weights_[grouping.user] = weight;
    model.user_groups_[grouping.user] = grouping.group;
    int g = static_cast<int>(grouping.group);
    group_matched[g] += grouping.matched_tweet_count;
    group_total[g] += grouping.gps_tweet_count;
    all_matched += grouping.matched_tweet_count;
    all_total += grouping.gps_tweet_count;
  }
  for (int g = 0; g < kNumTopKGroups; ++g) {
    model.group_weights_[g] =
        group_total[g] > 0 ? static_cast<double>(group_matched[g]) /
                                 static_cast<double>(group_total[g])
                           : 0.0;
  }
  model.global_weight_ = all_total > 0 ? static_cast<double>(all_matched) /
                                             static_cast<double>(all_total)
                                       : 0.0;
  return model;
}

double ReliabilityModel::UserWeight(twitter::UserId user) const {
  auto it = user_weights_.find(user);
  return it != user_weights_.end() ? it->second : global_weight_;
}

double ReliabilityModel::GroupWeight(TopKGroup group) const {
  return group_weights_[static_cast<int>(group)];
}

TopKGroup ReliabilityModel::GroupOf(twitter::UserId user) const {
  auto it = user_groups_.find(user);
  return it != user_groups_.end() ? it->second : TopKGroup::kNone;
}

double ReliabilityModel::WeightFor(twitter::UserId user,
                                   ReliabilityGranularity granularity) const {
  switch (granularity) {
    case ReliabilityGranularity::kPerUser:
      return UserWeight(user);
    case ReliabilityGranularity::kPerGroup: {
      auto it = user_groups_.find(user);
      if (it == user_groups_.end()) return global_weight_;
      return group_weights_[static_cast<int>(it->second)];
    }
    case ReliabilityGranularity::kGlobal:
      return global_weight_;
  }
  return global_weight_;
}

}  // namespace stir::core
