#ifndef STIR_CORE_REFINEMENT_H_
#define STIR_CORE_REFINEMENT_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "geo/reverse_geocoder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/location_parser.h"
#include "twitter/dataset.h"

namespace stir {
struct StudyConfig;
}

namespace stir::io {
class CorpusView;
}

namespace stir::core {

class StudyCheckpointer;

/// A user who survived both refinement gates (§III.B): a well-defined
/// profile location and at least one geocodable GPS tweet.
struct RefinedUser {
  twitter::UserId user = twitter::kInvalidUser;
  geo::RegionId profile_region = geo::kInvalidRegion;
  /// District of each GPS tweet, in dataset order.
  std::vector<geo::RegionId> tweet_regions;
  int64_t total_tweets = 0;
};

/// Per-stage accounting of the paper's data-collection funnel
/// (52.2k crawled -> ~30k well-defined -> ... -> ~1k final users).
struct FunnelStats {
  int64_t crawled_users = 0;
  /// Users by profile-location quality, indexed by text::LocationQuality.
  int64_t quality_counts[5] = {0, 0, 0, 0, 0};
  int64_t well_defined_users = 0;
  /// Full corpus size (counters, not materialized records).
  int64_t total_tweets = 0;
  /// Materialized GPS-tagged tweets across all users.
  int64_t gps_tweets = 0;
  /// GPS tweets of well-defined users that failed reverse geocoding and
  /// were dropped (outside coverage, spent quota, or an unsalvageable
  /// service fault).
  int64_t geocode_failures = 0;
  /// Users dropped before any gate because their tweet rows land in a
  /// quarantined (CRC-failed) corpus window — see io::CorpusView's window
  /// quarantine. Zero unless storage corruption was detected, so the
  /// funnel invariant crawled == sum(quality_counts) only bends when data
  /// was actually lost (crawled == sum(quality) + corrupt_window then).
  int64_t corrupt_window_users = 0;
  /// Well-defined users with >= 1 geocoded GPS tweet — the final sample.
  int64_t final_users = 0;

  /// --- Failure-model accounting (all zero unless a FaultInjector was
  /// active; `fault_injection_enabled` gates the fault block in reports
  /// so fault-free output stays byte-identical). ---
  bool fault_injection_enabled = false;
  /// Geocode lookups whose final status was an injected service fault
  /// (after retries); each one either degrades or joins geocode_failures.
  int64_t geocode_faulted = 0;
  /// Retry attempts the geocoder spent on injected transient faults.
  int64_t geocode_retried = 0;
  /// Faulted lookups salvaged by the degraded text-fallback path.
  int64_t geocode_degraded = 0;
  /// Simulated retry backoff charged by the geocoder, in ms.
  int64_t backoff_ms = 0;

  /// Adds `other`'s per-user counters (quality histogram, well-defined,
  /// geocode failures, final users, retry/backoff charges) into this.
  /// Corpus-wide fields (crawled_users, total_tweets, gps_tweets) are
  /// left untouched: shards accumulate only what they counted, the caller
  /// sets the globals once. Addition is commutative and associative, so
  /// any shard merge order yields the same totals as a serial pass.
  void AccumulateUserCounts(const FunnelStats& other);
};

/// Options for the refinement pass.
struct RefinementOptions {
  /// Route every reverse-geocode through the XML serialize/parse path,
  /// byte-for-byte reproducing the original Yahoo-API pipeline (slower;
  /// the structured path is semantically identical and is the default).
  bool faithful_xml_pipeline = false;
  /// Degraded mode: when a geocode fails with a *transient* service fault
  /// (Unavailable/IOError — injected outages; never NotFound, which is an
  /// authoritative "outside coverage"), fall back to parsing the tweet
  /// text with the gazetteer location parser. A well-defined parse — or
  /// an ambiguous one whose candidates include the user's profile
  /// district — salvages the tweet (counted in FunnelStats::
  /// geocode_degraded); otherwise the tweet is dropped.
  bool degraded_text_fallback = true;
};

/// The outcome of folding one GPS tweet through the geocode + salvage
/// step, with the retry charges it incurred. A fold is a pure function of
/// (tweet, fault_index, profile_region) for a given geocoder
/// configuration, so the streaming engine caches folds and replays them
/// without re-consulting the geocoder — re-geocoding would double-charge
/// the fault injector, whose decisions fire before the cache.
struct TweetFold {
  /// Resolved district; kInvalidRegion means the tweet was dropped.
  geo::RegionId region = geo::kInvalidRegion;
  /// Final status was an injected transient service fault.
  bool faulted = false;
  /// Faulted but salvaged by the degraded text-fallback path.
  bool degraded = false;
  /// Retry attempts and simulated backoff charged by this fold.
  int64_t retries = 0;
  int64_t backoff_ms = 0;
};

/// The §III.B refinement pipeline: parse profile locations, drop vague /
/// insufficient / ambiguous ones, reverse-geocode GPS tweets, keep users
/// with at least one geocoded tweet.
class RefinementPipeline {
 public:
  /// `parser` and `geocoder` must outlive the pipeline. The parser's and
  /// geocoder's AdminDb should be the same gazetteer.
  ///
  /// Deprecated shim: prefer the StudyConfig constructor below, which also
  /// carries the observability sinks.
  RefinementPipeline(const text::LocationParser* parser,
                     geo::ReverseGeocoder* geocoder,
                     RefinementOptions options = {});

  /// Unified-config constructor: reads `config.refinement` plus the
  /// observability sinks in `config.obs` (the *effective* pointers — a
  /// caller that wants per-run instances fills them in first, the way
  /// CorrelationStudy::Run does). With the sinks null this is exactly the
  /// legacy constructor.
  RefinementPipeline(const text::LocationParser* parser,
                     geo::ReverseGeocoder* geocoder,
                     const StudyConfig& config);

  /// Runs the funnel over `dataset`. `funnel` receives the accounting.
  /// With a non-null `pool` carrying workers, users are partitioned into
  /// contiguous shards refined in parallel and merged in shard order, so
  /// the refined vector and funnel are bit-identical to the serial run for
  /// any thread count (the geocoder must then be thread-safe, which
  /// geo::ReverseGeocoder is; a finite geocoder quota is the one knob that
  /// can make parallel results diverge, since which lookup exhausts it
  /// becomes a race).
  ///
  /// A non-null `checkpointer` enables crash-safe progress (DESIGN.md §9):
  /// each shard restores the checkpointed position/counters and reports
  /// every completed user back, so a killed run resumes at the last
  /// durable user boundary with byte-identical final output.
  std::vector<RefinedUser> Run(const twitter::Dataset& dataset,
                               FunnelStats* funnel,
                               common::ThreadPool* pool = nullptr,
                               StudyCheckpointer* checkpointer = nullptr) const;

  /// Columnar overload: runs the same funnel over a zero-copy arena
  /// corpus (io::CorpusView) without materializing users or tweets. The
  /// fault key of tweet row `r` is `r` itself, which equals the tweet's
  /// dataset index for a corpus written in dataset order — so refined
  /// output, funnel counters, and every fault/retry charge are
  /// byte-identical to the Dataset overload on the same corpus. Each
  /// shard advises its consumed tweet pages away (madvise) once refined,
  /// keeping the resident set bounded by the shard working set rather
  /// than the file. Checkpointing is a Dataset-path feature; the view
  /// path is for out-of-core scale where re-running a shard is cheaper
  /// than journaling it.
  std::vector<RefinedUser> Run(const io::CorpusView& corpus,
                               FunnelStats* funnel,
                               common::ThreadPool* pool = nullptr) const;

  /// Folds one GPS tweet: geocode (with `fault_index` as the stable fault
  /// key), degraded-mode salvage against `profile_region`, and the retry /
  /// backoff delta sampled from this thread's geocoder counters. Both the
  /// batch RefineUser loop and the incremental stream engine are sums of
  /// these folds, which is what makes them byte-equivalent.
  TweetFold FoldTweet(const twitter::Tweet& tweet, int64_t fault_index,
                      geo::RegionId profile_region) const;

  /// Field overload of FoldTweet for columnar callers: `gps` and `text`
  /// are the tweet's GPS fix and body (the only fields a fold reads), so
  /// the view path folds straight out of the mapped columns. The Tweet
  /// overload delegates here.
  TweetFold FoldTweet(const geo::LatLng& gps, std::string_view text,
                      int64_t fault_index, geo::RegionId profile_region) const;

  /// Applies one fold's accounting: bumps the funnel's fault / retry /
  /// failure counters and appends the resolved region to `regions` (when
  /// the tweet survived). Commutative across folds except for the region
  /// append, which preserves call order.
  static void ApplyFold(const TweetFold& fold, FunnelStats* stats,
                        std::vector<geo::RegionId>* regions);

 private:
  /// `fault_index` is the tweet's global dataset index — a stable,
  /// thread-count-independent key for the geocoder's fault schedule.
  StatusOr<geo::RegionId> Geocode(const geo::LatLng& point,
                                  int64_t fault_index) const;

  /// Degraded-mode salvage: district named in the tweet text, if any
  /// (see RefinementOptions::degraded_text_fallback). kInvalidRegion
  /// when the text does not resolve.
  geo::RegionId TextFallbackRegion(std::string_view text,
                                   geo::RegionId profile_region) const;

  /// Refines one user into `out`, updating `stats`' per-user counters.
  /// Returns true when the user survives both gates.
  bool RefineUser(const twitter::Dataset& dataset, const twitter::User& user,
                  FunnelStats& stats, RefinedUser* out) const;

  /// Columnar twin of RefineUser: reads user row `user_row` and its CSR
  /// tweet range straight from the mapped columns. `parse_memo` caches
  /// parses keyed by the arena string ref — interning makes duplicate
  /// profile strings share a ref, so each unique string parses once per
  /// shard. Parsing is pure, so the memo cannot change any output byte.
  bool RefineUser(const io::CorpusView& corpus, size_t user_row,
                  FunnelStats& stats, RefinedUser* out,
                  std::unordered_map<uint32_t, text::ParsedLocation>*
                      parse_memo) const;

  /// Publishes the merged funnel accounting as per-stage drop counters
  /// (`funnel.drop.*`, `funnel.users.*`, `funnel.tweets.*`) — the
  /// invariant the smoke test checks: profile drops sum to
  /// crawled - well_defined, and no_geocoded_tweets to
  /// well_defined - final.
  void PublishFunnelMetrics(const FunnelStats& stats) const;

  const text::LocationParser* parser_;
  geo::ReverseGeocoder* geocoder_;
  RefinementOptions options_;

  // Observability (null when disabled — the pre-observability path).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* stage_parse_us_ = nullptr;
  obs::Counter* stage_geocode_us_ = nullptr;
};

}  // namespace stir::core

#endif  // STIR_CORE_REFINEMENT_H_
