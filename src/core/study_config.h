#ifndef STIR_CORE_STUDY_CONFIG_H_
#define STIR_CORE_STUDY_CONFIG_H_

#include "common/fault.h"
#include "common/retry.h"
#include "core/location_string.h"
#include "core/refinement.h"
#include "geo/reverse_geocoder.h"
#include "io/options.h"
#include "obs/options.h"

namespace stir {

/// The one configuration surface for a study run. Every knob that used to
/// live in CorrelationStudyOptions, in per-component constructor options,
/// or in ad-hoc CLI flag parsing hangs off a named sub-struct here, so a
/// caller (or the CLI flag table) sets `config.threads`, `config.fault.
/// error_rate`, `config.retry.max_attempts`, `config.geocoder.quota`,
/// `config.obs.enable_metrics`, ... and hands one const-ref around.
///
/// Migration map (old -> new) lives in DESIGN.md §8. The default-
/// constructed config reproduces the paper pipeline exactly: serial,
/// fault-free, observability off — byte-identical to the pre-StudyConfig
/// code.
struct StudyConfig {
  /// Worker threads for refinement and grouping; <= 1 runs serially.
  /// Results are bit-identical across thread counts (sharded execution
  /// with ordered merges) as long as the geocoder quota is unlimited.
  int threads = 1;
  /// Tie rule for equal string multiplicities (ablation knob; the
  /// paper's results must not depend on it).
  core::TieBreak tie_break = core::TieBreak::kLexicographic;
  /// §III.B funnel behaviour (faithful XML path, degraded-mode salvage).
  core::RefinementOptions refinement;
  /// Simulated geocoding service (cache, quota; the obs/fault pointers
  /// inside are filled per run from `fault`/`obs` below — set them only
  /// to override with caller-owned instances).
  geo::ReverseGeocoderOptions geocoder;
  /// Fault schedule injected into the reverse geocoder (CLI --fault-rate
  /// and friends). All knobs off — the default — leaves the fault layer
  /// disengaged and the output byte-identical to a fault-free build.
  common::FaultInjectorOptions fault;
  /// Retry schedule for injected faults (forwarded to the geocoder).
  common::RetryPolicyOptions retry;
  /// Observability: metrics registry + stage tracing (DESIGN.md §8).
  obs::ObsOptions obs;
  /// Crash safety: geocode journal + study checkpoints + resume
  /// (DESIGN.md §9). Off by default — with `durability.checkpoint_dir`
  /// empty the run is byte-identical to a build without the subsystem.
  io::DurabilityOptions durability;
};

}  // namespace stir

#endif  // STIR_CORE_STUDY_CONFIG_H_
