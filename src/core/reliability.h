#ifndef STIR_CORE_RELIABILITY_H_
#define STIR_CORE_RELIABILITY_H_

#include <unordered_map>

#include "core/grouping.h"

namespace stir::core {

/// Smoothing for per-user reliability estimates.
struct ReliabilityOptions {
  /// Laplace pseudo-count: weight = (matched + a) / (gps + 2a).
  double smoothing_alpha = 1.0;
};

/// Which estimate WeightFor returns — the ablation axis of
/// bench_ablation_weights: per-user weights carry the most signal but
/// the least data per estimate; the group prior pools users in the same
/// Top-k bucket; the global prior is a single number.
enum class ReliabilityGranularity : int {
  kPerUser = 0,
  kPerGroup = 1,
  kGlobal = 2,
};

const char* ReliabilityGranularityToString(ReliabilityGranularity g);

/// The paper's proposed application (§V): turn the measured correlation
/// into a *weight factor* for the profile location, so event-detection
/// systems that fall back on profile locations (Twitris-style) can
/// discount unreliable ones.
///
/// For a user, the weight estimates P(a random post by the user was made
/// from the profile district); users in Top-1 get weights near their
/// matched-tweet share, None users get weights near 0.
class ReliabilityModel {
 public:
  /// Fits the model from classified users.
  static ReliabilityModel FromGroupings(
      const std::vector<UserGrouping>& groupings,
      ReliabilityOptions options = {});

  /// Smoothed per-user weight; falls back to global_weight() for users
  /// outside the fitted sample.
  double UserWeight(twitter::UserId user) const;

  /// Weight at a chosen granularity; kPerGroup uses the user's fitted
  /// Top-k group's aggregate, kGlobal the corpus aggregate. Unknown
  /// users fall back to the global weight at every granularity.
  double WeightFor(twitter::UserId user,
                   ReliabilityGranularity granularity) const;

  /// Fitted group of a user, or kNone for users outside the sample.
  TopKGroup GroupOf(twitter::UserId user) const;

  /// Mean matched-tweet share within a group (unsmoothed aggregate).
  double GroupWeight(TopKGroup group) const;

  /// Matched share over the whole sample — the single-number reliability
  /// of "profile location == tweet location" the paper reports (~50% of
  /// users post mostly from their profile district).
  double global_weight() const { return global_weight_; }

  size_t num_users() const { return user_weights_.size(); }

 private:
  std::unordered_map<twitter::UserId, double> user_weights_;
  std::unordered_map<twitter::UserId, TopKGroup> user_groups_;
  double group_weights_[kNumTopKGroups] = {};
  double global_weight_ = 0.0;
};

}  // namespace stir::core

#endif  // STIR_CORE_RELIABILITY_H_
