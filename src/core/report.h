#ifndef STIR_CORE_REPORT_H_
#define STIR_CORE_REPORT_H_

#include <string>

#include "common/status.h"
#include "core/study.h"

namespace stir::core {

/// CSV export of a study run for downstream plotting — the artifact a
/// user of this library actually hands to matplotlib/gnuplot to redraw
/// the paper's figures.
///
/// Writes into `directory` (which must exist):
///   funnel.csv  — stage,value rows of the §III.B funnel
///   groups.csv  — group,users,user_share,gps_tweets,tweet_share,
///                 avg_tweet_locations (Fig. 6 + Fig. 7 + tweet share)
///   users.csv   — user,group,match_rank,gps_tweets,matched_tweets,
///                 distinct_locations (per-user detail)
Status WriteStudyReportCsv(const StudyResult& result,
                           const std::string& directory);

/// Current version of the machine-readable JSON report schema. Version 2
/// nests the failure-model counters under a "resilience" object; version 1
/// is the legacy layout with the fault counters inlined into "funnel"
/// (and only on faulty runs). See DESIGN.md §8.
inline constexpr int kReportSchemaVersion = 2;

/// Renders the study result as a versioned JSON document
/// (`"schema_version"` is always the first key). `schema_version` must be
/// 1 or 2 — anything else returns InvalidArgument from the Write variant;
/// this renderer expects a validated value.
std::string StudyReportJsonString(const StudyResult& result,
                                  int schema_version = kReportSchemaVersion);

/// Writes `report.json` into `directory` (which must exist) alongside the
/// CSVs. InvalidArgument for an unsupported `schema_version`.
Status WriteStudyReportJson(const StudyResult& result,
                            const std::string& directory,
                            int schema_version = kReportSchemaVersion);

/// ASCII histogram of GPS tweets per final user — the sample-size
/// distribution behind every per-user estimate in the study.
std::string RenderGpsTweetHistogram(const StudyResult& result,
                                    int buckets = 10);

}  // namespace stir::core

#endif  // STIR_CORE_REPORT_H_
