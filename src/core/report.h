#ifndef STIR_CORE_REPORT_H_
#define STIR_CORE_REPORT_H_

#include <string>

#include "common/status.h"
#include "core/study.h"

namespace stir::core {

/// CSV export of a study run for downstream plotting — the artifact a
/// user of this library actually hands to matplotlib/gnuplot to redraw
/// the paper's figures.
///
/// Writes into `directory` (which must exist):
///   funnel.csv  — stage,value rows of the §III.B funnel
///   groups.csv  — group,users,user_share,gps_tweets,tweet_share,
///                 avg_tweet_locations (Fig. 6 + Fig. 7 + tweet share)
///   users.csv   — user,group,match_rank,gps_tweets,matched_tweets,
///                 distinct_locations (per-user detail)
Status WriteStudyReportCsv(const StudyResult& result,
                           const std::string& directory);

/// ASCII histogram of GPS tweets per final user — the sample-size
/// distribution behind every per-user estimate in the study.
std::string RenderGpsTweetHistogram(const StudyResult& result,
                                    int buckets = 10);

}  // namespace stir::core

#endif  // STIR_CORE_REPORT_H_
