#include "core/concentration.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "stats/correlation.h"

namespace stir::core {

ConcentrationMetrics ComputeConcentration(const UserGrouping& grouping) {
  ConcentrationMetrics metrics;
  STIR_CHECK_GT(grouping.gps_tweet_count, 0);
  double total = static_cast<double>(grouping.gps_tweet_count);
  size_t k = grouping.ordered.size();
  STIR_CHECK_GT(k, 0u);

  double entropy = 0.0;
  int64_t top_count = 0;
  for (const MergedLocationString& merged : grouping.ordered) {
    double p = static_cast<double>(merged.count) / total;
    if (p > 0.0) entropy -= p * std::log2(p);
    top_count = std::max(top_count, merged.count);
  }
  metrics.entropy_bits = entropy;
  metrics.normalized_entropy =
      k > 1 ? entropy / std::log2(static_cast<double>(k)) : 0.0;
  metrics.top_share = static_cast<double>(top_count) / total;
  metrics.matched_share =
      static_cast<double>(grouping.matched_tweet_count) / total;

  // Gini over the sorted (ascending) counts.
  std::vector<double> counts;
  counts.reserve(k);
  for (const MergedLocationString& merged : grouping.ordered) {
    counts.push_back(static_cast<double>(merged.count));
  }
  std::sort(counts.begin(), counts.end());
  double cum_weighted = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cum_weighted += (2.0 * static_cast<double>(i + 1) -
                     static_cast<double>(counts.size()) - 1.0) *
                    counts[i];
  }
  metrics.gini = counts.size() > 1
                     ? cum_weighted /
                           (static_cast<double>(counts.size()) * total)
                     : 0.0;
  return metrics;
}

StatusOr<ConcentrationStudyResult> AnalyzeConcentration(
    const std::vector<UserGrouping>& groupings) {
  if (groupings.size() < 3) {
    return Status::InvalidArgument(
        "need at least 3 classified users for concentration analysis");
  }
  ConcentrationStudyResult result;
  double entropy_sum[kNumTopKGroups] = {};
  double share_sum[kNumTopKGroups] = {};
  int64_t counts[kNumTopKGroups] = {};
  std::vector<double> ranks, entropies, shares, neg_ranks;
  for (const UserGrouping& grouping : groupings) {
    ConcentrationMetrics metrics = ComputeConcentration(grouping);
    int g = static_cast<int>(grouping.group);
    entropy_sum[g] += metrics.entropy_bits;
    share_sum[g] += metrics.matched_share;
    ++counts[g];
    // Rank-vs-entropy is only meaningful for matched users: None users
    // have no rank, and many of them (relocated, low mobility) tweet
    // from very few districts, which would spuriously dilute the
    // correlation. Matched share vs rank keeps everyone, with None at
    // an effective rank one past the district count.
    if (grouping.match_rank > 0) {
      ranks.push_back(static_cast<double>(grouping.match_rank));
      entropies.push_back(metrics.entropy_bits);
    }
    double effective_rank =
        grouping.match_rank > 0
            ? static_cast<double>(grouping.match_rank)
            : static_cast<double>(grouping.ordered.size() + 1);
    neg_ranks.push_back(-effective_rank);
    shares.push_back(metrics.matched_share);
  }
  for (int g = 0; g < kNumTopKGroups; ++g) {
    if (counts[g] > 0) {
      result.mean_entropy[g] =
          entropy_sum[g] / static_cast<double>(counts[g]);
      result.mean_matched_share[g] =
          share_sum[g] / static_cast<double>(counts[g]);
    }
  }
  if (ranks.size() < 3) {
    return Status::InvalidArgument(
        "need at least 3 matched users for the rank-entropy correlation");
  }
  STIR_ASSIGN_OR_RETURN(result.rank_entropy_spearman,
                        stats::SpearmanCorrelation(ranks, entropies));
  STIR_ASSIGN_OR_RETURN(result.share_rank_spearman,
                        stats::SpearmanCorrelation(shares, neg_ranks));
  return result;
}

}  // namespace stir::core
