#include "core/refinement.h"

#include "common/logging.h"

namespace stir::core {

RefinementPipeline::RefinementPipeline(const text::LocationParser* parser,
                                       geo::ReverseGeocoder* geocoder,
                                       RefinementOptions options)
    : parser_(parser), geocoder_(geocoder), options_(options) {
  STIR_CHECK(parser != nullptr);
  STIR_CHECK(geocoder != nullptr);
}

StatusOr<geo::RegionId> RefinementPipeline::Geocode(
    const geo::LatLng& point) const {
  if (!options_.faithful_xml_pipeline) {
    STIR_ASSIGN_OR_RETURN(geo::GeocodeResult result,
                          geocoder_->Reverse(point));
    return result.region;
  }
  // Faithful mode: serialize the response to XML, parse it back, and
  // resolve the (state, county) pair against the gazetteer — exactly the
  // dance the original study performed against the Yahoo Open API.
  STIR_ASSIGN_OR_RETURN(std::string xml, geocoder_->ReverseToXml(point));
  STIR_ASSIGN_OR_RETURN(geo::GeocodeResult parsed,
                        geo::ReverseGeocoder::ParseResponse(xml));
  return geocoder_->db().FindCounty(parsed.state, parsed.county);
}

std::vector<RefinedUser> RefinementPipeline::Run(
    const twitter::Dataset& dataset, FunnelStats* funnel) const {
  FunnelStats local;
  FunnelStats& stats = funnel != nullptr ? *funnel : local;
  stats = FunnelStats{};
  stats.crawled_users = static_cast<int64_t>(dataset.users().size());
  stats.total_tweets = dataset.total_tweet_count();
  stats.gps_tweets = dataset.gps_tweet_count();

  std::vector<RefinedUser> refined;
  for (const twitter::User& user : dataset.users()) {
    text::ParsedLocation parsed = parser_->Parse(user.profile_location);
    ++stats.quality_counts[static_cast<int>(parsed.quality)];
    if (parsed.quality != text::LocationQuality::kWellDefined) continue;
    ++stats.well_defined_users;

    RefinedUser candidate;
    candidate.user = user.id;
    candidate.profile_region = parsed.region;
    candidate.total_tweets = user.total_tweets;
    for (size_t index : dataset.TweetIndicesOf(user.id)) {
      const twitter::Tweet& tweet = dataset.tweets()[index];
      if (!tweet.gps.has_value()) continue;
      auto region = Geocode(*tweet.gps);
      if (!region.ok()) {
        ++stats.geocode_failures;
        continue;
      }
      candidate.tweet_regions.push_back(*region);
    }
    if (candidate.tweet_regions.empty()) continue;
    ++stats.final_users;
    refined.push_back(std::move(candidate));
  }
  return refined;
}

}  // namespace stir::core
