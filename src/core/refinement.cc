#include "core/refinement.h"

#include "common/logging.h"

namespace stir::core {

void FunnelStats::AccumulateUserCounts(const FunnelStats& other) {
  for (int q = 0; q < 5; ++q) quality_counts[q] += other.quality_counts[q];
  well_defined_users += other.well_defined_users;
  geocode_failures += other.geocode_failures;
  final_users += other.final_users;
}

RefinementPipeline::RefinementPipeline(const text::LocationParser* parser,
                                       geo::ReverseGeocoder* geocoder,
                                       RefinementOptions options)
    : parser_(parser), geocoder_(geocoder), options_(options) {
  STIR_CHECK(parser != nullptr);
  STIR_CHECK(geocoder != nullptr);
}

StatusOr<geo::RegionId> RefinementPipeline::Geocode(
    const geo::LatLng& point) const {
  if (!options_.faithful_xml_pipeline) {
    STIR_ASSIGN_OR_RETURN(geo::GeocodeResult result,
                          geocoder_->Reverse(point));
    return result.region;
  }
  // Faithful mode: serialize the response to XML, parse it back, and
  // resolve the (state, county) pair against the gazetteer — exactly the
  // dance the original study performed against the Yahoo Open API.
  STIR_ASSIGN_OR_RETURN(std::string xml, geocoder_->ReverseToXml(point));
  STIR_ASSIGN_OR_RETURN(geo::GeocodeResult parsed,
                        geo::ReverseGeocoder::ParseResponse(xml));
  return geocoder_->db().FindCounty(parsed.state, parsed.county);
}

bool RefinementPipeline::RefineUser(const twitter::Dataset& dataset,
                                    const twitter::User& user,
                                    FunnelStats& stats,
                                    RefinedUser* out) const {
  text::ParsedLocation parsed = parser_->Parse(user.profile_location);
  ++stats.quality_counts[static_cast<int>(parsed.quality)];
  if (parsed.quality != text::LocationQuality::kWellDefined) return false;
  ++stats.well_defined_users;

  out->user = user.id;
  out->profile_region = parsed.region;
  out->total_tweets = user.total_tweets;
  out->tweet_regions.clear();
  for (size_t index : dataset.TweetIndicesOf(user.id)) {
    const twitter::Tweet& tweet = dataset.tweets()[index];
    if (!tweet.gps.has_value()) continue;
    auto region = Geocode(*tweet.gps);
    if (!region.ok()) {
      ++stats.geocode_failures;
      continue;
    }
    out->tweet_regions.push_back(*region);
  }
  if (out->tweet_regions.empty()) return false;
  ++stats.final_users;
  return true;
}

std::vector<RefinedUser> RefinementPipeline::Run(
    const twitter::Dataset& dataset, FunnelStats* funnel,
    common::ThreadPool* pool) const {
  FunnelStats local;
  FunnelStats& stats = funnel != nullptr ? *funnel : local;
  stats = FunnelStats{};
  stats.crawled_users = static_cast<int64_t>(dataset.users().size());
  stats.total_tweets = dataset.total_tweet_count();
  stats.gps_tweets = dataset.gps_tweet_count();

  const std::vector<twitter::User>& users = dataset.users();
  size_t shards = common::NumShards(pool, users.size());
  if (shards <= 1) {
    std::vector<RefinedUser> refined;
    RefinedUser candidate;
    for (const twitter::User& user : users) {
      if (RefineUser(dataset, user, stats, &candidate)) {
        refined.push_back(std::move(candidate));
        candidate = RefinedUser{};
      }
    }
    return refined;
  }

  // Contiguous user shards, each with private outputs; the shard-ordered
  // merge below makes the result independent of execution interleaving.
  std::vector<FunnelStats> shard_stats(shards);
  std::vector<std::vector<RefinedUser>> shard_refined(shards);
  common::ParallelForShards(
      pool, users.size(),
      [&](size_t shard, size_t begin, size_t end) {
        RefinedUser candidate;
        for (size_t i = begin; i < end; ++i) {
          if (RefineUser(dataset, users[i], shard_stats[shard],
                         &candidate)) {
            shard_refined[shard].push_back(std::move(candidate));
            candidate = RefinedUser{};
          }
        }
      });

  std::vector<RefinedUser> refined;
  size_t total = 0;
  for (const std::vector<RefinedUser>& part : shard_refined) {
    total += part.size();
  }
  refined.reserve(total);
  for (size_t shard = 0; shard < shards; ++shard) {
    stats.AccumulateUserCounts(shard_stats[shard]);
    for (RefinedUser& user : shard_refined[shard]) {
      refined.push_back(std::move(user));
    }
  }
  return refined;
}

}  // namespace stir::core
