#include "core/refinement.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "core/checkpoint.h"
#include "core/study_config.h"
#include "io/corpus.h"
#include "io/fault_fs.h"

namespace stir::core {

namespace {

/// Transient service failures (the fault injector's Unavailable bursts
/// and errors) are eligible for degraded-mode salvage; authoritative
/// answers (NotFound = outside coverage) and spent quotas are not.
bool IsTransientServiceFault(const Status& status) {
  return status.IsUnavailable() || status.IsIOError();
}

int64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

void FunnelStats::AccumulateUserCounts(const FunnelStats& other) {
  for (int q = 0; q < 5; ++q) quality_counts[q] += other.quality_counts[q];
  well_defined_users += other.well_defined_users;
  geocode_failures += other.geocode_failures;
  corrupt_window_users += other.corrupt_window_users;
  final_users += other.final_users;
  geocode_faulted += other.geocode_faulted;
  geocode_retried += other.geocode_retried;
  geocode_degraded += other.geocode_degraded;
  backoff_ms += other.backoff_ms;
}

RefinementPipeline::RefinementPipeline(const text::LocationParser* parser,
                                       geo::ReverseGeocoder* geocoder,
                                       RefinementOptions options)
    : parser_(parser), geocoder_(geocoder), options_(options) {
  STIR_CHECK(parser != nullptr);
  STIR_CHECK(geocoder != nullptr);
}

RefinementPipeline::RefinementPipeline(const text::LocationParser* parser,
                                       geo::ReverseGeocoder* geocoder,
                                       const StudyConfig& config)
    : RefinementPipeline(parser, geocoder, config.refinement) {
  metrics_ = config.obs.metrics;
  tracer_ = config.obs.tracer;
  if (metrics_ != nullptr) {
    stage_parse_us_ = metrics_->GetCounter("funnel.stage.profile_parse_us");
    stage_geocode_us_ = metrics_->GetCounter("funnel.stage.geocode_us");
  }
}

StatusOr<geo::RegionId> RefinementPipeline::Geocode(
    const geo::LatLng& point, int64_t fault_index) const {
  if (!options_.faithful_xml_pipeline) {
    STIR_ASSIGN_OR_RETURN(geo::GeocodeResult result,
                          geocoder_->Reverse(point, fault_index));
    return result.region;
  }
  // Faithful mode: serialize the response to XML, parse it back, and
  // resolve the (state, county) pair against the gazetteer — exactly the
  // dance the original study performed against the Yahoo Open API.
  STIR_ASSIGN_OR_RETURN(std::string xml,
                        geocoder_->ReverseToXml(point, fault_index));
  STIR_ASSIGN_OR_RETURN(geo::GeocodeResult parsed,
                        geo::ReverseGeocoder::ParseResponse(xml));
  return geocoder_->db().FindCounty(parsed.state, parsed.county);
}

geo::RegionId RefinementPipeline::TextFallbackRegion(
    std::string_view text, geo::RegionId profile_region) const {
  text::ParsedLocation parsed = parser_->Parse(text);
  if (parsed.quality == text::LocationQuality::kWellDefined) {
    return parsed.region;
  }
  // A cross-state district name ("Jung-gu") is ambiguous on its own, but
  // the user's profile district is a strong prior when it is among the
  // candidates.
  if (parsed.quality == text::LocationQuality::kAmbiguous &&
      std::find(parsed.candidates.begin(), parsed.candidates.end(),
                profile_region) != parsed.candidates.end()) {
    return profile_region;
  }
  return geo::kInvalidRegion;
}

TweetFold RefinementPipeline::FoldTweet(const twitter::Tweet& tweet,
                                        int64_t fault_index,
                                        geo::RegionId profile_region) const {
  return FoldTweet(*tweet.gps, tweet.text, fault_index, profile_region);
}

TweetFold RefinementPipeline::FoldTweet(const geo::LatLng& gps,
                                        std::string_view text,
                                        int64_t fault_index,
                                        geo::RegionId profile_region) const {
  TweetFold fold;
  // Retry/backoff charges are attributed per fold by sampling this
  // thread's cumulative geocoder counters around the lookup (a fold runs
  // entirely on one thread). Fold deltas sum to the same totals whether
  // they are sampled per tweet, per user, or per run, so checkpoints and
  // streaming epochs all carry exact counters.
  geo::ReverseGeocoder::ThreadRetryStats retry_before =
      geo::ReverseGeocoder::CurrentThreadRetryStats();
  auto region = Geocode(gps, fault_index);
  if (region.ok()) {
    fold.region = *region;
  } else if (IsTransientServiceFault(region.status())) {
    fold.faulted = true;
    if (options_.degraded_text_fallback) {
      geo::RegionId fallback = TextFallbackRegion(text, profile_region);
      if (fallback != geo::kInvalidRegion) {
        fold.degraded = true;
        fold.region = fallback;
      }
    }
  }
  geo::ReverseGeocoder::ThreadRetryStats retry_after =
      geo::ReverseGeocoder::CurrentThreadRetryStats();
  fold.retries = retry_after.retries - retry_before.retries;
  fold.backoff_ms = retry_after.backoff_ms - retry_before.backoff_ms;
  return fold;
}

void RefinementPipeline::ApplyFold(const TweetFold& fold, FunnelStats* stats,
                                   std::vector<geo::RegionId>* regions) {
  if (fold.faulted) ++stats->geocode_faulted;
  if (fold.degraded) ++stats->geocode_degraded;
  stats->geocode_retried += fold.retries;
  stats->backoff_ms += fold.backoff_ms;
  if (fold.region == geo::kInvalidRegion) {
    ++stats->geocode_failures;
  } else {
    regions->push_back(fold.region);
  }
}

bool RefinementPipeline::RefineUser(const twitter::Dataset& dataset,
                                    const twitter::User& user,
                                    FunnelStats& stats,
                                    RefinedUser* out) const {
  text::ParsedLocation parsed;
  if (stage_parse_us_ != nullptr) {
    std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
    parsed = parser_->Parse(user.profile_location);
    stage_parse_us_->Increment(ElapsedUs(t0));
  } else {
    parsed = parser_->Parse(user.profile_location);
  }
  ++stats.quality_counts[static_cast<int>(parsed.quality)];
  if (parsed.quality != text::LocationQuality::kWellDefined) return false;
  ++stats.well_defined_users;

  std::chrono::steady_clock::time_point geocode_t0;
  if (stage_geocode_us_ != nullptr) {
    geocode_t0 = std::chrono::steady_clock::now();
  }
  out->user = user.id;
  out->profile_region = parsed.region;
  out->total_tweets = user.total_tweets;
  out->tweet_regions.clear();
  for (size_t index : dataset.TweetIndicesOf(user.id)) {
    const twitter::Tweet& tweet = dataset.tweets()[index];
    if (!tweet.gps.has_value()) continue;
    TweetFold fold =
        FoldTweet(tweet, static_cast<int64_t>(index), parsed.region);
    ApplyFold(fold, &stats, &out->tweet_regions);
  }
  if (stage_geocode_us_ != nullptr) {
    stage_geocode_us_->Increment(ElapsedUs(geocode_t0));
  }
  if (out->tweet_regions.empty()) return false;
  ++stats.final_users;
  return true;
}

bool RefinementPipeline::RefineUser(
    const io::CorpusView& corpus, size_t user_row, FunnelStats& stats,
    RefinedUser* out,
    std::unordered_map<uint32_t, text::ParsedLocation>* parse_memo) const {
  // Quarantine gate: a user whose tweet rows touch a CRC-failed window
  // is dropped whole rather than folded from suspect bytes — partial
  // folds would make the report depend on *which* bytes rotted. The
  // check is O(1) when nothing is quarantined (the common case), so the
  // fault-free path stays byte-identical.
  if (corpus.quarantined_windows() > 0) {
    const uint64_t begin = corpus.user_tweet_begin(user_row);
    const uint64_t end = corpus.user_tweet_end(user_row);
    bool hit = false;
    if (corpus.grouped()) {
      hit = corpus.TweetRowsQuarantined(static_cast<size_t>(begin),
                                        static_cast<size_t>(end));
    } else {
      // Ungrouped corpora scatter rows; probe each row's window.
      for (uint64_t pos = begin; pos < end && !hit; ++pos) {
        const size_t row = corpus.user_tweet_row(pos);
        hit = corpus.TweetRowsQuarantined(row, row + 1);
      }
    }
    if (hit) {
      ++stats.corrupt_window_users;
      return false;
    }
  }
  // The arena interns profile strings, so equal strings share a ref and
  // the memo collapses them to one parse per shard.
  const uint32_t profile_ref = corpus.user_profile_ref(user_row);
  const text::ParsedLocation* parsed = nullptr;
  std::chrono::steady_clock::time_point t0;
  if (stage_parse_us_ != nullptr) t0 = std::chrono::steady_clock::now();
  auto it = parse_memo->find(profile_ref);
  if (it == parse_memo->end()) {
    it = parse_memo
             ->emplace(profile_ref,
                       parser_->Parse(corpus.user_profile_location(user_row)))
             .first;
  }
  parsed = &it->second;
  if (stage_parse_us_ != nullptr) stage_parse_us_->Increment(ElapsedUs(t0));
  ++stats.quality_counts[static_cast<int>(parsed->quality)];
  if (parsed->quality != text::LocationQuality::kWellDefined) return false;
  ++stats.well_defined_users;

  std::chrono::steady_clock::time_point geocode_t0;
  if (stage_geocode_us_ != nullptr) {
    geocode_t0 = std::chrono::steady_clock::now();
  }
  out->user = corpus.user_id(user_row);
  out->profile_region = parsed->region;
  out->total_tweets = corpus.user_total_tweets(user_row);
  out->tweet_regions.clear();
  const uint64_t begin = corpus.user_tweet_begin(user_row);
  const uint64_t end = corpus.user_tweet_end(user_row);
  for (uint64_t pos = begin; pos < end; ++pos) {
    const size_t row = corpus.user_tweet_row(pos);
    if (!corpus.tweet_has_gps(row)) continue;
    // The tweet row doubles as the fault key: for a corpus written in
    // dataset order it equals the tweet's dataset index, so the fault
    // schedule — and with it every downstream byte — matches the
    // Dataset overload.
    TweetFold fold = FoldTweet(corpus.tweet_gps(row), corpus.tweet_text(row),
                               static_cast<int64_t>(row), parsed->region);
    ApplyFold(fold, &stats, &out->tweet_regions);
  }
  if (stage_geocode_us_ != nullptr) {
    stage_geocode_us_->Increment(ElapsedUs(geocode_t0));
  }
  if (out->tweet_regions.empty()) return false;
  ++stats.final_users;
  return true;
}

void RefinementPipeline::PublishFunnelMetrics(const FunnelStats& stats) const {
  static const char* kQualityDropNames[4] = {
      "funnel.drop.profile_empty", "funnel.drop.profile_vague",
      "funnel.drop.profile_insufficient", "funnel.drop.profile_ambiguous"};
  obs::MetricsRegistry* m = metrics_;
  m->GetCounter("funnel.users.crawled")->Increment(stats.crawled_users);
  for (int q = 0; q < 4; ++q) {
    m->GetCounter(kQualityDropNames[q])->Increment(stats.quality_counts[q]);
  }
  m->GetCounter("funnel.users.well_defined")
      ->Increment(stats.well_defined_users);
  m->GetCounter("funnel.tweets.total")->Increment(stats.total_tweets);
  m->GetCounter("funnel.tweets.gps")->Increment(stats.gps_tweets);
  m->GetCounter("funnel.drop.geocode_failure")
      ->Increment(stats.geocode_failures);
  if (stats.corrupt_window_users > 0) {
    // Gated on nonzero so fault-free metric dumps stay byte-identical.
    m->GetCounter("funnel.drop.corrupt_window")
        ->Increment(stats.corrupt_window_users);
  }
  m->GetCounter("funnel.drop.no_geocoded_tweets")
      ->Increment(stats.well_defined_users - stats.final_users);
  m->GetCounter("funnel.users.final")->Increment(stats.final_users);
  if (stats.fault_injection_enabled) {
    m->GetCounter("funnel.resilience.faulted")
        ->Increment(stats.geocode_faulted);
    m->GetCounter("funnel.resilience.retried")
        ->Increment(stats.geocode_retried);
    m->GetCounter("funnel.resilience.degraded")
        ->Increment(stats.geocode_degraded);
    m->GetCounter("funnel.resilience.backoff_ms")
        ->Increment(stats.backoff_ms);
  }
}

std::vector<RefinedUser> RefinementPipeline::Run(
    const twitter::Dataset& dataset, FunnelStats* funnel,
    common::ThreadPool* pool, StudyCheckpointer* checkpointer) const {
  obs::Tracer::ScopedSpan refinement_span(tracer_, "refinement");
  FunnelStats local;
  FunnelStats& stats = funnel != nullptr ? *funnel : local;
  stats = FunnelStats{};
  stats.crawled_users = static_cast<int64_t>(dataset.users().size());
  stats.total_tweets = dataset.total_tweet_count();
  stats.gps_tweets = dataset.gps_tweet_count();

  const std::vector<twitter::User>& users = dataset.users();
  size_t shards = common::NumShards(pool, users.size());
  if (checkpointer != nullptr) checkpointer->InitShards(shards);
  std::vector<RefinedUser> refined;
  if (shards <= 1) {
    size_t start = 0;
    if (checkpointer != nullptr) {
      // The serial path checkpoints the whole funnel (globals included),
      // so restoring is a plain assignment.
      if (const ShardProgress* restored = checkpointer->RestoredShard(0)) {
        stats = restored->stats;
        start = static_cast<size_t>(restored->next_user);
        refined = checkpointer->TakeRestoredShardRefined(0);
      }
    }
    RefinedUser candidate;
    for (size_t i = start; i < users.size(); ++i) {
      if (RefineUser(dataset, users[i], stats, &candidate)) {
        refined.push_back(std::move(candidate));
        candidate = RefinedUser{};
      }
      if (checkpointer != nullptr) {
        checkpointer->NoteUserProcessed(0, static_cast<int64_t>(i + 1), stats,
                                        refined, i + 1 == users.size());
        if (checkpointer->ShouldStop()) break;
      }
    }
  } else {
    // Contiguous user shards, each with private outputs; the
    // shard-ordered merge below makes the result independent of
    // execution interleaving.
    std::vector<FunnelStats> shard_stats(shards);
    std::vector<std::vector<RefinedUser>> shard_refined(shards);
    int64_t parent_span = refinement_span.id();
    common::ParallelForShards(
        pool, users.size(),
        [&](size_t shard, size_t begin, size_t end) {
          // Worker threads have no ambient span; attach the shard span to
          // the refinement stage explicitly.
          int64_t span = tracer_ != nullptr
                             ? tracer_->BeginSpanUnder("refine.shard",
                                                       parent_span)
                             : obs::Tracer::kNoSpan;
          if (tracer_ != nullptr) {
            tracer_->AddAttribute(span, "shard",
                                  static_cast<int64_t>(shard));
            tracer_->AddAttribute(span, "users",
                                  static_cast<int64_t>(end - begin));
          }
          size_t start = begin;
          if (checkpointer != nullptr) {
            if (const ShardProgress* restored =
                    checkpointer->RestoredShard(shard)) {
              shard_stats[shard] = restored->stats;
              shard_refined[shard] =
                  checkpointer->TakeRestoredShardRefined(shard);
              start = std::max(
                  start, static_cast<size_t>(restored->next_user));
            }
          }
          RefinedUser candidate;
          for (size_t i = start; i < end; ++i) {
            if (RefineUser(dataset, users[i], shard_stats[shard],
                           &candidate)) {
              shard_refined[shard].push_back(std::move(candidate));
              candidate = RefinedUser{};
            }
            if (checkpointer != nullptr) {
              checkpointer->NoteUserProcessed(
                  shard, static_cast<int64_t>(i + 1), shard_stats[shard],
                  shard_refined[shard], i + 1 == end);
              if (checkpointer->ShouldStop()) break;
            }
          }
          if (tracer_ != nullptr) tracer_->EndSpan(span);
        });

    obs::Tracer::ScopedSpan merge_span(tracer_, "refine.merge");
    size_t total = 0;
    for (const std::vector<RefinedUser>& part : shard_refined) {
      total += part.size();
    }
    refined.reserve(total);
    for (size_t shard = 0; shard < shards; ++shard) {
      stats.AccumulateUserCounts(shard_stats[shard]);
      for (RefinedUser& user : shard_refined[shard]) {
        refined.push_back(std::move(user));
      }
    }
  }

  // Retry/backoff totals are accumulated per user inside RefineUser (see
  // the thread-local sampling there); for a fresh geocoder they equal its
  // num_retries()/simulated_backoff_ms() totals.
  stats.fault_injection_enabled = geocoder_->fault_injection_enabled();
  if (metrics_ != nullptr) PublishFunnelMetrics(stats);
  return refined;
}

std::vector<RefinedUser> RefinementPipeline::Run(const io::CorpusView& corpus,
                                                 FunnelStats* funnel,
                                                 common::ThreadPool* pool) const {
  obs::Tracer::ScopedSpan refinement_span(tracer_, "refinement");
  // Re-verify windows up front when storage faults that can rot pages
  // are armed (or corruption was already found), so every shard sees the
  // same quarantine set and the shard merge stays deterministic. Without
  // page-flip faults this is skipped entirely — no extra page touches.
  {
    io::FaultFs& fs = io::FaultFs::Instance();
    if (corpus.window_count() > 0 &&
        ((fs.enabled() && fs.options().page_flip_rate > 0.0) ||
         corpus.quarantined_windows() > 0)) {
      corpus.ReverifyAllWindows();
    }
  }
  FunnelStats local;
  FunnelStats& stats = funnel != nullptr ? *funnel : local;
  stats = FunnelStats{};
  stats.crawled_users = static_cast<int64_t>(corpus.user_count());
  stats.total_tweets = corpus.total_tweet_count();
  stats.gps_tweets = corpus.gps_tweet_count();

  const size_t user_count = corpus.user_count();
  size_t shards = common::NumShards(pool, user_count);
  std::vector<RefinedUser> refined;
  // Page-release policy: a grouped corpus stores one user's tweets
  // contiguously, so a contiguous user range maps to a contiguous tweet
  // byte range we can hand back to the kernel as soon as the range is
  // refined. Ungrouped corpora scatter rows, so no release is attempted
  // (the kernel still evicts under pressure; only the bound is weaker).
  if (shards <= 1) {
    // Serial: release consumed tweet pages every watermark's worth of
    // users so a single-threaded out-of-core scan stays flat too.
    constexpr size_t kReleaseUserStride = 1u << 16;
    size_t released_row = 0;
    RefinedUser candidate;
    std::unordered_map<uint32_t, text::ParsedLocation> parse_memo;
    for (size_t i = 0; i < user_count; ++i) {
      if (RefineUser(corpus, i, stats, &candidate, &parse_memo)) {
        refined.push_back(std::move(candidate));
        candidate = RefinedUser{};
      }
      if (corpus.grouped() && (i + 1) % kReleaseUserStride == 0) {
        size_t consumed = static_cast<size_t>(corpus.user_tweet_begin(i + 1));
        corpus.ReleaseTweetRows(released_row, consumed);
        released_row = consumed;
      }
    }
    if (corpus.grouped()) {
      corpus.ReleaseTweetRows(released_row, corpus.tweet_count());
    }
  } else {
    // Contiguous user shards, merged in shard order — bit-identical to
    // the serial scan for any thread count, same as the Dataset path.
    std::vector<FunnelStats> shard_stats(shards);
    std::vector<std::vector<RefinedUser>> shard_refined(shards);
    int64_t parent_span = refinement_span.id();
    common::ParallelForShards(
        pool, user_count, [&](size_t shard, size_t begin, size_t end) {
          int64_t span = tracer_ != nullptr
                             ? tracer_->BeginSpanUnder("refine.shard",
                                                       parent_span)
                             : obs::Tracer::kNoSpan;
          if (tracer_ != nullptr) {
            tracer_->AddAttribute(span, "shard",
                                  static_cast<int64_t>(shard));
            tracer_->AddAttribute(span, "users",
                                  static_cast<int64_t>(end - begin));
          }
          RefinedUser candidate;
          std::unordered_map<uint32_t, text::ParsedLocation> parse_memo;
          for (size_t i = begin; i < end; ++i) {
            if (RefineUser(corpus, i, shard_stats[shard], &candidate,
                           &parse_memo)) {
              shard_refined[shard].push_back(std::move(candidate));
              candidate = RefinedUser{};
            }
          }
          if (corpus.grouped()) {
            corpus.ReleaseTweetRows(
                static_cast<size_t>(corpus.user_tweet_begin(begin)),
                static_cast<size_t>(corpus.user_tweet_begin(end)));
          }
          if (tracer_ != nullptr) tracer_->EndSpan(span);
        });

    obs::Tracer::ScopedSpan merge_span(tracer_, "refine.merge");
    size_t total = 0;
    for (const std::vector<RefinedUser>& part : shard_refined) {
      total += part.size();
    }
    refined.reserve(total);
    for (size_t shard = 0; shard < shards; ++shard) {
      stats.AccumulateUserCounts(shard_stats[shard]);
      for (RefinedUser& user : shard_refined[shard]) {
        refined.push_back(std::move(user));
      }
    }
  }

  stats.fault_injection_enabled = geocoder_->fault_injection_enabled();
  if (metrics_ != nullptr) PublishFunnelMetrics(stats);
  return refined;
}

}  // namespace stir::core
