#ifndef STIR_CORE_TEMPORAL_H_
#define STIR_CORE_TEMPORAL_H_

#include <array>
#include <string>

#include "common/status.h"
#include "twitter/dataset.h"

namespace stir::core {

/// Hour-of-day posting profile: the fraction of tweets posted in each
/// local hour. This is the temporal companion to the paper's spatial
/// study (the same group's follow-up analyzed posting behaviour over
/// time); the generator bakes in a diurnal cycle, and this module
/// recovers and reports it.
struct PostingProfile {
  std::array<double, 24> hour_share = {};
  int64_t tweet_count = 0;

  /// Hour with the largest share.
  int PeakHour() const;
  /// Hour with the smallest share.
  int TroughHour() const;
  /// Shannon entropy of the hourly distribution (bits; log2(24) ~ 4.58
  /// would be a perfectly flat profile).
  double EntropyBits() const;
  /// ASCII sparkline-style rendering, one row per hour.
  std::string ToString() const;
};

/// Profile over all materialized tweets of a dataset. Fails on a dataset
/// without materialized tweets.
StatusOr<PostingProfile> ComputePostingProfile(
    const twitter::Dataset& dataset);

/// Profile restricted to one user's materialized tweets; NotFound when
/// the user has none.
StatusOr<PostingProfile> ComputeUserPostingProfile(
    const twitter::Dataset& dataset, twitter::UserId user);

/// L1 distance between two hourly profiles (0 identical .. 2 disjoint).
double ProfileDistance(const PostingProfile& a, const PostingProfile& b);

}  // namespace stir::core

#endif  // STIR_CORE_TEMPORAL_H_
