#ifndef STIR_IO_SIGBUS_GUARD_H_
#define STIR_IO_SIGBUS_GUARD_H_

#include <functional>

namespace stir::io {

/// Runs `fn` with a SIGBUS trap armed for the calling thread and returns
/// true when it completed normally, false when a SIGBUS fired inside it
/// (the classic mmap hazard: a mapped file truncated or a page lost under
/// the map turns an innocent load into a fatal signal). On the first call
/// a process-wide SIGBUS handler is installed (thread-safe, installed
/// once); the handler siglongjmps back out for threads that are inside a
/// guarded region and re-raises the default disposition for any thread
/// that is not, so unrelated SIGBUS crashes keep their normal core dump.
///
/// `fn` must be longjmp-safe: no objects with non-trivial destructors may
/// be live across the faulting load (the corpus CRC loops qualify — they
/// touch only PODs). Guards do not nest.
bool RunSigbusProtected(const std::function<void()>& fn);

/// Number of SIGBUS signals absorbed by guards since process start
/// (exposed for tests and fault accounting).
int64_t SigbusAbsorbedCount();

}  // namespace stir::io

#endif  // STIR_IO_SIGBUS_GUARD_H_
