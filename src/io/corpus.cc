#include "io/corpus.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <limits>

#include "common/crc32c.h"
#include "common/hash.h"
#include "io/fault_fs.h"
#include "io/sigbus_guard.h"
#include "twitter/dataset.h"

namespace stir::io {

static_assert(std::endian::native == std::endian::little,
              "v3 corpus files are little-endian");

namespace {

Status Errno(const char* op, const std::string& path) {
  return Status::IOError(std::string(op) + " failed for " + path + ": " +
                         std::strerror(errno));
}

Status SyncParentDir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open(dir)", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync(dir)", dir);
  return Status::OK();
}

uint64_t Align8(uint64_t n) { return (n + 7) & ~uint64_t{7}; }

Status Corrupt(const std::string& path, const std::string& why) {
  return Status::InvalidArgument("corpus " + path + ": " + why);
}

/// Buffered snapshot assembly: counts bytes written and (once armed)
/// feeds every byte into the running payload CRC.
class CrcWriter {
 public:
  CrcWriter(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  Status Write(const void* data, size_t bytes) {
    if (bytes > 0 &&
        FaultFs::Instance().Fwrite(data, 1, bytes, file_) != bytes) {
      return Errno("write", path_);
    }
    if (tracking_) {
      crc_ = Crc32cExtend(
          crc_, std::string_view(static_cast<const char*>(data), bytes));
    }
    pos_ += bytes;
    return Status::OK();
  }

  Status Pad(uint64_t target_pos) {
    static const char kZeros[8] = {0};
    while (pos_ < target_pos) {
      size_t n = std::min<uint64_t>(target_pos - pos_, sizeof(kZeros));
      STIR_RETURN_IF_ERROR(Write(kZeros, n));
    }
    return Status::OK();
  }

  void StartCrc() { tracking_ = true; }
  uint32_t FinishCrc() const { return Crc32cFinish(crc_); }
  uint64_t pos() const { return pos_; }

 private:
  std::FILE* file_;
  std::string path_;
  bool tracking_ = false;
  uint32_t crc_ = kCrc32cInit;
  uint64_t pos_ = 0;
};

struct SectionPlan {
  CorpusSection id;
  uint64_t offset = 0;
  uint64_t size = 0;
};

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

}  // namespace

// ---------------------------------------------------------------------
// CorpusWriter
// ---------------------------------------------------------------------

CorpusWriter::CorpusWriter(std::string path, CorpusWriterOptions options)
    : path_(std::move(path)), options_(options) {
  if (options_.tweet_spill_rows == 0 || options_.tweet_spill_rows % 64 != 0) {
    deferred_error_ = Status::InvalidArgument(
        "CorpusWriterOptions.tweet_spill_rows must be a positive multiple "
        "of 64");
  }
  const char* names[] = {"ids",  "urows", "times",  "lats",
                         "lngs", "gps",   "toffs", "text"};
  SpillColumn* cols[] = {&spill_ids_,      &spill_user_rows_,
                         &spill_times_,    &spill_lats_,
                         &spill_lngs_,     &spill_gps_bits_,
                         &spill_text_offsets_, &spill_text_};
  for (size_t i = 0; i < 8; ++i) {
    cols[i]->path = path_ + ".spill." + names[i];
  }
}

CorpusWriter::~CorpusWriter() { CloseAndRemoveSpills(); }

void CorpusWriter::CloseAndRemoveSpills() {
  SpillColumn* cols[] = {&spill_ids_,      &spill_user_rows_,
                         &spill_times_,    &spill_lats_,
                         &spill_lngs_,     &spill_gps_bits_,
                         &spill_text_offsets_, &spill_text_};
  for (SpillColumn* col : cols) {
    if (col->file != nullptr) {
      std::fclose(col->file);
      col->file = nullptr;
    }
    if (!col->path.empty()) ::unlink(col->path.c_str());
  }
}

Status CorpusWriter::Spill(SpillColumn* column, const void* data,
                           size_t bytes) {
  if (bytes == 0) return Status::OK();
  if (column->file == nullptr) {
    column->file = std::fopen(column->path.c_str(), "wb");
    if (column->file == nullptr) return Errno("open", column->path);
  }
  if (FaultFs::Instance().Fwrite(data, 1, bytes, column->file) != bytes) {
    return Errno("write", column->path);
  }
  column->bytes += bytes;
  return Status::OK();
}

Status CorpusWriter::AddUser(const twitter::User& user) {
  if (!deferred_error_.ok()) return deferred_error_;
  if (finished_) return Status::FailedPrecondition("writer already finished");
  if (user_ids_.size() >=
      static_cast<size_t>(std::numeric_limits<uint32_t>::max())) {
    return Status::ResourceExhausted("corpus user table full (2^32-1 rows)");
  }
  auto [it, inserted] =
      user_rows_.emplace(user.id, static_cast<uint32_t>(user_ids_.size()));
  if (!inserted) {
    return Status::InvalidArgument("duplicate user id " +
                                   std::to_string(user.id));
  }
  user_ids_.push_back(user.id);
  user_handle_refs_.push_back(arena_.Intern(user.handle));
  user_profile_refs_.push_back(arena_.Intern(user.profile_location));
  user_total_tweets_.push_back(user.total_tweets);
  user_tweet_counts_.push_back(0);
  return Status::OK();
}

Status CorpusWriter::AddTweet(const twitter::Tweet& tweet) {
  if (!deferred_error_.ok()) return deferred_error_;
  if (finished_) return Status::FailedPrecondition("writer already finished");
  auto it = user_rows_.find(tweet.user);
  if (it == user_rows_.end()) {
    return Status::InvalidArgument("tweet " + std::to_string(tweet.id) +
                                   " from unknown user " +
                                   std::to_string(tweet.user));
  }
  uint32_t user_row = it->second;
  if (tweet_rows_ > 0 && static_cast<int64_t>(user_row) < last_user_row_) {
    grouped_ = false;
  }
  last_user_row_ = user_row;

  buf_ids_.push_back(tweet.id);
  buf_user_rows_.push_back(user_row);
  buf_times_.push_back(tweet.time);
  buf_lats_.push_back(tweet.gps ? tweet.gps->lat : 0.0);
  buf_lngs_.push_back(tweet.gps ? tweet.gps->lng : 0.0);
  size_t local = buf_ids_.size() - 1;
  if (local / 64 == buf_gps_bits_.size()) buf_gps_bits_.push_back(0);
  if (tweet.gps) {
    buf_gps_bits_[local / 64] |= uint64_t{1} << (local % 64);
    ++gps_tweets_;
  }
  buf_text_.append(tweet.text);
  text_bytes_ += tweet.text.size();
  buf_text_offsets_.push_back(text_bytes_);  // end offset of this tweet
  ++user_tweet_counts_[user_row];
  ++tweet_rows_;

  if (buf_ids_.size() >= options_.tweet_spill_rows) {
    STIR_RETURN_IF_ERROR(FlushTweetBuffers(false));
  }
  return Status::OK();
}

Status CorpusWriter::FlushTweetBuffers(bool final_flush) {
  size_t n = buf_ids_.size();
  if (n == 0) return Status::OK();
  // Non-final flushes happen on tweet_spill_rows boundaries (a multiple
  // of 64), so spilled bitmap words are always complete.
  STIR_RETURN_IF_ERROR(Spill(&spill_ids_, buf_ids_.data(), n * 8));
  STIR_RETURN_IF_ERROR(Spill(&spill_user_rows_, buf_user_rows_.data(), n * 4));
  STIR_RETURN_IF_ERROR(Spill(&spill_times_, buf_times_.data(), n * 8));
  STIR_RETURN_IF_ERROR(Spill(&spill_lats_, buf_lats_.data(), n * 8));
  STIR_RETURN_IF_ERROR(Spill(&spill_lngs_, buf_lngs_.data(), n * 8));
  STIR_RETURN_IF_ERROR(
      Spill(&spill_gps_bits_, buf_gps_bits_.data(), buf_gps_bits_.size() * 8));
  STIR_RETURN_IF_ERROR(
      Spill(&spill_text_offsets_, buf_text_offsets_.data(), n * 8));
  STIR_RETURN_IF_ERROR(Spill(&spill_text_, buf_text_.data(), buf_text_.size()));
  buf_ids_.clear();
  buf_user_rows_.clear();
  buf_times_.clear();
  buf_lats_.clear();
  buf_lngs_.clear();
  buf_gps_bits_.clear();
  buf_text_offsets_.clear();
  buf_text_.clear();
  (void)final_flush;
  return Status::OK();
}

StatusOr<CorpusWriteStats> CorpusWriter::Finish() {
  if (!deferred_error_.ok()) return deferred_error_;
  if (finished_) return Status::FailedPrecondition("writer already finished");
  finished_ = true;
  STIR_RETURN_IF_ERROR(FlushTweetBuffers(true));
  SpillColumn* cols[] = {&spill_ids_,      &spill_user_rows_,
                         &spill_times_,    &spill_lats_,
                         &spill_lngs_,     &spill_gps_bits_,
                         &spill_text_offsets_, &spill_text_};
  for (SpillColumn* col : cols) {
    if (col->file != nullptr && std::fflush(col->file) != 0) {
      return Errno("flush", col->path);
    }
  }

  const uint64_t users = user_ids_.size();
  const uint64_t tweets = static_cast<uint64_t>(tweet_rows_);

  // CSR offsets from the per-user counts.
  std::vector<uint64_t> csr_begin(users + 1, 0);
  for (uint64_t u = 0; u < users; ++u) {
    csr_begin[u + 1] = csr_begin[u] + user_tweet_counts_[u];
  }

  // Ungrouped corpora need the explicit CSR permutation, built by
  // scattering the spilled per-tweet user-row column. This is the one
  // finalization step that is O(tweets) in memory; the generator's
  // grouped order never takes it.
  std::vector<uint32_t> csr_rows;
  if (!grouped_ && tweets > 0) {
    csr_rows.resize(tweets);
    std::vector<uint64_t> cursor(csr_begin.begin(), csr_begin.end() - 1);
    std::FILE* in = std::fopen(spill_user_rows_.path.c_str(), "rb");
    if (in == nullptr) return Errno("open", spill_user_rows_.path);
    std::vector<uint32_t> chunk(1u << 16);
    uint64_t t = 0;
    while (t < tweets) {
      size_t want = std::min<uint64_t>(chunk.size(), tweets - t);
      size_t got = std::fread(chunk.data(), 4, want, in);
      if (got != want) {
        std::fclose(in);
        return Errno("read", spill_user_rows_.path);
      }
      for (size_t i = 0; i < got; ++i) {
        csr_rows[cursor[chunk[i]]++] = static_cast<uint32_t>(t + i);
      }
      t += got;
    }
    std::fclose(in);
  }

  int64_t total_tweets = 0;
  for (int64_t total : user_total_tweets_) total_tweets += total;

  // Section plan, in id order.
  const uint64_t bitmap_words = (tweets + 63) / 64;
  std::vector<SectionPlan> plan;
  plan.push_back({CorpusSection::kUserIds, 0, users * 8});
  plan.push_back({CorpusSection::kUserHandleRefs, 0, users * 4});
  plan.push_back({CorpusSection::kUserProfileRefs, 0, users * 4});
  plan.push_back({CorpusSection::kUserTotalTweets, 0, users * 8});
  plan.push_back({CorpusSection::kUserTweetBegin, 0, (users + 1) * 8});
  if (!grouped_) {
    plan.push_back({CorpusSection::kUserTweetRows, 0, tweets * 4});
  }
  plan.push_back({CorpusSection::kTweetIds, 0, tweets * 8});
  plan.push_back({CorpusSection::kTweetUserRows, 0, tweets * 4});
  plan.push_back({CorpusSection::kTweetTimes, 0, tweets * 8});
  plan.push_back({CorpusSection::kTweetLats, 0, tweets * 8});
  plan.push_back({CorpusSection::kTweetLngs, 0, tweets * 8});
  plan.push_back({CorpusSection::kTweetGpsBitmap, 0, bitmap_words * 8});
  plan.push_back({CorpusSection::kTweetTextOffsets, 0, (tweets + 1) * 8});
  plan.push_back({CorpusSection::kTweetTextBytes, 0, text_bytes_});
  plan.push_back({CorpusSection::kArenaOffsets, 0,
                  (static_cast<uint64_t>(arena_.size()) + 1) * 8});
  plan.push_back({CorpusSection::kArenaBytes, 0, arena_.blob_bytes()});

  uint64_t cursor = kCorpusHeaderSize + plan.size() * 24;
  for (SectionPlan& s : plan) {
    cursor = Align8(cursor);
    s.offset = cursor;
    cursor += s.size;
  }
  const uint64_t file_size = Align8(cursor);

  // Assemble the snapshot in a temporary sibling, then rename.
  std::string tmp = path_ + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) return Errno("open", tmp);
  CrcWriter writer(out, tmp);

  Status status = [&]() -> Status {
    static const char kZeroHeader[kCorpusHeaderSize] = {0};
    STIR_RETURN_IF_ERROR(writer.Write(kZeroHeader, kCorpusHeaderSize));
    writer.StartCrc();

    std::string table;
    table.reserve(plan.size() * 24);
    for (const SectionPlan& s : plan) {
      PutU32(&table, static_cast<uint32_t>(s.id));
      PutU32(&table, 0);
      PutU64(&table, s.offset);
      PutU64(&table, s.size);
    }
    STIR_RETURN_IF_ERROR(writer.Write(table.data(), table.size()));

    auto write_mem = [&](const SectionPlan& s, const void* data) -> Status {
      STIR_RETURN_IF_ERROR(writer.Pad(s.offset));
      return writer.Write(data, s.size);
    };
    auto write_spill = [&](const SectionPlan& s, const SpillColumn& col,
                           uint64_t prefix_zero_u64s) -> Status {
      STIR_RETURN_IF_ERROR(writer.Pad(s.offset));
      for (uint64_t i = 0; i < prefix_zero_u64s; ++i) {
        uint64_t zero = 0;
        STIR_RETURN_IF_ERROR(writer.Write(&zero, 8));
      }
      if (col.bytes == 0) return Status::OK();
      std::FILE* in = std::fopen(col.path.c_str(), "rb");
      if (in == nullptr) return Errno("open", col.path);
      std::vector<char> chunk(1u << 20);
      uint64_t left = col.bytes;
      while (left > 0) {
        size_t want = std::min<uint64_t>(chunk.size(), left);
        size_t got = std::fread(chunk.data(), 1, want, in);
        if (got != want) {
          std::fclose(in);
          return Errno("read", col.path);
        }
        Status st = writer.Write(chunk.data(), got);
        if (!st.ok()) {
          std::fclose(in);
          return st;
        }
        left -= got;
      }
      std::fclose(in);
      return Status::OK();
    };

    size_t p = 0;
    STIR_RETURN_IF_ERROR(write_mem(plan[p++], user_ids_.data()));
    STIR_RETURN_IF_ERROR(write_mem(plan[p++], user_handle_refs_.data()));
    STIR_RETURN_IF_ERROR(write_mem(plan[p++], user_profile_refs_.data()));
    STIR_RETURN_IF_ERROR(write_mem(plan[p++], user_total_tweets_.data()));
    STIR_RETURN_IF_ERROR(write_mem(plan[p++], csr_begin.data()));
    if (!grouped_) {
      STIR_RETURN_IF_ERROR(write_mem(plan[p++], csr_rows.data()));
    }
    STIR_RETURN_IF_ERROR(write_spill(plan[p++], spill_ids_, 0));
    STIR_RETURN_IF_ERROR(write_spill(plan[p++], spill_user_rows_, 0));
    STIR_RETURN_IF_ERROR(write_spill(plan[p++], spill_times_, 0));
    STIR_RETURN_IF_ERROR(write_spill(plan[p++], spill_lats_, 0));
    STIR_RETURN_IF_ERROR(write_spill(plan[p++], spill_lngs_, 0));
    STIR_RETURN_IF_ERROR(write_spill(plan[p++], spill_gps_bits_, 0));
    // Text offsets are stored as end positions; the section leads with
    // the implicit 0 so readers see tweets+1 monotone offsets.
    STIR_RETURN_IF_ERROR(write_spill(plan[p++], spill_text_offsets_, 1));
    STIR_RETURN_IF_ERROR(write_spill(plan[p++], spill_text_, 0));
    STIR_RETURN_IF_ERROR(write_mem(plan[p++], arena_.offsets().data()));
    STIR_RETURN_IF_ERROR(write_mem(plan[p++], arena_.blob().data()));
    STIR_RETURN_IF_ERROR(writer.Pad(file_size));
    return Status::OK();
  }();

  if (status.ok()) {
    // Patch the real header in.
    std::string header;
    header.reserve(kCorpusHeaderSize);
    header.append(kCorpusMagic);
    PutU32(&header, kCorpusFormatVersion);
    PutU32(&header, writer.FinishCrc());
    PutU64(&header, file_size);
    PutU64(&header, users);
    PutU64(&header, tweets);
    PutU64(&header, static_cast<uint64_t>(gps_tweets_));
    PutU64(&header, static_cast<uint64_t>(total_tweets));
    PutU32(&header, grouped_ ? kCorpusFlagGrouped : 0);
    PutU32(&header, static_cast<uint32_t>(plan.size()));
    if (std::fflush(out) != 0 || std::fseek(out, 0, SEEK_SET) != 0 ||
        FaultFs::Instance().Fwrite(header.data(), 1, header.size(), out) !=
            header.size() ||
        std::fflush(out) != 0) {
      status = Errno("write(header)", tmp);
    }
  }
  if (status.ok() && options_.fsync &&
      FaultFs::Instance().Fsync(::fileno(out)) != 0) {
    status = Errno("fsync", tmp);
  }
  if (std::fclose(out) != 0 && status.ok()) status = Errno("close", tmp);
  CloseAndRemoveSpills();
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Errno("rename", path_);
  }
  if (options_.fsync) STIR_RETURN_IF_ERROR(SyncParentDir(path_));

  CorpusWriteStats stats;
  stats.users = static_cast<int64_t>(users);
  stats.tweets = tweet_rows_;
  stats.gps_tweets = gps_tweets_;
  stats.total_tweets = total_tweets;
  stats.arena_strings = static_cast<int64_t>(arena_.size());
  stats.file_bytes = static_cast<int64_t>(file_size);
  stats.grouped = grouped_;
  return stats;
}

StatusOr<CorpusWriteStats> CorpusWriter::WriteDataset(
    const twitter::Dataset& dataset, const std::string& path,
    CorpusWriterOptions options) {
  CorpusWriter writer(path, options);
  for (const twitter::User& user : dataset.users()) {
    STIR_RETURN_IF_ERROR(writer.AddUser(user));
  }
  for (const twitter::Tweet& tweet : dataset.tweets()) {
    STIR_RETURN_IF_ERROR(writer.AddTweet(tweet));
  }
  return writer.Finish();
}

// ---------------------------------------------------------------------
// CorpusView
// ---------------------------------------------------------------------

StatusOr<CorpusView> CorpusView::Open(const std::string& path,
                                      CorpusViewOptions options) {
  STIR_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  const char* base = file.data();
  const size_t size = file.size();
  if (size < kCorpusHeaderSize) return Corrupt(path, "truncated header");
  if (std::string_view(base, kCorpusMagic.size()) != kCorpusMagic) {
    return Corrupt(path, "bad magic");
  }
  auto read_u32 = [&](size_t off) {
    uint32_t v;
    std::memcpy(&v, base + off, 4);
    return v;
  };
  auto read_u64 = [&](size_t off) {
    uint64_t v;
    std::memcpy(&v, base + off, 8);
    return v;
  };
  if (read_u32(8) != kCorpusFormatVersion) {
    return Corrupt(path, "unsupported version " + std::to_string(read_u32(8)));
  }
  const uint32_t want_crc = read_u32(12);
  const uint64_t file_size = read_u64(16);
  if (file_size != size) {
    return Corrupt(path, "size mismatch (header says " +
                             std::to_string(file_size) + ", file has " +
                             std::to_string(size) + " bytes — torn write?)");
  }

  CorpusView view;
  view.user_count_ = read_u64(24);
  view.tweet_count_ = read_u64(32);
  view.gps_count_ = static_cast<int64_t>(read_u64(40));
  view.total_tweet_count_ = static_cast<int64_t>(read_u64(48));
  view.flags_ = read_u32(56);
  const uint32_t section_count = read_u32(60);
  if (section_count == 0 || section_count > 64) {
    return Corrupt(path, "implausible section count");
  }
  const uint64_t table_end = kCorpusHeaderSize + uint64_t{section_count} * 24;
  if (table_end > size) return Corrupt(path, "section table truncated");

  view.file_salt_ = Fnv1a64(path);
  if (options.verify_crc) {
    // Windowed so the verification pass itself does not drag the whole
    // file into the resident set: extend, release, repeat. The running
    // CRC at each window boundary is recorded so released windows can be
    // re-verified after a later re-fault from a disk gone bad (see
    // ReverifyWindow). The whole pass runs under a SIGBUS guard: a file
    // truncated under the map turns into a typed error, not a crash.
    constexpr size_t kWindow = kCorpusVerifyWindow;
    uint32_t crc = kCrc32cInit;
    // Reserved up front: no allocation happens inside the guarded region.
    view.window_crc_boundaries_.reserve((size - kCorpusHeaderSize) / kWindow +
                                        2);
    view.window_crc_boundaries_.push_back(crc);
    bool completed = RunSigbusProtected([&] {
      for (size_t off = kCorpusHeaderSize; off < size; off += kWindow) {
        size_t n = std::min(kWindow, size - off);
        crc = Crc32cExtend(crc, std::string_view(base + off, n));
        view.window_crc_boundaries_.push_back(crc);
        file.ReleaseRange(off, n);
      }
    });
    if (!completed) {
      return Corrupt(path,
                     "SIGBUS during verify (file truncated or page lost "
                     "under the map)");
    }
    if (Crc32cFinish(crc) != want_crc) {
      return Corrupt(path, "CRC mismatch (corrupt payload)");
    }
    view.window_count_ =
        static_cast<int64_t>(view.window_crc_boundaries_.size()) - 1;
    view.quarantine_ = std::make_shared<QuarantineState>();
    view.quarantine_->flags = std::make_unique<std::atomic<uint8_t>[]>(
        static_cast<size_t>(view.window_count_));
  }

  SectionRef sections[17];
  for (uint32_t i = 0; i < section_count; ++i) {
    size_t entry = kCorpusHeaderSize + i * 24;
    uint32_t id = read_u32(entry);
    uint64_t offset = read_u64(entry + 8);
    uint64_t sec_size = read_u64(entry + 16);
    if (id == 0 || id > 16) continue;  // unknown sections are skippable
    if (offset % 8 != 0 || offset < table_end || offset > size ||
        sec_size > size - offset) {
      return Corrupt(path, "section " + std::to_string(id) + " out of bounds");
    }
    if (sections[id].present) {
      return Corrupt(path, "duplicate section " + std::to_string(id));
    }
    sections[id] = {offset, sec_size, true};
  }

  const uint64_t users = view.user_count_;
  const uint64_t tweets = view.tweet_count_;
  const bool grouped = (view.flags_ & kCorpusFlagGrouped) != 0;
  auto require = [&](CorpusSection id, uint64_t expect_size,
                     const char* what) -> Status {
    const SectionRef& ref = sections[static_cast<uint32_t>(id)];
    if (!ref.present) return Corrupt(path, std::string("missing ") + what);
    if (ref.size != expect_size) {
      return Corrupt(path, std::string(what) + " has " +
                               std::to_string(ref.size) + " bytes, expected " +
                               std::to_string(expect_size));
    }
    return Status::OK();
  };
  auto ptr = [&](CorpusSection id) {
    return base + sections[static_cast<uint32_t>(id)].offset;
  };

  STIR_RETURN_IF_ERROR(require(CorpusSection::kUserIds, users * 8, "user ids"));
  STIR_RETURN_IF_ERROR(
      require(CorpusSection::kUserHandleRefs, users * 4, "handle refs"));
  STIR_RETURN_IF_ERROR(
      require(CorpusSection::kUserProfileRefs, users * 4, "profile refs"));
  STIR_RETURN_IF_ERROR(
      require(CorpusSection::kUserTotalTweets, users * 8, "user totals"));
  STIR_RETURN_IF_ERROR(
      require(CorpusSection::kUserTweetBegin, (users + 1) * 8, "CSR offsets"));
  if (grouped) {
    if (sections[static_cast<uint32_t>(CorpusSection::kUserTweetRows)]
            .present) {
      return Corrupt(path, "grouped corpus carries a CSR row section");
    }
  } else {
    STIR_RETURN_IF_ERROR(
        require(CorpusSection::kUserTweetRows, tweets * 4, "CSR rows"));
  }
  STIR_RETURN_IF_ERROR(
      require(CorpusSection::kTweetIds, tweets * 8, "tweet ids"));
  STIR_RETURN_IF_ERROR(
      require(CorpusSection::kTweetUserRows, tweets * 4, "tweet user rows"));
  STIR_RETURN_IF_ERROR(
      require(CorpusSection::kTweetTimes, tweets * 8, "tweet times"));
  STIR_RETURN_IF_ERROR(
      require(CorpusSection::kTweetLats, tweets * 8, "tweet lats"));
  STIR_RETURN_IF_ERROR(
      require(CorpusSection::kTweetLngs, tweets * 8, "tweet lngs"));
  STIR_RETURN_IF_ERROR(require(CorpusSection::kTweetGpsBitmap,
                               (tweets + 63) / 64 * 8, "gps bitmap"));
  STIR_RETURN_IF_ERROR(require(CorpusSection::kTweetTextOffsets,
                               (tweets + 1) * 8, "text offsets"));
  const SectionRef& text_sec =
      sections[static_cast<uint32_t>(CorpusSection::kTweetTextBytes)];
  if (!text_sec.present) return Corrupt(path, "missing text bytes");
  const SectionRef& arena_off_sec =
      sections[static_cast<uint32_t>(CorpusSection::kArenaOffsets)];
  if (!arena_off_sec.present || arena_off_sec.size < 8 ||
      arena_off_sec.size % 8 != 0) {
    return Corrupt(path, "missing or malformed arena offsets");
  }
  const SectionRef& arena_bytes_sec =
      sections[static_cast<uint32_t>(CorpusSection::kArenaBytes)];
  if (!arena_bytes_sec.present) return Corrupt(path, "missing arena bytes");

  view.user_ids_ =
      reinterpret_cast<const int64_t*>(ptr(CorpusSection::kUserIds));
  view.user_handle_refs_ =
      reinterpret_cast<const uint32_t*>(ptr(CorpusSection::kUserHandleRefs));
  view.user_profile_refs_ =
      reinterpret_cast<const uint32_t*>(ptr(CorpusSection::kUserProfileRefs));
  view.user_total_tweets_ =
      reinterpret_cast<const int64_t*>(ptr(CorpusSection::kUserTotalTweets));
  view.user_tweet_begin_ =
      reinterpret_cast<const uint64_t*>(ptr(CorpusSection::kUserTweetBegin));
  view.user_tweet_rows_ =
      grouped ? nullptr
              : reinterpret_cast<const uint32_t*>(
                    ptr(CorpusSection::kUserTweetRows));
  view.tweet_ids_ =
      reinterpret_cast<const int64_t*>(ptr(CorpusSection::kTweetIds));
  view.tweet_user_rows_ =
      reinterpret_cast<const uint32_t*>(ptr(CorpusSection::kTweetUserRows));
  view.tweet_times_ =
      reinterpret_cast<const int64_t*>(ptr(CorpusSection::kTweetTimes));
  view.tweet_lats_ =
      reinterpret_cast<const double*>(ptr(CorpusSection::kTweetLats));
  view.tweet_lngs_ =
      reinterpret_cast<const double*>(ptr(CorpusSection::kTweetLngs));
  view.tweet_gps_bitmap_ =
      reinterpret_cast<const uint64_t*>(ptr(CorpusSection::kTweetGpsBitmap));
  view.tweet_text_offsets_ =
      reinterpret_cast<const uint64_t*>(ptr(CorpusSection::kTweetTextOffsets));
  view.tweet_text_bytes_ = ptr(CorpusSection::kTweetTextBytes);
  view.arena_offsets_ =
      reinterpret_cast<const uint64_t*>(ptr(CorpusSection::kArenaOffsets));
  view.arena_bytes_ = ptr(CorpusSection::kArenaBytes);
  view.arena_count_ = arena_off_sec.size / 8 - 1;

  // Structural invariants, so the accessors can stay unchecked. Each
  // check releases the pages it touched (RSS hygiene, same as the CRC
  // pass).
  auto monotone = [&](const uint64_t* offs, uint64_t count, uint64_t limit,
                      const char* what) -> Status {
    if (offs[0] != 0 || offs[count] != limit) {
      return Corrupt(path, std::string(what) + " endpoints corrupt");
    }
    for (uint64_t i = 0; i < count; ++i) {
      if (offs[i] > offs[i + 1]) {
        return Corrupt(path, std::string(what) + " not monotone");
      }
    }
    return Status::OK();
  };
  STIR_RETURN_IF_ERROR(monotone(view.tweet_text_offsets_, tweets,
                                text_sec.size, "text offsets"));
  STIR_RETURN_IF_ERROR(monotone(view.arena_offsets_, view.arena_count_,
                                arena_bytes_sec.size, "arena offsets"));
  STIR_RETURN_IF_ERROR(monotone(view.user_tweet_begin_, users, tweets,
                                "CSR offsets"));
  for (uint64_t t = 0; t < tweets; ++t) {
    if (view.tweet_user_rows_[t] >= users) {
      return Corrupt(path, "tweet user row out of range");
    }
  }
  if (view.user_tweet_rows_ != nullptr) {
    for (uint64_t t = 0; t < tweets; ++t) {
      if (view.user_tweet_rows_[t] >= tweets) {
        return Corrupt(path, "CSR row out of range");
      }
    }
  }
  for (uint64_t u = 0; u < users; ++u) {
    if (view.user_handle_refs_[u] >= view.arena_count_ ||
        view.user_profile_refs_[u] >= view.arena_count_) {
      return Corrupt(path, "arena ref out of range");
    }
  }
  int64_t gps = 0;
  for (uint64_t w = 0; w < (tweets + 63) / 64; ++w) {
    gps += std::popcount(view.tweet_gps_bitmap_[w]);
  }
  if (gps != view.gps_count_) {
    return Corrupt(path, "gps bitmap population does not match header");
  }

  // The validation passes touched most columns; hand those pages back
  // so a fresh view starts with a near-empty resident set.
  file.ReleaseRange(0, size);

  view.sec_tweet_fixed_[0] =
      sections[static_cast<uint32_t>(CorpusSection::kTweetIds)];
  view.sec_tweet_fixed_[1] =
      sections[static_cast<uint32_t>(CorpusSection::kTweetUserRows)];
  view.sec_tweet_fixed_[2] =
      sections[static_cast<uint32_t>(CorpusSection::kTweetTimes)];
  view.sec_tweet_fixed_[3] =
      sections[static_cast<uint32_t>(CorpusSection::kTweetLats)];
  view.sec_tweet_fixed_[4] =
      sections[static_cast<uint32_t>(CorpusSection::kTweetLngs)];
  view.sec_tweet_fixed_[5] =
      sections[static_cast<uint32_t>(CorpusSection::kTweetTextOffsets)];
  view.sec_tweet_text_ = text_sec;
  view.sec_gps_bitmap_ =
      sections[static_cast<uint32_t>(CorpusSection::kTweetGpsBitmap)];
  view.file_ = std::move(file);
  return view;
}

bool CorpusView::ReverifyWindow(int64_t w) const {
  if (quarantine_ == nullptr || w < 0 || w >= window_count_) return true;
  QuarantineState& q = *quarantine_;
  std::lock_guard<std::mutex> lock(q.mu);
  std::atomic<uint8_t>& flag = q.flags[static_cast<size_t>(w)];
  if (flag.load(std::memory_order_relaxed) == 2) return false;
  bool bad = false;
  if (FaultFs::Instance().FlipWindow(file_salt_, w)) {
    // Injected flip: FaultFs already accounted it as quarantined.
    bad = true;
  } else {
    const size_t off =
        kCorpusHeaderSize + static_cast<size_t>(w) * kCorpusVerifyWindow;
    const size_t n = std::min(kCorpusVerifyWindow, file_.size() - off);
    uint32_t crc = window_crc_boundaries_[static_cast<size_t>(w)];
    bool completed = RunSigbusProtected([&] {
      crc = Crc32cExtend(crc, std::string_view(file_.data() + off, n));
    });
    if (!completed ||
        crc != window_crc_boundaries_[static_cast<size_t>(w) + 1]) {
      bad = true;
      FaultFs::Instance().NoteExternalQuarantine(1);
    }
  }
  if (bad) {
    flag.store(2, std::memory_order_relaxed);
    q.quarantined.fetch_add(1, std::memory_order_release);
  }
  return !bad;
}

int64_t CorpusView::ReverifyAllWindows() const {
  for (int64_t w = 0; w < window_count_; ++w) ReverifyWindow(w);
  return quarantined_windows();
}

bool CorpusView::WindowQuarantined(int64_t w) const {
  if (quarantine_ == nullptr || w < 0 || w >= window_count_) return false;
  return quarantine_->flags[static_cast<size_t>(w)].load(
             std::memory_order_relaxed) == 2;
}

int64_t CorpusView::quarantined_windows() const {
  if (quarantine_ == nullptr) return 0;
  return quarantine_->quarantined.load(std::memory_order_acquire);
}

bool CorpusView::ByteRangeQuarantined(uint64_t offset, uint64_t size) const {
  if (size == 0 || offset < kCorpusHeaderSize) return false;
  int64_t first = WindowOfByte(offset);
  int64_t last = WindowOfByte(offset + size - 1);
  for (int64_t w = first; w <= last && w < window_count_; ++w) {
    if (quarantine_->flags[static_cast<size_t>(w)].load(
            std::memory_order_relaxed) == 2) {
      return true;
    }
  }
  return false;
}

bool CorpusView::TweetRowsQuarantined(size_t begin_row,
                                      size_t end_row) const {
  if (quarantine_ == nullptr ||
      quarantine_->quarantined.load(std::memory_order_acquire) == 0) {
    return false;  // The byte-identical fast path: nothing quarantined.
  }
  if (begin_row >= end_row || end_row > tweet_count_) return false;
  static constexpr uint64_t kWidths[6] = {8, 4, 8, 8, 8, 8};
  for (int i = 0; i < 6; ++i) {
    const SectionRef& sec = sec_tweet_fixed_[i];
    if (!sec.present) continue;
    if (ByteRangeQuarantined(sec.offset + begin_row * kWidths[i],
                             (end_row - begin_row) * kWidths[i])) {
      return true;
    }
  }
  if (sec_gps_bitmap_.present) {
    const uint64_t word_begin = begin_row / 64;
    const uint64_t word_end = (end_row + 63) / 64;
    if (ByteRangeQuarantined(sec_gps_bitmap_.offset + word_begin * 8,
                             (word_end - word_begin) * 8)) {
      return true;
    }
  }
  const uint64_t text_begin = tweet_text_offsets_[begin_row];
  const uint64_t text_end = tweet_text_offsets_[end_row];
  return text_end > text_begin &&
         ByteRangeQuarantined(sec_tweet_text_.offset + text_begin,
                              text_end - text_begin);
}

twitter::Tweet CorpusView::MaterializeTweet(size_t row) const {
  twitter::Tweet tweet;
  tweet.id = tweet_id(row);
  tweet.user = user_id(tweet_user_row(row));
  tweet.time = tweet_time(row);
  if (tweet_has_gps(row)) tweet.gps = tweet_gps(row);
  tweet.text = std::string(tweet_text(row));
  return tweet;
}

void CorpusView::ReleaseTweetRows(size_t begin_row, size_t end_row) const {
  if (begin_row >= end_row || end_row > tweet_count_) return;
  static constexpr uint64_t kWidths[6] = {8, 4, 8, 8, 8, 8};
  for (int i = 0; i < 6; ++i) {
    const SectionRef& sec = sec_tweet_fixed_[i];
    if (!sec.present) continue;
    file_.ReleaseRange(sec.offset + begin_row * kWidths[i],
                       (end_row - begin_row) * kWidths[i]);
  }
  uint64_t text_begin = tweet_text_offsets_[begin_row];
  uint64_t text_end = tweet_text_offsets_[end_row];
  file_.ReleaseRange(sec_tweet_text_.offset + text_begin,
                     text_end - text_begin);
}

bool IsArenaCorpusFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[8];
  size_t got = std::fread(magic, 1, 8, f);
  std::fclose(f);
  return got == 8 && std::string_view(magic, 8) == kCorpusMagic;
}

}  // namespace stir::io
