#ifndef STIR_IO_JOURNAL_H_
#define STIR_IO_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"

namespace stir::io {

/// Write-ahead journal file layout (DESIGN.md §9):
///
///   header (16 bytes): 8-byte caller magic | u32 format version |
///                      u32 CRC32C of the preceding 12 bytes
///   record frame:      u32 payload length | u32 CRC32C(payload) | payload
///
/// Appends are a single write() per record, so a crash can only produce a
/// partial frame at the tail — which replay truncates (valid prefix
/// wins). A bit-flipped record fails its CRC and is quarantined (skipped,
/// counted) without losing the frames after it.
inline constexpr uint32_t kJournalFormatVersion = 1;
inline constexpr size_t kJournalMagicSize = 8;
inline constexpr size_t kJournalHeaderSize = 16;
inline constexpr size_t kJournalFrameOverhead = 8;
/// Upper bound on one record's payload; a larger length field means the
/// frame header itself is corrupt, so replay treats the rest as torn.
inline constexpr uint32_t kJournalMaxRecordSize = 1u << 28;

/// Replay accounting. `valid_bytes` is the offset just past the last
/// structurally parseable frame — the append position for a resuming
/// writer (quarantined records stay in place; torn tail bytes beyond it
/// are discarded).
struct JournalReplayStats {
  int64_t records = 0;      ///< Frames delivered to the callback.
  int64_t quarantined = 0;  ///< Frames skipped on a CRC mismatch.
  int64_t truncated_bytes = 0;  ///< Torn-tail bytes past the valid prefix.
  int64_t valid_bytes = 0;
};

/// Replays every intact record of the journal at `path` through
/// `callback`, in append order. A missing or empty file — and a torn
/// header shorter than kJournalHeaderSize — replays as zero records
/// (OK): both are what a crash before the first append leaves behind.
/// A *complete* header with the wrong magic, a bad header CRC, or an
/// unsupported version is a hard InvalidArgument: the file is not (or no
/// longer recognizably) this journal, and truncating it would destroy
/// someone else's data. Callers that must never abort treat that error
/// as "journal unusable" and start fresh elsewhere.
StatusOr<JournalReplayStats> ReplayJournal(
    const std::string& path, std::string_view magic,
    const std::function<void(std::string_view payload)>& callback);

/// Appender for the journal format above. Thread-safe: concurrent
/// Append calls are serialized internally. With `fsync_each_append` every
/// record is fdatasync'd before Append returns (full write-ahead
/// durability); without it, crash loss is bounded by the OS flush window
/// but the valid-prefix recovery guarantee is unchanged.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Starts a fresh journal (truncates any existing file, writes the
  /// header). `magic` must be kJournalMagicSize bytes.
  Status OpenFresh(const std::string& path, std::string_view magic,
                   bool fsync_each_append = true);

  /// Resumes an existing journal: truncates it to `valid_bytes` (as
  /// reported by ReplayJournal — dropping any torn tail) and appends
  /// after it. With `valid_bytes` 0 this is OpenFresh.
  Status OpenForResume(const std::string& path, std::string_view magic,
                       int64_t valid_bytes, bool fsync_each_append = true);

  /// Appends one record frame (a single write syscall).
  Status Append(std::string_view payload);

  /// Flushes pending OS buffers to disk (no-op with fsync_each_append).
  Status Sync();

  /// Final fsync + close. The fsync result is propagated — a failed
  /// barrier here means earlier appends may not be durable, which the
  /// caller must hear about. Idempotent; the destructor calls it and
  /// discards the status (it has no one to report to).
  Status Close();
  bool is_open() const { return fd_ >= 0; }
  /// Records appended through this writer (not counting replayed ones).
  int64_t appended() const;

 private:
  Status OpenInternal(const std::string& path, std::string_view magic,
                      int64_t valid_bytes, bool fsync_each_append);

  mutable std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  bool fsync_each_append_ = true;
  int64_t appended_ = 0;
};

}  // namespace stir::io

#endif  // STIR_IO_JOURNAL_H_
