#ifndef STIR_IO_TRUTH_SIDECAR_H_
#define STIR_IO_TRUTH_SIDECAR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace stir::io {

/// ---------------------------------------------------------------------
/// Ground-truth sidecar ("STIRTRU1") — DESIGN.md §16.
///
/// DatasetGenerator::GenerateToCorpus streams a corpus to disk without
/// ever holding GroundTruth in memory, which used to mean the truth was
/// simply dropped: scoring an inference run against an on-disk corpus
/// required regenerating the whole dataset. The sidecar persists the
/// evaluation-relevant slice of the truth — one record per user — next
/// to the corpus, as a self-describing TSV with a magic header line.
///
/// Region identities are stored as (state, county) NAME pairs, not
/// geo::RegionId values, so a sidecar stays meaningful across AdminDb
/// instances and gazetteer revisions.
///
/// The sidecar is evaluation-only input. The inference pipeline itself
/// (src/infer) never opens it — enforced by a test that corrupts the
/// file and observes byte-identical predictions.
/// ---------------------------------------------------------------------

inline constexpr std::string_view kTruthSidecarMagic = "STIRTRU1";

/// Ground truth for one user, in portable (name-keyed) form.
struct TruthRecord {
  int64_t user = -1;
  /// twitter::ArchetypeToString value ("homebody", "commuter", ...).
  std::string archetype;
  /// Actual residence district.
  std::string home_state;
  std::string home_county;
  /// District the profile claims (== home except for relocated users).
  std::string claimed_state;
  std::string claimed_county;
};

/// The conventional sidecar location for a corpus: `<corpus>.truth`.
std::string TruthSidecarPath(const std::string& corpus_path);

/// Accumulates records and atomically writes the sidecar at Finish
/// (temp sibling + rename, like every durable artifact in the tree).
class TruthSidecarWriter {
 public:
  explicit TruthSidecarWriter(std::string path, bool fsync = true);

  void Add(const TruthRecord& record);

  /// Writes the file. The writer is spent afterwards.
  Status Finish();

  int64_t record_count() const { return records_; }

 private:
  std::string path_;
  bool fsync_;
  bool finished_ = false;
  int64_t records_ = 0;
  std::string body_;
};

/// Reads a sidecar back. InvalidArgument on a missing magic, a malformed
/// row, or an unparsable user id; IOError when the file cannot be read.
StatusOr<std::vector<TruthRecord>> ReadTruthSidecar(const std::string& path);

}  // namespace stir::io

#endif  // STIR_IO_TRUTH_SIDECAR_H_
