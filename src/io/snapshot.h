#ifndef STIR_IO_SNAPSHOT_H_
#define STIR_IO_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace stir::io {

/// Single-blob durable container: the format every atomic snapshot in the
/// tree shares (study checkpoints, the column store's v2 files).
///
///   bytes 0..7   caller-chosen 8-byte magic (file-type tag)
///   bytes 8..11  u32 container format version (kSnapshotFormatVersion)
///   bytes 12..15 u32 CRC32C of the payload
///   bytes 16..23 u64 payload size
///   bytes 24..   payload
///
/// Written via AtomicWriteFile, so a crash mid-save leaves the previous
/// snapshot (or nothing) — never a torn file. Read rejects bad magic,
/// version, size, and checksum with InvalidArgument; a missing file is
/// IOError (callers distinguish "no snapshot yet" from "corrupt").
inline constexpr uint32_t kSnapshotFormatVersion = 1;
inline constexpr size_t kSnapshotMagicSize = 8;
inline constexpr size_t kSnapshotHeaderSize = 24;

/// `magic` must be exactly kSnapshotMagicSize bytes.
Status WriteSnapshotFile(const std::string& path, std::string_view magic,
                         std::string_view payload, bool fsync = true);

/// Returns the verified payload.
StatusOr<std::string> ReadSnapshotFile(const std::string& path,
                                       std::string_view magic);

/// True when `contents` begins with the 8-byte snapshot magic `magic`
/// (format sniffing for readers that also accept legacy layouts).
bool SnapshotHasMagic(std::string_view contents, std::string_view magic);

}  // namespace stir::io

#endif  // STIR_IO_SNAPSHOT_H_
