#ifndef STIR_IO_FAULT_FS_H_
#define STIR_IO_FAULT_FS_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>

namespace stir::io {

/// Configuration for the filesystem fault layer (DESIGN.md §15). Every
/// stochastic knob draws from the shared common::FaultUniformAt stream,
/// keyed on a per-category operation counter — so a given (seed, knob,
/// op-index) triple always yields the same decision, in any thread
/// interleaving, and a crashed-and-resumed run that replays the same
/// operation sequence replays the same faults.
///
/// Fault classes and how the hardened callers must absorb them:
///
///   short write   write() lands a partial count      -> RECOVERED by the
///   EINTR         the syscall is "interrupted"          caller's retry loop
///
///   EIO           write()/fwrite()/fsync() fails     -> SURFACED as a typed
///   ENOSPC        the simulated disk fills up           Status, with no
///   fsync fail    durability barrier fails              partial on-disk
///                                                       state left behind
///
///   page flip     a released-and-refaulted corpus    -> QUARANTINED by the
///                 window reads back corrupt             window re-verify
///
/// The layer is process-wide (one simulated disk per process) and
/// default-off: with no knobs set every wrapper is a tail call into the
/// real syscall behind one relaxed atomic load.
struct FaultFsOptions {
  uint64_t seed = 0;
  /// Per-call probability that a write()/fwrite() fails with EIO.
  double write_error_rate = 0.0;
  /// Per-call probability that a write() lands only half its bytes.
  /// Harmless by design: every caller runs a write-all retry loop.
  double short_write_rate = 0.0;
  /// Per-call probability that fsync()/fdatasync() fails with EIO.
  double fsync_error_rate = 0.0;
  /// Per-call probability that read/write/open is interrupted (EINTR).
  double eintr_rate = 0.0;
  /// Simulated disk capacity: once this many payload bytes have been
  /// written through the layer, further writes fail with ENOSPC. < 0
  /// disables.
  int64_t enospc_after_bytes = -1;
  /// Per-window probability that a released corpus window reads back
  /// corrupt when re-verified (simulating a flipped page under the map).
  double page_flip_rate = 0.0;

  bool any_write_faults() const {
    return write_error_rate > 0.0 || short_write_rate > 0.0 ||
           fsync_error_rate > 0.0 || eintr_rate > 0.0 ||
           enospc_after_bytes >= 0;
  }
  bool enabled() const { return any_write_faults() || page_flip_rate > 0.0; }
};

/// Counters for the fault-accounting invariant the tests pin down:
///     injected == recovered + surfaced + quarantined
/// Classification happens at injection time, by construction: short
/// writes and EINTR are always completed by the mandatory retry loops
/// (recovered); EIO / ENOSPC / fsync failures abort the operation and
/// must come back as a Status (surfaced); page flips are absorbed by the
/// corpus window quarantine (quarantined).
struct FaultFsStats {
  int64_t injected = 0;
  int64_t recovered = 0;
  int64_t surfaced = 0;
  int64_t quarantined = 0;

  // Per-class breakdown (each also counted in `injected`).
  int64_t short_writes = 0;
  int64_t eintr = 0;
  int64_t write_errors = 0;
  int64_t fsync_failures = 0;
  int64_t enospc = 0;
  int64_t page_flips = 0;
};

/// Process-wide seeded fault layer at the I/O boundary. All durable-write
/// primitives under src/io route their syscalls through these wrappers;
/// the wrappers inject per FaultFsOptions and otherwise forward to the
/// real call. Thread-safe; decision streams are deterministic per
/// category because each category claims indices from its own counter.
class FaultFs {
 public:
  /// The process-wide instance (never destroyed).
  static FaultFs& Instance();

  /// Installs a new fault schedule and zeroes the counters. Passing a
  /// default-constructed options turns the layer off.
  void Configure(const FaultFsOptions& options);
  /// Shorthand for Configure({}).
  void Reset() { Configure(FaultFsOptions()); }

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  FaultFsOptions options() const;
  FaultFsStats stats() const;

  // --- syscall wrappers (inject, then forward) -------------------------

  /// ::write with injected EIO / ENOSPC / EINTR / short writes. Callers
  /// MUST run a write-all loop that retries EINTR and continues after a
  /// short count — that loop is what turns those two classes into
  /// "recovered".
  ssize_t Write(int fd, const void* buf, size_t count);

  /// ::fsync with injected failure.
  int Fsync(int fd);

  /// ::open with injected EINTR (retry-looped by callers) and, for
  /// write-intent opens, ENOSPC once the simulated disk is full.
  int Open(const char* path, int flags, mode_t mode);

  /// std::fwrite with injected EIO / ENOSPC (sets errno, returns a short
  /// item count, which stdio callers treat as a hard error). The stdio
  /// path gets no short-write/EINTR classes: a buffered writer cannot
  /// retry a partial fwrite without desyncing its CRC accounting.
  size_t Fwrite(const void* ptr, size_t size, size_t nitems, std::FILE* f);

  // --- reader-side hooks ----------------------------------------------

  /// Deterministic flip decision for corpus window re-verification:
  /// true means "window `window_index` of the file salted by `file_salt`
  /// reads back corrupt". Counts one injected page flip (quarantined) on
  /// each true decision for a window not yet flipped this configuration
  /// (the caller quarantines it exactly once).
  bool FlipWindow(uint64_t file_salt, int64_t window_index);

  /// Reader-side quarantine accounting for faults the layer did not
  /// inject itself (a real SIGBUS or a real CRC mismatch absorbed by a
  /// degraded path). Counts injected + quarantined so externally-induced
  /// corruption folds into the same invariant.
  void NoteExternalQuarantine(int64_t n);

 private:
  FaultFs() = default;

  mutable std::mutex mu_;
  FaultFsOptions options_;
  std::atomic<bool> enabled_{false};

  std::atomic<int64_t> write_ops_{0};
  std::atomic<int64_t> fsync_ops_{0};
  std::atomic<int64_t> open_ops_{0};
  std::atomic<int64_t> fwrite_ops_{0};
  std::atomic<int64_t> bytes_written_{0};

  std::atomic<int64_t> injected_{0};
  std::atomic<int64_t> recovered_{0};
  std::atomic<int64_t> surfaced_{0};
  std::atomic<int64_t> quarantined_{0};
  std::atomic<int64_t> short_writes_{0};
  std::atomic<int64_t> eintr_{0};
  std::atomic<int64_t> write_errors_{0};
  std::atomic<int64_t> fsync_failures_{0};
  std::atomic<int64_t> enospc_{0};
  std::atomic<int64_t> page_flips_{0};
};

}  // namespace stir::io

#endif  // STIR_IO_FAULT_FS_H_
