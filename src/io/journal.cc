#include "io/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32c.h"
#include "common/logging.h"
#include "io/atomic_file.h"
#include "io/fault_fs.h"
#include "io/serialize.h"

namespace stir::io {

namespace {

Status Errno(const char* op, const std::string& path) {
  return Status::IOError(std::string(op) + " failed for " + path + ": " +
                         std::strerror(errno));
}

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  FaultFs& fs = FaultFs::Instance();
  size_t written = 0;
  while (written < size) {
    ssize_t n = fs.Write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

int OpenRetryEintr(const char* path, int flags, mode_t mode) {
  FaultFs& fs = FaultFs::Instance();
  for (;;) {
    int fd = fs.Open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

std::string MakeHeader(std::string_view magic) {
  BinaryWriter w;
  w.U32(kJournalFormatVersion);
  std::string header(magic);
  header.append(w.bytes());
  BinaryWriter crc;
  crc.U32(Crc32c(header));
  header.append(crc.bytes());
  return header;
}

}  // namespace

StatusOr<JournalReplayStats> ReplayJournal(
    const std::string& path, std::string_view magic,
    const std::function<void(std::string_view payload)>& callback) {
  STIR_CHECK_EQ(magic.size(), kJournalMagicSize);
  JournalReplayStats stats;
  if (!PathExists(path)) return stats;
  STIR_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  if (contents.empty()) return stats;
  if (contents.size() < kJournalHeaderSize) {
    // Crash while writing the very first header: nothing to replay, the
    // partial header is a torn tail.
    stats.truncated_bytes = static_cast<int64_t>(contents.size());
    return stats;
  }
  std::string_view view(contents);
  if (view.substr(0, kJournalMagicSize) != magic) {
    return Status::InvalidArgument("bad journal magic: " + path);
  }
  BinaryReader header(view.substr(kJournalMagicSize,
                                  kJournalHeaderSize - kJournalMagicSize));
  uint32_t version = 0, header_crc = 0;
  if (!header.U32(&version) || !header.U32(&header_crc)) {
    return Status::InvalidArgument("unreadable journal header: " + path);
  }
  if (Crc32c(view.substr(0, kJournalHeaderSize - sizeof(uint32_t))) !=
      header_crc) {
    return Status::InvalidArgument("journal header checksum mismatch: " +
                                   path);
  }
  if (version != kJournalFormatVersion) {
    return Status::InvalidArgument("unsupported journal version: " + path);
  }

  size_t offset = kJournalHeaderSize;
  stats.valid_bytes = static_cast<int64_t>(offset);
  while (offset < view.size()) {
    std::string_view rest = view.substr(offset);
    if (rest.size() < kJournalFrameOverhead) break;  // torn frame header
    BinaryReader frame(rest.substr(0, kJournalFrameOverhead));
    uint32_t length = 0, crc = 0;
    frame.U32(&length);
    frame.U32(&crc);
    if (length > kJournalMaxRecordSize) break;  // frame header is garbage
    if (rest.size() - kJournalFrameOverhead < length) break;  // torn payload
    std::string_view payload = rest.substr(kJournalFrameOverhead, length);
    offset += kJournalFrameOverhead + length;
    stats.valid_bytes = static_cast<int64_t>(offset);
    if (Crc32c(payload) != crc) {
      ++stats.quarantined;
      continue;
    }
    ++stats.records;
    if (callback) callback(payload);
  }
  stats.truncated_bytes =
      static_cast<int64_t>(view.size()) - stats.valid_bytes;
  return stats;
}

JournalWriter::~JournalWriter() { (void)Close(); }

Status JournalWriter::OpenFresh(const std::string& path,
                                std::string_view magic,
                                bool fsync_each_append) {
  return OpenInternal(path, magic, 0, fsync_each_append);
}

Status JournalWriter::OpenForResume(const std::string& path,
                                    std::string_view magic,
                                    int64_t valid_bytes,
                                    bool fsync_each_append) {
  return OpenInternal(path, magic, valid_bytes, fsync_each_append);
}

Status JournalWriter::OpenInternal(const std::string& path,
                                   std::string_view magic,
                                   int64_t valid_bytes,
                                   bool fsync_each_append) {
  STIR_CHECK_EQ(magic.size(), kJournalMagicSize);
  std::lock_guard<std::mutex> lock(mu_);
  STIR_CHECK(fd_ < 0) << "JournalWriter already open";
  bool fresh = valid_bytes < static_cast<int64_t>(kJournalHeaderSize);
  int flags = O_WRONLY | O_CREAT;
  int fd = OpenRetryEintr(path.c_str(), flags, 0644);
  if (fd < 0) return Errno("open", path);
  // Drop the torn tail (or everything, for a fresh journal) so appends
  // land exactly at the end of the valid prefix.
  if (::ftruncate(fd, fresh ? 0 : valid_bytes) != 0) {
    ::close(fd);
    return Errno("ftruncate", path);
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return Errno("lseek", path);
  }
  if (fresh) {
    std::string header = MakeHeader(magic);
    Status s = WriteAll(fd, header.data(), header.size(), path);
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
  }
  if (fsync_each_append && FaultFs::Instance().Fsync(fd) != 0) {
    ::close(fd);
    return Errno("fsync", path);
  }
  fd_ = fd;
  path_ = path;
  fsync_each_append_ = fsync_each_append;
  return Status::OK();
}

Status JournalWriter::Append(std::string_view payload) {
  STIR_CHECK_LE(payload.size(), kJournalMaxRecordSize);
  BinaryWriter frame;
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32c(payload));
  std::string record(frame.bytes());
  record.append(payload.data(), payload.size());

  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("journal not open");
  // One write() per record: a crash tears at most the tail frame, which
  // replay then truncates.
  STIR_RETURN_IF_ERROR(WriteAll(fd_, record.data(), record.size(), path_));
  if (fsync_each_append_ && FaultFs::Instance().Fsync(fd_) != 0) {
    return Errno("fsync", path_);
  }
  ++appended_;
  return Status::OK();
}

Status JournalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("journal not open");
  if (FaultFs::Instance().Fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

Status JournalWriter::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::OK();
  // The final fsync is a durability barrier like any other: a failure
  // here means previously "appended" records may not have hit the disk,
  // and silently swallowing it would turn that data loss invisible.
  Status status;
  if (FaultFs::Instance().Fsync(fd_) != 0) status = Errno("fsync", path_);
  if (::close(fd_) != 0 && status.ok()) status = Errno("close", path_);
  fd_ = -1;
  return status;
}

int64_t JournalWriter::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

}  // namespace stir::io
