#ifndef STIR_IO_ATOMIC_FILE_H_
#define STIR_IO_ATOMIC_FILE_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace stir::io {

/// Atomically replaces `path` with `contents`: writes to a temporary
/// sibling (`path` + ".tmp"), fsyncs it, renames it over `path`, and
/// fsyncs the parent directory. A crash at any point leaves either the
/// previous file intact or the new one complete — never a torn mix.
/// `fsync` false skips the durability syncs (rename atomicity is kept;
/// use only where a post-crash rollback to the old file is acceptable).
Status AtomicWriteFile(const std::string& path, std::string_view contents,
                       bool fsync = true);

/// Reads the whole file. IOError when it cannot be opened.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Creates `path` (and missing parents). OK when it already exists.
Status EnsureDirectory(const std::string& path);

/// True when `path` names an existing file system entry.
bool PathExists(const std::string& path);

}  // namespace stir::io

#endif  // STIR_IO_ATOMIC_FILE_H_
