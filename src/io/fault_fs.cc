#include "io/fault_fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>

#include "common/fault.h"
#include "common/hash.h"

namespace stir::io {

namespace {

// Independent decision streams per fault class, decorrelated by salt
// (same scheme as common::FaultInjector's kErrorSalt/kLatencySalt).
constexpr uint64_t kWriteErrorSalt = 0x7C3B9D51E6A2F481ULL;
constexpr uint64_t kShortWriteSalt = 0x2E8D4A7F91C5B63DULL;
constexpr uint64_t kFsyncSalt = 0xB1F49E2C8D57A3E9ULL;
constexpr uint64_t kEintrSalt = 0x6A95C1D24F8E7B35ULL;
constexpr uint64_t kFlipSalt = 0xD48C2F7A1B96E5C3ULL;

}  // namespace

FaultFs& FaultFs::Instance() {
  static FaultFs* instance = new FaultFs();
  return *instance;
}

void FaultFs::Configure(const FaultFsOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  write_ops_.store(0, std::memory_order_relaxed);
  fsync_ops_.store(0, std::memory_order_relaxed);
  open_ops_.store(0, std::memory_order_relaxed);
  fwrite_ops_.store(0, std::memory_order_relaxed);
  bytes_written_.store(0, std::memory_order_relaxed);
  injected_.store(0, std::memory_order_relaxed);
  recovered_.store(0, std::memory_order_relaxed);
  surfaced_.store(0, std::memory_order_relaxed);
  quarantined_.store(0, std::memory_order_relaxed);
  short_writes_.store(0, std::memory_order_relaxed);
  eintr_.store(0, std::memory_order_relaxed);
  write_errors_.store(0, std::memory_order_relaxed);
  fsync_failures_.store(0, std::memory_order_relaxed);
  enospc_.store(0, std::memory_order_relaxed);
  page_flips_.store(0, std::memory_order_relaxed);
  // Published last: a wrapper that observes enabled_ true sees the new
  // schedule under mu_ in options(); one that observes false takes the
  // pass-through fast path, which is always safe.
  enabled_.store(options.enabled(), std::memory_order_release);
}

FaultFsOptions FaultFs::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

FaultFsStats FaultFs::stats() const {
  FaultFsStats stats;
  stats.injected = injected_.load(std::memory_order_relaxed);
  stats.recovered = recovered_.load(std::memory_order_relaxed);
  stats.surfaced = surfaced_.load(std::memory_order_relaxed);
  stats.quarantined = quarantined_.load(std::memory_order_relaxed);
  stats.short_writes = short_writes_.load(std::memory_order_relaxed);
  stats.eintr = eintr_.load(std::memory_order_relaxed);
  stats.write_errors = write_errors_.load(std::memory_order_relaxed);
  stats.fsync_failures = fsync_failures_.load(std::memory_order_relaxed);
  stats.enospc = enospc_.load(std::memory_order_relaxed);
  stats.page_flips = page_flips_.load(std::memory_order_relaxed);
  return stats;
}

ssize_t FaultFs::Write(int fd, const void* buf, size_t count) {
  if (!enabled_.load(std::memory_order_relaxed)) {
    return ::write(fd, buf, count);
  }
  FaultFsOptions opts = options();
  const int64_t index = write_ops_.fetch_add(1, std::memory_order_relaxed);
  if (opts.eintr_rate > 0.0 &&
      common::FaultUniformAt(opts.seed, kEintrSalt, index, 0) <
          opts.eintr_rate) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    eintr_.fetch_add(1, std::memory_order_relaxed);
    recovered_.fetch_add(1, std::memory_order_relaxed);
    errno = EINTR;
    return -1;
  }
  if (opts.enospc_after_bytes >= 0 &&
      bytes_written_.load(std::memory_order_relaxed) +
              static_cast<int64_t>(count) >
          opts.enospc_after_bytes) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    enospc_.fetch_add(1, std::memory_order_relaxed);
    surfaced_.fetch_add(1, std::memory_order_relaxed);
    errno = ENOSPC;
    return -1;
  }
  if (opts.write_error_rate > 0.0 &&
      common::FaultUniformAt(opts.seed, kWriteErrorSalt, index, 0) <
          opts.write_error_rate) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    write_errors_.fetch_add(1, std::memory_order_relaxed);
    surfaced_.fetch_add(1, std::memory_order_relaxed);
    errno = EIO;
    return -1;
  }
  size_t attempt = count;
  bool short_write = false;
  if (count > 1 && opts.short_write_rate > 0.0 &&
      common::FaultUniformAt(opts.seed, kShortWriteSalt, index, 0) <
          opts.short_write_rate) {
    attempt = count / 2;
    short_write = true;
  }
  ssize_t n = ::write(fd, buf, attempt);
  if (n >= 0) {
    bytes_written_.fetch_add(n, std::memory_order_relaxed);
    if (short_write) {
      // Counted only when the truncated write actually landed: the
      // caller's write-all loop now owes the remainder, which is the
      // recovery this class exists to exercise.
      injected_.fetch_add(1, std::memory_order_relaxed);
      short_writes_.fetch_add(1, std::memory_order_relaxed);
      recovered_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return n;
}

int FaultFs::Fsync(int fd) {
  if (!enabled_.load(std::memory_order_relaxed)) {
    return ::fsync(fd);
  }
  FaultFsOptions opts = options();
  const int64_t index = fsync_ops_.fetch_add(1, std::memory_order_relaxed);
  if (opts.fsync_error_rate > 0.0 &&
      common::FaultUniformAt(opts.seed, kFsyncSalt, index, 0) <
          opts.fsync_error_rate) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    fsync_failures_.fetch_add(1, std::memory_order_relaxed);
    surfaced_.fetch_add(1, std::memory_order_relaxed);
    errno = EIO;
    return -1;
  }
  return ::fsync(fd);
}

int FaultFs::Open(const char* path, int flags, mode_t mode) {
  if (!enabled_.load(std::memory_order_relaxed)) {
    return ::open(path, flags, mode);
  }
  FaultFsOptions opts = options();
  const int64_t index = open_ops_.fetch_add(1, std::memory_order_relaxed);
  if (opts.eintr_rate > 0.0 &&
      common::FaultUniformAt(opts.seed, kEintrSalt, ~index, 0) <
          opts.eintr_rate) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    eintr_.fetch_add(1, std::memory_order_relaxed);
    recovered_.fetch_add(1, std::memory_order_relaxed);
    errno = EINTR;
    return -1;
  }
  const bool write_intent = (flags & (O_WRONLY | O_RDWR | O_CREAT)) != 0;
  if (write_intent && opts.enospc_after_bytes >= 0 &&
      bytes_written_.load(std::memory_order_relaxed) >
          opts.enospc_after_bytes) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    enospc_.fetch_add(1, std::memory_order_relaxed);
    surfaced_.fetch_add(1, std::memory_order_relaxed);
    errno = ENOSPC;
    return -1;
  }
  return ::open(path, flags, mode);
}

size_t FaultFs::Fwrite(const void* ptr, size_t size, size_t nitems,
                       std::FILE* f) {
  if (!enabled_.load(std::memory_order_relaxed)) {
    return std::fwrite(ptr, size, nitems, f);
  }
  FaultFsOptions opts = options();
  const int64_t index = fwrite_ops_.fetch_add(1, std::memory_order_relaxed);
  const int64_t bytes = static_cast<int64_t>(size) *
                        static_cast<int64_t>(nitems);
  if (opts.enospc_after_bytes >= 0 &&
      bytes_written_.load(std::memory_order_relaxed) + bytes >
          opts.enospc_after_bytes) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    enospc_.fetch_add(1, std::memory_order_relaxed);
    surfaced_.fetch_add(1, std::memory_order_relaxed);
    errno = ENOSPC;
    return 0;
  }
  if (opts.write_error_rate > 0.0 &&
      common::FaultUniformAt(opts.seed, kWriteErrorSalt, ~index, 0) <
          opts.write_error_rate) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    write_errors_.fetch_add(1, std::memory_order_relaxed);
    surfaced_.fetch_add(1, std::memory_order_relaxed);
    errno = EIO;
    return 0;
  }
  size_t n = std::fwrite(ptr, size, nitems, f);
  bytes_written_.fetch_add(static_cast<int64_t>(n) *
                               static_cast<int64_t>(size),
                           std::memory_order_relaxed);
  return n;
}

bool FaultFs::FlipWindow(uint64_t file_salt, int64_t window_index) {
  if (!enabled_.load(std::memory_order_relaxed)) return false;
  FaultFsOptions opts = options();
  if (opts.page_flip_rate <= 0.0) return false;
  const uint64_t salt = HashCombine(kFlipSalt, file_salt);
  if (common::FaultUniformAt(opts.seed, salt, window_index, 0) >=
      opts.page_flip_rate) {
    return false;
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  page_flips_.fetch_add(1, std::memory_order_relaxed);
  quarantined_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FaultFs::NoteExternalQuarantine(int64_t n) {
  if (n <= 0) return;
  injected_.fetch_add(n, std::memory_order_relaxed);
  quarantined_.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace stir::io
