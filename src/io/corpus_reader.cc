#include "io/corpus_reader.h"

#include <cstdio>
#include <string_view>

#include "io/atomic_file.h"
#include "io/truth_sidecar.h"
#include "twitter/column_store.h"

namespace stir::io {

namespace {

constexpr std::string_view kColumnV1Magic = "STIRCOL1";
constexpr std::string_view kColumnV2Magic = "STIRCOL2";

/// The sidecar path when one exists next to `data_path`, else "".
std::string DetectTruthSidecar(const std::string& data_path) {
  std::string candidate = TruthSidecarPath(data_path);
  return PathExists(candidate) ? candidate : std::string();
}

}  // namespace

const char* CorpusFormatName(CorpusFormat format) {
  switch (format) {
    case CorpusFormat::kTsv:
      return "tsv";
    case CorpusFormat::kColumnV2:
      return "column-v2";
    case CorpusFormat::kArenaV3:
      return "arena-v3";
  }
  return "unknown";
}

StatusOr<CorpusFormat> CorpusReader::SniffFormat(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open for read: " + path);
  }
  char magic[8] = {0};
  size_t got = std::fread(magic, 1, sizeof(magic), f);
  std::fclose(f);
  std::string_view head(magic, got);
  if (head == kCorpusMagic) return CorpusFormat::kArenaV3;
  if (head == kColumnV1Magic || head == kColumnV2Magic) {
    return CorpusFormat::kColumnV2;
  }
  return CorpusFormat::kTsv;
}

StatusOr<CorpusReader> CorpusReader::Open(const CorpusSpec& spec) {
  CorpusReader reader;
  reader.tsv_options_ = spec.tsv;

  if (!spec.corpus_path.empty()) {
    if (!spec.users_path.empty() || !spec.tweets_path.empty()) {
      return Status::InvalidArgument(
          "pass either corpus_path or users_path+tweets_path, not both");
    }
    STIR_ASSIGN_OR_RETURN(CorpusFormat format,
                          SniffFormat(spec.corpus_path));
    if (format != CorpusFormat::kArenaV3) {
      return Status::InvalidArgument(
          spec.corpus_path + " is " + CorpusFormatName(format) +
          ", not a self-contained arena corpus; pass it as users/tweets");
    }
    STIR_ASSIGN_OR_RETURN(CorpusView view,
                          CorpusView::Open(spec.corpus_path, spec.view));
    reader.format_ = CorpusFormat::kArenaV3;
    reader.view_ = std::move(view);
    reader.truth_path_ = DetectTruthSidecar(spec.corpus_path);
    return reader;
  }

  if (spec.users_path.empty() || spec.tweets_path.empty()) {
    return Status::InvalidArgument(
        "CorpusSpec needs corpus_path or users_path+tweets_path");
  }
  reader.truth_path_ = DetectTruthSidecar(spec.tweets_path);
  STIR_ASSIGN_OR_RETURN(CorpusFormat format, SniffFormat(spec.tweets_path));
  switch (format) {
    case CorpusFormat::kArenaV3:
      return Status::InvalidArgument(
          spec.tweets_path +
          " is a self-contained arena corpus; pass it as corpus_path "
          "(it already carries the user table)");
    case CorpusFormat::kTsv: {
      STIR_ASSIGN_OR_RETURN(
          twitter::Dataset dataset,
          twitter::Dataset::LoadTsv(spec.users_path, spec.tweets_path,
                                    spec.tsv, &reader.tsv_stats_));
      reader.format_ = CorpusFormat::kTsv;
      reader.dataset_ = std::move(dataset);
      return reader;
    }
    case CorpusFormat::kColumnV2: {
      STIR_ASSIGN_OR_RETURN(
          twitter::Dataset dataset,
          twitter::Dataset::LoadUsersTsv(spec.users_path, spec.tsv,
                                         &reader.tsv_stats_));
      STIR_ASSIGN_OR_RETURN(twitter::TweetColumnStore store,
                            twitter::TweetColumnStore::Load(spec.tweets_path));
      for (size_t i = 0; i < store.size(); ++i) {
        twitter::TweetView row = store.Get(i);
        twitter::Tweet tweet;
        tweet.id = row.id;
        tweet.user = row.user;
        tweet.time = row.time;
        tweet.gps = row.gps;
        tweet.text = std::string(row.text);
        if (dataset.FindUser(tweet.user) == nullptr) {
          if (spec.tsv.strict) {
            return Status::InvalidArgument(
                "column row " + std::to_string(i) + ": tweet " +
                std::to_string(tweet.id) + " from unknown user " +
                std::to_string(tweet.user));
          }
          ++reader.tsv_stats_.quarantined_tweet_rows;
          continue;
        }
        dataset.AddTweet(std::move(tweet));
      }
      reader.format_ = CorpusFormat::kColumnV2;
      reader.dataset_ = std::move(dataset);
      return reader;
    }
  }
  return Status::Internal("unreachable corpus format");
}

StatusOr<const twitter::Dataset*> CorpusReader::Materialize() {
  if (!dataset_) {
    if (!view_) return Status::FailedPrecondition("reader holds no corpus");
    STIR_ASSIGN_OR_RETURN(twitter::Dataset dataset,
                          MaterializeDataset(*view_));
    dataset_ = std::move(dataset);
  }
  return &*dataset_;
}

StatusOr<twitter::Dataset> CorpusReader::TakeDataset() {
  STIR_RETURN_IF_ERROR(Materialize().status());
  twitter::Dataset out = std::move(*dataset_);
  dataset_.reset();
  return out;
}

StatusOr<twitter::Dataset> MaterializeDataset(const CorpusView& view) {
  twitter::Dataset dataset;
  for (size_t row = 0; row < view.user_count(); ++row) {
    twitter::User user;
    user.id = view.user_id(row);
    user.handle = std::string(view.user_handle(row));
    user.profile_location = std::string(view.user_profile_location(row));
    user.total_tweets = view.user_total_tweets(row);
    if (dataset.FindUser(user.id) != nullptr) {
      return Status::InvalidArgument("corpus " + view.path() +
                                     ": duplicate user id " +
                                     std::to_string(user.id));
    }
    dataset.AddUser(std::move(user));
  }
  for (size_t row = 0; row < view.tweet_count(); ++row) {
    dataset.AddTweet(view.MaterializeTweet(row));
  }
  return dataset;
}

}  // namespace stir::io
