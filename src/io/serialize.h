#ifndef STIR_IO_SERIALIZE_H_
#define STIR_IO_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace stir::io {

/// Append-only little-endian byte writer for the durable file formats
/// (journal records, checkpoint payloads). Fixed-width fields only —
/// the reader must consume the exact sequence the writer produced.
class BinaryWriter {
 public:
  void U32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void U64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void I32(int32_t v) { PutRaw(&v, sizeof(v)); }
  void I64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void Bool(bool v) { U32(v ? 1 : 0); }
  void Double(double v) { PutRaw(&v, sizeof(v)); }
  /// Length-prefixed (u64) byte string.
  void String(std::string_view v) {
    U64(v.size());
    out_.append(v.data(), v.size());
  }

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void PutRaw(const void* p, size_t n) {
    out_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string out_;
};

/// Bounds-checked reader over a BinaryWriter-produced byte string. Every
/// getter returns false (leaving the cursor unspecified) on underrun, so
/// deserializers can funnel all failures into one corrupt-payload error.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  bool U32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool I32(int32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool I64(int64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool Bool(bool* v) {
    uint32_t raw = 0;
    if (!U32(&raw) || raw > 1) return false;
    *v = raw != 0;
    return true;
  }
  bool Double(double* v) { return GetRaw(v, sizeof(*v)); }
  bool String(std::string* v) {
    uint64_t size = 0;
    if (!U64(&size) || size > data_.size() - pos_) return false;
    v->assign(data_.data() + pos_, static_cast<size_t>(size));
    pos_ += static_cast<size_t>(size);
    return true;
  }

  /// True when every byte has been consumed (trailing garbage means a
  /// corrupt or mismatched payload).
  bool Done() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool GetRaw(void* p, size_t n) {
    if (n > data_.size() - pos_) return false;
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace stir::io

#endif  // STIR_IO_SERIALIZE_H_
