#ifndef STIR_IO_MAPPED_FILE_H_
#define STIR_IO_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace stir::io {

/// Read-only memory-mapped file (RAII). The backbone of the zero-copy v3
/// corpus reader (DESIGN.md §14): open once, hand out pointers into the
/// mapping, and let the kernel page data in on demand so the resident set
/// tracks the touched working set, not the file size.
///
/// Process-wide accounting: every live mapping contributes to
/// MappedBytesNow()/MappedBytesPeak(), which the bench harness reports
/// next to peak RSS to prove out-of-core behavior (RSS ≪ bytes mapped).
class MappedFile {
 public:
  /// Maps `path` read-only. IOError when the file cannot be opened or
  /// mapped. Empty files map to size()==0 with data()==nullptr.
  static StatusOr<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// madvise hints; best-effort (errors ignored — hints only).
  void AdviseSequential() const;
  void AdviseRandom() const;

  /// Drops the resident pages covering [offset, offset+length) back to
  /// the kernel (madvise MADV_DONTNEED; the mapping stays valid and
  /// re-faults from the file on next touch). Out-of-core shard scans call
  /// this after finishing a shard so peak RSS stays bounded by the shard
  /// working set. Offsets are rounded inward to page boundaries;
  /// best-effort.
  void ReleaseRange(size_t offset, size_t length) const;

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
  std::string path_;
};

/// Bytes currently mapped / high-water mark across all live MappedFiles
/// in this process (bench reporting; see WriteBenchJson).
int64_t MappedBytesNow();
int64_t MappedBytesPeak();

}  // namespace stir::io

#endif  // STIR_IO_MAPPED_FILE_H_
