#ifndef STIR_IO_CORPUS_READER_H_
#define STIR_IO_CORPUS_READER_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "io/corpus.h"
#include "twitter/dataset.h"

namespace stir::io {

/// The three corpus encodings the tree has accumulated, oldest first.
enum class CorpusFormat {
  kTsv,       // users TSV + tweets TSV (the original interchange format)
  kColumnV2,  // users TSV + STIRCOL1/2 tweet column snapshot
  kArenaV3,   // self-contained STIRARN3 arena corpus (users + tweets)
};

const char* CorpusFormatName(CorpusFormat format);

/// What to open. Either `corpus_path` names a self-contained v3 file, or
/// `users_path` + `tweets_path` name the legacy pair — where the tweets
/// file may be TSV or a binary column snapshot; the reader sniffs file
/// contents (magic bytes, never extensions) and picks the decoder.
struct CorpusSpec {
  std::string corpus_path;
  std::string users_path;
  std::string tweets_path;
  /// Malformed-row handling for the TSV decoders (strict by default).
  twitter::Dataset::TsvLoadOptions tsv;
  /// v3 open options (CRC verification on by default).
  CorpusViewOptions view;
};

/// One façade over every corpus load path (DESIGN.md §14). Legacy
/// formats are decoded into a row-oriented twitter::Dataset at Open; a
/// v3 corpus is opened as a zero-copy CorpusView and only materialized
/// into a Dataset on demand (the columnar study path never needs it).
///
///   STIR_ASSIGN_OR_RETURN(auto reader, CorpusReader::Open(spec));
///   if (reader.has_view()) RunColumnar(reader.view());
///   else                   RunBatch(*reader.dataset());
class CorpusReader {
 public:
  /// Sniffs the on-disk format of `path` from its leading bytes.
  /// IOError when unreadable; a file with no known magic is TSV.
  static StatusOr<CorpusFormat> SniffFormat(const std::string& path);

  static StatusOr<CorpusReader> Open(const CorpusSpec& spec);

  CorpusFormat format() const { return format_; }

  /// True when a zero-copy view is available (v3 corpora).
  bool has_view() const { return view_.has_value(); }
  const CorpusView& view() const { return *view_; }

  /// The materialized dataset, or nullptr for a v3 corpus that has not
  /// been materialized yet.
  const twitter::Dataset* dataset() const {
    return dataset_ ? &*dataset_ : nullptr;
  }

  /// Materializes (for v3) and returns the row-oriented dataset.
  StatusOr<const twitter::Dataset*> Materialize();

  /// Moves the dataset out (single-use CLI loads); materializes first
  /// when needed.
  StatusOr<twitter::Dataset> TakeDataset();

  /// Quarantine counts from the TSV decoders (zero for v3).
  const twitter::Dataset::TsvLoadStats& tsv_stats() const {
    return tsv_stats_;
  }

  /// True when a ground-truth sidecar (truth_sidecar.h) sits next to the
  /// opened corpus — `<corpus>.truth`, or `<tweets>.truth` for a legacy
  /// pair. Surfaced so evaluation tooling (`stir_cli infer`) can score
  /// predictions without regenerating; the serving and inference layers
  /// never read it.
  bool has_truth() const { return !truth_path_.empty(); }
  const std::string& truth_path() const { return truth_path_; }

 private:
  CorpusFormat format_ = CorpusFormat::kTsv;
  std::optional<CorpusView> view_;
  std::optional<twitter::Dataset> dataset_;
  twitter::Dataset::TsvLoadOptions tsv_options_;
  twitter::Dataset::TsvLoadStats tsv_stats_;
  std::string truth_path_;  ///< Empty when no sidecar was found.
};

/// Decodes a v3 view into a row-oriented Dataset (field-identical to the
/// corpus the writer ingested, in the same order). InvalidArgument on
/// referential corruption a crafted file could smuggle past structural
/// checks (duplicate user ids).
StatusOr<twitter::Dataset> MaterializeDataset(const CorpusView& view);

}  // namespace stir::io

#endif  // STIR_IO_CORPUS_READER_H_
