#ifndef STIR_IO_CORPUS_H_
#define STIR_IO_CORPUS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "geo/latlng.h"
#include "io/mapped_file.h"
#include "io/string_arena.h"
#include "twitter/model.h"

namespace stir::twitter {
class Dataset;
}  // namespace stir::twitter

namespace stir::io {

/// ---------------------------------------------------------------------
/// v3 corpus snapshot ("arena corpus", magic STIRARN3) — DESIGN.md §14.
///
/// A self-contained, mmap-able, CRC-guarded columnar corpus: the user
/// table, the tweet table (struct-of-arrays), a CSR user→tweet index,
/// and one string-interned arena holding every corpus string exactly
/// once. Unlike the v2 column store (tweets only, paired with a users
/// TSV), a v3 file is the whole corpus; unlike both predecessors it is
/// read zero-copy through CorpusView — no parse, no per-string
/// allocation, resident set proportional to the touched working set.
///
/// File layout (all integers little-endian, all sections 8-byte
/// aligned so mapped columns can be read through typed pointers):
///
///   bytes  0..7   magic "STIRARN3"
///   bytes  8..11  u32 format version (kCorpusFormatVersion)
///   bytes 12..15  u32 CRC32C of bytes [64, file_size)
///   bytes 16..23  u64 file_size
///   bytes 24..31  u64 user_count
///   bytes 32..39  u64 tweet_count        (materialized tweet rows)
///   bytes 40..47  u64 gps_tweet_count
///   bytes 48..55  u64 total_tweet_count  (sum of user total_tweets)
///   bytes 56..59  u32 flags (kCorpusFlagGrouped, ...)
///   bytes 60..63  u32 section_count
///   bytes 64..    section table: section_count × {u32 id, u32 pad,
///                 u64 offset, u64 size}, then the section payloads.
///
/// The CRC covers the section table and every payload byte (including
/// alignment padding), so a torn tail, a flipped bit, or a truncated
/// arena all fail verification at open.
/// ---------------------------------------------------------------------

inline constexpr std::string_view kCorpusMagic = "STIRARN3";
inline constexpr uint32_t kCorpusFormatVersion = 1;
inline constexpr size_t kCorpusHeaderSize = 64;

/// Granularity of the windowed CRC verify at open and of the runtime
/// window quarantine: the payload [kCorpusHeaderSize, file_size) is
/// checked (and, on storage faults, quarantined) in chunks of this many
/// bytes.
inline constexpr size_t kCorpusVerifyWindow = 16u << 20;

/// Tweets were appended grouped by user, in user-row order: the CSR row
/// array is the identity permutation and is omitted from the file — a
/// user's tweet rows are the contiguous range [begin, end).
inline constexpr uint32_t kCorpusFlagGrouped = 1u << 0;

/// Section ids. Fixed-width sections carry exactly count × element-size
/// bytes; readers reject size mismatches.
enum class CorpusSection : uint32_t {
  kUserIds = 1,          // i64[users]
  kUserHandleRefs = 2,   // u32[users], arena ids
  kUserProfileRefs = 3,  // u32[users], arena ids
  kUserTotalTweets = 4,  // i64[users]
  kUserTweetBegin = 5,   // u64[users+1], CSR offsets
  kUserTweetRows = 6,    // u32[tweets]; absent when kCorpusFlagGrouped
  kTweetIds = 7,         // i64[tweets]
  kTweetUserRows = 8,    // u32[tweets]
  kTweetTimes = 9,       // i64[tweets]
  kTweetLats = 10,       // f64[tweets]
  kTweetLngs = 11,       // f64[tweets]
  kTweetGpsBitmap = 12,  // u64[ceil(tweets/64)]
  kTweetTextOffsets = 13,  // u64[tweets+1]
  kTweetTextBytes = 14,    // bytes
  kArenaOffsets = 15,      // u64[strings+1]
  kArenaBytes = 16,        // bytes
};

struct CorpusWriterOptions {
  /// Tweet columns are buffered in memory and spilled to temporary
  /// sibling files every this many rows, so writer memory stays bounded
  /// by the user table + one buffer regardless of corpus size. Must be
  /// a multiple of 64 (the GPS bitmap spills whole words).
  size_t tweet_spill_rows = 1u << 19;
  bool fsync = true;
};

struct CorpusWriteStats {
  int64_t users = 0;
  int64_t tweets = 0;           // materialized rows
  int64_t gps_tweets = 0;
  int64_t total_tweets = 0;     // sum of user total_tweets
  int64_t arena_strings = 0;
  int64_t file_bytes = 0;
  bool grouped = false;
};

/// Streaming v3 writer: AddUser/AddTweet in ingest order, then Finish()
/// assembles the snapshot atomically (temp sibling + rename, like every
/// durable artifact in the tree). Tweets may arrive in any order, but
/// when they arrive grouped by user in user order — the generator's
/// natural order — the writer detects it, omits the CSR permutation,
/// and finalization streams the spill files straight into the snapshot
/// without ever holding a tweet column in memory.
class CorpusWriter {
 public:
  explicit CorpusWriter(std::string path, CorpusWriterOptions options = {});
  ~CorpusWriter();
  CorpusWriter(const CorpusWriter&) = delete;
  CorpusWriter& operator=(const CorpusWriter&) = delete;

  /// Users must precede their tweets; duplicate ids rejected.
  Status AddUser(const twitter::User& user);
  /// The tweet's user must have been added.
  Status AddTweet(const twitter::Tweet& tweet);

  /// Writes the snapshot. The writer is spent afterwards.
  StatusOr<CorpusWriteStats> Finish();

  /// One-shot conversion of an in-memory dataset (insertion order is
  /// preserved, so a materialized round-trip is field-identical).
  static StatusOr<CorpusWriteStats> WriteDataset(
      const twitter::Dataset& dataset, const std::string& path,
      CorpusWriterOptions options = {});

  int64_t user_count() const { return static_cast<int64_t>(user_ids_.size()); }
  int64_t tweet_count() const { return tweet_rows_; }

 private:
  struct SpillColumn {
    std::string path;
    std::FILE* file = nullptr;
    uint64_t bytes = 0;
  };

  Status Spill(SpillColumn* column, const void* data, size_t bytes);
  Status FlushTweetBuffers(bool final_flush);
  void CloseAndRemoveSpills();

  std::string path_;
  CorpusWriterOptions options_;
  Status deferred_error_;
  bool finished_ = false;

  // User columns (held in memory; users are the small axis).
  std::vector<int64_t> user_ids_;
  std::vector<uint32_t> user_handle_refs_;
  std::vector<uint32_t> user_profile_refs_;
  std::vector<int64_t> user_total_tweets_;
  std::vector<uint32_t> user_tweet_counts_;
  std::unordered_map<twitter::UserId, uint32_t> user_rows_;
  StringArena arena_;

  // Tweet column buffers (spilled every tweet_spill_rows rows).
  std::vector<int64_t> buf_ids_;
  std::vector<uint32_t> buf_user_rows_;
  std::vector<int64_t> buf_times_;
  std::vector<double> buf_lats_;
  std::vector<double> buf_lngs_;
  std::vector<uint64_t> buf_gps_bits_;
  std::vector<uint64_t> buf_text_offsets_;  // absolute
  std::string buf_text_;
  SpillColumn spill_ids_, spill_user_rows_, spill_times_, spill_lats_,
      spill_lngs_, spill_gps_bits_, spill_text_offsets_, spill_text_;

  int64_t tweet_rows_ = 0;
  int64_t gps_tweets_ = 0;
  uint64_t text_bytes_ = 0;
  int64_t last_user_row_ = -1;
  bool grouped_ = true;
};

struct CorpusViewOptions {
  /// Verify the payload CRC at open (one sequential pass over the file).
  /// Always on for untrusted input; benches may disable it to measure
  /// pure open cost.
  bool verify_crc = true;
};

/// Zero-copy reader over a mapped v3 corpus. All accessors are
/// bounds-unchecked row reads into the mapping — the structural
/// invariants (section sizes, offset monotonicity, CSR consistency) are
/// validated once at Open, which rejects torn, truncated, or
/// bit-flipped files with InvalidArgument (missing file: IOError).
class CorpusView {
 public:
  static StatusOr<CorpusView> Open(const std::string& path,
                                   CorpusViewOptions options = {});

  CorpusView() = default;
  CorpusView(CorpusView&&) = default;
  CorpusView& operator=(CorpusView&&) = default;

  size_t user_count() const { return user_count_; }
  size_t tweet_count() const { return tweet_count_; }
  int64_t gps_tweet_count() const { return gps_count_; }
  int64_t total_tweet_count() const { return total_tweet_count_; }
  bool grouped() const { return (flags_ & kCorpusFlagGrouped) != 0; }
  /// Whole-file mapping size (the bench "bytes mapped" numerator).
  int64_t bytes_mapped() const { return static_cast<int64_t>(file_.size()); }
  const std::string& path() const { return file_.path(); }

  // --- user columns (row = append order) ---
  twitter::UserId user_id(size_t row) const { return user_ids_[row]; }
  std::string_view user_handle(size_t row) const {
    return arena_string(user_handle_refs_[row]);
  }
  std::string_view user_profile_location(size_t row) const {
    return arena_string(user_profile_refs_[row]);
  }
  uint32_t user_profile_ref(size_t row) const {
    return user_profile_refs_[row];
  }
  int64_t user_total_tweets(size_t row) const {
    return user_total_tweets_[row];
  }

  // --- CSR user→tweet index ---
  uint64_t user_tweet_begin(size_t row) const {
    return user_tweet_begin_[row];
  }
  uint64_t user_tweet_end(size_t row) const {
    return user_tweet_begin_[row + 1];
  }
  /// Tweet row at CSR position `pos` (pos in [begin, end)).
  size_t user_tweet_row(uint64_t pos) const {
    return user_tweet_rows_ == nullptr ? static_cast<size_t>(pos)
                                       : user_tweet_rows_[pos];
  }

  // --- tweet columns (row = append order) ---
  twitter::TweetId tweet_id(size_t row) const { return tweet_ids_[row]; }
  uint32_t tweet_user_row(size_t row) const { return tweet_user_rows_[row]; }
  SimTime tweet_time(size_t row) const { return tweet_times_[row]; }
  bool tweet_has_gps(size_t row) const {
    return (tweet_gps_bitmap_[row >> 6] >> (row & 63)) & 1;
  }
  geo::LatLng tweet_gps(size_t row) const {
    return geo::LatLng{tweet_lats_[row], tweet_lngs_[row]};
  }
  std::string_view tweet_text(size_t row) const {
    return std::string_view(tweet_text_bytes_ + tweet_text_offsets_[row],
                            tweet_text_offsets_[row + 1] -
                                tweet_text_offsets_[row]);
  }

  // --- arena ---
  size_t arena_size() const { return arena_count_; }
  std::string_view arena_string(uint32_t id) const {
    return std::string_view(arena_bytes_ + arena_offsets_[id],
                            arena_offsets_[id + 1] - arena_offsets_[id]);
  }

  /// Materializes one tweet (tests / ad-hoc tooling; the hot paths read
  /// columns directly).
  twitter::Tweet MaterializeTweet(size_t row) const;

  /// Returns the resident pages of the tweet columns covering rows
  /// [begin_row, end_row) to the kernel (best-effort madvise). Shard
  /// scans call this after finishing a shard so peak RSS stays bounded
  /// by the shard working set even when the corpus exceeds RAM.
  void ReleaseTweetRows(size_t begin_row, size_t end_row) const;

  // --- storage-fault quarantine (DESIGN.md §15) ------------------------
  //
  // The verify pass at Open records the running CRC at every
  // kCorpusVerifyWindow boundary. Released windows are re-faulted from
  // disk on the next touch, and a disk gone bad in the meantime hands
  // back a flipped page (bad bytes) or a lost one (SIGBUS). Reverify*
  // re-checks a window against the recorded boundary CRCs inside a
  // SIGBUS guard — and consults the io::FaultFs page-flip schedule — and
  // quarantines windows that fail, stickily. Readers that honor the
  // quarantine (the refinement funnel, degraded serve) skip quarantined
  // rows instead of trusting or crashing on them.

  /// Number of verify windows over the payload (0 when opened with
  /// verify_crc off, which also disables re-verification).
  int64_t window_count() const { return window_count_; }

  /// Re-verifies window `w`; returns false (and quarantines it) when the
  /// window re-reads corrupt, SIGBUSes, or an injected page flip is
  /// scheduled for it. Sticky: a quarantined window stays quarantined.
  /// Thread-safe.
  bool ReverifyWindow(int64_t w) const;

  /// Re-verifies every window; returns the total now quarantined.
  int64_t ReverifyAllWindows() const;

  bool WindowQuarantined(int64_t w) const;
  int64_t quarantined_windows() const;

  /// True when any byte of any tweet column covering rows
  /// [begin_row, end_row) lies in a quarantined window. O(1) when
  /// nothing is quarantined (the byte-identical fast path).
  bool TweetRowsQuarantined(size_t begin_row, size_t end_row) const;

 private:
  struct SectionRef {
    uint64_t offset = 0;
    uint64_t size = 0;
    bool present = false;
  };

  /// Heap-held (movability) shared quarantine state. Flags are atomic so
  /// shard readers can consult the quarantine lock-free while a
  /// re-verification marks windows.
  struct QuarantineState {
    std::mutex mu;  ///< Serializes re-verification passes.
    /// Per window: 0 = not quarantined, 2 = quarantined (sticky).
    std::unique_ptr<std::atomic<uint8_t>[]> flags;
    std::atomic<int64_t> quarantined{0};
  };

  int64_t WindowOfByte(uint64_t file_offset) const {
    return static_cast<int64_t>((file_offset - kCorpusHeaderSize) /
                                kCorpusVerifyWindow);
  }
  bool ByteRangeQuarantined(uint64_t offset, uint64_t size) const;

  MappedFile file_;
  size_t user_count_ = 0;
  size_t tweet_count_ = 0;
  int64_t gps_count_ = 0;
  int64_t total_tweet_count_ = 0;
  uint32_t flags_ = 0;
  size_t arena_count_ = 0;

  const int64_t* user_ids_ = nullptr;
  const uint32_t* user_handle_refs_ = nullptr;
  const uint32_t* user_profile_refs_ = nullptr;
  const int64_t* user_total_tweets_ = nullptr;
  const uint64_t* user_tweet_begin_ = nullptr;
  const uint32_t* user_tweet_rows_ = nullptr;  // null when grouped
  const int64_t* tweet_ids_ = nullptr;
  const uint32_t* tweet_user_rows_ = nullptr;
  const int64_t* tweet_times_ = nullptr;
  const double* tweet_lats_ = nullptr;
  const double* tweet_lngs_ = nullptr;
  const uint64_t* tweet_gps_bitmap_ = nullptr;
  const uint64_t* tweet_text_offsets_ = nullptr;
  const char* tweet_text_bytes_ = nullptr;
  const uint64_t* arena_offsets_ = nullptr;
  const char* arena_bytes_ = nullptr;

  // Byte extents of the per-tweet sections (for ReleaseTweetRows).
  SectionRef sec_tweet_fixed_[6];  // ids, user rows, times, lats, lngs, text offsets
  SectionRef sec_tweet_text_;
  SectionRef sec_gps_bitmap_;

  // Window re-verification state: running payload CRC at each window
  // boundary (window_count_ + 1 entries; window w is intact iff
  // Crc32cExtend(boundary[w], window bytes) == boundary[w + 1]).
  int64_t window_count_ = 0;
  std::vector<uint32_t> window_crc_boundaries_;
  uint64_t file_salt_ = 0;  ///< Keys the FaultFs page-flip schedule.
  std::shared_ptr<QuarantineState> quarantine_;
};

/// True when `path` begins with the v3 corpus magic.
bool IsArenaCorpusFile(const std::string& path);

}  // namespace stir::io

#endif  // STIR_IO_CORPUS_H_
