#include "io/truth_sidecar.h"

#include <cstdlib>

#include "common/string_util.h"
#include "io/atomic_file.h"

namespace stir::io {

namespace {

/// Header row after the magic line; checked on read so a column
/// reordering in a future revision fails loudly instead of misparsing.
constexpr std::string_view kHeader =
    "user\tarchetype\thome_state\thome_county\tclaimed_state\tclaimed_county";

std::vector<std::string_view> SplitTabs(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    size_t pos = line.find('\t', start);
    if (pos == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

std::string TruthSidecarPath(const std::string& corpus_path) {
  return corpus_path + ".truth";
}

TruthSidecarWriter::TruthSidecarWriter(std::string path, bool fsync)
    : path_(std::move(path)), fsync_(fsync) {
  body_.append(kTruthSidecarMagic);
  body_ += '\n';
  body_.append(kHeader);
  body_ += '\n';
}

void TruthSidecarWriter::Add(const TruthRecord& record) {
  body_ += StrFormat("%lld\t", static_cast<long long>(record.user));
  body_ += record.archetype;
  body_ += '\t';
  body_ += record.home_state;
  body_ += '\t';
  body_ += record.home_county;
  body_ += '\t';
  body_ += record.claimed_state;
  body_ += '\t';
  body_ += record.claimed_county;
  body_ += '\n';
  ++records_;
}

Status TruthSidecarWriter::Finish() {
  if (finished_) {
    return Status::Internal("truth sidecar writer already finished");
  }
  finished_ = true;
  Status status = AtomicWriteFile(path_, body_, fsync_);
  body_.clear();
  return status;
}

StatusOr<std::vector<TruthRecord>> ReadTruthSidecar(const std::string& path) {
  STIR_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  std::vector<TruthRecord> records;
  size_t start = 0;
  int64_t line_no = 0;
  while (start < contents.size()) {
    size_t pos = contents.find('\n', start);
    if (pos == std::string::npos) pos = contents.size();
    std::string_view line(contents.data() + start, pos - start);
    start = pos + 1;
    ++line_no;
    if (line_no == 1) {
      if (line != kTruthSidecarMagic) {
        return Status::InvalidArgument(
            StrFormat("%s: not a truth sidecar (bad magic)", path.c_str()));
      }
      continue;
    }
    if (line_no == 2) {
      if (line != kHeader) {
        return Status::InvalidArgument(
            StrFormat("%s: unrecognized truth sidecar header", path.c_str()));
      }
      continue;
    }
    if (line.empty()) continue;  // Trailing newline.
    std::vector<std::string_view> fields = SplitTabs(line);
    if (fields.size() != 6) {
      return Status::InvalidArgument(
          StrFormat("%s:%lld: expected 6 tab-separated fields, got %zu",
                    path.c_str(), static_cast<long long>(line_no),
                    fields.size()));
    }
    TruthRecord record;
    std::string user_text(fields[0]);
    char* end = nullptr;
    record.user = std::strtoll(user_text.c_str(), &end, 10);
    if (end == user_text.c_str() || *end != '\0') {
      return Status::InvalidArgument(
          StrFormat("%s:%lld: bad user id '%s'", path.c_str(),
                    static_cast<long long>(line_no), user_text.c_str()));
    }
    record.archetype = std::string(fields[1]);
    record.home_state = std::string(fields[2]);
    record.home_county = std::string(fields[3]);
    record.claimed_state = std::string(fields[4]);
    record.claimed_county = std::string(fields[5]);
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace stir::io
