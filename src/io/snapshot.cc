#include "io/snapshot.h"

#include "common/crc32c.h"
#include "common/logging.h"
#include "io/atomic_file.h"
#include "io/serialize.h"

namespace stir::io {

Status WriteSnapshotFile(const std::string& path, std::string_view magic,
                         std::string_view payload, bool fsync) {
  STIR_CHECK_EQ(magic.size(), kSnapshotMagicSize);
  std::string file;
  file.reserve(kSnapshotHeaderSize + payload.size());
  file.append(magic.data(), magic.size());
  BinaryWriter header;
  header.U32(kSnapshotFormatVersion);
  header.U32(Crc32c(payload));
  header.U64(payload.size());
  file.append(header.bytes());
  file.append(payload.data(), payload.size());
  return AtomicWriteFile(path, file, fsync);
}

StatusOr<std::string> ReadSnapshotFile(const std::string& path,
                                       std::string_view magic) {
  STIR_CHECK_EQ(magic.size(), kSnapshotMagicSize);
  STIR_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  if (contents.size() < kSnapshotHeaderSize) {
    return Status::InvalidArgument("snapshot too short: " + path);
  }
  if (!SnapshotHasMagic(contents, magic)) {
    return Status::InvalidArgument("bad snapshot magic: " + path);
  }
  BinaryReader r(std::string_view(contents)
                     .substr(kSnapshotMagicSize,
                             kSnapshotHeaderSize - kSnapshotMagicSize));
  uint32_t version = 0, crc = 0;
  uint64_t size = 0;
  if (!r.U32(&version) || !r.U32(&crc) || !r.U64(&size)) {
    return Status::InvalidArgument("unreadable snapshot header: " + path);
  }
  if (version != kSnapshotFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot version: " + path);
  }
  if (contents.size() - kSnapshotHeaderSize != size) {
    return Status::InvalidArgument("snapshot payload size mismatch: " + path);
  }
  std::string_view payload =
      std::string_view(contents).substr(kSnapshotHeaderSize);
  if (Crc32c(payload) != crc) {
    return Status::InvalidArgument("snapshot checksum mismatch: " + path);
  }
  return std::string(payload);
}

bool SnapshotHasMagic(std::string_view contents, std::string_view magic) {
  return contents.size() >= kSnapshotMagicSize &&
         contents.substr(0, kSnapshotMagicSize) == magic;
}

}  // namespace stir::io
