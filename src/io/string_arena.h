#ifndef STIR_IO_STRING_ARENA_H_
#define STIR_IO_STRING_ARENA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace stir::io {

/// Build-side string intern pool for the v3 corpus (DESIGN.md §14):
/// every distinct string (user handles, profile locations, district
/// keys) is stored once in a single byte blob, addressed by a dense
/// 32-bit id. Interning happens once at ingest; every later pipeline
/// stage passes ids around and resolves them against the frozen arena
/// (the blob + offset table persisted as two corpus sections) without
/// re-hashing.
///
/// Id 0 is always the empty string, so zero-initialized columns are
/// valid references.
class StringArena {
 public:
  StringArena();

  /// Returns the id for `s`, adding it on first sight. Ids are assigned
  /// densely in first-intern order, which makes arena contents a pure
  /// function of the ingest sequence (deterministic corpora).
  uint32_t Intern(std::string_view s);

  /// The string for a previously returned id.
  std::string_view At(uint32_t id) const {
    return std::string_view(blob_).substr(
        offsets_[id], offsets_[id + 1] - offsets_[id]);
  }

  /// Number of distinct strings (including the implicit empty string).
  size_t size() const { return offsets_.size() - 1; }
  /// Total payload bytes.
  size_t blob_bytes() const { return blob_.size(); }

  /// Frozen representation, persisted verbatim as corpus sections:
  /// offsets() has size()+1 entries; string i is blob()[offsets()[i],
  /// offsets()[i+1]).
  const std::string& blob() const { return blob_; }
  const std::vector<uint64_t>& offsets() const { return offsets_; }

 private:
  std::string blob_;
  std::vector<uint64_t> offsets_;  // size()+1, offsets_[0] == 0
  std::unordered_map<std::string, uint32_t> ids_;
};

}  // namespace stir::io

#endif  // STIR_IO_STRING_ARENA_H_
