#include "io/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "io/fault_fs.h"

namespace stir::io {

namespace {

Status Errno(const char* op, const std::string& path) {
  return Status::IOError(std::string(op) + " failed for " + path + ": " +
                         std::strerror(errno));
}

/// fsyncs the directory containing `path` so the rename itself is
/// durable (POSIX: a crashed rename without the directory sync may
/// resurface the old name).
Status SyncParentDir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open(dir)", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync(dir)", dir);
  return Status::OK();
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view contents,
                       bool fsync) {
  FaultFs& fs = FaultFs::Instance();
  std::string tmp = path + ".tmp";
  int fd;
  do {
    fd = fs.Open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno("open", tmp);

  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = fs.Write(fd, contents.data() + written,
                         contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Errno("write", tmp);
    }
    written += static_cast<size_t>(n);
  }
  if (fsync && fs.Fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Errno("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Errno("close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Errno("rename", path);
  }
  if (fsync) return SyncParentDir(path);
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read failed: " + path);
  return contents;
}

Status EnsureDirectory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return Status::IOError("cannot create directory " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace stir::io
