#ifndef STIR_IO_OPTIONS_H_
#define STIR_IO_OPTIONS_H_

#include <cstdint>
#include <string>

namespace stir::io {

/// Crash-safety knobs for a study run (DESIGN.md §9). Everything is off
/// by default: with `checkpoint_dir` empty the pipeline takes no io::
/// code paths at all and its output is byte-identical to a build without
/// this subsystem.
struct DurabilityOptions {
  /// Directory for the geocode journal + study checkpoints. Empty
  /// disables durability entirely.
  std::string checkpoint_dir;

  /// Replay any journal/checkpoint found in `checkpoint_dir` and
  /// continue from there. Without it the directory is started fresh
  /// (existing state is truncated/overwritten).
  bool resume = false;

  /// Snapshot refinement progress every N processed users per shard.
  int64_t checkpoint_every_users = 64;

  /// fsync journal appends and snapshot writes. Turning this off keeps
  /// atomicity (valid-prefix recovery, atomic rename) but lets a power
  /// loss drop recent work; a plain process crash still loses nothing.
  bool fsync = true;

  /// Test hook: stop the pipeline cleanly after this many users have
  /// been processed in total (across shards), leaving checkpoints
  /// behind as if the process had died. -1 disables.
  int64_t halt_after_users = -1;
};

}  // namespace stir::io

#endif  // STIR_IO_OPTIONS_H_
