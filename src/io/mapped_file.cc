#include "io/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "io/fault_fs.h"

namespace stir::io {

namespace {

std::atomic<int64_t> g_mapped_now{0};
std::atomic<int64_t> g_mapped_peak{0};

void AccountMap(int64_t bytes) {
  int64_t now = g_mapped_now.fetch_add(bytes) + bytes;
  int64_t peak = g_mapped_peak.load();
  while (now > peak && !g_mapped_peak.compare_exchange_weak(peak, now)) {
  }
}

size_t PageSize() {
  static const size_t kPage = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  return kPage;
}

}  // namespace

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  int fd;
  do {
    fd = FaultFs::Instance().Open(path.c_str(), O_RDONLY, 0);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::IOError("open failed for " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = Status::IOError("fstat failed for " + path + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }
  MappedFile file;
  file.path_ = path;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* map = ::mmap(nullptr, file.size_, PROT_READ, MAP_SHARED, fd, 0);
    if (map == MAP_FAILED) {
      Status status = Status::IOError("mmap failed for " + path + ": " +
                                      std::strerror(errno));
      ::close(fd);
      return status;
    }
    file.data_ = static_cast<const char*>(map);
    AccountMap(static_cast<int64_t>(file.size_));
  }
  ::close(fd);  // The mapping keeps the file alive.
  return file;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
    g_mapped_now.fetch_sub(static_cast<int64_t>(size_));
  }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_), path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<char*>(data_), size_);
      g_mapped_now.fetch_sub(static_cast<int64_t>(size_));
    }
    data_ = other.data_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MappedFile::AdviseSequential() const {
  if (data_ != nullptr) {
    ::madvise(const_cast<char*>(data_), size_, MADV_SEQUENTIAL);
  }
}

void MappedFile::AdviseRandom() const {
  if (data_ != nullptr) {
    ::madvise(const_cast<char*>(data_), size_, MADV_RANDOM);
  }
}

void MappedFile::ReleaseRange(size_t offset, size_t length) const {
  if (data_ == nullptr || length == 0 || offset >= size_) return;
  size_t end = offset + length;
  if (end > size_) end = size_;
  // Round inward: never drop pages shared with bytes outside the range.
  size_t page = PageSize();
  size_t begin = (offset + page - 1) / page * page;
  end = end / page * page;
  if (begin >= end) return;
  ::madvise(const_cast<char*>(data_ + begin), end - begin, MADV_DONTNEED);
}

int64_t MappedBytesNow() { return g_mapped_now.load(); }
int64_t MappedBytesPeak() { return g_mapped_peak.load(); }

}  // namespace stir::io
