#include "io/sigbus_guard.h"

#include <csetjmp>
#include <csignal>

#include <atomic>
#include <mutex>

namespace stir::io {

namespace {

thread_local sigjmp_buf t_jump_buf;
thread_local bool t_guard_active = false;

std::atomic<int64_t> g_absorbed{0};

void SigbusHandler(int signo) {
  if (t_guard_active) {
    t_guard_active = false;
    g_absorbed.fetch_add(1, std::memory_order_relaxed);
    siglongjmp(t_jump_buf, 1);
  }
  // Not ours: restore the default disposition and re-raise so the crash
  // keeps its normal semantics (core dump, correct si_addr in the logs).
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

void InstallHandlerOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction action {};
    action.sa_handler = &SigbusHandler;
    sigemptyset(&action.sa_mask);
    // No SA_RESTART: a guarded region wants the signal surfaced, not a
    // transparently restarted syscall. SA_NODEFER is unnecessary — the
    // handler exits via siglongjmp, which restores the signal mask saved
    // by sigsetjmp(.., 1).
    action.sa_flags = 0;
    ::sigaction(SIGBUS, &action, nullptr);
  });
}

}  // namespace

bool RunSigbusProtected(const std::function<void()>& fn) {
  InstallHandlerOnce();
  if (sigsetjmp(t_jump_buf, /*savemask=*/1) != 0) {
    // Jumped here from the handler: the guarded load faulted.
    return false;
  }
  t_guard_active = true;
  fn();
  t_guard_active = false;
  return true;
}

int64_t SigbusAbsorbedCount() {
  return g_absorbed.load(std::memory_order_relaxed);
}

}  // namespace stir::io
