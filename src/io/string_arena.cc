#include "io/string_arena.h"

namespace stir::io {

StringArena::StringArena() {
  offsets_ = {0, 0};  // id 0: the empty string
  ids_.emplace(std::string(), 0);
}

uint32_t StringArena::Intern(std::string_view s) {
  auto it = ids_.find(std::string(s));
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(size());
  blob_.append(s.data(), s.size());
  offsets_.push_back(blob_.size());
  ids_.emplace(std::string(s), id);
  return id;
}

}  // namespace stir::io
