#ifndef STIR_EVENT_EVENT_SIM_H_
#define STIR_EVENT_EVENT_SIM_H_

#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "geo/admin_db.h"
#include "twitter/generator.h"

namespace stir::event {

/// A target event (the Toretter scenario: an earthquake).
struct EventSpec {
  geo::LatLng epicenter;
  SimTime start_time = 0;
  /// Radius within which people feel and report the event.
  double felt_radius_km = 150.0;
  /// Report probability at the epicenter, decaying exp(-d/decay_km).
  double response_rate = 0.5;
  double decay_km = 70.0;
  /// Mean posting delay after onset (seconds); delays are exponential
  /// (Sakaki et al. model event tweets as an exponential decay process).
  double mean_delay_seconds = 180.0;
  std::vector<std::string> keywords = {"earthquake", "shaking"};
};

/// One citizen-sensor report of the event.
struct WitnessReport {
  twitter::UserId user = twitter::kInvalidUser;
  SimTime time = 0;
  /// Present when the witness posted with GPS; the credible attribute.
  std::optional<geo::LatLng> gps;
  /// District the witness was actually in (ground truth, for evaluation).
  geo::RegionId true_region = geo::kInvalidRegion;
  std::string text;
};

/// Generates witness reports for an event over a generated population:
/// each user is a sensor at a location drawn from their mobility profile;
/// nearby users report with distance-decayed probability and exponential
/// delay; GPS presence follows each user's geotagging behaviour, with an
/// `event_geotag_boost` because eyewitness posts carry location more
/// often than everyday chatter.
class EventSimulator {
 public:
  /// `db` and `truth` must outlive the simulator.
  EventSimulator(const geo::AdminDb* db, const twitter::GroundTruth* truth,
                 double event_geotag_boost = 3.0);

  /// Simulates `spec` over `users`; deterministic for a given rng seed.
  /// Reports come back time-ordered.
  std::vector<WitnessReport> Simulate(const EventSpec& spec,
                                      const std::vector<twitter::User>& users,
                                      Rng& rng) const;

 private:
  const geo::AdminDb* db_;
  const twitter::GroundTruth* truth_;
  double event_geotag_boost_;
};

}  // namespace stir::event

#endif  // STIR_EVENT_EVENT_SIM_H_
