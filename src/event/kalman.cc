#include "event/kalman.h"

#include "common/logging.h"

namespace stir::event {

KalmanFilter2D::KalmanFilter2D(double process_noise_deg2)
    : process_noise_(process_noise_deg2) {
  STIR_CHECK_GE(process_noise_deg2, 0.0);
}

void KalmanFilter2D::Initialize(const geo::LatLng& measurement,
                                double variance_deg2) {
  STIR_CHECK_GT(variance_deg2, 0.0);
  state_ = measurement;
  variance_ = variance_deg2;
  initialized_ = true;
}

void KalmanFilter2D::Predict() {
  STIR_CHECK(initialized_);
  variance_ += process_noise_;
}

void KalmanFilter2D::Update(const geo::LatLng& measurement,
                            double measurement_variance_deg2) {
  STIR_CHECK_GT(measurement_variance_deg2, 0.0);
  if (!initialized_) {
    Initialize(measurement, measurement_variance_deg2);
    return;
  }
  // Scalar gain applied per axis (diagonal P and R).
  double gain = variance_ / (variance_ + measurement_variance_deg2);
  state_.lat += gain * (measurement.lat - state_.lat);
  state_.lng += gain * (measurement.lng - state_.lng);
  variance_ *= (1.0 - gain);
}

}  // namespace stir::event
