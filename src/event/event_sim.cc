#include "event/event_sim.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace stir::event {

EventSimulator::EventSimulator(const geo::AdminDb* db,
                               const twitter::GroundTruth* truth,
                               double event_geotag_boost)
    : db_(db), truth_(truth), event_geotag_boost_(event_geotag_boost) {
  STIR_CHECK(db != nullptr);
  STIR_CHECK(truth != nullptr);
  STIR_CHECK_GE(event_geotag_boost, 1.0);
}

std::vector<WitnessReport> EventSimulator::Simulate(
    const EventSpec& spec, const std::vector<twitter::User>& users,
    Rng& rng) const {
  STIR_CHECK(!spec.keywords.empty());
  std::vector<WitnessReport> reports;
  for (const twitter::User& user : users) {
    auto it = truth_->mobility.find(user.id);
    if (it == truth_->mobility.end()) continue;
    const twitter::MobilityProfile& mobility = it->second;

    // Where is this sensor right now? A draw from their activity spots.
    double u = rng.Uniform();
    geo::RegionId region = mobility.spots.back().region;
    for (const twitter::ActivitySpot& spot : mobility.spots) {
      u -= spot.weight;
      if (u <= 0.0) {
        region = spot.region;
        break;
      }
    }
    geo::LatLng position = db_->SamplePointIn(region, rng);

    double distance = geo::HaversineKm(position, spec.epicenter);
    if (distance > spec.felt_radius_km) continue;
    double p = spec.response_rate * std::exp(-distance / spec.decay_km);
    if (!rng.Bernoulli(p)) continue;

    WitnessReport report;
    report.user = user.id;
    report.true_region = region;
    report.time = spec.start_time +
                  static_cast<SimTime>(rng.Exponential(
                      1.0 / std::max(1.0, spec.mean_delay_seconds)));
    double geotag_p =
        std::min(1.0, mobility.geotag_rate * event_geotag_boost_);
    if (rng.Bernoulli(geotag_p)) report.gps = position;
    const std::string& keyword = spec.keywords[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(spec.keywords.size()) - 1))];
    report.text = StrFormat("%s!! did you feel that", keyword.c_str());
    reports.push_back(std::move(report));
  }
  std::sort(reports.begin(), reports.end(),
            [](const WitnessReport& a, const WitnessReport& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.user < b.user;
            });
  return reports;
}

}  // namespace stir::event
