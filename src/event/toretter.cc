#include "event/toretter.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "event/kalman.h"
#include "event/particle_filter.h"

namespace stir::event {

namespace {
/// Degrees of latitude per kilometer (for sigma conversion).
constexpr double kDegPerKm = 1.0 / 111.32;
}  // namespace

const char* LocationEstimatorToString(LocationEstimator estimator) {
  switch (estimator) {
    case LocationEstimator::kWeightedCentroid:
      return "weighted-centroid";
    case LocationEstimator::kKalman:
      return "kalman";
    case LocationEstimator::kParticle:
      return "particle";
  }
  return "unknown";
}

const char* LocationSourceToString(LocationSource source) {
  switch (source) {
    case LocationSource::kGpsOnly:
      return "gps-only";
    case LocationSource::kProfileOnly:
      return "profile-only";
    case LocationSource::kGpsWithProfileFallback:
      return "gps+profile-fallback";
  }
  return "unknown";
}

ToretterDetector::ToretterDetector(const geo::AdminDb* db,
                                   ToretterOptions options)
    : db_(db), options_(std::move(options)) {
  STIR_CHECK(db != nullptr);
  STIR_CHECK_GT(options_.window_seconds, 0);
  STIR_CHECK_GE(options_.min_reports, 1);
}

bool ToretterDetector::MatchesKeywords(const std::string& text) const {
  for (const std::string& keyword : options_.keywords) {
    if (ContainsIgnoreCase(text, keyword)) return true;
  }
  return false;
}

DetectionResult ToretterDetector::DetectOnset(
    const std::vector<WitnessReport>& reports) const {
  DetectionResult result;
  // Two-pointer sliding window over time-ordered reports.
  size_t left = 0;
  for (size_t right = 0; right < reports.size(); ++right) {
    STIR_CHECK(right == 0 || reports[right].time >= reports[right - 1].time)
        << "reports must be time-ordered";
    while (reports[right].time - reports[left].time >=
           options_.window_seconds) {
      ++left;
    }
    int64_t in_window = static_cast<int64_t>(right - left + 1);
    if (in_window >= options_.min_reports) {
      result.detected = true;
      result.alarm_time = reports[right].time;
      result.reports_at_alarm = static_cast<int64_t>(right) + 1;
      return result;
    }
  }
  return result;
}

std::vector<ToretterDetector::Measurement>
ToretterDetector::ExtractMeasurements(
    const std::vector<WitnessReport>& reports) const {
  std::vector<Measurement> measurements;
  for (const WitnessReport& report : reports) {
    if (report.gps.has_value() &&
        options_.source != LocationSource::kProfileOnly) {
      measurements.push_back(
          Measurement{*report.gps, options_.gps_sigma_km, 1.0});
      continue;
    }
    if (options_.source == LocationSource::kGpsOnly) continue;
    if (profile_regions_ == nullptr) continue;
    auto it = profile_regions_->find(report.user);
    if (it == profile_regions_->end()) continue;
    double weight = 1.0;
    if (options_.reliability_weighted && reliability_ != nullptr) {
      weight = std::max(0.02, reliability_->WeightFor(
                                  report.user,
                                  options_.reliability_granularity));
    }
    measurements.push_back(Measurement{db_->region(it->second).centroid,
                                       options_.profile_sigma_km, weight});
  }
  return measurements;
}

StatusOr<LocationEstimate> ToretterDetector::EstimateLocation(
    const std::vector<WitnessReport>& reports, Rng& rng) const {
  std::vector<Measurement> measurements = ExtractMeasurements(reports);
  if (measurements.empty()) {
    return Status::FailedPrecondition(
        "no usable location measurements in reports");
  }
  LocationEstimate estimate;
  estimate.measurements_used = static_cast<int64_t>(measurements.size());

  switch (options_.estimator) {
    case LocationEstimator::kWeightedCentroid: {
      double total = 0.0, lat = 0.0, lng = 0.0;
      for (const Measurement& m : measurements) {
        double w = m.weight / (m.sigma_km * m.sigma_km);
        lat += m.position.lat * w;
        lng += m.position.lng * w;
        total += w;
      }
      estimate.location = geo::LatLng{lat / total, lng / total};
      return estimate;
    }
    case LocationEstimator::kKalman: {
      KalmanFilter2D filter;
      for (const Measurement& m : measurements) {
        double sigma_deg = m.sigma_km * kDegPerKm;
        // An unreliable source is a noisier sensor: R scales by 1/weight.
        filter.Update(m.position, sigma_deg * sigma_deg / m.weight);
      }
      estimate.location = filter.state();
      estimate.spread_km = std::sqrt(filter.variance()) / kDegPerKm;
      return estimate;
    }
    case LocationEstimator::kParticle: {
      ParticleFilter filter(options_.particles,
                            db_->Coverage().Expanded(0.5), rng);
      for (const Measurement& m : measurements) {
        filter.Update(m.position, m.sigma_km, m.weight, rng);
      }
      estimate.location = filter.Estimate();
      estimate.spread_km = filter.SpreadKm();
      return estimate;
    }
  }
  return Status::Internal("unhandled estimator");
}

}  // namespace stir::event
