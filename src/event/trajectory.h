#ifndef STIR_EVENT_TRAJECTORY_H_
#define STIR_EVENT_TRAJECTORY_H_

#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "event/event_sim.h"
#include "geo/latlng.h"

namespace stir::event {

/// Constant-velocity Kalman filter over (lat, lng) — Toretter's typhoon
/// tracker: the target moves, each tweet is a noisy position fix at a
/// timestamp, and the filter recovers position *and* velocity so the
/// track can be smoothed and forecast.
///
/// Axes are filtered independently with state [position, velocity],
/// F = [[1, dt], [0, 1]], H = [1, 0]; adequate away from the poles at
/// storm scale.
class TrajectoryKalman {
 public:
  struct Options {
    /// Process noise spectral density (deg^2 / s) injected into velocity;
    /// larger values let the track turn faster.
    double velocity_process_noise = 1e-10;
    /// Initial uncertainty after the first fix.
    double initial_position_var = 1.0;
    double initial_velocity_var = 1e-6;
  };

  TrajectoryKalman();
  explicit TrajectoryKalman(Options options);

  /// Incorporates a position fix at time `t` with measurement variance
  /// `measurement_var_deg2`. Fixes must arrive in non-decreasing time
  /// order (checked).
  void Update(SimTime t, const geo::LatLng& measurement,
              double measurement_var_deg2);

  bool initialized() const { return initialized_; }
  /// Filtered position at the last update time.
  geo::LatLng position() const;
  /// Filtered velocity in degrees/second.
  double velocity_lat() const { return axis_[0].velocity; }
  double velocity_lng() const { return axis_[1].velocity; }
  /// Extrapolated position at a (usually future) time.
  geo::LatLng Forecast(SimTime t) const;
  SimTime last_time() const { return last_time_; }

 private:
  struct AxisState {
    double position = 0.0;
    double velocity = 0.0;
    // Covariance entries: var(p), cov(p, v), var(v).
    double p_pp = 0.0;
    double p_pv = 0.0;
    double p_vv = 0.0;
  };
  void PredictAxis(AxisState& axis, double dt) const;
  void UpdateAxis(AxisState& axis, double measurement, double r) const;

  Options options_;
  AxisState axis_[2];  // 0 = lat, 1 = lng
  SimTime last_time_ = 0;
  bool initialized_ = false;
};

/// A moving target event (typhoon): a straight track at constant speed.
struct MovingEventSpec {
  geo::LatLng start;
  double bearing_deg = 0.0;
  double speed_kmh = 25.0;
  SimTime start_time = 0;
  SimTime duration_seconds = 24 * kSecondsPerHour;
  /// Witness-sampling step along the track.
  SimTime step_seconds = kSecondsPerHour;
  double felt_radius_km = 120.0;
  /// Per-step report probability at zero distance.
  double response_rate = 0.05;
  double decay_km = 60.0;
  std::vector<std::string> keywords = {"typhoon", "storm"};
};

/// True position of the moving event at time `t` (clamped to the track).
geo::LatLng MovingEventPosition(const MovingEventSpec& spec, SimTime t);

/// Generates witness reports along a moving event's track: at each step
/// the event advances and nearby users (at locations drawn from their
/// mobility profiles) report with distance-decayed probability. Returns
/// time-ordered reports.
class MovingEventSimulator {
 public:
  /// `db` and `truth` must outlive the simulator.
  MovingEventSimulator(const geo::AdminDb* db,
                       const twitter::GroundTruth* truth,
                       double event_geotag_boost = 3.0);

  std::vector<WitnessReport> Simulate(
      const MovingEventSpec& spec,
      const std::vector<twitter::User>& users, Rng& rng) const;

 private:
  const geo::AdminDb* db_;
  const twitter::GroundTruth* truth_;
  double event_geotag_boost_;
};

/// Track-estimation summary against a known ground-truth track.
struct TrackError {
  double mean_km = 0.0;
  double max_km = 0.0;
  int64_t points = 0;
};

/// Runs a TrajectoryKalman over `reports` (using GPS fixes only) and
/// scores the filtered track against the true event track, sampling the
/// comparison at each report time. FailedPrecondition without any GPS
/// fixes.
StatusOr<TrackError> EvaluateTrack(
    const MovingEventSpec& spec, const std::vector<WitnessReport>& reports,
    double measurement_sigma_km,
    TrajectoryKalman::Options options = TrajectoryKalman::Options());

}  // namespace stir::event

#endif  // STIR_EVENT_TRAJECTORY_H_
