#ifndef STIR_EVENT_TWITRIS_H_
#define STIR_EVENT_TWITRIS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geo/admin_db.h"
#include "geo/reverse_geocoder.h"
#include "text/location_parser.h"
#include "text/tfidf.h"
#include "twitter/dataset.h"

namespace stir::event {

/// Options for the spatio-temporal-thematic summarizer.
struct TwitrisOptions {
  /// Terms reported per (day, state) cell.
  size_t top_k_terms = 8;
  /// Use the profile location as the approximate tweet location for
  /// posts without GPS — Twitris's assumption (Nagarajan et al., WISE'09)
  /// and exactly the practice whose reliability this paper measures.
  bool use_profile_fallback = true;
  /// Minimum tweets in a cell before it is summarized.
  int64_t min_tweets_per_cell = 3;
};

/// One (when, where, what) cell of the Twitris browsing paradigm.
struct SpatioTemporalSummary {
  int64_t day = 0;
  std::string state;
  int64_t tweet_count = 0;
  std::vector<text::TermScore> top_terms;
};

/// Reimplementation of the Twitris spatio-temporal-thematic pipeline:
/// assign each tweet to a (day, first-level-division) cell — by GPS when
/// available, else by profile location — and extract the cell's
/// characteristic terms with TF-IDF against the whole corpus.
class TwitrisSummarizer {
 public:
  /// `db` must outlive the summarizer.
  TwitrisSummarizer(const geo::AdminDb* db, TwitrisOptions options = {});

  /// Summarizes all materialized tweets of `dataset`. Cells are returned
  /// sorted by (day, state).
  StatusOr<std::vector<SpatioTemporalSummary>> Summarize(
      const twitter::Dataset& dataset) const;

 private:
  const geo::AdminDb* db_;
  TwitrisOptions options_;
  text::LocationParser parser_;
};

}  // namespace stir::event

#endif  // STIR_EVENT_TWITRIS_H_
