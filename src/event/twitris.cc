#include "event/twitris.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/clock.h"
#include "common/string_util.h"
#include "text/normalize.h"

namespace stir::event {

TwitrisSummarizer::TwitrisSummarizer(const geo::AdminDb* db,
                                     TwitrisOptions options)
    : db_(db), options_(options), parser_(db) {}

StatusOr<std::vector<SpatioTemporalSummary>> TwitrisSummarizer::Summarize(
    const twitter::Dataset& dataset) const {
  geo::ReverseGeocoder geocoder(db_);

  // Profile regions resolved once per user.
  std::unordered_map<twitter::UserId, geo::RegionId> profile_regions;
  if (options_.use_profile_fallback) {
    for (const twitter::User& user : dataset.users()) {
      text::ParsedLocation parsed = parser_.Parse(user.profile_location);
      if (parsed.quality == text::LocationQuality::kWellDefined) {
        profile_regions.emplace(user.id, parsed.region);
      }
    }
  }

  // Cell assignment + corpus build. std::map keys give (day, state) order.
  struct Cell {
    int64_t tweet_count = 0;
  };
  std::map<std::pair<int64_t, std::string>, Cell> cells;
  text::TfIdf index;
  for (const twitter::Tweet& tweet : dataset.tweets()) {
    std::string state;
    if (tweet.gps.has_value()) {
      auto located = geocoder.Reverse(*tweet.gps);
      if (located.ok()) state = located->state;
    }
    if (state.empty() && options_.use_profile_fallback) {
      auto it = profile_regions.find(tweet.user);
      if (it != profile_regions.end()) state = db_->region(it->second).state;
    }
    if (state.empty()) continue;
    int64_t day = DayIndex(tweet.time);
    auto key = std::make_pair(day, state);
    ++cells[key].tweet_count;
    index.AddDocument(StrFormat("d%lld|%s", static_cast<long long>(day),
                                state.c_str()),
                      text::TokenizeTweet(tweet.text));
  }
  index.Finalize();

  std::vector<SpatioTemporalSummary> summaries;
  for (const auto& [key, cell] : cells) {
    if (cell.tweet_count < options_.min_tweets_per_cell) continue;
    SpatioTemporalSummary summary;
    summary.day = key.first;
    summary.state = key.second;
    summary.tweet_count = cell.tweet_count;
    STIR_ASSIGN_OR_RETURN(
        summary.top_terms,
        index.TopTerms(StrFormat("d%lld|%s",
                                 static_cast<long long>(key.first),
                                 key.second.c_str()),
                       options_.top_k_terms));
    summaries.push_back(std::move(summary));
  }
  return summaries;
}

}  // namespace stir::event
