#ifndef STIR_EVENT_KALMAN_H_
#define STIR_EVENT_KALMAN_H_

#include "geo/latlng.h"

namespace stir::event {

/// 2-D constant-position Kalman filter over (lat, lng) degrees — the
/// location-estimation filter Toretter (Sakaki et al., WWW'10) applied to
/// earthquake epicenters, where the target is static and each tweet is a
/// noisy position measurement.
///
/// State x = (lat, lng); diagonal covariance (lat/lng treated as
/// independent, adequate at city-to-province scale).
class KalmanFilter2D {
 public:
  /// `process_noise_deg2` is added to the variance per Predict() step,
  /// modelling drift (0 for a truly static target).
  explicit KalmanFilter2D(double process_noise_deg2 = 0.0);

  /// Initializes the state with a first measurement and its variance.
  void Initialize(const geo::LatLng& measurement, double variance_deg2);
  bool initialized() const { return initialized_; }

  /// Time update: inflates the covariance by the process noise.
  void Predict();

  /// Measurement update. `measurement_variance_deg2` is the measurement
  /// noise R; reliability weighting scales R by 1/weight (an unreliable
  /// source is a noisier sensor).
  void Update(const geo::LatLng& measurement, double measurement_variance_deg2);

  geo::LatLng state() const { return state_; }
  /// Current posterior variance (degrees^2, same for both axes).
  double variance() const { return variance_; }

 private:
  double process_noise_;
  geo::LatLng state_;
  double variance_ = 0.0;
  bool initialized_ = false;
};

}  // namespace stir::event

#endif  // STIR_EVENT_KALMAN_H_
