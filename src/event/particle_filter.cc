#include "event/particle_filter.h"

#include <cmath>

#include "common/logging.h"

namespace stir::event {

ParticleFilter::ParticleFilter(int num_particles,
                               const geo::BoundingBox& prior, Rng& rng) {
  STIR_CHECK_GT(num_particles, 0);
  STIR_CHECK(!prior.IsEmpty());
  particles_.reserve(static_cast<size_t>(num_particles));
  for (int i = 0; i < num_particles; ++i) {
    particles_.push_back(geo::LatLng{
        rng.Uniform(prior.min_lat, prior.max_lat),
        rng.Uniform(prior.min_lng, prior.max_lng),
    });
  }
  weights_.assign(static_cast<size_t>(num_particles),
                  1.0 / static_cast<double>(num_particles));
}

void ParticleFilter::Update(const geo::LatLng& measurement, double sigma_km,
                            double weight, Rng& rng) {
  STIR_CHECK_GT(sigma_km, 0.0);
  STIR_CHECK_GT(weight, 0.0);
  double total = 0.0;
  for (size_t i = 0; i < particles_.size(); ++i) {
    double d = geo::ApproxDistanceKm(particles_[i], measurement);
    double log_likelihood = -0.5 * (d / sigma_km) * (d / sigma_km);
    weights_[i] *= std::exp(weight * log_likelihood);
    total += weights_[i];
  }
  if (total <= 0.0 || !std::isfinite(total)) {
    // Degenerate update (all particles far away): reset to uniform so the
    // filter stays alive rather than collapsing to NaNs.
    weights_.assign(weights_.size(), 1.0 / static_cast<double>(weights_.size()));
    return;
  }
  for (double& w : weights_) w /= total;
  if (EffectiveSampleSize() <
      static_cast<double>(particles_.size()) / 2.0) {
    Resample(rng);
  }
}

double ParticleFilter::EffectiveSampleSize() const {
  double sum_sq = 0.0;
  for (double w : weights_) sum_sq += w * w;
  return sum_sq > 0.0 ? 1.0 / sum_sq : 0.0;
}

void ParticleFilter::Resample(Rng& rng) {
  size_t n = particles_.size();
  std::vector<geo::LatLng> next;
  next.reserve(n);
  // Systematic resampling: a single uniform offset, n evenly spaced
  // pointers into the cumulative weights.
  double step = 1.0 / static_cast<double>(n);
  double u = rng.Uniform() * step;
  double cumulative = weights_[0];
  size_t i = 0;
  for (size_t j = 0; j < n; ++j) {
    double pointer = u + static_cast<double>(j) * step;
    while (pointer > cumulative && i + 1 < n) {
      ++i;
      cumulative += weights_[i];
    }
    // Jitter keeps resampled particles from collapsing to duplicates.
    next.push_back(geo::LatLng{
        particles_[i].lat + rng.Normal(0.0, 0.01),
        particles_[i].lng + rng.Normal(0.0, 0.01),
    });
  }
  particles_ = std::move(next);
  weights_.assign(n, step);
}

geo::LatLng ParticleFilter::Estimate() const {
  double lat = 0.0, lng = 0.0;
  for (size_t i = 0; i < particles_.size(); ++i) {
    lat += particles_[i].lat * weights_[i];
    lng += particles_[i].lng * weights_[i];
  }
  return geo::LatLng{lat, lng};
}

double ParticleFilter::SpreadKm() const {
  geo::LatLng mean = Estimate();
  double acc = 0.0;
  for (size_t i = 0; i < particles_.size(); ++i) {
    double d = geo::ApproxDistanceKm(particles_[i], mean);
    acc += weights_[i] * d * d;
  }
  return std::sqrt(acc);
}

}  // namespace stir::event
