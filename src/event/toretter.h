#ifndef STIR_EVENT_TORETTER_H_
#define STIR_EVENT_TORETTER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/reliability.h"
#include "event/event_sim.h"
#include "geo/admin_db.h"

namespace stir::event {

/// Which filter estimates the event location.
enum class LocationEstimator : int {
  kWeightedCentroid = 0,
  kKalman = 1,
  kParticle = 2,
};

const char* LocationEstimatorToString(LocationEstimator estimator);

/// Which spatial attribute feeds the estimator — the axis of the paper's
/// ablation: GPS coordinates are credible, profile locations are not,
/// and the reliability weight is the paper's proposed fix for using them
/// anyway.
enum class LocationSource : int {
  kGpsOnly = 0,
  kProfileOnly = 1,
  kGpsWithProfileFallback = 2,
};

const char* LocationSourceToString(LocationSource source);

struct ToretterOptions {
  std::vector<std::string> keywords = {"earthquake", "shaking"};
  /// Temporal detection: alarm when >= min_reports keyword posts land
  /// within window_seconds.
  SimTime window_seconds = 600;
  int64_t min_reports = 10;

  LocationEstimator estimator = LocationEstimator::kParticle;
  LocationSource source = LocationSource::kGpsWithProfileFallback;
  /// Apply reliability weights to profile-derived measurements (requires
  /// set_reliability).
  bool reliability_weighted = false;
  /// Which estimate to use when weighting (per-user / group prior /
  /// global prior) — see core::ReliabilityGranularity.
  core::ReliabilityGranularity reliability_granularity =
      core::ReliabilityGranularity::kPerUser;

  /// Measurement noise: a GPS report is the witness's position (within
  /// felt range of the epicenter); a profile-derived report is only the
  /// district the user *claims* to live in.
  double gps_sigma_km = 20.0;
  double profile_sigma_km = 45.0;
  int particles = 2000;
};

/// Temporal detection outcome.
struct DetectionResult {
  bool detected = false;
  /// Time the threshold was crossed (the alarm the real Toretter beat
  /// the JMA broadcast with).
  SimTime alarm_time = 0;
  int64_t reports_at_alarm = 0;
};

/// Location estimation outcome.
struct LocationEstimate {
  geo::LatLng location;
  /// Posterior spread (particle) / sqrt variance (kalman) in km; 0 for
  /// the centroid estimator.
  double spread_km = 0.0;
  int64_t measurements_used = 0;
};

/// Reimplementation of the Toretter event detector (Sakaki et al.,
/// WWW'10): keyword-triggered temporal detection plus Kalman/particle
/// location estimation, extended with the reliability weighting this
/// paper proposes as future work.
class ToretterDetector {
 public:
  /// `db` must outlive the detector.
  ToretterDetector(const geo::AdminDb* db, ToretterOptions options);

  /// Profile district per user (the output of the study's refinement);
  /// required for profile-based sources. Not owned.
  void set_profile_regions(
      const std::unordered_map<twitter::UserId, geo::RegionId>* regions) {
    profile_regions_ = regions;
  }
  /// Reliability model fitted by the correlation study. Not owned.
  void set_reliability(const core::ReliabilityModel* model) {
    reliability_ = model;
  }

  /// True when `text` contains any trigger keyword (case-insensitive).
  bool MatchesKeywords(const std::string& text) const;

  /// Sliding-window threshold detection over time-ordered reports.
  DetectionResult DetectOnset(const std::vector<WitnessReport>& reports) const;

  /// Location estimation from the configured source/estimator. Fails
  /// with FailedPrecondition when no usable measurement exists.
  StatusOr<LocationEstimate> EstimateLocation(
      const std::vector<WitnessReport>& reports, Rng& rng) const;

  const ToretterOptions& options() const { return options_; }

 private:
  struct Measurement {
    geo::LatLng position;
    double sigma_km = 0.0;
    double weight = 1.0;
  };
  std::vector<Measurement> ExtractMeasurements(
      const std::vector<WitnessReport>& reports) const;

  const geo::AdminDb* db_;
  ToretterOptions options_;
  const std::unordered_map<twitter::UserId, geo::RegionId>* profile_regions_ =
      nullptr;
  const core::ReliabilityModel* reliability_ = nullptr;
};

}  // namespace stir::event

#endif  // STIR_EVENT_TORETTER_H_
