#ifndef STIR_EVENT_PARTICLE_FILTER_H_
#define STIR_EVENT_PARTICLE_FILTER_H_

#include <vector>

#include "common/random.h"
#include "geo/latlng.h"

namespace stir::event {

/// Particle filter for static-target location estimation — Toretter's
/// second estimator, better than the Kalman filter when the measurement
/// distribution is multi-modal (e.g. reports clustered in two cities).
class ParticleFilter {
 public:
  /// Scatters `num_particles` uniformly over `prior` (e.g. the gazetteer
  /// coverage box).
  ParticleFilter(int num_particles, const geo::BoundingBox& prior, Rng& rng);

  /// Measurement update with an isotropic Gaussian likelihood of scale
  /// `sigma_km`. `weight` in (0, 1] tempers the likelihood
  /// (likelihood^weight): reliability-weighted sources update the belief
  /// more gently. Resamples systematically when the effective sample
  /// size drops below half the particle count.
  void Update(const geo::LatLng& measurement, double sigma_km, double weight,
              Rng& rng);

  /// Posterior mean.
  geo::LatLng Estimate() const;
  /// RMS distance of particles from the mean, km (posterior spread).
  double SpreadKm() const;
  /// Effective sample size of the current weights.
  double EffectiveSampleSize() const;
  int num_particles() const { return static_cast<int>(particles_.size()); }

 private:
  void Resample(Rng& rng);

  std::vector<geo::LatLng> particles_;
  std::vector<double> weights_;
};

}  // namespace stir::event

#endif  // STIR_EVENT_PARTICLE_FILTER_H_
