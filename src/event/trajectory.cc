#include "event/trajectory.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace stir::event {

TrajectoryKalman::TrajectoryKalman() : TrajectoryKalman(Options()) {}

TrajectoryKalman::TrajectoryKalman(Options options) : options_(options) {
  STIR_CHECK_GE(options_.velocity_process_noise, 0.0);
  STIR_CHECK_GT(options_.initial_position_var, 0.0);
}

void TrajectoryKalman::PredictAxis(AxisState& axis, double dt) const {
  // x <- F x ; P <- F P F^T + Q with Q from a white-noise-acceleration
  // model: Q = q * [[dt^3/3, dt^2/2], [dt^2/2, dt]].
  axis.position += axis.velocity * dt;
  double q = options_.velocity_process_noise;
  double p_pp = axis.p_pp + 2.0 * dt * axis.p_pv + dt * dt * axis.p_vv +
                q * dt * dt * dt / 3.0;
  double p_pv = axis.p_pv + dt * axis.p_vv + q * dt * dt / 2.0;
  double p_vv = axis.p_vv + q * dt;
  axis.p_pp = p_pp;
  axis.p_pv = p_pv;
  axis.p_vv = p_vv;
}

void TrajectoryKalman::UpdateAxis(AxisState& axis, double measurement,
                                  double r) const {
  double innovation = measurement - axis.position;
  double s = axis.p_pp + r;
  double k_p = axis.p_pp / s;
  double k_v = axis.p_pv / s;
  axis.position += k_p * innovation;
  axis.velocity += k_v * innovation;
  double p_pp = (1.0 - k_p) * axis.p_pp;
  double p_pv = (1.0 - k_p) * axis.p_pv;
  double p_vv = axis.p_vv - k_v * axis.p_pv;
  axis.p_pp = p_pp;
  axis.p_pv = p_pv;
  axis.p_vv = p_vv;
}

void TrajectoryKalman::Update(SimTime t, const geo::LatLng& measurement,
                              double measurement_var_deg2) {
  STIR_CHECK_GT(measurement_var_deg2, 0.0);
  if (!initialized_) {
    axis_[0].position = measurement.lat;
    axis_[1].position = measurement.lng;
    for (AxisState& axis : axis_) {
      axis.velocity = 0.0;
      axis.p_pp = options_.initial_position_var;
      axis.p_pv = 0.0;
      axis.p_vv = options_.initial_velocity_var;
    }
    last_time_ = t;
    initialized_ = true;
    return;
  }
  STIR_CHECK_GE(t, last_time_) << "fixes must be time-ordered";
  double dt = static_cast<double>(t - last_time_);
  if (dt > 0.0) {
    PredictAxis(axis_[0], dt);
    PredictAxis(axis_[1], dt);
  }
  UpdateAxis(axis_[0], measurement.lat, measurement_var_deg2);
  UpdateAxis(axis_[1], measurement.lng, measurement_var_deg2);
  last_time_ = t;
}

geo::LatLng TrajectoryKalman::position() const {
  return geo::LatLng{axis_[0].position, axis_[1].position};
}

geo::LatLng TrajectoryKalman::Forecast(SimTime t) const {
  STIR_CHECK(initialized_);
  double dt = static_cast<double>(t - last_time_);
  return geo::LatLng{axis_[0].position + axis_[0].velocity * dt,
                     axis_[1].position + axis_[1].velocity * dt};
}

geo::LatLng MovingEventPosition(const MovingEventSpec& spec, SimTime t) {
  SimTime clamped =
      std::clamp(t, spec.start_time, spec.start_time + spec.duration_seconds);
  double hours =
      static_cast<double>(clamped - spec.start_time) / kSecondsPerHour;
  return geo::Destination(spec.start, spec.bearing_deg,
                          spec.speed_kmh * hours);
}

MovingEventSimulator::MovingEventSimulator(const geo::AdminDb* db,
                                           const twitter::GroundTruth* truth,
                                           double event_geotag_boost)
    : db_(db), truth_(truth), event_geotag_boost_(event_geotag_boost) {
  STIR_CHECK(db != nullptr);
  STIR_CHECK(truth != nullptr);
}

std::vector<WitnessReport> MovingEventSimulator::Simulate(
    const MovingEventSpec& spec, const std::vector<twitter::User>& users,
    Rng& rng) const {
  STIR_CHECK_GT(spec.step_seconds, 0);
  STIR_CHECK(!spec.keywords.empty());
  std::vector<WitnessReport> reports;
  for (SimTime t = spec.start_time;
       t <= spec.start_time + spec.duration_seconds; t += spec.step_seconds) {
    geo::LatLng eye = MovingEventPosition(spec, t);
    for (const twitter::User& user : users) {
      auto it = truth_->mobility.find(user.id);
      if (it == truth_->mobility.end()) continue;
      const twitter::MobilityProfile& mobility = it->second;
      // Cheap pre-filter: skip users whose home is far outside range.
      double home_distance = geo::ApproxDistanceKm(
          db_->region(mobility.home).centroid, eye);
      if (home_distance > spec.felt_radius_km + 120.0) continue;

      double u = rng.Uniform();
      geo::RegionId region = mobility.spots.back().region;
      for (const twitter::ActivitySpot& spot : mobility.spots) {
        u -= spot.weight;
        if (u <= 0.0) {
          region = spot.region;
          break;
        }
      }
      geo::LatLng position = db_->SamplePointIn(region, rng);
      double distance = geo::HaversineKm(position, eye);
      if (distance > spec.felt_radius_km) continue;
      if (!rng.Bernoulli(spec.response_rate *
                         std::exp(-distance / spec.decay_km))) {
        continue;
      }
      WitnessReport report;
      report.user = user.id;
      report.true_region = region;
      report.time =
          t + rng.UniformInt(0, std::max<SimTime>(1, spec.step_seconds) - 1);
      double geotag_p =
          std::min(1.0, mobility.geotag_rate * event_geotag_boost_);
      if (rng.Bernoulli(geotag_p)) report.gps = position;
      const std::string& keyword = spec.keywords[static_cast<size_t>(
          rng.UniformInt(0,
                         static_cast<int64_t>(spec.keywords.size()) - 1))];
      report.text = StrFormat("%s is here, stay safe", keyword.c_str());
      reports.push_back(std::move(report));
    }
  }
  std::sort(reports.begin(), reports.end(),
            [](const WitnessReport& a, const WitnessReport& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.user < b.user;
            });
  return reports;
}

StatusOr<TrackError> EvaluateTrack(const MovingEventSpec& spec,
                                   const std::vector<WitnessReport>& reports,
                                   double measurement_sigma_km,
                                   TrajectoryKalman::Options options) {
  constexpr double kDegPerKm = 1.0 / 111.32;
  double r = measurement_sigma_km * kDegPerKm;
  r = r * r;
  TrajectoryKalman filter(options);
  TrackError error;
  double total = 0.0;
  for (const WitnessReport& report : reports) {
    if (!report.gps.has_value()) continue;
    filter.Update(report.time, *report.gps, r);
    // Score after a warm-up of a few fixes.
    if (error.points + 1 > 3 || filter.initialized()) {
      geo::LatLng truth = MovingEventPosition(spec, report.time);
      double d = geo::HaversineKm(filter.position(), truth);
      total += d;
      error.max_km = std::max(error.max_km, d);
      ++error.points;
    }
  }
  if (error.points == 0) {
    return Status::FailedPrecondition("no GPS fixes in reports");
  }
  error.mean_km = total / static_cast<double>(error.points);
  return error;
}

}  // namespace stir::event
