#ifndef STIR_INFER_EVAL_H_
#define STIR_INFER_EVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "infer/home_inferrer.h"
#include "infer/inference_index.h"
#include "io/truth_sidecar.h"

namespace stir::infer {

/// One misprediction pattern: the inferrer said `predicted` for users
/// whose true home was `actual`, `count` times. Keys are display strings
/// ("State/County") so reports read without a gazetteer in hand.
struct ConfusionPair {
  std::string actual;
  std::string predicted;
  int64_t count = 0;
};

/// Scorecard for one strategy against generator ground truth. "GPS-rich"
/// is the slice with at least `min_gps` located GPS tweets — the
/// population the paper's spatial attributes exist for, and the slice
/// the accuracy gates in BENCH_infer.json are defined over.
struct StrategyEval {
  Strategy strategy = Strategy::kSpatial;
  int64_t min_gps = 0;

  int64_t users = 0;     ///< Users present in both evidence and truth.
  int64_t decided = 0;   ///< Predictions above the abstain threshold.
  int64_t abstained = 0;
  int64_t correct_district = 0;  ///< Decided & exact (state, county) match.
  int64_t correct_province = 0;  ///< Decided & state matches.

  int64_t gps_rich_users = 0;
  int64_t gps_rich_decided = 0;
  int64_t gps_rich_correct_district = 0;
  int64_t gps_rich_correct_province = 0;

  /// Top mispredictions among decided-but-wrong users, descending by
  /// count (ties: lexicographic), capped at a report-sized handful.
  std::vector<ConfusionPair> confusion;

  /// Accuracy over decided predictions (0 when none decided).
  double AccuracyDistrict() const;
  double AccuracyProvince() const;
  double GpsRichAccuracyDistrict() const;
  double GpsRichAccuracyProvince() const;
  /// Fraction of evaluated users the strategy abstained on.
  double AbstainRate() const;
};

/// Scores `strategy` over every user that appears in both the evidence
/// index and the truth sidecar (truth rows without evidence are skipped:
/// the index legitimately never saw users whose tweets were all
/// unsampled). Predicted districts are resolved to (state, county)
/// display names through the index's own gazetteer and compared against
/// the truth strings, so evaluation works across AdminDb instances.
StrategyEval EvaluateStrategy(const InferenceIndex& index,
                              const std::vector<io::TruthRecord>& truth,
                              Strategy strategy, const InferParams& params,
                              int64_t min_gps = 5,
                              int64_t max_confusion_pairs = 8);

/// Human-readable multi-strategy report (the `stir_cli infer` output).
std::string RenderEvalReport(const std::vector<StrategyEval>& evals);

}  // namespace stir::infer

#endif  // STIR_INFER_EVAL_H_
