#include "infer/eval.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/string_util.h"

namespace stir::infer {

namespace {

double Ratio(int64_t numerator, int64_t denominator) {
  if (denominator <= 0) return 0.0;
  return static_cast<double>(numerator) / static_cast<double>(denominator);
}

}  // namespace

double StrategyEval::AccuracyDistrict() const {
  return Ratio(correct_district, decided);
}
double StrategyEval::AccuracyProvince() const {
  return Ratio(correct_province, decided);
}
double StrategyEval::GpsRichAccuracyDistrict() const {
  return Ratio(gps_rich_correct_district, gps_rich_decided);
}
double StrategyEval::GpsRichAccuracyProvince() const {
  return Ratio(gps_rich_correct_province, gps_rich_decided);
}
double StrategyEval::AbstainRate() const { return Ratio(abstained, users); }

StrategyEval EvaluateStrategy(const InferenceIndex& index,
                              const std::vector<io::TruthRecord>& truth,
                              Strategy strategy, const InferParams& params,
                              int64_t min_gps, int64_t max_confusion_pairs) {
  STIR_CHECK(index.db() != nullptr);
  StrategyEval eval;
  eval.strategy = strategy;
  eval.min_gps = min_gps;

  std::unique_ptr<HomeInferrer> inferrer = MakeInferrer(strategy, params);
  // std::map keeps the confusion tally ordered, so equal-count pairs
  // tie-break lexicographically without a second sort key.
  std::map<std::pair<std::string, std::string>, int64_t> confusion;

  for (const io::TruthRecord& record : truth) {
    const UserEvidence* evidence = index.FindUser(record.user);
    if (evidence == nullptr) continue;  // tweets all unsampled; unscoreable
    ++eval.users;
    const bool gps_rich = evidence->gps_tweets >= min_gps;
    if (gps_rich) ++eval.gps_rich_users;

    Inference inference = inferrer->Infer(*evidence);
    if (!inference.decided) {
      ++eval.abstained;
      continue;
    }
    ++eval.decided;
    if (gps_rich) ++eval.gps_rich_decided;

    const geo::Region& predicted = index.db()->region(inference.district);
    const bool province_ok = predicted.state == record.home_state;
    const bool district_ok = province_ok && predicted.county ==
                                                record.home_county;
    if (province_ok) {
      ++eval.correct_province;
      if (gps_rich) ++eval.gps_rich_correct_province;
    }
    if (district_ok) {
      ++eval.correct_district;
      if (gps_rich) ++eval.gps_rich_correct_district;
    } else {
      ++confusion[{StrFormat("%s/%s", record.home_state.c_str(),
                             record.home_county.c_str()),
                   StrFormat("%s/%s", predicted.state.c_str(),
                             predicted.county.c_str())}];
    }
  }

  std::vector<ConfusionPair> pairs;
  pairs.reserve(confusion.size());
  for (const auto& [key, count] : confusion) {
    pairs.push_back({key.first, key.second, count});
  }
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const ConfusionPair& a, const ConfusionPair& b) {
                     return a.count > b.count;
                   });
  if (static_cast<int64_t>(pairs.size()) > max_confusion_pairs) {
    pairs.resize(static_cast<size_t>(max_confusion_pairs));
  }
  eval.confusion = std::move(pairs);
  return eval;
}

std::string RenderEvalReport(const std::vector<StrategyEval>& evals) {
  std::string out;
  for (const StrategyEval& eval : evals) {
    out += StrFormat("strategy %s\n", StrategyToString(eval.strategy));
    out += StrFormat(
        "  users evaluated      %lld (gps-rich >=%lld gps: %lld)\n",
        static_cast<long long>(eval.users),
        static_cast<long long>(eval.min_gps),
        static_cast<long long>(eval.gps_rich_users));
    out += StrFormat("  decided / abstained  %lld / %lld (abstain rate %.4f)\n",
                     static_cast<long long>(eval.decided),
                     static_cast<long long>(eval.abstained),
                     eval.AbstainRate());
    out += StrFormat("  accuracy@district    %.4f (province %.4f)\n",
                     eval.AccuracyDistrict(), eval.AccuracyProvince());
    out += StrFormat("  gps-rich accuracy    %.4f (province %.4f)\n",
                     eval.GpsRichAccuracyDistrict(),
                     eval.GpsRichAccuracyProvince());
    if (!eval.confusion.empty()) {
      out += "  top confusion (actual -> predicted)\n";
      for (const ConfusionPair& pair : eval.confusion) {
        out += StrFormat("    %-28s -> %-28s %lld\n", pair.actual.c_str(),
                         pair.predicted.c_str(),
                         static_cast<long long>(pair.count));
      }
    }
  }
  return out;
}

}  // namespace stir::infer
