#include "infer/inference_index.h"

#include <algorithm>

#include "common/clock.h"
#include "common/logging.h"
#include "io/corpus.h"
#include "text/normalize.h"

namespace stir::infer {

EvidenceBuilder::EvidenceBuilder(const geo::AdminDb* db)
    : db_(db), matcher_(db) {
  STIR_CHECK(db != nullptr);
}

void EvidenceBuilder::AddUser(twitter::UserId user) {
  users_.try_emplace(user);
}

void EvidenceBuilder::AddTweet(const twitter::Tweet& tweet) {
  Accum& accum = users_[tweet.user];
  ++accum.tweets;

  if (tweet.gps.has_value()) {
    auto located = db_->Locate(*tweet.gps);
    if (located.ok()) {
      RegionEvidence& region = accum.regions[*located];
      region.region = *located;
      ++region.gps_tweets;
      if (IsNightHour(HourOfDay(tweet.time))) ++region.night_gps_tweets;
    }
  }

  if (!tweet.text.empty()) {
    std::vector<std::string> tokens = text::TokenizeTweet(tweet.text);
    for (const text::PhraseMatch& match : matcher_.Match(tokens)) {
      // Only exact, unambiguous county mentions vote: a name shared by
      // several states (six Korean metros have a "Jung-gu") or a fuzzy
      // near-miss is noise, not evidence.
      if (match.kind != text::PhraseKind::kCounty || match.fuzzy ||
          match.regions.size() != 1) {
        continue;
      }
      RegionEvidence& region = accum.regions[match.regions.front()];
      region.region = match.regions.front();
      ++region.text_votes;
    }
  }
}

std::shared_ptr<const InferenceIndex> EvidenceBuilder::Build() const {
  auto index = std::make_shared<InferenceIndex>();
  index->db_ = db_;
  index->users_.reserve(users_.size());
  for (const auto& [user, accum] : users_) {
    UserEvidence evidence;
    evidence.user = user;
    evidence.tweets = accum.tweets;
    evidence.regions.reserve(accum.regions.size());
    for (const auto& [region_id, region] : accum.regions) {
      evidence.gps_tweets += region.gps_tweets;
      evidence.text_votes += region.text_votes;
      evidence.regions.push_back(region);
    }
    std::sort(evidence.regions.begin(), evidence.regions.end(),
              [](const RegionEvidence& a, const RegionEvidence& b) {
                return a.region < b.region;
              });
    index->users_.push_back(std::move(evidence));
  }
  std::sort(index->users_.begin(), index->users_.end(),
            [](const UserEvidence& a, const UserEvidence& b) {
              return a.user < b.user;
            });
  return index;
}

InferenceIndex InferenceIndex::Build(const twitter::Dataset& dataset,
                                     const geo::AdminDb& db) {
  EvidenceBuilder builder(&db);
  for (const twitter::User& user : dataset.users()) builder.AddUser(user.id);
  for (const twitter::Tweet& tweet : dataset.tweets()) {
    builder.AddTweet(tweet);
  }
  return *builder.Build();
}

InferenceIndex InferenceIndex::Build(const io::CorpusView& view,
                                     const geo::AdminDb& db) {
  EvidenceBuilder builder(&db);
  twitter::Tweet tweet;
  for (size_t row = 0; row < view.user_count(); ++row) {
    builder.AddUser(view.user_id(row));
  }
  for (size_t row = 0; row < view.tweet_count(); ++row) {
    tweet.id = view.tweet_id(row);
    tweet.user = view.user_id(view.tweet_user_row(row));
    tweet.time = view.tweet_time(row);
    if (view.tweet_has_gps(row)) {
      tweet.gps = view.tweet_gps(row);
    } else {
      tweet.gps.reset();
    }
    tweet.text.assign(view.tweet_text(row));
    builder.AddTweet(tweet);
  }
  return *builder.Build();
}

const UserEvidence* InferenceIndex::FindUser(twitter::UserId user) const {
  auto it = std::lower_bound(users_.begin(), users_.end(), user,
                             [](const UserEvidence& e, twitter::UserId id) {
                               return e.user < id;
                             });
  if (it == users_.end() || it->user != user) return nullptr;
  return &*it;
}

int64_t InferenceIndex::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(*this)) +
                  static_cast<int64_t>(users_.capacity() *
                                       sizeof(UserEvidence));
  for (const UserEvidence& user : users_) {
    bytes += static_cast<int64_t>(user.regions.capacity() *
                                  sizeof(RegionEvidence));
  }
  return bytes;
}

}  // namespace stir::infer
