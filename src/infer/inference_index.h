#ifndef STIR_INFER_INFERENCE_INDEX_H_
#define STIR_INFER_INFERENCE_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "geo/admin_db.h"
#include "text/gazetteer_matcher.h"
#include "twitter/dataset.h"
#include "twitter/model.h"

namespace stir::io {
class CorpusView;
}

namespace stir::infer {

/// ---------------------------------------------------------------------
/// stir::infer — home-location inference from tweet evidence alone
/// (DESIGN.md §16).
///
/// The paper *measures* profile↔GPS agreement; this subsystem inverts
/// the question ("A survey of location inference techniques on Twitter",
/// PAPERS.md): predict each user's home district from what they tweeted,
/// never from what they claimed. The blindness contract is structural:
/// evidence extraction reads tweet GPS points, tweet timestamps, and
/// tweet text — User::profile_location and the generator's ground truth
/// are not reachable from this layer, and a test corrupts both and
/// asserts byte-identical predictions.
/// ---------------------------------------------------------------------

/// Evidence about one user in one district. All counts are plain
/// integers folded commutatively, so any ingest order (batch dataset
/// walk, columnar corpus scan, streaming arrival) produces the same
/// values.
struct RegionEvidence {
  geo::RegionId region = geo::kInvalidRegion;
  /// Geotagged tweets reverse-geocoded into this district.
  int64_t gps_tweets = 0;
  /// Subset posted during the shared night window (stir::IsNightHour).
  int64_t night_gps_tweets = 0;
  /// Unambiguous gazetteer mentions of this district in tweet bodies.
  int64_t text_votes = 0;
};

/// Everything the inference strategies may see about one user.
struct UserEvidence {
  twitter::UserId user = twitter::kInvalidUser;
  /// Materialized tweet rows observed (GPS + sampled plain tweets).
  int64_t tweets = 0;
  int64_t gps_tweets = 0;   ///< Total located GPS tweets.
  int64_t text_votes = 0;   ///< Total unambiguous text mentions.
  /// Per-district evidence, ascending by region id (value-determined).
  std::vector<RegionEvidence> regions;
};

class InferenceIndex;

/// Incremental evidence accumulator: the one ingest path shared by the
/// batch builders and the streaming engine, so a sealed streaming index
/// is byte-identical to a batch build over the same prefix. Thread
/// compatibility matches the stream engine's: callers serialize Add*
/// externally; Build() snapshots may be taken between Adds.
class EvidenceBuilder {
 public:
  /// `db` must outlive the builder and every index built from it.
  explicit EvidenceBuilder(const geo::AdminDb* db);

  /// Registers a user (evidence-blind: only the id is read). Idempotent.
  void AddUser(twitter::UserId user);

  /// Folds one tweet: GPS points are reverse-geocoded through
  /// AdminDb::Locate (deterministic, fault-free — unlike the study's
  /// quota/fault-injected geocoder, so inference evidence never depends
  /// on a fault schedule), the night window is derived from the
  /// timestamp, and the body is tokenized and gazetteer-matched for
  /// unambiguous district mentions. Tweets of unregistered users
  /// register them implicitly.
  void AddTweet(const twitter::Tweet& tweet);

  /// Immutable value-determined snapshot: users ascending by id, regions
  /// ascending by id within each user.
  std::shared_ptr<const InferenceIndex> Build() const;

  int64_t user_count() const { return static_cast<int64_t>(users_.size()); }

 private:
  struct Accum {
    int64_t tweets = 0;
    std::unordered_map<geo::RegionId, RegionEvidence> regions;
  };

  const geo::AdminDb* db_;
  text::GazetteerMatcher matcher_;
  std::unordered_map<twitter::UserId, Accum> users_;
};

/// Immutable per-user evidence index, the inference twin of
/// serve::StudyIndex: built once (or republished per streaming epoch)
/// and shared read-only across serving workers. Only tweet evidence
/// enters; profile strings and ground truth never do.
class InferenceIndex {
 public:
  /// Batch build over a row-oriented dataset.
  static InferenceIndex Build(const twitter::Dataset& dataset,
                              const geo::AdminDb& db);
  /// Batch build over a zero-copy v3 corpus view (no materialization).
  static InferenceIndex Build(const io::CorpusView& view,
                              const geo::AdminDb& db);

  InferenceIndex() = default;

  /// O(log users); nullptr when the user is unknown.
  const UserEvidence* FindUser(twitter::UserId user) const;

  const std::vector<UserEvidence>& users() const { return users_; }
  size_t user_count() const { return users_.size(); }
  bool empty() const { return users_.empty(); }

  /// The gazetteer the evidence was geocoded against (display names for
  /// responses and reports). Null only for a default-constructed index.
  const geo::AdminDb* db() const { return db_; }

  int64_t MemoryBytes() const;

 private:
  friend class EvidenceBuilder;

  const geo::AdminDb* db_ = nullptr;
  /// Ascending by user id.
  std::vector<UserEvidence> users_;
};

}  // namespace stir::infer

#endif  // STIR_INFER_INFERENCE_INDEX_H_
