#include "infer/home_inferrer.h"

#include <algorithm>

#include "common/logging.h"

namespace stir::infer {

const char* StrategyToString(Strategy strategy) {
  switch (strategy) {
    case Strategy::kSpatial:
      return "spatial";
    case Strategy::kDiurnal:
      return "diurnal";
    case Strategy::kText:
      return "text";
  }
  return "unknown";
}

bool StrategyFromString(std::string_view name, Strategy* out) {
  STIR_CHECK(out != nullptr);
  if (name == "spatial") {
    *out = Strategy::kSpatial;
  } else if (name == "diurnal") {
    *out = Strategy::kDiurnal;
  } else if (name == "text") {
    *out = Strategy::kText;
  } else {
    return false;
  }
  return true;
}

namespace {

/// Shared argmax core: every strategy reduces to "weigh each district,
/// pick the heaviest, calibrate by share and evidence volume". Weights
/// are exact integers and ties break toward the smaller region id, so
/// the verdict is value-determined — identical across worker counts,
/// corpus formats, and ingest orders.
template <typename WeightFn>
Inference InferByWeight(const UserEvidence& evidence,
                        const InferParams& params, WeightFn&& weight_of) {
  Inference result;
  int64_t total = 0;
  int64_t top = 0;
  const RegionEvidence* winner = nullptr;
  for (const RegionEvidence& region : evidence.regions) {
    int64_t weight = weight_of(region);
    if (weight <= 0) continue;
    total += weight;
    // Regions are ascending by id, so strict > keeps the smallest id on
    // ties.
    if (weight > top) {
      top = weight;
      winner = &region;
    }
  }
  if (winner == nullptr || total <= 0) return result;  // no usable evidence

  double share = static_cast<double>(top) / static_cast<double>(total);
  double shrink = static_cast<double>(total) /
                  static_cast<double>(total + params.shrinkage_prior);
  result.confidence = share * shrink;
  result.district = winner->region;
  result.evidence = total;
  result.decided = result.confidence >= params.abstain_threshold;
  return result;
}

/// Night-window GPS tweets in the winning district (reported alongside
/// GPS verdicts so callers can see how much of the evidence was the
/// at-home signal).
int64_t NightEvidence(const UserEvidence& evidence, const Inference& result) {
  if (result.district == geo::kInvalidRegion) return 0;
  for (const RegionEvidence& region : evidence.regions) {
    if (region.region == result.district) return region.night_gps_tweets;
  }
  return 0;
}

class SpatialInferrer final : public HomeInferrer {
 public:
  explicit SpatialInferrer(const InferParams& params) : params_(params) {}
  Strategy strategy() const override { return Strategy::kSpatial; }

  Inference Infer(const UserEvidence& evidence) const override {
    Inference result =
        InferByWeight(evidence, params_, [](const RegionEvidence& region) {
          return region.gps_tweets;
        });
    result.night_evidence = NightEvidence(evidence, result);
    return result;
  }

 private:
  InferParams params_;
};

class DiurnalInferrer final : public HomeInferrer {
 public:
  explicit DiurnalInferrer(const InferParams& params) : params_(params) {}
  Strategy strategy() const override { return Strategy::kDiurnal; }

  Inference Infer(const UserEvidence& evidence) const override {
    // Each night tweet counts night_weight times: weight =
    // gps + (night_weight - 1) * night. With weight 1 this is exactly
    // the spatial strategy.
    const int64_t extra = std::max<int64_t>(params_.night_weight, 1) - 1;
    Inference result = InferByWeight(
        evidence, params_, [extra](const RegionEvidence& region) {
          return region.gps_tweets + extra * region.night_gps_tweets;
        });
    result.night_evidence = NightEvidence(evidence, result);
    return result;
  }

 private:
  InferParams params_;
};

class TextInferrer final : public HomeInferrer {
 public:
  explicit TextInferrer(const InferParams& params) : params_(params) {}
  Strategy strategy() const override { return Strategy::kText; }

  Inference Infer(const UserEvidence& evidence) const override {
    return InferByWeight(evidence, params_,
                         [](const RegionEvidence& region) {
                           return region.text_votes;
                         });
  }

 private:
  InferParams params_;
};

}  // namespace

std::unique_ptr<HomeInferrer> MakeInferrer(Strategy strategy,
                                           const InferParams& params) {
  switch (strategy) {
    case Strategy::kSpatial:
      return std::make_unique<SpatialInferrer>(params);
    case Strategy::kDiurnal:
      return std::make_unique<DiurnalInferrer>(params);
    case Strategy::kText:
      return std::make_unique<TextInferrer>(params);
  }
  STIR_CHECK(false) << "unknown strategy "
                    << static_cast<int>(strategy);
  return nullptr;
}

}  // namespace stir::infer
