#ifndef STIR_INFER_HOME_INFERRER_H_
#define STIR_INFER_HOME_INFERRER_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "geo/admin_db.h"
#include "infer/inference_index.h"

namespace stir::infer {

/// The pluggable inference strategies (DESIGN.md §16).
///
///   spatial — mode over the user's reverse-geocoded GPS points: the
///     district with the most geotagged tweets wins. The classical
///     baseline; systematically wrong for commuters (the workplace
///     out-tweets home) and socialites (home is buried in a flat spot
///     profile).
///   diurnal — spatial clustering with tweets posted inside the shared
///     night window (stir::IsNightHour) weighted up, per "Your Actions
///     Tell Where You Are" (PAPERS.md): people tweet from many places by
///     day but overwhelmingly from home at night. Recovers exactly the
///     archetypes spatial loses. The serving default.
///   text — fallback for users with no usable GPS: unambiguous gazetteer
///     mentions in tweet bodies ("... at Mapo-gu") vote for their
///     district. Much weaker evidence, surfaced as lower confidence.
enum class Strategy : int {
  kSpatial = 0,
  kDiurnal = 1,
  kText = 2,
};
inline constexpr int kNumStrategies = 3;

const char* StrategyToString(Strategy strategy);
/// False when `name` names no strategy ("spatial" | "diurnal" | "text").
bool StrategyFromString(std::string_view name, Strategy* out);

/// Strategy knobs, shared by serving, the CLI evaluator, and the bench
/// so one configuration means one behaviour everywhere.
struct InferParams {
  /// Strategy used when a request names none.
  Strategy default_strategy = Strategy::kDiurnal;
  /// Multiplier on night-window GPS tweets in the diurnal strategy
  /// (integer so the weighted counts stay exact and the argmax is
  /// value-determined on every platform).
  int64_t night_weight = 3;
  /// Minimum calibrated confidence to decide; below it the strategy
  /// abstains (serving answers the typed `low_confidence` envelope).
  double abstain_threshold = 0.4;
  /// Confidence shrinkage prior: the winning share is damped by
  /// n / (n + k) so a single-tweet "100% match" does not masquerade as
  /// certainty.
  int64_t shrinkage_prior = 2;
};

/// One prediction. `confidence` is the calibrated score that was
/// compared against the abstain threshold — reported on abstentions too,
/// so callers can distinguish "almost decided" from "no evidence".
struct Inference {
  /// False when the strategy abstained (confidence below threshold or no
  /// usable evidence of its kind).
  bool decided = false;
  geo::RegionId district = geo::kInvalidRegion;
  /// Winning-share confidence in [0, 1], shrunk toward 0 for thin
  /// evidence: (top weight / total weight) * (total / (total + prior)).
  double confidence = 0.0;
  /// Evidence units (GPS tweets or text votes) behind the verdict.
  int64_t evidence = 0;
  /// Night-window GPS tweets among the evidence (0 for text).
  int64_t night_evidence = 0;
};

/// One home-location inference strategy over per-user evidence. Pure and
/// stateless: Infer depends only on (evidence, params), so predictions
/// are deterministic on any thread and byte-identical across worker
/// counts. Implementations see UserEvidence only — profile strings and
/// ground truth are not reachable from this interface.
class HomeInferrer {
 public:
  virtual ~HomeInferrer() = default;

  virtual Strategy strategy() const = 0;
  const char* name() const { return StrategyToString(strategy()); }

  virtual Inference Infer(const UserEvidence& evidence) const = 0;
};

/// Builds the inferrer for `strategy` with `params`.
std::unique_ptr<HomeInferrer> MakeInferrer(Strategy strategy,
                                           const InferParams& params);

}  // namespace stir::infer

#endif  // STIR_INFER_HOME_INFERRER_H_
