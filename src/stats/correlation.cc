#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/descriptive.h"

namespace stir::stats {

StatusOr<double> PearsonCorrelation(const std::vector<double>& x,
                                    const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("size mismatch in correlation inputs");
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("need at least 2 points");
  }
  double mx = Mean(x);
  double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

/// Midranks (average rank for ties), 1-based.
std::vector<double> Midranks(const std::vector<double>& values) {
  size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

StatusOr<double> SpearmanCorrelation(const std::vector<double>& x,
                                     const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("size mismatch in correlation inputs");
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("need at least 2 points");
  }
  return PearsonCorrelation(Midranks(x), Midranks(y));
}

StatusOr<double> ChiSquareStatistic(const std::vector<double>& observed,
                                    const std::vector<double>& expected) {
  if (observed.size() != expected.size()) {
    return Status::InvalidArgument("size mismatch in chi-square inputs");
  }
  if (observed.empty()) {
    return Status::InvalidArgument("empty chi-square inputs");
  }
  double stat = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) {
      return Status::InvalidArgument("non-positive expected count");
    }
    double d = observed[i] - expected[i];
    stat += d * d / expected[i];
  }
  return stat;
}

BootstrapInterval BootstrapMeanCI(const std::vector<double>& values,
                                  double confidence, int resamples, Rng& rng) {
  BootstrapInterval interval;
  interval.point = Mean(values);
  if (values.size() < 2 || resamples < 2) {
    interval.lo = interval.hi = interval.point;
    return interval;
  }
  std::vector<double> means;
  means.reserve(static_cast<size_t>(resamples));
  int64_t n = static_cast<int64_t>(values.size());
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      sum += values[static_cast<size_t>(rng.UniformInt(0, n - 1))];
    }
    means.push_back(sum / static_cast<double>(n));
  }
  double alpha = (1.0 - confidence) / 2.0;
  interval.lo = Percentile(means, alpha * 100.0);
  interval.hi = Percentile(means, (1.0 - alpha) * 100.0);
  return interval;
}

}  // namespace stir::stats
