#ifndef STIR_STATS_CORRELATION_H_
#define STIR_STATS_CORRELATION_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace stir::stats {

/// Pearson correlation coefficient. Fails on mismatched or short (< 2)
/// inputs; returns 0 when either side has zero variance.
StatusOr<double> PearsonCorrelation(const std::vector<double>& x,
                                    const std::vector<double>& y);

/// Spearman rank correlation (Pearson on midranks, robust to ties).
StatusOr<double> SpearmanCorrelation(const std::vector<double>& x,
                                     const std::vector<double>& y);

/// Chi-square statistic for an observed-vs-expected count table.
/// Expected cells must be positive.
StatusOr<double> ChiSquareStatistic(const std::vector<double>& observed,
                                    const std::vector<double>& expected);

/// Percentile-bootstrap confidence interval for the mean.
struct BootstrapInterval {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};
BootstrapInterval BootstrapMeanCI(const std::vector<double>& values,
                                  double confidence, int resamples, Rng& rng);

}  // namespace stir::stats

#endif  // STIR_STATS_CORRELATION_H_
