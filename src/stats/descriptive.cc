#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace stir::stats {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return acc / static_cast<double>(values.size() - 1);
}

double Stddev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, int buckets) : lo_(lo), hi_(hi) {
  STIR_CHECK_LT(lo, hi);
  STIR_CHECK_GT(buckets, 0);
  counts_.assign(static_cast<size_t>(buckets), 0);
}

void Histogram::Add(double x) {
  double t = (x - lo_) / (hi_ - lo_);
  int i = static_cast<int>(t * static_cast<double>(counts_.size()));
  i = std::clamp(i, 0, static_cast<int>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(i)];
  ++total_;
}

int64_t Histogram::bucket_count(int i) const {
  STIR_CHECK_GE(i, 0);
  STIR_CHECK_LT(i, num_buckets());
  return counts_[static_cast<size_t>(i)];
}

double Histogram::bucket_lo(int i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(int i) const { return bucket_lo(i + 1); }

std::string Histogram::ToString(int bar_width) const {
  int64_t peak = 1;
  for (int64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (int i = 0; i < num_buckets(); ++i) {
    int64_t c = counts_[static_cast<size_t>(i)];
    int bar = static_cast<int>(static_cast<double>(c) /
                               static_cast<double>(peak) * bar_width);
    out += StrFormat("[%8.2f, %8.2f) %8lld |%s\n", bucket_lo(i), bucket_hi(i),
                     static_cast<long long>(c),
                     std::string(static_cast<size_t>(bar), '#').c_str());
  }
  return out;
}

}  // namespace stir::stats
