#ifndef STIR_STATS_DESCRIPTIVE_H_
#define STIR_STATS_DESCRIPTIVE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace stir::stats {

/// Mean of `values`; 0 for an empty vector.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 values.
double Variance(const std::vector<double>& values);
double Stddev(const std::vector<double>& values);

/// Median (average of middle two for even n); 0 for empty input.
double Median(std::vector<double> values);

/// Linear-interpolated percentile, p in [0, 100].
double Percentile(std::vector<double> values, double p);

/// Accumulates moments incrementally (Welford); avoids storing samples.
class RunningStats {
 public:
  void Add(double x);
  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 with fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi) with out-of-range clamping into the
/// edge buckets; used for report rendering.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void Add(double x);
  int64_t bucket_count(int i) const;
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  int64_t total() const { return total_; }
  double bucket_lo(int i) const;
  double bucket_hi(int i) const;

  /// ASCII rendering, one row per bucket with a proportional bar.
  std::string ToString(int bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace stir::stats

#endif  // STIR_STATS_DESCRIPTIVE_H_
