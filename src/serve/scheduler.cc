#include "serve/scheduler.h"

#include <algorithm>
#include <utility>

#include "obs/json.h"
#include "serve/stream_backend.h"

namespace stir::serve {

namespace {

int64_t ElapsedMicros(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

RequestScheduler::RequestScheduler(const StudyIndex* index,
                                   const ServeOptions& options)
    : RequestScheduler(
          // Non-owning alias: the caller keeps the index alive.
          std::shared_ptr<const StudyIndex>(std::shared_ptr<void>(), index),
          /*generation=*/0, options) {}

RequestScheduler::RequestScheduler(std::shared_ptr<const StudyIndex> index,
                                   int64_t generation,
                                   const ServeOptions& options)
    : options_(options),
      index_(std::move(index)),
      generation_(generation),
      pool_(std::max(1, options.workers), options.metrics) {
  options_.workers = std::max(1, options_.workers);
  options_.max_batch_size = std::max(1, options_.max_batch_size);
  options_.queue_capacity = std::max(1, options_.queue_capacity);
  // Tier thresholds: non-increasing, each at least 1 so every tier makes
  // progress on an idle server, tier 0 always the full queue. The clamp
  // chain enforces infer >= tier1 >= tier2 (tier numbers 1/2/3), so a
  // config that only sets the lookup/append limits keeps infer_user at
  // least as protected as the lookups.
  options_.infer_fill_limit =
      std::clamp(options_.infer_fill_limit, 0.0, 1.0);
  options_.tier1_fill_limit =
      std::clamp(options_.tier1_fill_limit, 0.0, options_.infer_fill_limit);
  options_.tier2_fill_limit =
      std::clamp(options_.tier2_fill_limit, 0.0, options_.tier1_fill_limit);
  const auto threshold = [&](double limit) {
    const double scaled = limit * static_cast<double>(options_.queue_capacity);
    return std::clamp(static_cast<int>(scaled), 1, options_.queue_capacity);
  };
  tier_thresholds_[0] = options_.queue_capacity;
  tier_thresholds_[1] = threshold(options_.infer_fill_limit);
  tier_thresholds_[2] = threshold(options_.tier1_fill_limit);
  tier_thresholds_[3] = threshold(options_.tier2_fill_limit);
  if (options_.infer_index != nullptr) {
    // Non-owning alias, like the batch StudyIndex constructor: the caller
    // keeps the evidence index alive.
    infer_index_ = std::shared_ptr<const infer::InferenceIndex>(
        std::shared_ptr<void>(), options_.infer_index);
  }
  if (obs::MetricsRegistry* m = options_.metrics; m != nullptr) {
    m_received_ = m->GetCounter("serve.requests.received");
    m_admitted_ = m->GetCounter("serve.requests.admitted");
    m_parse_errors_ = m->GetCounter("serve.requests.parse_errors");
    m_rejected_overload_ = m->GetCounter("serve.rejected.overload");
    m_rejected_shutdown_ = m->GetCounter("serve.rejected.shutdown");
    for (int t = 0; t < kNumShedTiers; ++t) {
      m_shed_tier_[t] =
          m->GetCounter("serve.shed.tier" + std::to_string(t));
    }
    m_responses_ = m->GetCounter("serve.responses");
    m_faults_injected_ = m->GetCounter("serve.faults_injected");
    for (int i = 0; i < kNumMethods; ++i) {
      m_method_[i] = m->GetCounter(
          std::string("serve.method.") +
          MethodToString(static_cast<Method>(i)));
    }
    if (options_.infer_index != nullptr) {
      m_infer_requests_ = m->GetCounter("infer.requests");
      m_infer_decided_ = m->GetCounter("infer.decided");
      m_infer_abstained_ = m->GetCounter("infer.abstained");
      m_infer_not_found_ = m->GetCounter("infer.not_found");
    }
    m_queue_depth_ = m->GetGauge("serve.queue_depth");
    m_queue_depth_max_ = m->GetGauge("serve.queue_depth_max");
    m_batch_size_ =
        m->GetHistogram("serve.batch_size", {1, 2, 4, 8, 16, 32, 64, 128});
    m_latency_us_ = m->GetHistogram(
        "serve.latency_us", {50, 100, 250, 500, 1'000, 2'500, 5'000, 10'000,
                             25'000, 50'000, 100'000, 250'000, 1'000'000});
    if (options_.default_deadline_ms > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      EnsureDeadlineMetricsLocked();
    }
  }
}

void RequestScheduler::EnsureDeadlineMetricsLocked() {
  if (m_deadline_exceeded_ != nullptr || options_.metrics == nullptr) return;
  m_deadline_requests_ = options_.metrics->GetCounter("serve.deadline.requests");
  m_deadline_exceeded_ = options_.metrics->GetCounter("serve.deadline.exceeded");
}

RequestScheduler::~RequestScheduler() { Drain(); }

void RequestScheduler::SwapIndex(std::shared_ptr<const StudyIndex> index,
                                 int64_t generation) {
  std::lock_guard<std::mutex> lock(index_mu_);
  index_ = std::move(index);
  generation_ = generation;
}

std::shared_ptr<const StudyIndex> RequestScheduler::PinIndex(
    int64_t* generation) const {
  std::lock_guard<std::mutex> lock(index_mu_);
  if (generation != nullptr) *generation = generation_;
  return index_;
}

void RequestScheduler::SwapInferIndex(
    std::shared_ptr<const infer::InferenceIndex> index) {
  std::lock_guard<std::mutex> lock(index_mu_);
  infer_index_ = std::move(index);
}

std::shared_ptr<const infer::InferenceIndex> RequestScheduler::PinInferIndex()
    const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return infer_index_;
}

bool RequestScheduler::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

SchedulerStats RequestScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string RequestScheduler::StatsResponseLocked(int64_t id) const {
  std::shared_ptr<const StudyIndex> pinned = PinIndex();
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("v");
  w.Int(kProtocolVersion);
  w.Key("id");
  w.Int(id);
  w.Key("ok");
  w.Bool(true);
  w.Key("result");
  w.BeginObject();
  w.Key("index");
  w.BeginObject();
  w.Key("users");
  w.Int(static_cast<int64_t>(pinned->user_count()));
  w.Key("districts");
  w.Int(static_cast<int64_t>(pinned->district_count()));
  w.Key("final_users");
  w.Int(pinned->final_users());
  w.Key("memory_bytes");
  w.Int(pinned->MemoryBytes());
  w.EndObject();
  // Config echo deliberately omits the worker count: responses must be
  // byte-identical under any worker count, and this is the one field
  // that would vary.
  w.Key("scheduler");
  w.BeginObject();
  w.Key("max_batch_size");
  w.Int(options_.max_batch_size);
  w.Key("batch_linger_us");
  w.Int(options_.batch_linger_us);
  w.Key("queue_capacity");
  w.Int(options_.queue_capacity);
  if (options_.default_deadline_ms > 0) {
    // Config-gated so a deadline-free server's stats stay byte-identical
    // to builds that predate deadlines.
    w.Key("default_deadline_ms");
    w.Int(options_.default_deadline_ms);
  }
  w.EndObject();
  w.Key("counters");
  w.BeginObject();
  w.Key("received");
  w.Int(stats_.received);
  w.Key("admitted");
  w.Int(stats_.admitted);
  w.Key("stats_served");
  w.Int(stats_.stats_served);
  w.Key("parse_errors");
  w.Int(stats_.parse_errors);
  w.Key("rejected_overload");
  w.Int(stats_.rejected_overload);
  w.Key("rejected_shutdown");
  w.Int(stats_.rejected_shutdown);
  if (options_.degraded_data) {
    w.Key("rejected_corrupt");
    w.Int(stats_.rejected_corrupt);
  }
  w.Key("shed");
  w.BeginObject();
  for (int t = 0; t < kNumShedTiers; ++t) {
    w.Key("tier" + std::to_string(t));
    w.Int(stats_.rejected_by_tier[t]);
  }
  w.EndObject();
  w.EndObject();
  w.Key("methods");
  w.BeginObject();
  for (int i = 0; i < kNumMethods; ++i) {
    w.Key(MethodToString(static_cast<Method>(i)));
    w.Int(stats_.method_counts[i]);
  }
  w.EndObject();
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

int RequestScheduler::TierThreshold(int tier) const {
  if (tier < 0) tier = 0;
  if (tier >= kNumShedTiers) tier = kNumShedTiers - 1;
  return tier_thresholds_[tier];
}

int RequestScheduler::GuaranteedAdmissionWindow() const {
  return tier_thresholds_[kNumShedTiers - 1];
}

std::future<std::string> RequestScheduler::SubmitLine(std::string_view line) {
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = promise->get_future();
  SubmitLineWith(line,
                 [promise](std::string response, const ResponseMeta&) {
                   promise->set_value(std::move(response));
                 });
  return future;
}

void RequestScheduler::SubmitLineWith(std::string_view line,
                                      ResponseCallback done) {
  // Parsing is pure; keep it outside the admission lock.
  ParseOutcome outcome = ParseRequest(line, options_.max_request_bytes);

  // Synchronous outcomes are rendered under the lock (admission order)
  // but delivered after releasing it, so the callback may take its own
  // locks without ordering against mu_.
  std::string response;
  ResponseMeta meta;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.received;
    obs::IncrementCounter(m_received_);

    if (!outcome.ok) {
      ++stats_.parse_errors;
      obs::IncrementCounter(m_parse_errors_);
      obs::IncrementCounter(m_responses_);
      response = ErrorResponse(outcome.has_id, outcome.id, outcome.code,
                               outcome.message);
    } else {
      meta.tier = ShedTier(outcome.request.method);
      // Append fence: while an append_tweets is between its execution
      // barrier and its index swap, hold later submissions back so they
      // pin the new generation. Appends are short (one epoch at most);
      // waiters re-check draining_ below after waking.
      admission_cv_.wait(lock, [&] { return appends_in_flight_ == 0; });
      if (draining_) {
        ++stats_.rejected_shutdown;
        obs::IncrementCounter(m_rejected_shutdown_);
        obs::IncrementCounter(m_responses_);
        response = ErrorResponse(true, outcome.id, ErrorCode::kShuttingDown,
                                 "server is draining");
      } else if (outcome.request.method == Method::kServerStats) {
        ++stats_.stats_served;
        ++stats_.method_counts[static_cast<int>(Method::kServerStats)];
        obs::IncrementCounter(
            m_method_[static_cast<int>(Method::kServerStats)]);
        obs::IncrementCounter(m_responses_);
        response = StatsResponseLocked(outcome.id);
      } else if (options_.degraded_data &&
                 outcome.request.method != Method::kIndexInfo) {
        // Degraded-data mode: the backing corpus failed verification, so
        // every data-plane answer would be built from suspect bytes.
        // Reject at admission with the retryable `data_corrupt` envelope;
        // server_stats (above) and index_info stay up as the control
        // plane an operator diagnoses the outage with.
        ++stats_.rejected_corrupt;
        obs::IncrementCounter(m_responses_);
        response = ErrorResponse(
            true, outcome.id, ErrorCode::kDataCorrupt,
            "backing corpus failed verification; serving degraded");
      } else if (queue_.size() >=
                 static_cast<size_t>(tier_thresholds_[meta.tier])) {
        // Tiered admission: the queue is fuller than this request
        // class's fill limit. Lower-value tiers hit their (smaller)
        // thresholds first, so under overload append_tweets sheds before
        // the lookups, and server_stats (answered above, no queue slot)
        // is never shed at all.
        meta.shed = true;
        ++stats_.rejected_overload;
        ++stats_.rejected_by_tier[meta.tier];
        obs::IncrementCounter(m_rejected_overload_);
        obs::IncrementCounter(m_shed_tier_[meta.tier]);
        obs::IncrementCounter(m_responses_);
        response = ErrorResponse(
            true, outcome.id, ErrorCode::kOverloaded,
            "admission queue is full; retry with backoff");
      } else if (outcome.request.method == Method::kAppendTweets) {
        // Executed in stream order at admission (no queue slot
        // consumed): counts as admitted, like any answered method.
        ++stats_.admitted;
        ++stats_.method_counts[static_cast<int>(Method::kAppendTweets)];
        obs::IncrementCounter(m_admitted_);
        obs::IncrementCounter(
            m_method_[static_cast<int>(Method::kAppendTweets)]);
        response = AppendLocked(lock, outcome.request);
        obs::IncrementCounter(m_responses_);
      } else {
        ++stats_.admitted;
        ++stats_.method_counts[static_cast<int>(outcome.request.method)];
        obs::IncrementCounter(m_admitted_);
        obs::IncrementCounter(
            m_method_[static_cast<int>(outcome.request.method)]);

        Pending pending;
        pending.request = std::move(outcome.request);
        pending.done = std::move(done);
        pending.seq = next_seq_++;
        if (m_latency_us_ != nullptr) {
          pending.enqueued = std::chrono::steady_clock::now();
        }
        // Per-request deadline_ms wins over the server default; with
        // neither, the clock is never consulted for this request.
        const int64_t deadline_ms = pending.request.deadline_ms > 0
                                        ? pending.request.deadline_ms
                                        : options_.default_deadline_ms;
        if (deadline_ms > 0) {
          pending.has_deadline = true;
          pending.deadline = std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(deadline_ms);
          EnsureDeadlineMetricsLocked();
          obs::IncrementCounter(m_deadline_requests_);
        }
        queue_.push_back(std::move(pending));
        if (m_queue_depth_ != nullptr) {
          m_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
          m_queue_depth_max_->SetMax(static_cast<int64_t>(queue_.size()));
        }
        if (queue_.size() >= static_cast<size_t>(options_.max_batch_size)) {
          batch_cv_.notify_one();
        }
        if (active_drainers_ < options_.workers) {
          ++active_drainers_;
          lock.unlock();
          pool_.Submit([this] { DrainLoop(); });
        }
        return;  // Asynchronous: a worker invokes the callback.
      }
    }
  }
  done(std::move(response), meta);
}

std::string RequestScheduler::AppendLocked(
    std::unique_lock<std::mutex>& lock, const Request& request) {
  if (options_.stream == nullptr) {
    return ErrorResponse(true, request.id, ErrorCode::kBadRequest,
                         "server is not in streaming mode");
  }
  // Barrier: every previously admitted request must have executed (and
  // pinned its generation) before the backend may swap in a new one. The
  // fence counter keeps later submissions out while we wait, so the
  // predicate's next_seq_ is frozen. The wait releases mu_, letting
  // drainers finish in-flight batches and bump executed_.
  ++appends_in_flight_;
  executed_cv_.wait(lock, [&] { return executed_ == next_seq_; });
  AppendOutcome out =
      options_.stream->Append(request.users, request.tweets);
  --appends_in_flight_;
  admission_cv_.notify_all();
  if (!out.ok) {
    return ErrorResponse(true, request.id, ErrorCode::kBadRequest,
                         out.error);
  }
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("v");
  w.Int(kProtocolVersion);
  w.Key("id");
  w.Int(request.id);
  w.Key("ok");
  w.Bool(true);
  w.Key("result");
  w.BeginObject();
  w.Key("appended_users");
  w.Int(out.users_appended);
  w.Key("appended_tweets");
  w.Int(out.tweets_appended);
  w.Key("epochs_sealed");
  w.Int(out.epochs_sealed);
  w.Key("generation");
  w.Int(out.generation);
  w.Key("pending");
  w.Int(out.pending_tweets);
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

void RequestScheduler::DrainLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (queue_.empty()) {
      --active_drainers_;
      if (active_drainers_ == 0) drained_cv_.notify_all();
      return;
    }
    if (options_.batch_linger_us > 0 &&
        queue_.size() < static_cast<size_t>(options_.max_batch_size) &&
        !draining_) {
      batch_cv_.wait_for(
          lock, std::chrono::microseconds(options_.batch_linger_us), [&] {
            return draining_ ||
                   queue_.size() >=
                       static_cast<size_t>(options_.max_batch_size);
          });
    }
    size_t n = std::min(queue_.size(),
                        static_cast<size_t>(options_.max_batch_size));
    std::vector<Pending> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    if (m_queue_depth_ != nullptr) {
      m_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
    lock.unlock();
    ProcessBatch(std::move(batch));
    lock.lock();
  }
}

void RequestScheduler::ProcessBatch(std::vector<Pending> batch) {
  obs::RecordSample(m_batch_size_, static_cast<int64_t>(batch.size()));
  // Pin one generation for the whole batch: every request in it answers
  // from the same consistent snapshot, and the shared_ptr keeps that
  // snapshot alive across any concurrent SwapIndex.
  int64_t generation = 0;
  std::shared_ptr<const StudyIndex> pinned = PinIndex(&generation);
  std::shared_ptr<const infer::InferenceIndex> pinned_infer = PinInferIndex();
  const bool streaming = options_.stream != nullptr;
  int64_t batch_span = obs::Tracer::kNoSpan;
  if (options_.tracer != nullptr) {
    batch_span = options_.tracer->BeginSpan("serve.batch");
    options_.tracer->AddAttribute(batch_span, "requests",
                                  static_cast<int64_t>(batch.size()));
  }
  int64_t deadlines_missed = 0;
  for (Pending& pending : batch) {
    int64_t request_span = obs::Tracer::kNoSpan;
    if (options_.tracer != nullptr && options_.trace_requests) {
      request_span =
          options_.tracer->BeginSpanUnder("serve.request", batch_span);
      options_.tracer->AddAttribute(request_span, "id", pending.request.id);
    }
    std::string response;
    ResponseMeta meta;
    meta.tier = ShedTier(pending.request.method);
    common::FaultInjector* injector = options_.fault_injector;
    if (pending.has_deadline &&
        std::chrono::steady_clock::now() >= pending.deadline) {
      // The client's budget expired while the request sat in the queue;
      // executing it now would burn index time on an answer nobody is
      // waiting for. Answer the retryable envelope instead.
      ++deadlines_missed;
      meta.deadline_expired = true;
      obs::IncrementCounter(m_deadline_exceeded_);
      response = ErrorResponse(
          true, pending.request.id, ErrorCode::kDeadlineExceeded,
          "deadline expired before execution; retry with backoff");
    } else if (injector != nullptr && injector->enabled() &&
               injector->Decide(pending.seq).injected()) {
      obs::IncrementCounter(m_faults_injected_);
      response = ErrorResponse(true, pending.request.id,
                               ErrorCode::kUnavailable,
                               "injected service fault; retry with backoff");
    } else if (pending.request.method == Method::kInferUser) {
      InferOutcome infer_outcome = InferOutcome::kRejected;
      response = ExecuteInferUser(pinned_infer.get(), options_.infer,
                                  pending.request, &infer_outcome);
      obs::IncrementCounter(m_infer_requests_);
      switch (infer_outcome) {
        case InferOutcome::kDecided:
          obs::IncrementCounter(m_infer_decided_);
          break;
        case InferOutcome::kAbstained:
          obs::IncrementCounter(m_infer_abstained_);
          break;
        case InferOutcome::kNotFound:
          obs::IncrementCounter(m_infer_not_found_);
          break;
        case InferOutcome::kRejected:
          break;
      }
    } else {
      response = ExecuteOnIndex(*pinned, pending.request, generation,
                                streaming);
    }
    if (options_.tracer != nullptr && options_.trace_requests) {
      options_.tracer->EndSpan(request_span);
    }
    if (m_latency_us_ != nullptr) {
      m_latency_us_->Record(ElapsedMicros(pending.enqueued));
    }
    obs::IncrementCounter(m_responses_);
    pending.done(std::move(response), meta);
  }
  if (options_.tracer != nullptr) {
    options_.tracer->EndSpan(batch_span);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    executed_ += static_cast<int64_t>(batch.size());
    stats_.deadline_exceeded += deadlines_missed;
  }
  executed_cv_.notify_all();
}

void RequestScheduler::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
  batch_cv_.notify_all();
}

void RequestScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  batch_cv_.notify_all();
  drained_cv_.wait(lock,
                   [&] { return queue_.empty() && active_drainers_ == 0; });
}

}  // namespace stir::serve
