#include "serve/scheduler.h"

#include <algorithm>
#include <utility>

#include "obs/json.h"

namespace stir::serve {

namespace {

std::future<std::string> ReadyResponse(std::string response) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  promise.set_value(std::move(response));
  return future;
}

int64_t ElapsedMicros(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

RequestScheduler::RequestScheduler(const StudyIndex* index,
                                   const ServeOptions& options)
    : index_(index),
      options_(options),
      pool_(std::max(1, options.workers), options.metrics) {
  options_.workers = std::max(1, options_.workers);
  options_.max_batch_size = std::max(1, options_.max_batch_size);
  options_.queue_capacity = std::max(1, options_.queue_capacity);
  if (obs::MetricsRegistry* m = options_.metrics; m != nullptr) {
    m_received_ = m->GetCounter("serve.requests.received");
    m_admitted_ = m->GetCounter("serve.requests.admitted");
    m_parse_errors_ = m->GetCounter("serve.requests.parse_errors");
    m_rejected_overload_ = m->GetCounter("serve.rejected.overload");
    m_rejected_shutdown_ = m->GetCounter("serve.rejected.shutdown");
    m_responses_ = m->GetCounter("serve.responses");
    m_faults_injected_ = m->GetCounter("serve.faults_injected");
    for (int i = 0; i < kNumMethods; ++i) {
      m_method_[i] = m->GetCounter(
          std::string("serve.method.") +
          MethodToString(static_cast<Method>(i)));
    }
    m_queue_depth_ = m->GetGauge("serve.queue_depth");
    m_queue_depth_max_ = m->GetGauge("serve.queue_depth_max");
    m_batch_size_ =
        m->GetHistogram("serve.batch_size", {1, 2, 4, 8, 16, 32, 64, 128});
    m_latency_us_ = m->GetHistogram(
        "serve.latency_us", {50, 100, 250, 500, 1'000, 2'500, 5'000, 10'000,
                             25'000, 50'000, 100'000, 250'000, 1'000'000});
  }
}

RequestScheduler::~RequestScheduler() { Drain(); }

bool RequestScheduler::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

SchedulerStats RequestScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string RequestScheduler::StatsResponseLocked(int64_t id) const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("v");
  w.Int(kProtocolVersion);
  w.Key("id");
  w.Int(id);
  w.Key("ok");
  w.Bool(true);
  w.Key("result");
  w.BeginObject();
  w.Key("index");
  w.BeginObject();
  w.Key("users");
  w.Int(static_cast<int64_t>(index_->user_count()));
  w.Key("districts");
  w.Int(static_cast<int64_t>(index_->district_count()));
  w.Key("final_users");
  w.Int(index_->final_users());
  w.Key("memory_bytes");
  w.Int(index_->MemoryBytes());
  w.EndObject();
  // Config echo deliberately omits the worker count: responses must be
  // byte-identical under any worker count, and this is the one field
  // that would vary.
  w.Key("scheduler");
  w.BeginObject();
  w.Key("max_batch_size");
  w.Int(options_.max_batch_size);
  w.Key("batch_linger_us");
  w.Int(options_.batch_linger_us);
  w.Key("queue_capacity");
  w.Int(options_.queue_capacity);
  w.EndObject();
  w.Key("counters");
  w.BeginObject();
  w.Key("received");
  w.Int(stats_.received);
  w.Key("admitted");
  w.Int(stats_.admitted);
  w.Key("stats_served");
  w.Int(stats_.stats_served);
  w.Key("parse_errors");
  w.Int(stats_.parse_errors);
  w.Key("rejected_overload");
  w.Int(stats_.rejected_overload);
  w.Key("rejected_shutdown");
  w.Int(stats_.rejected_shutdown);
  w.EndObject();
  w.Key("methods");
  w.BeginObject();
  for (int i = 0; i < kNumMethods; ++i) {
    w.Key(MethodToString(static_cast<Method>(i)));
    w.Int(stats_.method_counts[i]);
  }
  w.EndObject();
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

std::future<std::string> RequestScheduler::SubmitLine(std::string_view line) {
  // Parsing is pure; keep it outside the admission lock.
  ParseOutcome outcome = ParseRequest(line, options_.max_request_bytes);

  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.received;
  obs::IncrementCounter(m_received_);

  if (!outcome.ok) {
    ++stats_.parse_errors;
    obs::IncrementCounter(m_parse_errors_);
    obs::IncrementCounter(m_responses_);
    return ReadyResponse(ErrorResponse(outcome.has_id, outcome.id,
                                       outcome.code, outcome.message));
  }
  if (draining_) {
    ++stats_.rejected_shutdown;
    obs::IncrementCounter(m_rejected_shutdown_);
    obs::IncrementCounter(m_responses_);
    return ReadyResponse(ErrorResponse(true, outcome.id,
                                       ErrorCode::kShuttingDown,
                                       "server is draining"));
  }
  if (outcome.request.method == Method::kServerStats) {
    ++stats_.stats_served;
    ++stats_.method_counts[static_cast<int>(Method::kServerStats)];
    obs::IncrementCounter(
        m_method_[static_cast<int>(Method::kServerStats)]);
    obs::IncrementCounter(m_responses_);
    return ReadyResponse(StatsResponseLocked(outcome.id));
  }
  if (queue_.size() >= static_cast<size_t>(options_.queue_capacity)) {
    ++stats_.rejected_overload;
    obs::IncrementCounter(m_rejected_overload_);
    obs::IncrementCounter(m_responses_);
    return ReadyResponse(ErrorResponse(
        true, outcome.id, ErrorCode::kOverloaded,
        "admission queue is full; retry with backoff"));
  }

  ++stats_.admitted;
  ++stats_.method_counts[static_cast<int>(outcome.request.method)];
  obs::IncrementCounter(m_admitted_);
  obs::IncrementCounter(m_method_[static_cast<int>(outcome.request.method)]);

  Pending pending;
  pending.request = std::move(outcome.request);
  pending.seq = next_seq_++;
  if (m_latency_us_ != nullptr) {
    pending.enqueued = std::chrono::steady_clock::now();
  }
  std::future<std::string> future = pending.promise.get_future();
  queue_.push_back(std::move(pending));
  if (m_queue_depth_ != nullptr) {
    m_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    m_queue_depth_max_->SetMax(static_cast<int64_t>(queue_.size()));
  }
  if (queue_.size() >= static_cast<size_t>(options_.max_batch_size)) {
    batch_cv_.notify_one();
  }
  if (active_drainers_ < options_.workers) {
    ++active_drainers_;
    lock.unlock();
    pool_.Submit([this] { DrainLoop(); });
  }
  return future;
}

void RequestScheduler::DrainLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (queue_.empty()) {
      --active_drainers_;
      if (active_drainers_ == 0) drained_cv_.notify_all();
      return;
    }
    if (options_.batch_linger_us > 0 &&
        queue_.size() < static_cast<size_t>(options_.max_batch_size) &&
        !draining_) {
      batch_cv_.wait_for(
          lock, std::chrono::microseconds(options_.batch_linger_us), [&] {
            return draining_ ||
                   queue_.size() >=
                       static_cast<size_t>(options_.max_batch_size);
          });
    }
    size_t n = std::min(queue_.size(),
                        static_cast<size_t>(options_.max_batch_size));
    std::vector<Pending> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    if (m_queue_depth_ != nullptr) {
      m_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
    lock.unlock();
    ProcessBatch(std::move(batch));
    lock.lock();
  }
}

void RequestScheduler::ProcessBatch(std::vector<Pending> batch) {
  obs::RecordSample(m_batch_size_, static_cast<int64_t>(batch.size()));
  int64_t batch_span = obs::Tracer::kNoSpan;
  if (options_.tracer != nullptr) {
    batch_span = options_.tracer->BeginSpan("serve.batch");
    options_.tracer->AddAttribute(batch_span, "requests",
                                  static_cast<int64_t>(batch.size()));
  }
  for (Pending& pending : batch) {
    int64_t request_span = obs::Tracer::kNoSpan;
    if (options_.tracer != nullptr && options_.trace_requests) {
      request_span =
          options_.tracer->BeginSpanUnder("serve.request", batch_span);
      options_.tracer->AddAttribute(request_span, "id", pending.request.id);
    }
    std::string response;
    common::FaultInjector* injector = options_.fault_injector;
    if (injector != nullptr && injector->enabled() &&
        injector->Decide(pending.seq).injected()) {
      obs::IncrementCounter(m_faults_injected_);
      response = ErrorResponse(true, pending.request.id,
                               ErrorCode::kUnavailable,
                               "injected service fault; retry with backoff");
    } else {
      response = ExecuteOnIndex(*index_, pending.request);
    }
    if (options_.tracer != nullptr && options_.trace_requests) {
      options_.tracer->EndSpan(request_span);
    }
    if (m_latency_us_ != nullptr) {
      m_latency_us_->Record(ElapsedMicros(pending.enqueued));
    }
    obs::IncrementCounter(m_responses_);
    pending.promise.set_value(std::move(response));
  }
  if (options_.tracer != nullptr) {
    options_.tracer->EndSpan(batch_span);
  }
}

void RequestScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  batch_cv_.notify_all();
  drained_cv_.wait(lock,
                   [&] { return queue_.empty() && active_drainers_ == 0; });
}

}  // namespace stir::serve
