#ifndef STIR_SERVE_OPTIONS_H_
#define STIR_SERVE_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "common/fault.h"
#include "infer/home_inferrer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace stir::infer {
class InferenceIndex;
}

namespace stir::serve {

class StreamBackend;

/// Knobs for the query-serving layer (DESIGN.md §10). The defaults give a
/// small multi-threaded server with micro-batching on and a bounded
/// admission queue; every pointer is optional and not owned.
struct ServeOptions {
  /// Worker threads executing request batches; >= 1. The scheduler runs
  /// at most `workers` batches concurrently on its common::ThreadPool.
  int workers = 4;
  /// Requests coalesced into one batch (>= 1). 1 disables micro-batching:
  /// every request runs as its own pool task.
  int max_batch_size = 16;
  /// How long a worker lingers for more requests before running a partial
  /// batch, in microseconds of wall time. 0 — the default, and the only
  /// setting the deterministic tests use — runs whatever is queued
  /// immediately; latency-tolerant deployments trade up to this long per
  /// batch for fuller batches.
  int64_t batch_linger_us = 0;
  /// Bounded admission queue. A request arriving while `queue_capacity`
  /// requests are already pending is rejected immediately with an
  /// `overloaded` error response — explicit backpressure, never a hang.
  int queue_capacity = 1024;
  /// Requests longer than this many bytes (the raw line) are rejected
  /// with an `oversized` error without being parsed.
  size_t max_request_bytes = 64 * 1024;

  /// Server-side deadline, in ms from admission, applied to requests
  /// that carry no "deadline_ms" of their own. A request whose deadline
  /// has expired by the time a worker dispatches its batch is answered
  /// with the retryable `deadline_exceeded` envelope instead of being
  /// executed late (the client has given up; the work is pure waste).
  /// 0 — the default — imposes none, and with no per-request deadlines
  /// either, the deadline path is completely inert: no clocks read, no
  /// metrics registered, responses byte-identical to a deadline-free
  /// build.
  int64_t default_deadline_ms = 0;

  /// Degraded-data mode for a server whose backing corpus failed
  /// verification (CRC mismatch / SIGBUS at load). Data-plane methods
  /// (lookup_*, topk_summary, append_tweets) are answered at admission
  /// with the retryable `data_corrupt` envelope; the control plane
  /// (server_stats, index_info) keeps working so an operator can
  /// diagnose the outage. Off by default: a healthy server never emits
  /// `data_corrupt`.
  bool degraded_data = false;

  /// Tiered admission control (DESIGN.md §13). Each shed tier may fill
  /// the admission queue only up to `queue_capacity * limit`: once the
  /// queue is fuller than a tier's limit, requests of that tier are
  /// rejected with the retryable `overloaded` envelope while
  /// higher-value tiers keep getting through. Tier 0 (`server_stats`)
  /// always has the full queue; 1.0 — the default — collapses the tiers
  /// back into the single blanket cutoff at `queue_capacity`.
  /// Invariant enforced at construction:
  /// tier3 <= tier2 <= infer <= 1.
  double infer_fill_limit = 1.0;  ///< infer_user (shed tier 1).
  double tier1_fill_limit = 1.0;  ///< lookup_* / topk_summary / index_info
                                  ///< (shed tier 2; name predates infer).
  double tier2_fill_limit = 1.0;  ///< append_tweets (shed tier 3).

  /// Metrics sink (not owned). Populates the `serve.*` namespace:
  /// counters `serve.requests.received/admitted/parse_errors`,
  /// `serve.rejected.overload/shutdown`, `serve.responses`,
  /// `serve.method.<name>`, `serve.faults_injected`; gauges
  /// `serve.queue_depth` / `serve.queue_depth_max`; histograms
  /// `serve.batch_size` and `serve.latency_us` (admission to response,
  /// wall time).
  obs::MetricsRegistry* metrics = nullptr;
  /// Tracer (not owned): one `serve.batch` span per executed batch with a
  /// `requests` attribute, plus per-request `serve.request` child spans
  /// when `trace_requests` is set.
  obs::Tracer* tracer = nullptr;
  bool trace_requests = false;

  /// Fault hook on the request handlers (not owned). Decisions are keyed
  /// on the request's admission sequence number, so a fixed single-client
  /// stream sees identical fault placement under any worker count. An
  /// injected fault yields an `unavailable` error response; clients
  /// should treat it exactly like `overloaded` — retryable with
  /// common::RetryPolicy backoff (DESIGN.md §10 documents the contract).
  common::FaultInjector* fault_injector = nullptr;

  /// Streaming ingest hook (not owned; null on a batch server). When set,
  /// append_tweets requests are forwarded to it at admission — after all
  /// previously admitted requests have executed — and the backend may
  /// swap new index generations into the scheduler (DESIGN.md §12).
  /// Without it, append_tweets fails with `bad_request`.
  StreamBackend* stream = nullptr;

  /// Evidence index for infer_user (not owned; null disables inference —
  /// infer_user then answers `bad_request`). A streaming backend may
  /// swap newer generations in via RequestScheduler::SwapInferIndex.
  /// Adds `infer.requests/decided/abstained/not_found` counters to the
  /// metrics namespace when serving.
  const infer::InferenceIndex* infer_index = nullptr;
  /// Strategy knobs for infer_user (default strategy, night weight,
  /// abstain threshold).
  infer::InferParams infer;
};

}  // namespace stir::serve

#endif  // STIR_SERVE_OPTIONS_H_
