#ifndef STIR_SERVE_SERVER_H_
#define STIR_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "serve/options.h"
#include "serve/scheduler.h"
#include "serve/study_index.h"

namespace stir::serve {

/// In-process front-end over the RequestScheduler: submit request lines,
/// get response lines. Deterministic — the scheduler's admission order is
/// the submission order, and ServeStream writes responses in request
/// order, so an identical request stream produces byte-identical output
/// under any worker count.
class Server {
 public:
  /// `index` must outlive the server (non-owning; generation 0).
  Server(const StudyIndex* index, const ServeOptions& options);

  /// Generation-aware constructor for streaming servers: the scheduler
  /// co-owns `index` and serves it as `generation` until the stream
  /// backend swaps in a successor.
  Server(std::shared_ptr<const StudyIndex> index, int64_t generation,
         const ServeOptions& options);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// One request line in, one response-line future out (always becomes
  /// ready, never throws).
  std::future<std::string> SubmitLine(std::string_view line);

  /// Serves line-delimited requests from `in`, writing one response line
  /// per request to `out` in request order. Pipelines up to the
  /// scheduler's queue capacity so batching engages, but never more — a
  /// single streamed client can therefore never trip the overload
  /// rejection, keeping its output deterministic. Returns the number of
  /// requests served.
  int64_t ServeStream(std::istream& in, std::ostream& out);

  /// Graceful drain (idempotent; also run by the destructor).
  void Drain();

  SchedulerStats stats() const { return scheduler_.stats(); }
  RequestScheduler& scheduler() { return scheduler_; }
  /// The live index. On a streaming server the reference is only stable
  /// until the next swap — pin via scheduler().PinIndex() to hold it.
  const StudyIndex& index() const { return *scheduler_.PinIndex(); }

 private:
  RequestScheduler scheduler_;
};

/// Blocking TCP front-end: one listener thread accepting loopback
/// connections, one handler thread per connection speaking the
/// line-delimited protocol. Responses go back in request order per
/// connection; concurrent connections share the scheduler's admission
/// queue (and can therefore observe `overloaded` under load — that is the
/// backpressure contract, not a bug).
class TcpServer {
 public:
  /// `server` must outlive the TcpServer.
  TcpServer(Server* server, int max_pipeline);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — read it back
  /// with port()) and starts the accept loop.
  Status Start(uint16_t port);

  /// Stops accepting, shuts down live connections, joins all threads.
  /// Idempotent. Does NOT drain the scheduler — the owner decides when.
  void Stop();

  uint16_t port() const { return port_; }
  int64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  Server* server_;
  int max_pipeline_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> connections_accepted_{0};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace stir::serve

#endif  // STIR_SERVE_SERVER_H_
