#ifndef STIR_SERVE_SERVER_H_
#define STIR_SERVE_SERVER_H_

#include <cstdint>
#include <future>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

#include "common/status.h"
#include "serve/options.h"
#include "serve/scheduler.h"
#include "serve/study_index.h"

namespace stir::serve {

/// In-process front-end over the RequestScheduler: submit request lines,
/// get response lines. Deterministic — the scheduler's admission order is
/// the submission order, and ServeStream writes responses in request
/// order, so an identical request stream produces byte-identical output
/// under any worker count.
///
/// Network serving lives in stir::net (DESIGN.md §13): net::EpollServer
/// multiplexes many connections over this same Server via SubmitLineWith.
class Server {
 public:
  /// `index` must outlive the server (non-owning; generation 0).
  Server(const StudyIndex* index, const ServeOptions& options);

  /// Generation-aware constructor for streaming servers: the scheduler
  /// co-owns `index` and serves it as `generation` until the stream
  /// backend swaps in a successor.
  Server(std::shared_ptr<const StudyIndex> index, int64_t generation,
         const ServeOptions& options);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// One request line in, one response-line future out (always becomes
  /// ready, never throws).
  std::future<std::string> SubmitLine(std::string_view line);

  /// Callback flavor for event-loop front-ends; see
  /// RequestScheduler::SubmitLineWith for the threading contract.
  void SubmitLineWith(std::string_view line, ResponseCallback done);

  /// Serves line-delimited requests from `in`, writing one response line
  /// per request to `out` in request order. Pipelines up to the
  /// scheduler's guaranteed-admission window so batching engages but a
  /// single streamed client can never trip overload rejection (not even
  /// a tiered one), keeping its output deterministic. Returns the number
  /// of requests served.
  int64_t ServeStream(std::istream& in, std::ostream& out);

  /// Graceful drain (idempotent; also run by the destructor). BeginDrain
  /// is the non-blocking half — see RequestScheduler::BeginDrain.
  void Drain();
  void BeginDrain();

  SchedulerStats stats() const { return scheduler_.stats(); }
  RequestScheduler& scheduler() { return scheduler_; }
  /// The live index. On a streaming server the reference is only stable
  /// until the next swap — pin via scheduler().PinIndex() to hold it.
  const StudyIndex& index() const { return *scheduler_.PinIndex(); }

 private:
  RequestScheduler scheduler_;
};

}  // namespace stir::serve

#endif  // STIR_SERVE_SERVER_H_
