#include "serve/protocol.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/string_util.h"
#include "obs/json.h"

namespace stir::serve {

namespace {

using obs::JsonValue;
using obs::JsonWriter;

ParseOutcome Failure(ErrorCode code, std::string message, bool has_id = false,
                     int64_t id = -1) {
  ParseOutcome outcome;
  outcome.ok = false;
  outcome.code = code;
  outcome.message = std::move(message);
  outcome.has_id = has_id;
  outcome.id = id;
  return outcome;
}

/// Envelope prefix shared by success and error responses.
void BeginResponse(JsonWriter* w, int64_t id, bool has_id, bool ok) {
  w->BeginObject();
  w->Key("v");
  w->Int(kProtocolVersion);
  w->Key("id");
  if (has_id) {
    w->Int(id);
  } else {
    w->Null();
  }
  w->Key("ok");
  w->Bool(ok);
}

std::string NotFoundResponse(int64_t id, std::string_view message) {
  return ErrorResponse(true, id, ErrorCode::kNotFound, message);
}

void WriteConcentration(JsonWriter* w,
                        const core::ConcentrationMetrics& metrics) {
  w->BeginObject();
  w->Key("entropy_bits");
  w->FixedDouble(metrics.entropy_bits, 6);
  w->Key("normalized_entropy");
  w->FixedDouble(metrics.normalized_entropy, 6);
  w->Key("gini");
  w->FixedDouble(metrics.gini, 6);
  w->Key("top_share");
  w->FixedDouble(metrics.top_share, 6);
  w->Key("matched_share");
  w->FixedDouble(metrics.matched_share, 6);
  w->EndObject();
}

std::string LookupUser(const StudyIndex& index, const Request& request) {
  const UserEntry* entry = index.FindUser(request.user);
  if (entry == nullptr) {
    return NotFoundResponse(
        request.id, StrFormat("user %lld is not in the final study sample",
                              static_cast<long long>(request.user)));
  }
  JsonWriter w;
  BeginResponse(&w, request.id, true, true);
  w.Key("result");
  w.BeginObject();
  w.Key("user");
  w.Int(entry->user);
  w.Key("group");
  w.String(core::TopKGroupToString(entry->group));
  w.Key("match_rank");
  w.Int(entry->match_rank);
  w.Key("profile_district");
  if (entry->profile_district != kInvalidName) {
    w.String(index.name(entry->profile_district));
  } else {
    w.Null();
  }
  w.Key("gps_tweets");
  w.Int(entry->gps_tweets);
  w.Key("matched_tweets");
  w.Int(entry->matched_tweets);
  w.Key("locations");
  w.BeginArray();
  for (const RankedLocation* location = index.LocationsBegin(*entry);
       location != index.LocationsEnd(*entry); ++location) {
    w.BeginObject();
    w.Key("district");
    w.String(index.name(location->district));
    w.Key("count");
    w.Int(location->count);
    w.Key("matched");
    w.Bool(location->matched);
    w.EndObject();
  }
  w.EndArray();
  w.Key("concentration");
  WriteConcentration(&w, entry->concentration);
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

std::string LookupDistrict(const StudyIndex& index, const Request& request) {
  const DistrictEntry* entry =
      index.FindDistrict(request.state, request.county);
  if (entry == nullptr) {
    return NotFoundResponse(
        request.id,
        StrFormat("district '%s %s' has no users in the index",
                  request.state.c_str(), request.county.c_str()));
  }
  JsonWriter w;
  BeginResponse(&w, request.id, true, true);
  w.Key("result");
  w.BeginObject();
  w.Key("district");
  w.String(index.name(entry->name));
  w.Key("users");
  w.Int(entry->num_users);
  w.Key("gps_tweets");
  w.Int(entry->gps_tweets);
  w.Key("profile_users");
  w.Int(entry->profile_users);
  w.Key("offset");
  w.Int(request.offset);
  const twitter::UserId* begin = index.PostingsBegin(*entry);
  const twitter::UserId* end = index.PostingsEnd(*entry);
  int64_t total = end - begin;
  int64_t first = std::min<int64_t>(request.offset, total);
  int64_t count = std::min<int64_t>(request.limit, total - first);
  w.Key("returned");
  w.Int(count);
  w.Key("user_ids");
  w.BeginArray();
  for (int64_t i = 0; i < count; ++i) {
    w.Int(begin[first + i]);
  }
  w.EndArray();
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

std::string TopkSummary(const StudyIndex& index, const Request& request) {
  JsonWriter w;
  BeginResponse(&w, request.id, true, true);
  w.Key("result");
  w.BeginObject();
  w.Key("final_users");
  w.Int(index.final_users());
  w.Key("overall_avg_locations");
  w.FixedDouble(index.overall_avg_locations(), 6);
  w.Key("groups");
  w.BeginArray();
  for (int g = 0; g < core::kNumTopKGroups; ++g) {
    const core::GroupStats& stats =
        index.group(static_cast<core::TopKGroup>(g));
    w.BeginObject();
    w.Key("group");
    w.String(core::TopKGroupToString(static_cast<core::TopKGroup>(g)));
    w.Key("users");
    w.Int(stats.users);
    w.Key("user_share");
    w.FixedDouble(stats.user_share, 6);
    w.Key("gps_tweets");
    w.Int(stats.gps_tweets);
    w.Key("tweet_share");
    w.FixedDouble(stats.tweet_share, 6);
    w.Key("avg_tweet_locations");
    w.FixedDouble(stats.avg_tweet_locations, 6);
    w.EndObject();
  }
  w.EndArray();
  // The funnel rides along so consumers can see the selection the sample
  // went through (Pavalanathan & Eisenstein's bias caveat): how many
  // crawled users the served "final" population actually represents.
  w.Key("funnel");
  w.BeginObject();
  w.Key("crawled_users");
  w.Int(index.funnel().crawled_users);
  w.Key("well_defined_users");
  w.Int(index.funnel().well_defined_users);
  w.Key("gps_tweets");
  w.Int(index.funnel().gps_tweets);
  w.Key("geocode_failures");
  w.Int(index.funnel().geocode_failures);
  w.Key("final_users");
  w.Int(index.funnel().final_users);
  w.EndObject();
  w.Key("districts");
  w.Int(static_cast<int64_t>(index.district_count()));
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

/// Strict member extraction helpers. Each returns false after filling
/// `*outcome` with the schema violation.

bool RequireInt(const JsonValue& value, const char* what, int64_t* out,
                ParseOutcome* outcome, bool has_id, int64_t id) {
  if (value.kind != JsonValue::Kind::kNumber || !value.is_int) {
    *outcome = Failure(ErrorCode::kBadRequest,
                       StrFormat("'%s' must be an integer", what), has_id, id);
    return false;
  }
  *out = value.integer;
  return true;
}

bool RequireString(const JsonValue& value, const char* what, std::string* out,
                   ParseOutcome* outcome, int64_t id) {
  if (value.kind != JsonValue::Kind::kString || value.string.empty()) {
    *outcome = Failure(ErrorCode::kBadRequest,
                       StrFormat("'%s' must be a non-empty string", what),
                       true, id);
    return false;
  }
  *out = value.string;
  return true;
}

/// Validates one append_tweets user record:
///   {"id":900,"handle":"h","location":"Seoul Mapo-gu","total_tweets":3}
/// Only "id" is required; unknown keys are rejected like everywhere else.
bool ParseAppendUser(const JsonValue& value, size_t position,
                     twitter::User* user, ParseOutcome* outcome, int64_t id) {
  if (!value.IsObject()) {
    *outcome = Failure(ErrorCode::kBadRequest,
                       StrFormat("users[%zu] must be an object", position),
                       true, id);
    return false;
  }
  for (const auto& [key, unused] : value.members) {
    if (key != "id" && key != "handle" && key != "location" &&
        key != "total_tweets") {
      *outcome = Failure(
          ErrorCode::kBadRequest,
          StrFormat("users[%zu]: unknown key '%s'", position, key.c_str()),
          true, id);
      return false;
    }
  }
  const JsonValue* user_id = value.Find("id");
  if (user_id == nullptr) {
    *outcome = Failure(ErrorCode::kBadRequest,
                       StrFormat("users[%zu]: missing 'id'", position), true,
                       id);
    return false;
  }
  int64_t parsed_id = -1;
  if (!RequireInt(*user_id, "users[].id", &parsed_id, outcome, true, id)) {
    return false;
  }
  if (parsed_id < 0) {
    *outcome = Failure(ErrorCode::kBadRequest,
                       StrFormat("users[%zu]: 'id' must be >= 0", position),
                       true, id);
    return false;
  }
  user->id = parsed_id;
  if (const JsonValue* handle = value.Find("handle"); handle != nullptr) {
    if (handle->kind != JsonValue::Kind::kString) {
      *outcome = Failure(
          ErrorCode::kBadRequest,
          StrFormat("users[%zu]: 'handle' must be a string", position), true,
          id);
      return false;
    }
    user->handle = handle->string;
  }
  if (const JsonValue* location = value.Find("location");
      location != nullptr) {
    if (location->kind != JsonValue::Kind::kString ||
        location->string.size() > twitter::kMaxProfileLocationLength) {
      *outcome = Failure(
          ErrorCode::kBadRequest,
          StrFormat("users[%zu]: 'location' must be a string of at most "
                    "%zu characters",
                    position, twitter::kMaxProfileLocationLength),
          true, id);
      return false;
    }
    user->profile_location = location->string;
  }
  if (const JsonValue* total = value.Find("total_tweets"); total != nullptr) {
    if (!RequireInt(*total, "users[].total_tweets", &user->total_tweets,
                    outcome, true, id)) {
      return false;
    }
    if (user->total_tweets < 0) {
      *outcome = Failure(
          ErrorCode::kBadRequest,
          StrFormat("users[%zu]: 'total_tweets' must be >= 0", position),
          true, id);
      return false;
    }
  }
  return true;
}

/// Validates one append_tweets tweet record:
///   {"id":9000,"user":900,"time":50,"lat":37.5,"lng":126.9,"text":"..."}
/// "id", "user" and "time" are required; "lat"/"lng" come as a pair.
bool ParseAppendTweet(const JsonValue& value, size_t position,
                      twitter::Tweet* tweet, ParseOutcome* outcome,
                      int64_t id) {
  if (!value.IsObject()) {
    *outcome = Failure(ErrorCode::kBadRequest,
                       StrFormat("tweets[%zu] must be an object", position),
                       true, id);
    return false;
  }
  for (const auto& [key, unused] : value.members) {
    if (key != "id" && key != "user" && key != "time" && key != "lat" &&
        key != "lng" && key != "text") {
      *outcome = Failure(
          ErrorCode::kBadRequest,
          StrFormat("tweets[%zu]: unknown key '%s'", position, key.c_str()),
          true, id);
      return false;
    }
  }
  const JsonValue* tweet_id = value.Find("id");
  const JsonValue* user = value.Find("user");
  const JsonValue* time = value.Find("time");
  if (tweet_id == nullptr || user == nullptr || time == nullptr) {
    *outcome = Failure(
        ErrorCode::kBadRequest,
        StrFormat("tweets[%zu]: 'id', 'user' and 'time' are required",
                  position),
        true, id);
    return false;
  }
  if (!RequireInt(*tweet_id, "tweets[].id", &tweet->id, outcome, true, id) ||
      !RequireInt(*user, "tweets[].user", &tweet->user, outcome, true, id) ||
      !RequireInt(*time, "tweets[].time", &tweet->time, outcome, true, id)) {
    return false;
  }
  if (tweet->id < 0 || tweet->user < 0) {
    *outcome = Failure(
        ErrorCode::kBadRequest,
        StrFormat("tweets[%zu]: 'id' and 'user' must be >= 0", position),
        true, id);
    return false;
  }
  const JsonValue* lat = value.Find("lat");
  const JsonValue* lng = value.Find("lng");
  if ((lat == nullptr) != (lng == nullptr)) {
    *outcome = Failure(
        ErrorCode::kBadRequest,
        StrFormat("tweets[%zu]: 'lat' and 'lng' come as a pair", position),
        true, id);
    return false;
  }
  if (lat != nullptr) {
    if (lat->kind != JsonValue::Kind::kNumber ||
        lng->kind != JsonValue::Kind::kNumber) {
      *outcome = Failure(
          ErrorCode::kBadRequest,
          StrFormat("tweets[%zu]: 'lat'/'lng' must be numbers", position),
          true, id);
      return false;
    }
    if (lat->number < -90.0 || lat->number > 90.0 || lng->number < -180.0 ||
        lng->number > 180.0) {
      *outcome = Failure(
          ErrorCode::kBadRequest,
          StrFormat("tweets[%zu]: 'lat'/'lng' out of range", position), true,
          id);
      return false;
    }
    tweet->gps = geo::LatLng{lat->number, lng->number};
  }
  if (const JsonValue* text = value.Find("text"); text != nullptr) {
    if (text->kind != JsonValue::Kind::kString) {
      *outcome = Failure(
          ErrorCode::kBadRequest,
          StrFormat("tweets[%zu]: 'text' must be a string", position), true,
          id);
      return false;
    }
    tweet->text = text->string;
  }
  return true;
}

std::string IndexInfo(const StudyIndex& index, const Request& request,
                      int64_t generation, bool streaming) {
  JsonWriter w;
  BeginResponse(&w, request.id, true, true);
  w.Key("result");
  w.BeginObject();
  w.Key("generation");
  w.Int(generation);
  w.Key("streaming");
  w.Bool(streaming);
  w.Key("users");
  w.Int(static_cast<int64_t>(index.user_count()));
  w.Key("districts");
  w.Int(static_cast<int64_t>(index.district_count()));
  w.Key("final_users");
  w.Int(index.final_users());
  w.Key("memory_bytes");
  w.Int(index.MemoryBytes());
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

}  // namespace

const char* MethodToString(Method method) {
  switch (method) {
    case Method::kLookupUser: return "lookup_user";
    case Method::kLookupDistrict: return "lookup_district";
    case Method::kTopkSummary: return "topk_summary";
    case Method::kServerStats: return "server_stats";
    case Method::kAppendTweets: return "append_tweets";
    case Method::kIndexInfo: return "index_info";
    case Method::kInferUser: return "infer_user";
  }
  return "unknown";
}

int ShedTier(Method method) {
  switch (method) {
    case Method::kServerStats:
      return 0;
    case Method::kInferUser:
      return 1;
    case Method::kLookupUser:
    case Method::kLookupDistrict:
    case Method::kTopkSummary:
    case Method::kIndexInfo:
      return 2;
    case Method::kAppendTweets:
      return 3;
  }
  return 2;
}

const char* ErrorCodeToString(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kBadVersion: return "bad_version";
    case ErrorCode::kUnknownMethod: return "unknown_method";
    case ErrorCode::kOversized: return "oversized";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kDataCorrupt: return "data_corrupt";
    case ErrorCode::kLowConfidence: return "low_confidence";
  }
  return "internal";
}

std::string ErrorResponse(bool has_id, int64_t id, ErrorCode code,
                          std::string_view message) {
  JsonWriter w;
  BeginResponse(&w, id, has_id, false);
  w.Key("error");
  w.BeginObject();
  w.Key("code");
  w.String(ErrorCodeToString(code));
  w.Key("message");
  w.String(message);
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

std::string OversizedResponse(size_t line_bytes, size_t max_bytes) {
  return ErrorResponse(
      false, -1, ErrorCode::kOversized,
      StrFormat("request of %zu bytes exceeds the %zu-byte cap", line_bytes,
                max_bytes));
}

ParseOutcome ParseRequest(std::string_view line, size_t max_bytes) {
  if (line.size() > max_bytes) {
    return Failure(ErrorCode::kOversized,
                   StrFormat("request of %zu bytes exceeds the %zu-byte cap",
                             line.size(), max_bytes));
  }
  JsonValue root;
  std::string parse_error;
  if (!obs::JsonParse(line, &root, &parse_error)) {
    return Failure(ErrorCode::kParseError, parse_error);
  }
  if (!root.IsObject()) {
    return Failure(ErrorCode::kBadRequest, "request must be a JSON object");
  }

  // Recover the id first so later failures can echo it.
  bool has_id = false;
  int64_t id = -1;
  const JsonValue* id_value = root.Find("id");
  if (id_value != nullptr && id_value->kind == JsonValue::Kind::kNumber &&
      id_value->is_int && id_value->integer >= 0) {
    has_id = true;
    id = id_value->integer;
  }

  for (const auto& [key, unused] : root.members) {
    if (key != "v" && key != "id" && key != "method" && key != "params" &&
        key != "deadline_ms") {
      return Failure(ErrorCode::kBadRequest,
                     StrFormat("unknown key '%s'", key.c_str()), has_id, id);
    }
  }

  const JsonValue* version = root.Find("v");
  if (version == nullptr) {
    return Failure(ErrorCode::kBadRequest, "missing 'v'", has_id, id);
  }
  if (version->kind != JsonValue::Kind::kNumber || !version->is_int) {
    return Failure(ErrorCode::kBadRequest, "'v' must be an integer", has_id,
                   id);
  }
  if (version->integer != kProtocolVersion) {
    return Failure(
        ErrorCode::kBadVersion,
        StrFormat("protocol version %lld is not served (this is version %d)",
                  static_cast<long long>(version->integer), kProtocolVersion),
        has_id, id);
  }

  if (id_value == nullptr) {
    return Failure(ErrorCode::kBadRequest, "missing 'id'");
  }
  if (!has_id) {
    return Failure(ErrorCode::kBadRequest,
                   "'id' must be a non-negative integer");
  }

  const JsonValue* method_value = root.Find("method");
  if (method_value == nullptr ||
      method_value->kind != JsonValue::Kind::kString) {
    return Failure(ErrorCode::kBadRequest, "'method' must be a string", true,
                   id);
  }

  ParseOutcome outcome;
  outcome.ok = true;
  outcome.has_id = true;
  outcome.id = id;
  Request& request = outcome.request;
  request.id = id;

  const std::string& method = method_value->string;
  if (method == "lookup_user") {
    request.method = Method::kLookupUser;
  } else if (method == "lookup_district") {
    request.method = Method::kLookupDistrict;
  } else if (method == "topk_summary") {
    request.method = Method::kTopkSummary;
  } else if (method == "server_stats") {
    request.method = Method::kServerStats;
  } else if (method == "append_tweets") {
    request.method = Method::kAppendTweets;
  } else if (method == "index_info") {
    request.method = Method::kIndexInfo;
  } else if (method == "infer_user") {
    request.method = Method::kInferUser;
  } else {
    return Failure(ErrorCode::kUnknownMethod,
                   StrFormat("method '%s' is not served", method.c_str()),
                   true, id);
  }

  const JsonValue* deadline = root.Find("deadline_ms");
  if (deadline != nullptr) {
    if (deadline->kind != JsonValue::Kind::kNumber || !deadline->is_int ||
        deadline->integer <= 0) {
      return Failure(ErrorCode::kBadRequest,
                     "'deadline_ms' must be a positive integer", true, id);
    }
    request.deadline_ms = deadline->integer;
  }

  const JsonValue* params = root.Find("params");
  if (params != nullptr && !params->IsObject()) {
    return Failure(ErrorCode::kBadRequest, "'params' must be an object", true,
                   id);
  }
  static const JsonValue kEmptyParams = [] {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    return v;
  }();
  const JsonValue& p = params != nullptr ? *params : kEmptyParams;

  switch (request.method) {
    case Method::kLookupUser:
    case Method::kInferUser: {
      const bool infer = request.method == Method::kInferUser;
      for (const auto& [key, unused] : p.members) {
        if (key != "user" && !(infer && key == "strategy")) {
          return Failure(ErrorCode::kBadRequest,
                         StrFormat("unknown param '%s'", key.c_str()), true,
                         id);
        }
      }
      const JsonValue* user = p.Find("user");
      if (user == nullptr) {
        return Failure(ErrorCode::kBadRequest, "missing param 'user'", true,
                       id);
      }
      int64_t user_id = -1;
      if (!RequireInt(*user, "user", &user_id, &outcome, true, id)) {
        return outcome;
      }
      if (user_id < 0) {
        return Failure(ErrorCode::kBadRequest, "'user' must be >= 0", true,
                       id);
      }
      request.user = user_id;
      if (const JsonValue* strategy = p.Find("strategy");
          strategy != nullptr) {
        if (!RequireString(*strategy, "strategy", &request.strategy, &outcome,
                           id)) {
          return outcome;
        }
        infer::Strategy unused_strategy;
        if (!infer::StrategyFromString(request.strategy, &unused_strategy)) {
          return Failure(
              ErrorCode::kBadRequest,
              StrFormat("unknown strategy '%s' (spatial | diurnal | text)",
                        request.strategy.c_str()),
              true, id);
        }
      }
      break;
    }
    case Method::kLookupDistrict: {
      for (const auto& [key, unused] : p.members) {
        if (key != "state" && key != "county" && key != "limit" &&
            key != "offset") {
          return Failure(ErrorCode::kBadRequest,
                         StrFormat("unknown param '%s'", key.c_str()), true,
                         id);
        }
      }
      const JsonValue* state = p.Find("state");
      const JsonValue* county = p.Find("county");
      if (state == nullptr || county == nullptr) {
        return Failure(ErrorCode::kBadRequest,
                       "params 'state' and 'county' are required", true, id);
      }
      if (!RequireString(*state, "state", &request.state, &outcome, id) ||
          !RequireString(*county, "county", &request.county, &outcome, id)) {
        return outcome;
      }
      if (const JsonValue* limit = p.Find("limit"); limit != nullptr) {
        if (!RequireInt(*limit, "limit", &request.limit, &outcome, true, id)) {
          return outcome;
        }
        if (request.limit < 0 || request.limit > kMaxDistrictLimit) {
          return Failure(
              ErrorCode::kBadRequest,
              StrFormat("'limit' must be in [0, %lld]",
                        static_cast<long long>(kMaxDistrictLimit)),
              true, id);
        }
      }
      if (const JsonValue* offset = p.Find("offset"); offset != nullptr) {
        if (!RequireInt(*offset, "offset", &request.offset, &outcome, true,
                        id)) {
          return outcome;
        }
        if (request.offset < 0) {
          return Failure(ErrorCode::kBadRequest, "'offset' must be >= 0",
                         true, id);
        }
      }
      break;
    }
    case Method::kTopkSummary:
    case Method::kServerStats:
    case Method::kIndexInfo: {
      if (!p.members.empty()) {
        return Failure(
            ErrorCode::kBadRequest,
            StrFormat("method '%s' takes no params", method.c_str()), true,
            id);
      }
      break;
    }
    case Method::kAppendTweets: {
      for (const auto& [key, unused] : p.members) {
        if (key != "users" && key != "tweets") {
          return Failure(ErrorCode::kBadRequest,
                         StrFormat("unknown param '%s'", key.c_str()), true,
                         id);
        }
      }
      for (const char* array_key : {"users", "tweets"}) {
        const JsonValue* array = p.Find(array_key);
        if (array == nullptr) continue;
        if (array->kind != JsonValue::Kind::kArray) {
          return Failure(ErrorCode::kBadRequest,
                         StrFormat("'%s' must be an array", array_key), true,
                         id);
        }
        if (static_cast<int64_t>(array->elements.size()) >
            kMaxAppendRecords) {
          return Failure(
              ErrorCode::kBadRequest,
              StrFormat("'%s' exceeds %lld records", array_key,
                        static_cast<long long>(kMaxAppendRecords)),
              true, id);
        }
      }
      if (const JsonValue* users = p.Find("users"); users != nullptr) {
        request.users.reserve(users->elements.size());
        for (size_t i = 0; i < users->elements.size(); ++i) {
          twitter::User user;
          if (!ParseAppendUser(users->elements[i], i, &user, &outcome, id)) {
            return outcome;
          }
          request.users.push_back(std::move(user));
        }
      }
      if (const JsonValue* tweets = p.Find("tweets"); tweets != nullptr) {
        request.tweets.reserve(tweets->elements.size());
        for (size_t i = 0; i < tweets->elements.size(); ++i) {
          twitter::Tweet tweet;
          if (!ParseAppendTweet(tweets->elements[i], i, &tweet, &outcome,
                                id)) {
            return outcome;
          }
          request.tweets.push_back(std::move(tweet));
        }
      }
      break;
    }
  }
  return outcome;
}

std::string ExecuteOnIndex(const StudyIndex& index, const Request& request,
                           int64_t generation, bool streaming) {
  switch (request.method) {
    case Method::kLookupUser: return LookupUser(index, request);
    case Method::kLookupDistrict: return LookupDistrict(index, request);
    case Method::kTopkSummary: return TopkSummary(index, request);
    case Method::kIndexInfo:
      return IndexInfo(index, request, generation, streaming);
    case Method::kServerStats:
    case Method::kAppendTweets:
    case Method::kInferUser:  // executes against the inference index
      break;
  }
  return ErrorResponse(
      true, request.id, ErrorCode::kInternal,
      StrFormat("method '%s' reached the index executor",
                MethodToString(request.method)));
}

std::string ExecuteOnIndex(const StudyIndex& index, const Request& request) {
  return ExecuteOnIndex(index, request, /*generation=*/0,
                        /*streaming=*/false);
}

std::string ExecuteInferUser(const infer::InferenceIndex* index,
                             const infer::InferParams& params,
                             const Request& request, InferOutcome* outcome) {
  InferOutcome resolved = InferOutcome::kRejected;
  std::string response;
  if (index == nullptr || index->db() == nullptr) {
    response = ErrorResponse(true, request.id, ErrorCode::kBadRequest,
                             "inference is not enabled on this server");
  } else {
    infer::Strategy strategy = params.default_strategy;
    if (!request.strategy.empty()) {
      // ParseRequest validated the name; re-check so a hand-built Request
      // cannot smuggle an unmapped strategy past the factory.
      if (!infer::StrategyFromString(request.strategy, &strategy)) {
        if (outcome != nullptr) *outcome = InferOutcome::kRejected;
        return ErrorResponse(
            true, request.id, ErrorCode::kBadRequest,
            StrFormat("unknown strategy '%s' (spatial | diurnal | text)",
                      request.strategy.c_str()));
      }
    }
    const infer::UserEvidence* evidence = index->FindUser(request.user);
    if (evidence == nullptr) {
      resolved = InferOutcome::kNotFound;
      response = NotFoundResponse(
          request.id,
          StrFormat("user %lld has no evidence in the inference index",
                    static_cast<long long>(request.user)));
    } else {
      std::unique_ptr<infer::HomeInferrer> inferrer =
          infer::MakeInferrer(strategy, params);
      infer::Inference inference = inferrer->Infer(*evidence);
      if (!inference.decided) {
        resolved = InferOutcome::kAbstained;
        response = ErrorResponse(
            true, request.id, ErrorCode::kLowConfidence,
            StrFormat("%s abstained at confidence %.4f (threshold %.4f, "
                      "evidence %lld)",
                      inferrer->name(), inference.confidence,
                      params.abstain_threshold,
                      static_cast<long long>(inference.evidence)));
      } else {
        resolved = InferOutcome::kDecided;
        const geo::Region& district = index->db()->region(inference.district);
        JsonWriter w;
        BeginResponse(&w, request.id, true, true);
        w.Key("result");
        w.BeginObject();
        w.Key("user");
        w.Int(evidence->user);
        w.Key("strategy");
        w.String(inferrer->name());
        w.Key("state");
        w.String(district.state);
        w.Key("county");
        w.String(district.county);
        w.Key("confidence");
        w.FixedDouble(inference.confidence, 6);
        w.Key("evidence");
        w.Int(inference.evidence);
        w.Key("night_evidence");
        w.Int(inference.night_evidence);
        w.Key("gps_tweets");
        w.Int(evidence->gps_tweets);
        w.Key("text_votes");
        w.Int(evidence->text_votes);
        w.EndObject();
        w.EndObject();
        response = w.TakeString();
      }
    }
  }
  if (outcome != nullptr) *outcome = resolved;
  return response;
}

}  // namespace stir::serve
