#include "serve/server.h"

#include <algorithm>
#include <deque>
#include <utility>

namespace stir::serve {

Server::Server(const StudyIndex* index, const ServeOptions& options)
    : scheduler_(index, options) {}

Server::Server(std::shared_ptr<const StudyIndex> index, int64_t generation,
               const ServeOptions& options)
    : scheduler_(std::move(index), generation, options) {}

std::future<std::string> Server::SubmitLine(std::string_view line) {
  return scheduler_.SubmitLine(line);
}

void Server::SubmitLineWith(std::string_view line, ResponseCallback done) {
  scheduler_.SubmitLineWith(line, std::move(done));
}

int64_t Server::ServeStream(std::istream& in, std::ostream& out) {
  const size_t window =
      static_cast<size_t>(scheduler_.GuaranteedAdmissionWindow());
  std::deque<std::future<std::string>> inflight;
  int64_t served = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // Blank lines are keep-alive no-ops.
    if (inflight.size() >= window) {
      out << inflight.front().get() << '\n';
      inflight.pop_front();
      ++served;
    }
    inflight.push_back(scheduler_.SubmitLine(line));
  }
  while (!inflight.empty()) {
    out << inflight.front().get() << '\n';
    inflight.pop_front();
    ++served;
  }
  out.flush();
  return served;
}

void Server::Drain() { scheduler_.Drain(); }

void Server::BeginDrain() { scheduler_.BeginDrain(); }

}  // namespace stir::serve
