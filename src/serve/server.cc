#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <utility>

#include "common/string_util.h"

namespace stir::serve {

Server::Server(const StudyIndex* index, const ServeOptions& options)
    : scheduler_(index, options) {}

Server::Server(std::shared_ptr<const StudyIndex> index, int64_t generation,
               const ServeOptions& options)
    : scheduler_(std::move(index), generation, options) {}

std::future<std::string> Server::SubmitLine(std::string_view line) {
  return scheduler_.SubmitLine(line);
}

int64_t Server::ServeStream(std::istream& in, std::ostream& out) {
  const size_t window =
      static_cast<size_t>(scheduler_.options().queue_capacity);
  std::deque<std::future<std::string>> inflight;
  int64_t served = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // Blank lines are keep-alive no-ops.
    if (inflight.size() >= window) {
      out << inflight.front().get() << '\n';
      inflight.pop_front();
      ++served;
    }
    inflight.push_back(scheduler_.SubmitLine(line));
  }
  while (!inflight.empty()) {
    out << inflight.front().get() << '\n';
    inflight.pop_front();
    ++served;
  }
  out.flush();
  return served;
}

void Server::Drain() { scheduler_.Drain(); }

TcpServer::TcpServer(Server* server, int max_pipeline)
    : server_(server), max_pipeline_(std::max(1, max_pipeline)) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(
        StrFormat("socket(): %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::IOError(
        StrFormat("bind(127.0.0.1:%d): %s", static_cast<int>(port),
                  std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status status = Status::IOError(
        StrFormat("listen(): %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Listener shut down (or fatal) — stop accepting.
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void TcpServer::HandleConnection(int fd) {
  const size_t window = static_cast<size_t>(max_pipeline_);
  std::deque<std::future<std::string>> inflight;
  std::string pending;  // Bytes read but not yet newline-terminated.
  char buf[4096];

  auto flush_one = [&]() -> bool {
    std::string response = inflight.front().get();
    inflight.pop_front();
    response.push_back('\n');
    size_t sent = 0;
    while (sent < response.size()) {
      ssize_t n = ::send(fd, response.data() + sent, response.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;  // Peer went away; drop remaining responses.
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  };

  bool writable = true;
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error (including shutdown via Stop()).
    pending.append(buf, static_cast<size_t>(n));
    size_t start = 0;
    for (;;) {
      size_t newline = pending.find('\n', start);
      if (newline == std::string::npos) break;
      std::string_view line(pending.data() + start, newline - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      start = newline + 1;
      if (line.empty()) continue;
      if (inflight.size() >= window && writable) {
        writable = flush_one();
      }
      inflight.push_back(server_->SubmitLine(line));
    }
    pending.erase(0, start);
    // Flush everything before blocking in recv() again: a client that
    // sends one request and waits must get its response now, not when
    // the window fills. Requests that arrived together still share
    // batches — they were all submitted before this drain.
    while (!inflight.empty() && writable) {
      writable = flush_one();
    }
  }
  // A trailing unterminated line still gets an answer — the client is
  // gone half the time, but send() just fails and we fall through.
  if (!pending.empty()) inflight.push_back(server_->SubmitLine(pending));
  while (!inflight.empty()) {
    if (writable) {
      writable = flush_one();
    } else {
      inflight.front().wait();
      inflight.pop_front();
    }
  }
  // Signal EOF to a client draining responses. Stop() owns close(fd) —
  // closing here would let the kernel reuse the descriptor number while
  // Stop() still holds it in conn_fds_ — but shutdown() keeps the number
  // allocated, so it is safe from this thread.
  ::shutdown(fd, SHUT_RDWR);
}

void TcpServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<int> fds;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    fds.swap(conn_fds_);
    threads.swap(conn_threads_);
  }
  for (int fd : fds) {
    ::shutdown(fd, SHUT_RD);  // Wakes the handler's recv().
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  for (int fd : fds) {
    ::close(fd);
  }
}

}  // namespace stir::serve
