#include "serve/study_index.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/string_util.h"

namespace stir::serve {

namespace {

/// Lookup key for a (state, county) pair: ASCII-lowercased, tab-joined
/// (tab cannot appear in gazetteer names).
std::string DistrictKey(std::string_view state, std::string_view county) {
  std::string key = ToLower(state);
  key += '\t';
  key += ToLower(county);
  return key;
}

/// Build-time accumulator for one district's postings.
struct DistrictBuild {
  std::string state;
  std::string county;
  std::vector<twitter::UserId> users;
  int64_t gps_tweets = 0;
  int64_t profile_users = 0;
};

}  // namespace

NameId StudyIndex::Intern(const std::string& name) {
  auto [it, inserted] =
      name_ids_.emplace(name, static_cast<NameId>(names_.size()));
  if (inserted) names_.push_back(name);
  return it->second;
}

StudyIndex StudyIndex::Build(const core::StudyResult& result,
                             const geo::AdminDb& db) {
  StudyIndex index;
  if (result.incomplete) return index;

  index.funnel_ = result.funnel;
  for (int g = 0; g < core::kNumTopKGroups; ++g) {
    index.groups_[g] = result.groups[g];
  }
  index.overall_avg_locations_ = result.overall_avg_locations;
  index.final_users_ = result.final_users;

  // User table in ascending-id order (value-determined, not build-order-
  // determined), locations laid into the arena in rank order.
  std::vector<const core::UserGrouping*> ordered;
  ordered.reserve(result.groupings.size());
  for (const core::UserGrouping& grouping : result.groupings) {
    ordered.push_back(&grouping);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const core::UserGrouping* a, const core::UserGrouping* b) {
              return a->user < b->user;
            });

  // District accumulation keyed by the display name, which sorts the
  // district table deterministically. The transparent comparator lets
  // the keyed fast path probe with the gazetteer's display string_view
  // without building a key string per location row.
  std::map<std::string, DistrictBuild, std::less<>> district_builds;

  // Intern-once fast path: groupings produced by core::GroupUser carry
  // gazetteer name keys, so the display string for a district is built
  // (and hashed into the intern pool) once per distinct key, not once
  // per location row. The caches are lazy — the first row touching a
  // key interns/creates at exactly the point the string path would, so
  // the names_ pool and the district map are byte-identical to the
  // string path's. Rows without keys (hand-assembled groupings) fall
  // back to the original string rendering below.
  const geo::DistrictNameTable& names = db.district_names();
  std::vector<NameId> name_id_of_key(names.names.size(), kInvalidName);
  std::vector<DistrictBuild*> build_of_key(names.names.size(), nullptr);
  auto interned_display = [&](uint32_t key) -> NameId {
    NameId& cached = name_id_of_key[key];
    if (cached == kInvalidName) cached = index.Intern(names.names[key].display);
    return cached;
  };
  // std::map nodes are pointer-stable, so the per-key cache can hold the
  // accumulator directly. Distinct keys whose displays collide (rare but
  // possible: "A B"+"C" vs "A"+"B C") resolve to the same entry, exactly
  // as the string keying merges them.
  auto district_build_of = [&](uint32_t key) -> DistrictBuild& {
    DistrictBuild*& cached = build_of_key[key];
    if (cached == nullptr) {
      const geo::DistrictNameTable::Name& name = names.names[key];
      auto it = district_builds.find(std::string_view(name.display));
      if (it == district_builds.end()) {
        it = district_builds.emplace(name.display, DistrictBuild{}).first;
        it->second.state = name.state;
        it->second.county = name.county;
      }
      cached = &it->second;
    }
    return *cached;
  };

  index.users_.reserve(ordered.size());
  for (const core::UserGrouping* grouping : ordered) {
    UserEntry entry;
    entry.user = grouping->user;
    entry.group = grouping->group;
    entry.match_rank = grouping->match_rank;
    entry.gps_tweets = grouping->gps_tweet_count;
    entry.matched_tweets = grouping->matched_tweet_count;
    entry.first_location = static_cast<uint32_t>(index.locations_.size());
    entry.num_locations = static_cast<uint32_t>(grouping->ordered.size());
    entry.concentration = core::ComputeConcentration(*grouping);
    const bool keyed = grouping->profile_name_key != core::kInvalidNameKey;
    if (!grouping->ordered.empty()) {
      if (keyed) {
        entry.profile_district = interned_display(grouping->profile_name_key);
      } else {
        const core::LocationRecord& first = grouping->ordered.front().record;
        entry.profile_district =
            index.Intern(first.profile_state + " " + first.profile_county);
      }
    }
    for (const core::MergedLocationString& merged : grouping->ordered) {
      RankedLocation location;
      location.count = merged.count;
      DistrictBuild* build;
      if (merged.name_key != core::kInvalidNameKey) {
        location.district = interned_display(merged.name_key);
        location.matched = merged.name_key == grouping->profile_name_key;
        build = &district_build_of(merged.name_key);
      } else {
        const core::LocationRecord& record = merged.record;
        std::string name = record.tweet_state + " " + record.tweet_county;
        location.district = index.Intern(name);
        location.matched = record.IsMatched();
        DistrictBuild& slow = district_builds[name];
        if (slow.users.empty() && slow.profile_users == 0) {
          slow.state = record.tweet_state;
          slow.county = record.tweet_county;
        }
        build = &slow;
      }
      index.locations_.push_back(location);
      build->users.push_back(grouping->user);
      build->gps_tweets += merged.count;
    }
    if (!grouping->ordered.empty()) {
      if (keyed) {
        ++district_build_of(grouping->profile_name_key).profile_users;
      } else {
        const core::LocationRecord& first = grouping->ordered.front().record;
        std::string profile_name =
            first.profile_state + " " + first.profile_county;
        DistrictBuild& build = district_builds[profile_name];
        if (build.users.empty() && build.profile_users == 0) {
          build.state = first.profile_state;
          build.county = first.profile_county;
        }
        ++build.profile_users;
      }
    }
    index.user_ids_.emplace(entry.user,
                            static_cast<uint32_t>(index.users_.size()));
    index.users_.push_back(entry);
  }

  // District table + postings arena, both in deterministic order (the
  // per-user pass above visits users ascending, so each posting list is
  // already ascending and duplicate-free).
  index.districts_.reserve(district_builds.size());
  for (auto& [name, build] : district_builds) {
    DistrictEntry entry;
    entry.name = index.Intern(name);
    entry.first_user = static_cast<uint32_t>(index.postings_.size());
    entry.num_users = static_cast<uint32_t>(build.users.size());
    entry.gps_tweets = build.gps_tweets;
    entry.profile_users = build.profile_users;
    index.postings_.insert(index.postings_.end(), build.users.begin(),
                           build.users.end());
    uint32_t district_index = static_cast<uint32_t>(index.districts_.size());
    index.districts_.push_back(entry);

    // Lookup keys: the canonical spelling plus every alias the gazetteer
    // knows (alternate romanizations, hangul), so clients can query with
    // whatever spelling the original service produced.
    index.district_keys_.emplace(DistrictKey(build.state, build.county),
                                 district_index);
    auto region = db.FindCounty(build.state, build.county);
    if (region.ok()) {
      for (const std::string& alias : db.region(*region).aliases) {
        index.district_keys_.emplace(DistrictKey(build.state, alias),
                                     district_index);
      }
    }
    const char* hangul =
        geo::AdminDb::HangulCountyName(build.state, build.county);
    if (hangul != nullptr) {
      index.district_keys_.emplace(DistrictKey(build.state, hangul),
                                   district_index);
    }
  }
  return index;
}

const UserEntry* StudyIndex::FindUser(twitter::UserId user) const {
  auto it = user_ids_.find(user);
  if (it == user_ids_.end()) return nullptr;
  return &users_[it->second];
}

const DistrictEntry* StudyIndex::FindDistrict(std::string_view state,
                                              std::string_view county) const {
  auto it = district_keys_.find(DistrictKey(state, county));
  if (it == district_keys_.end()) return nullptr;
  return &districts_[it->second];
}

int64_t StudyIndex::MemoryBytes() const {
  int64_t bytes = 0;
  for (const std::string& name : names_) {
    bytes += static_cast<int64_t>(sizeof(std::string) + name.capacity());
  }
  for (const auto& [key, unused] : district_keys_) {
    bytes += static_cast<int64_t>(sizeof(std::string) + key.capacity() +
                                  sizeof(uint32_t));
  }
  for (const auto& [key, unused] : name_ids_) {
    bytes += static_cast<int64_t>(sizeof(std::string) + key.capacity() +
                                  sizeof(NameId));
  }
  bytes += static_cast<int64_t>(users_.size() * sizeof(UserEntry));
  bytes += static_cast<int64_t>(user_ids_.size() *
                                (sizeof(twitter::UserId) + sizeof(uint32_t)));
  bytes += static_cast<int64_t>(locations_.size() * sizeof(RankedLocation));
  bytes += static_cast<int64_t>(districts_.size() * sizeof(DistrictEntry));
  bytes += static_cast<int64_t>(postings_.size() * sizeof(twitter::UserId));
  return bytes;
}

}  // namespace stir::serve
