#ifndef STIR_SERVE_STREAM_BACKEND_H_
#define STIR_SERVE_STREAM_BACKEND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "twitter/model.h"

namespace stir::serve {

/// Result of one append_tweets batch against the streaming engine.
struct AppendOutcome {
  /// False when validation rejected the batch (duplicate user, tweet for
  /// an unknown user, ...). A rejected batch is applied not at all —
  /// validation runs before any record is ingested.
  bool ok = true;
  std::string error;
  int64_t users_appended = 0;
  int64_t tweets_appended = 0;
  /// Epochs sealed by this append (auto-seal crossings).
  int64_t epochs_sealed = 0;
  /// Live index generation after the append.
  int64_t generation = 0;
  /// Tweets ingested but not yet folded into a sealed epoch.
  int64_t pending_tweets = 0;
};

/// The scheduler's hook into an incremental study engine. Implemented by
/// stir::stream::StreamEngine; kept abstract here so serve/ does not
/// depend on stream/ (stream/ already depends on serve/ for StudyIndex).
///
/// Append() may seal epochs and swap a new index generation into the
/// scheduler; the scheduler calls it only after every previously admitted
/// request has executed, so a single pipelined client sees strictly
/// ordered read-your-writes semantics (DESIGN.md §12).
class StreamBackend {
 public:
  virtual ~StreamBackend() = default;
  virtual AppendOutcome Append(const std::vector<twitter::User>& users,
                               const std::vector<twitter::Tweet>& tweets) = 0;
};

}  // namespace stir::serve

#endif  // STIR_SERVE_STREAM_BACKEND_H_
