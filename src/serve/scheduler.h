#ifndef STIR_SERVE_SCHEDULER_H_
#define STIR_SERVE_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.h"
#include "serve/options.h"
#include "serve/protocol.h"
#include "serve/study_index.h"

namespace stir::serve {

/// Admission-ordered counters, all maintained under the admission mutex.
/// `received` counts every submitted line; the others partition it:
///
///   received == admitted + stats_served + parse_errors
///             + rejected_overload + rejected_shutdown
///
/// and sum(method_counts) == admitted + stats_served. Because the
/// counters advance in stream order, a single client replaying the same
/// request stream reads identical values from server_stats on every run,
/// under any worker count — the serving determinism guarantee.
struct SchedulerStats {
  int64_t received = 0;
  int64_t admitted = 0;      ///< Queued for batch execution.
  int64_t stats_served = 0;  ///< server_stats answered at admission.
  int64_t parse_errors = 0;  ///< Includes oversized lines.
  int64_t rejected_overload = 0;
  int64_t rejected_shutdown = 0;
  int64_t method_counts[kNumMethods] = {};
};

/// Micro-batching request scheduler: a bounded admission queue feeding
/// the common::ThreadPool, where up to `workers` drain tasks each take up
/// to `max_batch_size` requests at a time, execute them against the
/// immutable StudyIndex, and fulfill the per-request futures.
///
/// Backpressure is explicit: a request arriving on a full queue is
/// answered immediately with an `overloaded` error — the scheduler never
/// blocks the submitter and never drops a request silently. Shutdown is a
/// graceful drain: every admitted request completes, later submissions
/// get `shutting_down`.
///
/// server_stats requests are answered synchronously at admission, under
/// the admission mutex, from the admission-ordered SchedulerStats — the
/// one method whose result depends on history rather than the index
/// alone, pinned to stream order so it stays deterministic.
class RequestScheduler {
 public:
  /// `index` must outlive the scheduler. Worker threads start
  /// immediately; the pool and all queues are owned.
  RequestScheduler(const StudyIndex* index, const ServeOptions& options);
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Parses and routes one request line. The returned future always
  /// becomes ready with exactly one response line (success, error, or
  /// rejection — never an exception), even across Drain().
  std::future<std::string> SubmitLine(std::string_view line);

  /// Graceful shutdown: stops admitting, flushes lingering partial
  /// batches, and blocks until every admitted request has been answered.
  /// Idempotent; also run by the destructor.
  void Drain();

  bool draining() const;

  /// Admission-ordered counters (test + server_stats surface).
  SchedulerStats stats() const;

  const ServeOptions& options() const { return options_; }

 private:
  struct Pending {
    Request request;
    std::promise<std::string> promise;
    int64_t seq = 0;  ///< Admission order; keys the fault schedule.
    /// Sampled only when metrics are attached (serve.latency_us).
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Body of one pool drain task: repeatedly takes batches until the
  /// queue is empty, lingering up to batch_linger_us for fuller ones.
  void DrainLoop();
  void ProcessBatch(std::vector<Pending> batch);
  /// Renders the server_stats response. mu_ must be held.
  std::string StatsResponseLocked(int64_t id) const;

  const StudyIndex* index_;
  ServeOptions options_;

  mutable std::mutex mu_;
  std::condition_variable batch_cv_;    ///< Wakes lingering drainers.
  std::condition_variable drained_cv_;  ///< Signals Drain completion.
  std::deque<Pending> queue_;
  int active_drainers_ = 0;
  bool draining_ = false;
  int64_t next_seq_ = 0;
  SchedulerStats stats_;

  // Observability (null when no registry is attached).
  obs::Counter* m_received_ = nullptr;
  obs::Counter* m_admitted_ = nullptr;
  obs::Counter* m_parse_errors_ = nullptr;
  obs::Counter* m_rejected_overload_ = nullptr;
  obs::Counter* m_rejected_shutdown_ = nullptr;
  obs::Counter* m_responses_ = nullptr;
  obs::Counter* m_faults_injected_ = nullptr;
  obs::Counter* m_method_[kNumMethods] = {};
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Gauge* m_queue_depth_max_ = nullptr;
  obs::Histogram* m_batch_size_ = nullptr;
  obs::Histogram* m_latency_us_ = nullptr;

  /// Last member: its destructor joins the workers, which still touch the
  /// members above while draining.
  common::ThreadPool pool_;
};

}  // namespace stir::serve

#endif  // STIR_SERVE_SCHEDULER_H_
