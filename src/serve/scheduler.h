#ifndef STIR_SERVE_SCHEDULER_H_
#define STIR_SERVE_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.h"
#include "serve/options.h"
#include "serve/protocol.h"
#include "serve/study_index.h"

namespace stir::serve {

/// Admission-ordered counters, all maintained under the admission mutex.
/// `received` counts every submitted line; the others partition it:
///
///   received == admitted + stats_served + parse_errors
///             + rejected_overload + rejected_shutdown + rejected_corrupt
///
/// and sum(method_counts) == admitted + stats_served. Because the
/// counters advance in stream order, a single client replaying the same
/// request stream reads identical values from server_stats on every run,
/// under any worker count — the serving determinism guarantee.
struct SchedulerStats {
  int64_t received = 0;
  /// Queued for batch execution, or (append_tweets) executed in stream
  /// order at admission.
  int64_t admitted = 0;
  int64_t stats_served = 0;  ///< server_stats answered at admission.
  int64_t parse_errors = 0;  ///< Includes oversized lines.
  int64_t rejected_overload = 0;
  int64_t rejected_shutdown = 0;
  int64_t method_counts[kNumMethods] = {};
  /// Per-tier breakdown of rejected_overload (tiered admission,
  /// DESIGN.md §13): rejected_overload == sum(rejected_by_tier).
  int64_t rejected_by_tier[kNumShedTiers] = {};
  /// Data-plane requests answered `data_corrupt` at admission
  /// (ServeOptions::degraded_data). Zero on a healthy server.
  int64_t rejected_corrupt = 0;
  /// Admitted requests answered `deadline_exceeded` at batch dispatch.
  /// Advances in execution (not admission) order — deadline expiry is a
  /// wall-clock fact — so it is surfaced here and in `serve.deadline.*`
  /// metrics but deliberately NOT in the server_stats response, whose
  /// counters must replay deterministically.
  int64_t deadline_exceeded = 0;
};

/// Admission-time facts about a response, delivered alongside the
/// rendered line so network front-ends can account for shedding without
/// re-parsing the response they are about to forward.
struct ResponseMeta {
  /// True when the request was rejected by (tiered) admission control
  /// with the retryable `overloaded` envelope.
  bool shed = false;
  /// Shed tier of the request's method (meaningful whether or not the
  /// request was shed); kNumShedTiers for unparseable lines.
  int tier = kNumShedTiers;
  /// True when the response is the retryable `deadline_exceeded`
  /// envelope (the request expired before a worker dispatched it).
  bool deadline_expired = false;
};

/// Completion hook for SubmitLineWith: invoked exactly once per submitted
/// line with the response and its admission metadata. Synchronously
/// answered requests (parse errors, rejections, server_stats,
/// append_tweets) invoke it on the submitting thread before
/// SubmitLineWith returns; batch-executed requests invoke it on a worker
/// thread. The callback must be thread-safe against the submitter and
/// must not call back into the scheduler.
using ResponseCallback =
    std::function<void(std::string response, const ResponseMeta& meta)>;

/// Micro-batching request scheduler: a bounded admission queue feeding
/// the common::ThreadPool, where up to `workers` drain tasks each take up
/// to `max_batch_size` requests at a time, execute them against the
/// immutable StudyIndex, and fulfill the per-request futures.
///
/// Backpressure is explicit: a request arriving on a full queue is
/// answered immediately with an `overloaded` error — the scheduler never
/// blocks the submitter and never drops a request silently. Shutdown is a
/// graceful drain: every admitted request completes, later submissions
/// get `shutting_down`.
///
/// server_stats requests are answered synchronously at admission, under
/// the admission mutex, from the admission-ordered SchedulerStats — the
/// one method whose result depends on history rather than the index
/// alone, pinned to stream order so it stays deterministic.
///
/// The index is held as a generation: a shared_ptr<const StudyIndex>
/// plus a monotonically increasing generation number, swappable at any
/// time via SwapIndex (RCU-style). Readers never block a swap: each
/// batch pins the current generation with a shared_ptr copy and executes
/// every request in the batch against that one consistent snapshot; a
/// retired generation is destroyed when the last pinned batch drops it.
/// SwapIndex itself only takes the (uncontended) index mutex — it never
/// waits for in-flight batches.
class RequestScheduler {
 public:
  /// `index` must outlive the scheduler (non-owning; generation 0).
  /// Worker threads start immediately; the pool and all queues are owned.
  RequestScheduler(const StudyIndex* index, const ServeOptions& options);

  /// Generation-aware constructor: the scheduler co-owns the index and
  /// serves `generation` until the first SwapIndex.
  RequestScheduler(std::shared_ptr<const StudyIndex> index,
                   int64_t generation, const ServeOptions& options);
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Parses and routes one request line. The returned future always
  /// becomes ready with exactly one response line (success, error, or
  /// rejection — never an exception), even across Drain().
  std::future<std::string> SubmitLine(std::string_view line);

  /// Callback flavor of SubmitLine for event-loop front-ends: `done` is
  /// invoked exactly once with the response (see ResponseCallback for the
  /// threading contract). Never blocks the submitter, except for the
  /// documented append_tweets execution barrier.
  void SubmitLineWith(std::string_view line, ResponseCallback done);

  /// Atomically publishes a new index generation. In-flight batches keep
  /// answering from the generation they pinned; later batches pin the new
  /// one. Never blocks on readers. `generation` must increase.
  void SwapIndex(std::shared_ptr<const StudyIndex> index,
                 int64_t generation);

  /// Pins the live generation: the returned shared_ptr keeps it alive
  /// for as long as the caller holds it, across any number of swaps.
  std::shared_ptr<const StudyIndex> PinIndex(
      int64_t* generation = nullptr) const;

  /// Atomically publishes a new inference-evidence index (the infer_user
  /// twin of SwapIndex; same RCU discipline, same mutex). A streaming
  /// backend swaps both indexes after sealing an epoch so the study and
  /// inference views advance together.
  void SwapInferIndex(std::shared_ptr<const infer::InferenceIndex> index);

  /// Pins the live inference index (null when inference is disabled).
  std::shared_ptr<const infer::InferenceIndex> PinInferIndex() const;

  /// Graceful shutdown: stops admitting, flushes lingering partial
  /// batches, and blocks until every admitted request has been answered.
  /// Idempotent; also run by the destructor.
  void Drain();

  /// Non-blocking half of Drain: stops admitting (later submissions get
  /// `shutting_down`) and wakes lingering workers, but returns without
  /// waiting. An event loop calls this first, keeps routing its buffered
  /// lines through the scheduler (so they are rejected with exactly the
  /// envelopes a draining server owes them), and calls Drain() once its
  /// connections are flushed.
  void BeginDrain();

  bool draining() const;

  /// Queue depth up to which a request of `tier` is admitted; requests
  /// arriving at depth >= the threshold are shed (DESIGN.md §13).
  /// Monotonically non-increasing in `tier`; tier 0 gets the full queue.
  int TierThreshold(int tier) const;

  /// The deepest pipelining window a single well-behaved client may use
  /// without ever being shed: the smallest tier threshold. ServeStream
  /// and the stdio front-end bound their in-flight windows by this, which
  /// keeps single-client streams deterministic under any fill limits.
  int GuaranteedAdmissionWindow() const;

  /// Admission-ordered counters (test + server_stats surface).
  SchedulerStats stats() const;

  const ServeOptions& options() const { return options_; }

 private:
  struct Pending {
    Request request;
    ResponseCallback done;  ///< Invoked exactly once by a drain worker.
    int64_t seq = 0;  ///< Admission order; keys the fault schedule.
    /// Sampled only when metrics are attached (serve.latency_us).
    std::chrono::steady_clock::time_point enqueued;
    /// Absolute deadline (admission + effective deadline_ms), checked at
    /// batch dispatch. `has_deadline` false means none — the clock was
    /// never read for this request.
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
  };

  /// Body of one pool drain task: repeatedly takes batches until the
  /// queue is empty, lingering up to batch_linger_us for fuller ones.
  void DrainLoop();
  void ProcessBatch(std::vector<Pending> batch);
  /// Renders the server_stats response. mu_ must be held (takes
  /// index_mu_ inside — lock order mu_ -> index_mu_).
  std::string StatsResponseLocked(int64_t id) const;
  /// Registers the serve.deadline.* counters if a registry is attached
  /// and they are not registered yet. mu_ must be held.
  void EnsureDeadlineMetricsLocked();
  /// Forwards an append_tweets request to the stream backend after every
  /// previously admitted request has executed. mu_ must be held; released
  /// while waiting and during the backend call, then re-taken.
  std::string AppendLocked(std::unique_lock<std::mutex>& lock,
                           const Request& request);

  ServeOptions options_;
  /// Queue-depth admission cutoffs per shed tier, precomputed from the
  /// fill limits at construction (non-increasing, tier 0 == capacity).
  int tier_thresholds_[kNumShedTiers] = {};

  /// The live index generation. Guarded by its own mutex, acquired after
  /// mu_ when both are needed (mu_ -> index_mu_); SwapIndex takes only
  /// index_mu_, so publication never contends with admission.
  mutable std::mutex index_mu_;
  std::shared_ptr<const StudyIndex> index_;
  /// Inference evidence twin of index_ (null == inference disabled).
  /// Seeded from ServeOptions::infer_index as a non-owning alias;
  /// streaming swaps in owned generations.
  std::shared_ptr<const infer::InferenceIndex> infer_index_;
  int64_t generation_ = 0;

  mutable std::mutex mu_;
  std::condition_variable batch_cv_;    ///< Wakes lingering drainers.
  std::condition_variable drained_cv_;  ///< Signals Drain completion.
  std::condition_variable executed_cv_;  ///< Signals per-request completion.
  /// Wakes submitters held back by an in-flight append fence.
  std::condition_variable admission_cv_;
  std::deque<Pending> queue_;
  int active_drainers_ = 0;
  /// Appends between fence entry and backend return. While nonzero,
  /// admission stalls on admission_cv_, so no request submitted after an
  /// append can execute before its index swap — the fence that makes a
  /// pipelined client's stream fully ordered under any worker count.
  int appends_in_flight_ = 0;
  bool draining_ = false;
  int64_t next_seq_ = 0;
  /// Admitted requests fully executed (responses set). executed_ ==
  /// next_seq_ means the queue and all in-flight batches are drained —
  /// the barrier append_tweets waits on.
  int64_t executed_ = 0;
  SchedulerStats stats_;

  // Observability (null when no registry is attached).
  obs::Counter* m_received_ = nullptr;
  obs::Counter* m_admitted_ = nullptr;
  obs::Counter* m_parse_errors_ = nullptr;
  obs::Counter* m_rejected_overload_ = nullptr;
  obs::Counter* m_rejected_shutdown_ = nullptr;
  obs::Counter* m_shed_tier_[kNumShedTiers] = {};
  obs::Counter* m_responses_ = nullptr;
  obs::Counter* m_faults_injected_ = nullptr;
  /// serve.deadline.* — registered lazily on the first request that
  /// actually carries a deadline (or eagerly when default_deadline_ms is
  /// set), so deadline-free runs leave the metric dump untouched.
  obs::Counter* m_deadline_requests_ = nullptr;
  obs::Counter* m_deadline_exceeded_ = nullptr;
  obs::Counter* m_method_[kNumMethods] = {};
  /// infer.* — registered only when inference is enabled, so servers
  /// without an inference index leave the metric dump untouched.
  obs::Counter* m_infer_requests_ = nullptr;
  obs::Counter* m_infer_decided_ = nullptr;
  obs::Counter* m_infer_abstained_ = nullptr;
  obs::Counter* m_infer_not_found_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Gauge* m_queue_depth_max_ = nullptr;
  obs::Histogram* m_batch_size_ = nullptr;
  obs::Histogram* m_latency_us_ = nullptr;

  /// Last member: its destructor joins the workers, which still touch the
  /// members above while draining.
  common::ThreadPool pool_;
};

}  // namespace stir::serve

#endif  // STIR_SERVE_SCHEDULER_H_
