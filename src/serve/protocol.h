#ifndef STIR_SERVE_PROTOCOL_H_
#define STIR_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "infer/home_inferrer.h"
#include "serve/study_index.h"
#include "twitter/model.h"

namespace stir::serve {

/// Version tag every request and response carries ("v"). Requests with a
/// different version are rejected with `bad_version`, so the protocol can
/// evolve without silently misreading old clients.
inline constexpr int kProtocolVersion = 1;

/// Default / maximum page size for lookup_district posting lists.
inline constexpr int64_t kDefaultDistrictLimit = 100;
inline constexpr int64_t kMaxDistrictLimit = 10'000;

/// The request methods (DESIGN.md §10 has the schema):
///
///   {"v":1,"id":7,"method":"lookup_user","params":{"user":123}}
///   {"v":1,"id":8,"method":"lookup_district",
///    "params":{"state":"Seoul","county":"Mapo-gu","limit":10,"offset":0}}
///   {"v":1,"id":9,"method":"topk_summary"}
///   {"v":1,"id":10,"method":"server_stats"}
///   {"v":1,"id":11,"method":"index_info"}
///   {"v":1,"id":12,"method":"append_tweets","params":{
///    "users":[{"id":900,"location":"Seoul Mapo-gu","total_tweets":3}],
///    "tweets":[{"id":9000,"user":900,"time":50,
///               "lat":37.55,"lng":126.9,"text":"..."}]}}
///   {"v":1,"id":13,"method":"infer_user",
///    "params":{"user":123,"strategy":"diurnal"}}
///
/// Any request may carry an optional top-level "deadline_ms" (positive
/// integer): the client's latency budget from admission, enforced at
/// batch dispatch (see Request::deadline_ms).
///
/// One request per line (line-delimited JSON); responses echo the id:
///
///   {"v":1,"id":7,"ok":true,"result":{...}}
///   {"v":1,"id":7,"ok":false,"error":{"code":"not_found","message":"..."}}
///
/// append_tweets is served only by a streaming server (stir_serve
/// --stream); elsewhere it fails with `bad_request`. index_info is always
/// served and reports the live index generation (0 on a batch server).
/// infer_user (DESIGN.md §16) requires an inference index
/// (ServeOptions::infer_index); without one it fails with `bad_request`.
/// Its optional "strategy" param names a stir::infer strategy ("spatial"
/// | "diurnal" | "text"; absent means the server default), and a
/// prediction below the abstain threshold answers the typed
/// `low_confidence` envelope rather than a made-up district.
enum class Method : int {
  kLookupUser = 0,
  kLookupDistrict = 1,
  kTopkSummary = 2,
  kServerStats = 3,
  kAppendTweets = 4,
  kIndexInfo = 5,
  kInferUser = 6,
};
inline constexpr int kNumMethods = 7;
const char* MethodToString(Method method);

/// Admission shed tiers (DESIGN.md §13). Under overload the scheduler
/// rejects the *lowest-value* request class first instead of applying a
/// blanket cutoff: tier 3 (`append_tweets` — expensive, fences the whole
/// pipeline) sheds before tier 2 (the index lookups), which sheds before
/// tier 1 (`infer_user` — a point read that downstream personalization
/// depends on), and tier 0 (`server_stats` — the control plane an
/// operator uses to diagnose the overload) is never shed at all. Lower
/// tier number == higher value.
inline constexpr int kNumShedTiers = 4;
int ShedTier(Method method);

/// Per-array record cap for append_tweets (schema guard, not a resource
/// limit — the admission queue and max_request_bytes bound the rest).
inline constexpr int64_t kMaxAppendRecords = 10'000;

/// Error codes carried in `error.code`. The retry contract for clients
/// (documented in DESIGN.md §10): `overloaded`, `unavailable`,
/// `deadline_exceeded`, and `data_corrupt` are transient — retry with
/// common::RetryPolicy semantics (exponential backoff, bounded
/// attempts; for `data_corrupt`, against a replica or after the
/// operator restores the corpus); everything else is terminal for the
/// request as written.
enum class ErrorCode : int {
  kParseError = 0,     ///< Line is not valid JSON.
  kBadRequest = 1,     ///< Valid JSON, wrong shape (schema violation).
  kBadVersion = 2,     ///< "v" != kProtocolVersion.
  kUnknownMethod = 3,  ///< "method" names nothing served here.
  kOversized = 4,      ///< Line exceeds the size cap; not parsed.
  kNotFound = 5,       ///< User / district outside the index.
  kOverloaded = 6,     ///< Admission queue full — retryable.
  kShuttingDown = 7,   ///< Server draining; no new work accepted.
  kUnavailable = 8,    ///< Injected service fault — retryable.
  kInternal = 9,       ///< Handler invariant broke (never expected).
  kDeadlineExceeded = 10,  ///< Request's deadline expired — retryable.
  kDataCorrupt = 11,   ///< Backing data failed verification — retryable.
  kLowConfidence = 12,  ///< Inference abstained; not retryable as written.
};
const char* ErrorCodeToString(ErrorCode code);

/// A validated request, ready to execute.
struct Request {
  int64_t id = -1;
  Method method = Method::kTopkSummary;
  /// Client budget from the optional top-level "deadline_ms" key: the
  /// request is worthless to the sender this many milliseconds after
  /// admission, so the scheduler answers `deadline_exceeded` instead of
  /// executing it late. 0 (absent) defers to ServeOptions::
  /// default_deadline_ms; both 0 means no deadline.
  int64_t deadline_ms = 0;
  // lookup_user / infer_user
  twitter::UserId user = twitter::kInvalidUser;
  // infer_user: validated strategy name; empty means the server default.
  std::string strategy;
  // lookup_district
  std::string state;
  std::string county;
  int64_t limit = kDefaultDistrictLimit;
  int64_t offset = 0;
  // append_tweets (validated records, ready for the stream backend)
  std::vector<twitter::User> users;
  std::vector<twitter::Tweet> tweets;
};

/// Outcome of parsing one request line: a Request, or the error response
/// to send instead. When the malformed line still carried a usable id it
/// is echoed (`has_id`), otherwise the error response carries "id":null.
struct ParseOutcome {
  bool ok = false;
  Request request;
  ErrorCode code = ErrorCode::kParseError;
  std::string message;
  bool has_id = false;
  int64_t id = -1;
};

/// Strictly parses one line. Rejects: oversized lines (> `max_bytes`,
/// unparsed), invalid JSON, non-object roots, unknown or missing keys,
/// wrong value types, bad versions, unknown methods, and out-of-range
/// params. Deterministic: identical lines yield identical outcomes.
ParseOutcome ParseRequest(std::string_view line, size_t max_bytes);

/// Renders the error-response line (no trailing newline).
std::string ErrorResponse(bool has_id, int64_t id, ErrorCode code,
                          std::string_view message);

/// The `oversized` rejection for a line of `line_bytes` against a
/// `max_bytes` cap — one formatter shared by ParseRequest and the network
/// framer, so a line rejected while still split across socket reads is
/// byte-identical to the same line rejected whole over stdio.
std::string OversizedResponse(size_t line_bytes, size_t max_bytes);

/// Executes a lookup_user / lookup_district / topk_summary / index_info
/// request against the immutable index and renders the response line.
/// Pure: identical (index, request, generation, streaming) tuples yield
/// identical bytes, on any thread. server_stats and append_tweets are
/// answered by the scheduler (they touch scheduler-owned state) and must
/// not be passed here. `generation` and `streaming` feed index_info; a
/// batch server reports generation 0.
std::string ExecuteOnIndex(const StudyIndex& index, const Request& request,
                           int64_t generation, bool streaming);

/// Batch-server shim: generation 0, not streaming.
std::string ExecuteOnIndex(const StudyIndex& index, const Request& request);

/// How one infer_user request resolved, for the scheduler's `infer.*`
/// metrics.
enum class InferOutcome : int {
  kDecided = 0,    ///< Confident prediction returned.
  kAbstained = 1,  ///< `low_confidence` envelope.
  kNotFound = 2,   ///< User has no evidence in the index.
  kRejected = 3,   ///< Inference not enabled on this server.
};

/// Executes one infer_user request against the immutable evidence index
/// and renders the response line. Pure like ExecuteOnIndex: identical
/// (index, params, request) tuples yield identical bytes on any thread,
/// so responses are byte-identical across worker counts. A null `index`
/// (inference not enabled) answers `bad_request`; an unknown user
/// `not_found`; an abstention the typed `low_confidence` envelope with
/// the confidence it fell short at. `outcome` (optional) receives the
/// resolution for metrics.
std::string ExecuteInferUser(const infer::InferenceIndex* index,
                             const infer::InferParams& params,
                             const Request& request,
                             InferOutcome* outcome = nullptr);

}  // namespace stir::serve

#endif  // STIR_SERVE_PROTOCOL_H_
