#ifndef STIR_SERVE_STUDY_INDEX_H_
#define STIR_SERVE_STUDY_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/concentration.h"
#include "core/grouping.h"
#include "core/study.h"
#include "geo/admin_db.h"
#include "twitter/model.h"

namespace stir::serve {

/// Stable handle into a StudyIndex string pool.
using NameId = uint32_t;
inline constexpr NameId kInvalidName = 0xFFFFFFFFu;

/// One ranked entry of a user's merged location list (the paper's
/// Table II row, pre-rendered for serving).
struct RankedLocation {
  NameId district = kInvalidName;  ///< Interned "State County".
  int64_t count = 0;               ///< GPS tweets from that district.
  bool matched = false;            ///< District == the profile district.
};

/// Everything the serving layer answers about one final user. Location
/// strings live in the index's interned pool and postings arena; an entry
/// is a fixed-size record, so the user table is one flat vector.
struct UserEntry {
  twitter::UserId user = twitter::kInvalidUser;
  core::TopKGroup group = core::TopKGroup::kNone;
  int32_t match_rank = -1;  ///< 1-based; -1 when unmatched.
  NameId profile_district = kInvalidName;
  int64_t gps_tweets = 0;
  int64_t matched_tweets = 0;
  /// [first_location, first_location + num_locations) into locations().
  uint32_t first_location = 0;
  uint32_t num_locations = 0;
  /// Concentration view of the same per-user counts (Pavalanathan &
  /// Eisenstein motivate serving dispersion next to the ordinal group).
  core::ConcentrationMetrics concentration;
};

/// Per-district postings: which final users tweeted from the district,
/// and for how many it is the profile district.
struct DistrictEntry {
  NameId name = kInvalidName;
  /// [first_user, first_user + num_users) into postings(): user ids of
  /// final users with >= 1 GPS tweet from this district, ascending.
  uint32_t first_user = 0;
  uint32_t num_users = 0;
  int64_t gps_tweets = 0;     ///< GPS tweets geocoded to this district.
  int64_t profile_users = 0;  ///< Final users whose profile names it.
};

/// Immutable, string-interned snapshot of a StudyResult built for
/// concurrent read-only serving: O(1) user lookup, district → users
/// postings lists, and the Top-k group table. Construction happens once
/// on one thread; afterwards every member is const-safe to read from any
/// number of threads with no synchronization — the property the serving
/// layer's determinism guarantee rests on.
///
/// All orderings are value-determined (users ascending, districts by
/// name, postings ascending), never build-order-determined, so two
/// indexes built from equal StudyResults answer byte-identically.
class StudyIndex {
 public:
  /// Builds from a completed study. `db` resolves district aliases (the
  /// hangul spellings, alternate romanizations) into lookup keys; it is
  /// only read during Build and not retained. `result.incomplete` runs
  /// (a crashed study that has not been resumed to completion) are
  /// rejected by returning an empty index — callers check via empty().
  static StudyIndex Build(const core::StudyResult& result,
                          const geo::AdminDb& db);

  StudyIndex() = default;
  StudyIndex(const StudyIndex&) = delete;
  StudyIndex& operator=(const StudyIndex&) = delete;
  StudyIndex(StudyIndex&&) = default;
  StudyIndex& operator=(StudyIndex&&) = default;

  bool empty() const { return users_.empty(); }
  size_t user_count() const { return users_.size(); }
  size_t district_count() const { return districts_.size(); }

  /// O(1) by user id; nullptr for users outside the final sample.
  const UserEntry* FindUser(twitter::UserId user) const;

  /// District by (state, county), ASCII-case-insensitive, consulting the
  /// gazetteer aliases captured at build time. nullptr when absent or no
  /// final user tweeted from / lives in it.
  const DistrictEntry* FindDistrict(std::string_view state,
                                    std::string_view county) const;

  /// A user's ranked location list (multiplicity-descending, the study's
  /// tie rule), backed by the index arena.
  const RankedLocation* LocationsBegin(const UserEntry& entry) const {
    return locations_.data() + entry.first_location;
  }
  const RankedLocation* LocationsEnd(const UserEntry& entry) const {
    return locations_.data() + entry.first_location + entry.num_locations;
  }

  /// A district's posting list (ascending user ids).
  const twitter::UserId* PostingsBegin(const DistrictEntry& entry) const {
    return postings_.data() + entry.first_user;
  }
  const twitter::UserId* PostingsEnd(const DistrictEntry& entry) const {
    return postings_.data() + entry.first_user + entry.num_users;
  }

  /// Interned string by id ("State County").
  const std::string& name(NameId id) const { return names_[id]; }

  /// Districts in name order (deterministic iteration for summaries).
  const std::vector<DistrictEntry>& districts() const { return districts_; }
  const std::vector<UserEntry>& users() const { return users_; }

  /// The study-level aggregates served by topk_summary.
  const core::GroupStats& group(core::TopKGroup g) const {
    return groups_[static_cast<int>(g)];
  }
  const core::FunnelStats& funnel() const { return funnel_; }
  double overall_avg_locations() const { return overall_avg_locations_; }
  int64_t final_users() const { return final_users_; }

  /// Approximate resident bytes of all tables (served in server_stats).
  int64_t MemoryBytes() const;

 private:
  NameId Intern(const std::string& name);

  std::vector<std::string> names_;  ///< Interned pool; NameId indexes it.
  std::unordered_map<std::string, NameId> name_ids_;  ///< Build + lookup.
  /// Lowercased "state\tcounty" (canonical and alias spellings) → index
  /// into districts_.
  std::unordered_map<std::string, uint32_t> district_keys_;

  std::vector<UserEntry> users_;  ///< Ascending user id.
  std::unordered_map<twitter::UserId, uint32_t> user_ids_;
  std::vector<RankedLocation> locations_;  ///< Arena for UserEntry spans.
  std::vector<DistrictEntry> districts_;   ///< Ascending by name.
  std::vector<twitter::UserId> postings_;  ///< Arena for DistrictEntry.

  core::GroupStats groups_[core::kNumTopKGroups] = {};
  core::FunnelStats funnel_;
  double overall_avg_locations_ = 0.0;
  int64_t final_users_ = 0;
};

}  // namespace stir::serve

#endif  // STIR_SERVE_STUDY_INDEX_H_
