# Empty compiler generated dependencies file for bench_dataset_comparison.
# This may be replaced when dependencies are built.
