file(REMOVE_RECURSE
  "CMakeFiles/bench_dataset_comparison.dir/bench_dataset_comparison.cpp.o"
  "CMakeFiles/bench_dataset_comparison.dir/bench_dataset_comparison.cpp.o.d"
  "bench_dataset_comparison"
  "bench_dataset_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataset_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
