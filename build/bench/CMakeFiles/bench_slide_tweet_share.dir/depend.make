# Empty dependencies file for bench_slide_tweet_share.
# This may be replaced when dependencies are built.
