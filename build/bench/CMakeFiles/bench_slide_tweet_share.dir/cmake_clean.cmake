file(REMOVE_RECURSE
  "CMakeFiles/bench_slide_tweet_share.dir/bench_slide_tweet_share.cpp.o"
  "CMakeFiles/bench_slide_tweet_share.dir/bench_slide_tweet_share.cpp.o.d"
  "bench_slide_tweet_share"
  "bench_slide_tweet_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slide_tweet_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
