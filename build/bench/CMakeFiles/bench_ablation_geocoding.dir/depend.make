# Empty dependencies file for bench_ablation_geocoding.
# This may be replaced when dependencies are built.
