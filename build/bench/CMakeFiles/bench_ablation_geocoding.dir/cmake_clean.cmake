file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_geocoding.dir/bench_ablation_geocoding.cpp.o"
  "CMakeFiles/bench_ablation_geocoding.dir/bench_ablation_geocoding.cpp.o.d"
  "bench_ablation_geocoding"
  "bench_ablation_geocoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_geocoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
