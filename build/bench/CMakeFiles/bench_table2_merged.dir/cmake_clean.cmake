file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_merged.dir/bench_table2_merged.cpp.o"
  "CMakeFiles/bench_table2_merged.dir/bench_table2_merged.cpp.o.d"
  "bench_table2_merged"
  "bench_table2_merged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_merged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
