# Empty dependencies file for bench_table2_merged.
# This may be replaced when dependencies are built.
