# Empty compiler generated dependencies file for bench_event_weighting.
# This may be replaced when dependencies are built.
