file(REMOVE_RECURSE
  "CMakeFiles/bench_event_weighting.dir/bench_event_weighting.cpp.o"
  "CMakeFiles/bench_event_weighting.dir/bench_event_weighting.cpp.o.d"
  "bench_event_weighting"
  "bench_event_weighting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_event_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
