# Empty compiler generated dependencies file for bench_fig7_user_share.
# This may be replaced when dependencies are built.
