file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_concentration.dir/bench_ext_concentration.cpp.o"
  "CMakeFiles/bench_ext_concentration.dir/bench_ext_concentration.cpp.o.d"
  "bench_ext_concentration"
  "bench_ext_concentration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_concentration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
