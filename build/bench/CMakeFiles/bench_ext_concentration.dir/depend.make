# Empty dependencies file for bench_ext_concentration.
# This may be replaced when dependencies are built.
