file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_avg_locations.dir/bench_fig6_avg_locations.cpp.o"
  "CMakeFiles/bench_fig6_avg_locations.dir/bench_fig6_avg_locations.cpp.o.d"
  "bench_fig6_avg_locations"
  "bench_fig6_avg_locations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_avg_locations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
