# Empty compiler generated dependencies file for bench_fig6_avg_locations.
# This may be replaced when dependencies are built.
