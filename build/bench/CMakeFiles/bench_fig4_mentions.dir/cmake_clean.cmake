file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_mentions.dir/bench_fig4_mentions.cpp.o"
  "CMakeFiles/bench_fig4_mentions.dir/bench_fig4_mentions.cpp.o.d"
  "bench_fig4_mentions"
  "bench_fig4_mentions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_mentions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
