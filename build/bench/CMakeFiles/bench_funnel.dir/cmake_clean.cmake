file(REMOVE_RECURSE
  "CMakeFiles/bench_funnel.dir/bench_funnel.cpp.o"
  "CMakeFiles/bench_funnel.dir/bench_funnel.cpp.o.d"
  "bench_funnel"
  "bench_funnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_funnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
