# Empty dependencies file for bench_funnel.
# This may be replaced when dependencies are built.
