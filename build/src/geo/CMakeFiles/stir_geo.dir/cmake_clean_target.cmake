file(REMOVE_RECURSE
  "libstir_geo.a"
)
