
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/admin_data.cc" "src/geo/CMakeFiles/stir_geo.dir/admin_data.cc.o" "gcc" "src/geo/CMakeFiles/stir_geo.dir/admin_data.cc.o.d"
  "/root/repo/src/geo/admin_db.cc" "src/geo/CMakeFiles/stir_geo.dir/admin_db.cc.o" "gcc" "src/geo/CMakeFiles/stir_geo.dir/admin_db.cc.o.d"
  "/root/repo/src/geo/geohash.cc" "src/geo/CMakeFiles/stir_geo.dir/geohash.cc.o" "gcc" "src/geo/CMakeFiles/stir_geo.dir/geohash.cc.o.d"
  "/root/repo/src/geo/grid_index.cc" "src/geo/CMakeFiles/stir_geo.dir/grid_index.cc.o" "gcc" "src/geo/CMakeFiles/stir_geo.dir/grid_index.cc.o.d"
  "/root/repo/src/geo/latlng.cc" "src/geo/CMakeFiles/stir_geo.dir/latlng.cc.o" "gcc" "src/geo/CMakeFiles/stir_geo.dir/latlng.cc.o.d"
  "/root/repo/src/geo/polygon.cc" "src/geo/CMakeFiles/stir_geo.dir/polygon.cc.o" "gcc" "src/geo/CMakeFiles/stir_geo.dir/polygon.cc.o.d"
  "/root/repo/src/geo/polygon_locator.cc" "src/geo/CMakeFiles/stir_geo.dir/polygon_locator.cc.o" "gcc" "src/geo/CMakeFiles/stir_geo.dir/polygon_locator.cc.o.d"
  "/root/repo/src/geo/reverse_geocoder.cc" "src/geo/CMakeFiles/stir_geo.dir/reverse_geocoder.cc.o" "gcc" "src/geo/CMakeFiles/stir_geo.dir/reverse_geocoder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stir_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
