file(REMOVE_RECURSE
  "CMakeFiles/stir_geo.dir/admin_data.cc.o"
  "CMakeFiles/stir_geo.dir/admin_data.cc.o.d"
  "CMakeFiles/stir_geo.dir/admin_db.cc.o"
  "CMakeFiles/stir_geo.dir/admin_db.cc.o.d"
  "CMakeFiles/stir_geo.dir/geohash.cc.o"
  "CMakeFiles/stir_geo.dir/geohash.cc.o.d"
  "CMakeFiles/stir_geo.dir/grid_index.cc.o"
  "CMakeFiles/stir_geo.dir/grid_index.cc.o.d"
  "CMakeFiles/stir_geo.dir/latlng.cc.o"
  "CMakeFiles/stir_geo.dir/latlng.cc.o.d"
  "CMakeFiles/stir_geo.dir/polygon.cc.o"
  "CMakeFiles/stir_geo.dir/polygon.cc.o.d"
  "CMakeFiles/stir_geo.dir/polygon_locator.cc.o"
  "CMakeFiles/stir_geo.dir/polygon_locator.cc.o.d"
  "CMakeFiles/stir_geo.dir/reverse_geocoder.cc.o"
  "CMakeFiles/stir_geo.dir/reverse_geocoder.cc.o.d"
  "libstir_geo.a"
  "libstir_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stir_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
