# Empty compiler generated dependencies file for stir_geo.
# This may be replaced when dependencies are built.
