file(REMOVE_RECURSE
  "CMakeFiles/stir_common.dir/csv.cc.o"
  "CMakeFiles/stir_common.dir/csv.cc.o.d"
  "CMakeFiles/stir_common.dir/logging.cc.o"
  "CMakeFiles/stir_common.dir/logging.cc.o.d"
  "CMakeFiles/stir_common.dir/random.cc.o"
  "CMakeFiles/stir_common.dir/random.cc.o.d"
  "CMakeFiles/stir_common.dir/status.cc.o"
  "CMakeFiles/stir_common.dir/status.cc.o.d"
  "CMakeFiles/stir_common.dir/string_util.cc.o"
  "CMakeFiles/stir_common.dir/string_util.cc.o.d"
  "CMakeFiles/stir_common.dir/xml.cc.o"
  "CMakeFiles/stir_common.dir/xml.cc.o.d"
  "libstir_common.a"
  "libstir_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stir_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
