file(REMOVE_RECURSE
  "libstir_common.a"
)
