# Empty dependencies file for stir_common.
# This may be replaced when dependencies are built.
