# Empty dependencies file for stir_core.
# This may be replaced when dependencies are built.
