
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/concentration.cc" "src/core/CMakeFiles/stir_core.dir/concentration.cc.o" "gcc" "src/core/CMakeFiles/stir_core.dir/concentration.cc.o.d"
  "/root/repo/src/core/grouping.cc" "src/core/CMakeFiles/stir_core.dir/grouping.cc.o" "gcc" "src/core/CMakeFiles/stir_core.dir/grouping.cc.o.d"
  "/root/repo/src/core/location_string.cc" "src/core/CMakeFiles/stir_core.dir/location_string.cc.o" "gcc" "src/core/CMakeFiles/stir_core.dir/location_string.cc.o.d"
  "/root/repo/src/core/refinement.cc" "src/core/CMakeFiles/stir_core.dir/refinement.cc.o" "gcc" "src/core/CMakeFiles/stir_core.dir/refinement.cc.o.d"
  "/root/repo/src/core/reliability.cc" "src/core/CMakeFiles/stir_core.dir/reliability.cc.o" "gcc" "src/core/CMakeFiles/stir_core.dir/reliability.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/stir_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/stir_core.dir/report.cc.o.d"
  "/root/repo/src/core/study.cc" "src/core/CMakeFiles/stir_core.dir/study.cc.o" "gcc" "src/core/CMakeFiles/stir_core.dir/study.cc.o.d"
  "/root/repo/src/core/temporal.cc" "src/core/CMakeFiles/stir_core.dir/temporal.cc.o" "gcc" "src/core/CMakeFiles/stir_core.dir/temporal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stir_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/stir_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/stir_text.dir/DependInfo.cmake"
  "/root/repo/build/src/twitter/CMakeFiles/stir_twitter.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/stir_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
