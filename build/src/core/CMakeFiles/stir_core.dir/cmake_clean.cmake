file(REMOVE_RECURSE
  "CMakeFiles/stir_core.dir/concentration.cc.o"
  "CMakeFiles/stir_core.dir/concentration.cc.o.d"
  "CMakeFiles/stir_core.dir/grouping.cc.o"
  "CMakeFiles/stir_core.dir/grouping.cc.o.d"
  "CMakeFiles/stir_core.dir/location_string.cc.o"
  "CMakeFiles/stir_core.dir/location_string.cc.o.d"
  "CMakeFiles/stir_core.dir/refinement.cc.o"
  "CMakeFiles/stir_core.dir/refinement.cc.o.d"
  "CMakeFiles/stir_core.dir/reliability.cc.o"
  "CMakeFiles/stir_core.dir/reliability.cc.o.d"
  "CMakeFiles/stir_core.dir/report.cc.o"
  "CMakeFiles/stir_core.dir/report.cc.o.d"
  "CMakeFiles/stir_core.dir/study.cc.o"
  "CMakeFiles/stir_core.dir/study.cc.o.d"
  "CMakeFiles/stir_core.dir/temporal.cc.o"
  "CMakeFiles/stir_core.dir/temporal.cc.o.d"
  "libstir_core.a"
  "libstir_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stir_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
