file(REMOVE_RECURSE
  "libstir_core.a"
)
