# Empty dependencies file for stir_stats.
# This may be replaced when dependencies are built.
