file(REMOVE_RECURSE
  "CMakeFiles/stir_stats.dir/correlation.cc.o"
  "CMakeFiles/stir_stats.dir/correlation.cc.o.d"
  "CMakeFiles/stir_stats.dir/descriptive.cc.o"
  "CMakeFiles/stir_stats.dir/descriptive.cc.o.d"
  "libstir_stats.a"
  "libstir_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stir_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
