file(REMOVE_RECURSE
  "libstir_stats.a"
)
