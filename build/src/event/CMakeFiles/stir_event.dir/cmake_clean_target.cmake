file(REMOVE_RECURSE
  "libstir_event.a"
)
