# Empty compiler generated dependencies file for stir_event.
# This may be replaced when dependencies are built.
