file(REMOVE_RECURSE
  "CMakeFiles/stir_event.dir/event_sim.cc.o"
  "CMakeFiles/stir_event.dir/event_sim.cc.o.d"
  "CMakeFiles/stir_event.dir/kalman.cc.o"
  "CMakeFiles/stir_event.dir/kalman.cc.o.d"
  "CMakeFiles/stir_event.dir/particle_filter.cc.o"
  "CMakeFiles/stir_event.dir/particle_filter.cc.o.d"
  "CMakeFiles/stir_event.dir/toretter.cc.o"
  "CMakeFiles/stir_event.dir/toretter.cc.o.d"
  "CMakeFiles/stir_event.dir/trajectory.cc.o"
  "CMakeFiles/stir_event.dir/trajectory.cc.o.d"
  "CMakeFiles/stir_event.dir/twitris.cc.o"
  "CMakeFiles/stir_event.dir/twitris.cc.o.d"
  "libstir_event.a"
  "libstir_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stir_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
