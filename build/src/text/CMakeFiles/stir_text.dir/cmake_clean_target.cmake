file(REMOVE_RECURSE
  "libstir_text.a"
)
