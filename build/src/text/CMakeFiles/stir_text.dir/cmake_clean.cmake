file(REMOVE_RECURSE
  "CMakeFiles/stir_text.dir/gazetteer_matcher.cc.o"
  "CMakeFiles/stir_text.dir/gazetteer_matcher.cc.o.d"
  "CMakeFiles/stir_text.dir/location_parser.cc.o"
  "CMakeFiles/stir_text.dir/location_parser.cc.o.d"
  "CMakeFiles/stir_text.dir/normalize.cc.o"
  "CMakeFiles/stir_text.dir/normalize.cc.o.d"
  "CMakeFiles/stir_text.dir/tfidf.cc.o"
  "CMakeFiles/stir_text.dir/tfidf.cc.o.d"
  "libstir_text.a"
  "libstir_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stir_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
