
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/gazetteer_matcher.cc" "src/text/CMakeFiles/stir_text.dir/gazetteer_matcher.cc.o" "gcc" "src/text/CMakeFiles/stir_text.dir/gazetteer_matcher.cc.o.d"
  "/root/repo/src/text/location_parser.cc" "src/text/CMakeFiles/stir_text.dir/location_parser.cc.o" "gcc" "src/text/CMakeFiles/stir_text.dir/location_parser.cc.o.d"
  "/root/repo/src/text/normalize.cc" "src/text/CMakeFiles/stir_text.dir/normalize.cc.o" "gcc" "src/text/CMakeFiles/stir_text.dir/normalize.cc.o.d"
  "/root/repo/src/text/tfidf.cc" "src/text/CMakeFiles/stir_text.dir/tfidf.cc.o" "gcc" "src/text/CMakeFiles/stir_text.dir/tfidf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stir_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/stir_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
