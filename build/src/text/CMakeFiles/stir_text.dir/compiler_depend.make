# Empty compiler generated dependencies file for stir_text.
# This may be replaced when dependencies are built.
