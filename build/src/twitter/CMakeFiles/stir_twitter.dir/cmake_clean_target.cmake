file(REMOVE_RECURSE
  "libstir_twitter.a"
)
