
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/twitter/api.cc" "src/twitter/CMakeFiles/stir_twitter.dir/api.cc.o" "gcc" "src/twitter/CMakeFiles/stir_twitter.dir/api.cc.o.d"
  "/root/repo/src/twitter/column_store.cc" "src/twitter/CMakeFiles/stir_twitter.dir/column_store.cc.o" "gcc" "src/twitter/CMakeFiles/stir_twitter.dir/column_store.cc.o.d"
  "/root/repo/src/twitter/crawler.cc" "src/twitter/CMakeFiles/stir_twitter.dir/crawler.cc.o" "gcc" "src/twitter/CMakeFiles/stir_twitter.dir/crawler.cc.o.d"
  "/root/repo/src/twitter/dataset.cc" "src/twitter/CMakeFiles/stir_twitter.dir/dataset.cc.o" "gcc" "src/twitter/CMakeFiles/stir_twitter.dir/dataset.cc.o.d"
  "/root/repo/src/twitter/generator.cc" "src/twitter/CMakeFiles/stir_twitter.dir/generator.cc.o" "gcc" "src/twitter/CMakeFiles/stir_twitter.dir/generator.cc.o.d"
  "/root/repo/src/twitter/mobility.cc" "src/twitter/CMakeFiles/stir_twitter.dir/mobility.cc.o" "gcc" "src/twitter/CMakeFiles/stir_twitter.dir/mobility.cc.o.d"
  "/root/repo/src/twitter/profile_text.cc" "src/twitter/CMakeFiles/stir_twitter.dir/profile_text.cc.o" "gcc" "src/twitter/CMakeFiles/stir_twitter.dir/profile_text.cc.o.d"
  "/root/repo/src/twitter/social_graph.cc" "src/twitter/CMakeFiles/stir_twitter.dir/social_graph.cc.o" "gcc" "src/twitter/CMakeFiles/stir_twitter.dir/social_graph.cc.o.d"
  "/root/repo/src/twitter/tweet_text.cc" "src/twitter/CMakeFiles/stir_twitter.dir/tweet_text.cc.o" "gcc" "src/twitter/CMakeFiles/stir_twitter.dir/tweet_text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stir_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/stir_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
