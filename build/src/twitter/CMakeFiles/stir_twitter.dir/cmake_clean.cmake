file(REMOVE_RECURSE
  "CMakeFiles/stir_twitter.dir/api.cc.o"
  "CMakeFiles/stir_twitter.dir/api.cc.o.d"
  "CMakeFiles/stir_twitter.dir/column_store.cc.o"
  "CMakeFiles/stir_twitter.dir/column_store.cc.o.d"
  "CMakeFiles/stir_twitter.dir/crawler.cc.o"
  "CMakeFiles/stir_twitter.dir/crawler.cc.o.d"
  "CMakeFiles/stir_twitter.dir/dataset.cc.o"
  "CMakeFiles/stir_twitter.dir/dataset.cc.o.d"
  "CMakeFiles/stir_twitter.dir/generator.cc.o"
  "CMakeFiles/stir_twitter.dir/generator.cc.o.d"
  "CMakeFiles/stir_twitter.dir/mobility.cc.o"
  "CMakeFiles/stir_twitter.dir/mobility.cc.o.d"
  "CMakeFiles/stir_twitter.dir/profile_text.cc.o"
  "CMakeFiles/stir_twitter.dir/profile_text.cc.o.d"
  "CMakeFiles/stir_twitter.dir/social_graph.cc.o"
  "CMakeFiles/stir_twitter.dir/social_graph.cc.o.d"
  "CMakeFiles/stir_twitter.dir/tweet_text.cc.o"
  "CMakeFiles/stir_twitter.dir/tweet_text.cc.o.d"
  "libstir_twitter.a"
  "libstir_twitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stir_twitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
