# Empty dependencies file for stir_twitter.
# This may be replaced when dependencies are built.
