file(REMOVE_RECURSE
  "CMakeFiles/location_parser_test.dir/location_parser_test.cc.o"
  "CMakeFiles/location_parser_test.dir/location_parser_test.cc.o.d"
  "location_parser_test"
  "location_parser_test.pdb"
  "location_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/location_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
