# Empty compiler generated dependencies file for location_parser_test.
# This may be replaced when dependencies are built.
