# Empty dependencies file for concentration_test.
# This may be replaced when dependencies are built.
