file(REMOVE_RECURSE
  "CMakeFiles/concentration_test.dir/concentration_test.cc.o"
  "CMakeFiles/concentration_test.dir/concentration_test.cc.o.d"
  "concentration_test"
  "concentration_test.pdb"
  "concentration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concentration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
