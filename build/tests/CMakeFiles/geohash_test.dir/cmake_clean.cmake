file(REMOVE_RECURSE
  "CMakeFiles/geohash_test.dir/geohash_test.cc.o"
  "CMakeFiles/geohash_test.dir/geohash_test.cc.o.d"
  "geohash_test"
  "geohash_test.pdb"
  "geohash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geohash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
