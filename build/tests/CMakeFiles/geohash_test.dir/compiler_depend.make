# Empty compiler generated dependencies file for geohash_test.
# This may be replaced when dependencies are built.
