# Empty compiler generated dependencies file for location_string_test.
# This may be replaced when dependencies are built.
