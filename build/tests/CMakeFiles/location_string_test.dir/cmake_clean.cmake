file(REMOVE_RECURSE
  "CMakeFiles/location_string_test.dir/location_string_test.cc.o"
  "CMakeFiles/location_string_test.dir/location_string_test.cc.o.d"
  "location_string_test"
  "location_string_test.pdb"
  "location_string_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/location_string_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
