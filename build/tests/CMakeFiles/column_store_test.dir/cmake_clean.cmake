file(REMOVE_RECURSE
  "CMakeFiles/column_store_test.dir/column_store_test.cc.o"
  "CMakeFiles/column_store_test.dir/column_store_test.cc.o.d"
  "column_store_test"
  "column_store_test.pdb"
  "column_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
