file(REMOVE_RECURSE
  "CMakeFiles/latlng_test.dir/latlng_test.cc.o"
  "CMakeFiles/latlng_test.dir/latlng_test.cc.o.d"
  "latlng_test"
  "latlng_test.pdb"
  "latlng_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latlng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
