# Empty compiler generated dependencies file for latlng_test.
# This may be replaced when dependencies are built.
