
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/xml_test.cc" "tests/CMakeFiles/xml_test.dir/xml_test.cc.o" "gcc" "tests/CMakeFiles/xml_test.dir/xml_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stir_core.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/stir_event.dir/DependInfo.cmake"
  "/root/repo/build/src/twitter/CMakeFiles/stir_twitter.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/stir_text.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/stir_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/stir_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stir_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
