file(REMOVE_RECURSE
  "CMakeFiles/admin_db_test.dir/admin_db_test.cc.o"
  "CMakeFiles/admin_db_test.dir/admin_db_test.cc.o.d"
  "admin_db_test"
  "admin_db_test.pdb"
  "admin_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admin_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
