# Empty compiler generated dependencies file for admin_db_test.
# This may be replaced when dependencies are built.
