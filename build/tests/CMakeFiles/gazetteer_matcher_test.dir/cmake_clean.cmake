file(REMOVE_RECURSE
  "CMakeFiles/gazetteer_matcher_test.dir/gazetteer_matcher_test.cc.o"
  "CMakeFiles/gazetteer_matcher_test.dir/gazetteer_matcher_test.cc.o.d"
  "gazetteer_matcher_test"
  "gazetteer_matcher_test.pdb"
  "gazetteer_matcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gazetteer_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
