# Empty dependencies file for twitris_test.
# This may be replaced when dependencies are built.
