file(REMOVE_RECURSE
  "CMakeFiles/twitris_test.dir/twitris_test.cc.o"
  "CMakeFiles/twitris_test.dir/twitris_test.cc.o.d"
  "twitris_test"
  "twitris_test.pdb"
  "twitris_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twitris_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
