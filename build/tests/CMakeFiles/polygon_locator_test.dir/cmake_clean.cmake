file(REMOVE_RECURSE
  "CMakeFiles/polygon_locator_test.dir/polygon_locator_test.cc.o"
  "CMakeFiles/polygon_locator_test.dir/polygon_locator_test.cc.o.d"
  "polygon_locator_test"
  "polygon_locator_test.pdb"
  "polygon_locator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polygon_locator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
