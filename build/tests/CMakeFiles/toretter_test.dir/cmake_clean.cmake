file(REMOVE_RECURSE
  "CMakeFiles/toretter_test.dir/toretter_test.cc.o"
  "CMakeFiles/toretter_test.dir/toretter_test.cc.o.d"
  "toretter_test"
  "toretter_test.pdb"
  "toretter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toretter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
