# Empty compiler generated dependencies file for toretter_test.
# This may be replaced when dependencies are built.
