file(REMOVE_RECURSE
  "CMakeFiles/reverse_geocoder_test.dir/reverse_geocoder_test.cc.o"
  "CMakeFiles/reverse_geocoder_test.dir/reverse_geocoder_test.cc.o.d"
  "reverse_geocoder_test"
  "reverse_geocoder_test.pdb"
  "reverse_geocoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reverse_geocoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
