# Empty compiler generated dependencies file for reverse_geocoder_test.
# This may be replaced when dependencies are built.
