file(REMOVE_RECURSE
  "CMakeFiles/profile_text_test.dir/profile_text_test.cc.o"
  "CMakeFiles/profile_text_test.dir/profile_text_test.cc.o.d"
  "profile_text_test"
  "profile_text_test.pdb"
  "profile_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
