file(REMOVE_RECURSE
  "CMakeFiles/particle_filter_test.dir/particle_filter_test.cc.o"
  "CMakeFiles/particle_filter_test.dir/particle_filter_test.cc.o.d"
  "particle_filter_test"
  "particle_filter_test.pdb"
  "particle_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/particle_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
