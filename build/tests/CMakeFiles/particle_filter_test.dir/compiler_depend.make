# Empty compiler generated dependencies file for particle_filter_test.
# This may be replaced when dependencies are built.
