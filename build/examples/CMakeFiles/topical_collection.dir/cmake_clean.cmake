file(REMOVE_RECURSE
  "CMakeFiles/topical_collection.dir/topical_collection.cpp.o"
  "CMakeFiles/topical_collection.dir/topical_collection.cpp.o.d"
  "topical_collection"
  "topical_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topical_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
