# Empty compiler generated dependencies file for topical_collection.
# This may be replaced when dependencies are built.
