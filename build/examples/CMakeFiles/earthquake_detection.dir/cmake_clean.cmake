file(REMOVE_RECURSE
  "CMakeFiles/earthquake_detection.dir/earthquake_detection.cpp.o"
  "CMakeFiles/earthquake_detection.dir/earthquake_detection.cpp.o.d"
  "earthquake_detection"
  "earthquake_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthquake_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
