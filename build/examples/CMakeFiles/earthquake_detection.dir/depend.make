# Empty dependencies file for earthquake_detection.
# This may be replaced when dependencies are built.
