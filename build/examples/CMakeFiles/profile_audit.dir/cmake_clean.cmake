file(REMOVE_RECURSE
  "CMakeFiles/profile_audit.dir/profile_audit.cpp.o"
  "CMakeFiles/profile_audit.dir/profile_audit.cpp.o.d"
  "profile_audit"
  "profile_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
