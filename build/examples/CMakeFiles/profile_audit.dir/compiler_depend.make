# Empty compiler generated dependencies file for profile_audit.
# This may be replaced when dependencies are built.
