# Empty dependencies file for trend_summaries.
# This may be replaced when dependencies are built.
