file(REMOVE_RECURSE
  "CMakeFiles/trend_summaries.dir/trend_summaries.cpp.o"
  "CMakeFiles/trend_summaries.dir/trend_summaries.cpp.o.d"
  "trend_summaries"
  "trend_summaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trend_summaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
