# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(quickstart_smoke "/root/repo/build/examples/quickstart" "0.01")
set_tests_properties(quickstart_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(earthquake_detection_smoke "/root/repo/build/examples/earthquake_detection" "0.05")
set_tests_properties(earthquake_detection_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(trend_summaries_smoke "/root/repo/build/examples/trend_summaries" "0.01")
set_tests_properties(trend_summaries_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(profile_audit_smoke "/root/repo/build/examples/profile_audit")
set_tests_properties(profile_audit_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(topical_collection_smoke "/root/repo/build/examples/topical_collection" "0.05")
set_tests_properties(topical_collection_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
