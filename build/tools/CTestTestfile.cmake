# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(stir_cli_roundtrip "/usr/bin/cmake" "-DCLI=/root/repo/build/tools/stir_cli" "-DWORK_DIR=/root/repo/build/tools" "-P" "/root/repo/tools/cli_smoke_test.cmake")
set_tests_properties(stir_cli_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
