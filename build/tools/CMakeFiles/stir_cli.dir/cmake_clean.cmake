file(REMOVE_RECURSE
  "CMakeFiles/stir_cli.dir/stir_cli.cpp.o"
  "CMakeFiles/stir_cli.dir/stir_cli.cpp.o.d"
  "stir_cli"
  "stir_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stir_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
