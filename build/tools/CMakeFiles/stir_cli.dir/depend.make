# Empty dependencies file for stir_cli.
# This may be replaced when dependencies are built.
