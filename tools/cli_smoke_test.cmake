# Drives stir_cli through generate -> study -> audit and checks outputs.
execute_process(
  COMMAND ${CLI} generate --preset korean --scale 0.02
          --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed (${rc}): ${out} ${err}")
endif()

file(MAKE_DIRECTORY ${WORK_DIR}/smoke_report)
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv
          --report-dir ${WORK_DIR}/smoke_report
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "study failed (${rc}): ${out} ${err}")
endif()
if(NOT out MATCHES "final users")
  message(FATAL_ERROR "study output missing funnel: ${out}")
endif()
foreach(csv funnel.csv groups.csv users.csv)
  if(NOT EXISTS ${WORK_DIR}/smoke_report/${csv})
    message(FATAL_ERROR "missing report file ${csv}")
  endif()
endforeach()

# Parallel study must print byte-identical reports to the serial run.
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv --threads 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE serial_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serial study failed (${rc}): ${serial_out} ${err}")
endif()
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv --threads 4
  RESULT_VARIABLE rc OUTPUT_VARIABLE parallel_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "parallel study failed (${rc}): ${parallel_out} ${err}")
endif()
if(NOT serial_out STREQUAL parallel_out)
  message(FATAL_ERROR "--threads 4 output differs from --threads 1:\n"
          "=== serial ===\n${serial_out}\n=== parallel ===\n${parallel_out}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E echo "Seoul Mapo-gu"
  COMMAND ${CLI} audit
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "well-defined")
  message(FATAL_ERROR "audit failed (${rc}): ${out} ${err}")
endif()
