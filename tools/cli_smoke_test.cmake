# Drives stir_cli through generate -> study -> audit and checks outputs.
execute_process(
  COMMAND ${CLI} generate --preset korean --scale 0.02
          --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed (${rc}): ${out} ${err}")
endif()

file(MAKE_DIRECTORY ${WORK_DIR}/smoke_report)
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv
          --report-dir ${WORK_DIR}/smoke_report
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "study failed (${rc}): ${out} ${err}")
endif()
if(NOT out MATCHES "final users")
  message(FATAL_ERROR "study output missing funnel: ${out}")
endif()
foreach(csv funnel.csv groups.csv users.csv)
  if(NOT EXISTS ${WORK_DIR}/smoke_report/${csv})
    message(FATAL_ERROR "missing report file ${csv}")
  endif()
endforeach()

# Parallel study must print byte-identical reports to the serial run.
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv --threads 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE serial_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serial study failed (${rc}): ${serial_out} ${err}")
endif()
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv --threads 4
  RESULT_VARIABLE rc OUTPUT_VARIABLE parallel_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "parallel study failed (${rc}): ${parallel_out} ${err}")
endif()
if(NOT serial_out STREQUAL parallel_out)
  message(FATAL_ERROR "--threads 4 output differs from --threads 1:\n"
          "=== serial ===\n${serial_out}\n=== parallel ===\n${parallel_out}")
endif()

# --fault-rate 0 must leave the report byte-identical to a fault-free run.
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv --threads 1 --fault-rate 0
  RESULT_VARIABLE rc OUTPUT_VARIABLE zero_fault_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--fault-rate 0 study failed (${rc}): ${zero_fault_out} ${err}")
endif()
if(NOT zero_fault_out STREQUAL serial_out)
  message(FATAL_ERROR "--fault-rate 0 output differs from the fault-free run:\n"
          "=== fault-free ===\n${serial_out}\n=== fault-rate 0 ===\n${zero_fault_out}")
endif()

# Faulty run: the degraded-mode pipeline must complete and report nonzero
# retried/degraded counters ...
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv --threads 1
          --fault-rate 0.2 --fault-seed 7 --retry-max 2
  RESULT_VARIABLE rc OUTPUT_VARIABLE faulty_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "faulty study failed (${rc}): ${faulty_out} ${err}")
endif()
if(NOT faulty_out MATCHES "retried attempts: +[1-9]")
  message(FATAL_ERROR "faulty study reported no retries: ${faulty_out}")
endif()
if(NOT faulty_out MATCHES "degraded \\(text fallback\\): +[1-9]")
  message(FATAL_ERROR "faulty study reported no degraded lookups: ${faulty_out}")
endif()

# ... and the faulty report must still be byte-identical across thread
# counts (faults are keyed on tweet dataset indices, not arrival order).
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv --threads 4
          --fault-rate 0.2 --fault-seed 7 --retry-max 2
  RESULT_VARIABLE rc OUTPUT_VARIABLE faulty_parallel_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "faulty parallel study failed (${rc}): ${faulty_parallel_out} ${err}")
endif()
if(NOT faulty_out STREQUAL faulty_parallel_out)
  message(FATAL_ERROR "faulty --threads 4 output differs from --threads 1:\n"
          "=== serial ===\n${faulty_out}\n=== parallel ===\n${faulty_parallel_out}")
endif()

# Checkpointing on (fresh directory, no crash) must leave stdout
# byte-identical to the plain run — durability is observable only in the
# checkpoint directory, never in the results.
file(REMOVE_RECURSE ${WORK_DIR}/smoke_ckpt)
file(MAKE_DIRECTORY ${WORK_DIR}/smoke_ckpt)
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv --threads 1
          --checkpoint-dir ${WORK_DIR}/smoke_ckpt
  RESULT_VARIABLE rc OUTPUT_VARIABLE ckpt_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "checkpointed study failed (${rc}): ${ckpt_out} ${err}")
endif()
if(NOT ckpt_out STREQUAL serial_out)
  message(FATAL_ERROR "--checkpoint-dir perturbed stdout:\n"
          "=== baseline ===\n${serial_out}\n=== checkpointed ===\n${ckpt_out}")
endif()
foreach(artifact geocode.journal study.ckpt)
  if(NOT EXISTS ${WORK_DIR}/smoke_ckpt/${artifact})
    message(FATAL_ERROR "checkpointed run left no ${artifact}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E echo "Seoul Mapo-gu"
  COMMAND ${CLI} audit
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "well-defined")
  message(FATAL_ERROR "audit failed (${rc}): ${out} ${err}")
endif()

# --- Observability -----------------------------------------------------

# An obs-enabled parallel run must keep stdout byte-identical (exports
# announce on stderr) and produce parseable metrics + Chrome trace JSON.
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv --threads 4
          --metrics-out ${WORK_DIR}/smoke_metrics.json
          --trace-out ${WORK_DIR}/smoke_trace.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE obs_out ERROR_VARIABLE obs_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obs-enabled study failed (${rc}): ${obs_out} ${obs_err}")
endif()
if(NOT obs_out STREQUAL serial_out)
  message(FATAL_ERROR "--metrics-out/--trace-out perturbed stdout:\n"
          "=== baseline ===\n${serial_out}\n=== observed ===\n${obs_out}")
endif()
if(NOT obs_err MATCHES "metrics written to" OR NOT obs_err MATCHES "trace written to")
  message(FATAL_ERROR "obs export notices missing from stderr: ${obs_err}")
endif()

file(READ ${WORK_DIR}/smoke_metrics.json metrics_json)
# string(JSON) (CMake >= 3.19) both lints the documents and checks the
# drop-counter invariants the metrics contract promises; older CMake
# still runs everything above plus the CLI-contract checks below.
if(CMAKE_VERSION VERSION_LESS 3.19)
  set(skip_json_checks TRUE)
else()
  set(skip_json_checks FALSE)
endif()
if(NOT skip_json_checks)
string(JSON crawled GET "${metrics_json}" counters funnel.users.crawled)
string(JSON well_defined GET "${metrics_json}" counters funnel.users.well_defined)
string(JSON final GET "${metrics_json}" counters funnel.users.final)
string(JSON drop_empty GET "${metrics_json}" counters funnel.drop.profile_empty)
string(JSON drop_vague GET "${metrics_json}" counters funnel.drop.profile_vague)
string(JSON drop_insufficient GET "${metrics_json}" counters funnel.drop.profile_insufficient)
string(JSON drop_ambiguous GET "${metrics_json}" counters funnel.drop.profile_ambiguous)
string(JSON drop_no_geo GET "${metrics_json}" counters funnel.drop.no_geocoded_tweets)
math(EXPR profile_drops
     "${drop_empty} + ${drop_vague} + ${drop_insufficient} + ${drop_ambiguous}")
math(EXPR expected_profile_drops "${crawled} - ${well_defined}")
if(NOT profile_drops EQUAL expected_profile_drops)
  message(FATAL_ERROR "funnel.drop.profile_* sum ${profile_drops} != "
          "crawled - well_defined = ${expected_profile_drops}")
endif()
math(EXPR funnel_final "${well_defined} - ${drop_no_geo}")
if(NOT funnel_final EQUAL final)
  message(FATAL_ERROR "well_defined - no_geocoded_tweets = ${funnel_final} "
          "!= funnel.users.final = ${final}")
endif()
string(JSON geocode_queries GET "${metrics_json}" counters geocode.queries)
if(geocode_queries LESS 1)
  message(FATAL_ERROR "geocode.queries not recorded: ${geocode_queries}")
endif()

file(READ ${WORK_DIR}/smoke_trace.json trace_json)
string(JSON first_event GET "${trace_json}" traceEvents 0)
foreach(stage study refinement refine.shard grouping aggregate geocode)
  string(FIND "${trace_json}" "\"${stage}\"" stage_pos)
  if(stage_pos EQUAL -1)
    message(FATAL_ERROR "trace missing stage span '${stage}': ${trace_json}")
  endif()
endforeach()

# report.json: schema 2 nests the failure model under "resilience";
# --report-schema 1 reproduces the legacy layout without it.
file(READ ${WORK_DIR}/smoke_report/report.json report_json)
string(JSON report_schema GET "${report_json}" schema_version)
if(NOT report_schema EQUAL 2)
  message(FATAL_ERROR "report.json default schema_version ${report_schema} != 2")
endif()
string(JSON report_crawled GET "${report_json}" funnel crawled_users)
if(NOT report_crawled EQUAL crawled)
  message(FATAL_ERROR "report.json crawled_users ${report_crawled} != "
          "metrics funnel.users.crawled ${crawled}")
endif()
string(JSON fault_enabled GET "${report_json}" resilience fault_injection_enabled)
if(NOT fault_enabled MATCHES "^(OFF|FALSE|false)$")
  message(FATAL_ERROR "fault-free report.json resilience.fault_injection_enabled "
          "should be false, got '${fault_enabled}'")
endif()

file(MAKE_DIRECTORY ${WORK_DIR}/smoke_report_v1)
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv
          --report-dir ${WORK_DIR}/smoke_report_v1 --report-schema 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--report-schema 1 study failed (${rc}): ${out} ${err}")
endif()
file(READ ${WORK_DIR}/smoke_report_v1/report.json report_v1_json)
string(JSON report_v1_schema GET "${report_v1_json}" schema_version)
if(NOT report_v1_schema EQUAL 1)
  message(FATAL_ERROR "--report-schema 1 wrote schema_version ${report_v1_schema}")
endif()
string(JSON v1_resilience ERROR_VARIABLE v1_json_err GET "${report_v1_json}" resilience)
if(v1_json_err STREQUAL "NOTFOUND")
  message(FATAL_ERROR "schema 1 report.json must not contain 'resilience'")
endif()
endif()  # skip_json_checks

# --- CLI contract ------------------------------------------------------

# Unknown flags must be rejected with a non-zero exit.
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv --definitely-not-a-flag
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown flag was accepted: ${out}")
endif()
if(NOT err MATCHES "unknown flag --definitely-not-a-flag")
  message(FATAL_ERROR "unknown-flag diagnostic missing: ${err}")
endif()

# --help is generated from the flag table and exits 0.
execute_process(
  COMMAND ${CLI} study --help
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "study --help exited ${rc}: ${err}")
endif()
foreach(flag metrics-out trace-out report-schema threads fault-rate
        stream epoch-size)
  if(NOT err MATCHES "--${flag}")
    message(FATAL_ERROR "study --help missing --${flag}: ${err}")
  endif()
endforeach()
