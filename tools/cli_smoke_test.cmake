# Drives stir_cli through generate -> study -> audit and checks outputs.
execute_process(
  COMMAND ${CLI} generate --preset korean --scale 0.02
          --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed (${rc}): ${out} ${err}")
endif()

file(MAKE_DIRECTORY ${WORK_DIR}/smoke_report)
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv
          --report-dir ${WORK_DIR}/smoke_report
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "study failed (${rc}): ${out} ${err}")
endif()
if(NOT out MATCHES "final users")
  message(FATAL_ERROR "study output missing funnel: ${out}")
endif()
foreach(csv funnel.csv groups.csv users.csv)
  if(NOT EXISTS ${WORK_DIR}/smoke_report/${csv})
    message(FATAL_ERROR "missing report file ${csv}")
  endif()
endforeach()

# Parallel study must print byte-identical reports to the serial run.
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv --threads 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE serial_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serial study failed (${rc}): ${serial_out} ${err}")
endif()
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv --threads 4
  RESULT_VARIABLE rc OUTPUT_VARIABLE parallel_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "parallel study failed (${rc}): ${parallel_out} ${err}")
endif()
if(NOT serial_out STREQUAL parallel_out)
  message(FATAL_ERROR "--threads 4 output differs from --threads 1:\n"
          "=== serial ===\n${serial_out}\n=== parallel ===\n${parallel_out}")
endif()

# --fault-rate 0 must leave the report byte-identical to a fault-free run.
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv --threads 1 --fault-rate 0
  RESULT_VARIABLE rc OUTPUT_VARIABLE zero_fault_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--fault-rate 0 study failed (${rc}): ${zero_fault_out} ${err}")
endif()
if(NOT zero_fault_out STREQUAL serial_out)
  message(FATAL_ERROR "--fault-rate 0 output differs from the fault-free run:\n"
          "=== fault-free ===\n${serial_out}\n=== fault-rate 0 ===\n${zero_fault_out}")
endif()

# Faulty run: the degraded-mode pipeline must complete and report nonzero
# retried/degraded counters ...
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv --threads 1
          --fault-rate 0.2 --fault-seed 7 --retry-max 2
  RESULT_VARIABLE rc OUTPUT_VARIABLE faulty_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "faulty study failed (${rc}): ${faulty_out} ${err}")
endif()
if(NOT faulty_out MATCHES "retried attempts: +[1-9]")
  message(FATAL_ERROR "faulty study reported no retries: ${faulty_out}")
endif()
if(NOT faulty_out MATCHES "degraded \\(text fallback\\): +[1-9]")
  message(FATAL_ERROR "faulty study reported no degraded lookups: ${faulty_out}")
endif()

# ... and the faulty report must still be byte-identical across thread
# counts (faults are keyed on tweet dataset indices, not arrival order).
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/smoke_users.tsv
          --tweets ${WORK_DIR}/smoke_tweets.tsv --threads 4
          --fault-rate 0.2 --fault-seed 7 --retry-max 2
  RESULT_VARIABLE rc OUTPUT_VARIABLE faulty_parallel_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "faulty parallel study failed (${rc}): ${faulty_parallel_out} ${err}")
endif()
if(NOT faulty_out STREQUAL faulty_parallel_out)
  message(FATAL_ERROR "faulty --threads 4 output differs from --threads 1:\n"
          "=== serial ===\n${faulty_out}\n=== parallel ===\n${faulty_parallel_out}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E echo "Seoul Mapo-gu"
  COMMAND ${CLI} audit
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "well-defined")
  message(FATAL_ERROR "audit failed (${rc}): ${out} ${err}")
endif()
