// stir_serve — query-serving front end over a finished study. It runs
// the pipeline once at startup (optionally resuming from a checkpoint
// directory), freezes the result into an immutable StudyIndex, and then
// serves the line-delimited JSON protocol (DESIGN.md §10):
//
//   stir_serve --users u.tsv --tweets t.tsv --stdio   < requests.jsonl
//   stir_serve --users u.tsv --tweets t.tsv --port 7878
//
// --stdio reads requests from stdin and writes responses to stdout in
// request order — deterministic, the smoke-test and scripting surface.
// --port serves the same protocol over loopback TCP until SIGINT or
// SIGTERM. Both modes run through the same net::EpollServer event loop
// (DESIGN.md §13) — stdio is just an adopted connection — so pipelining,
// tiered admission control, and graceful drain behave identically.
// Everything informational goes to stderr so stdout stays protocol-pure.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "core/study.h"
#include "core/study_config.h"
#include "geo/admin_db.h"
#include "infer/home_inferrer.h"
#include "infer/inference_index.h"
#include "io/corpus_reader.h"
#include "io/fault_fs.h"
#include "net/epoll_server.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "serve/study_index.h"
#include "stream/engine.h"
#include "twitter/api.h"
#include "twitter/dataset.h"

namespace {

using stir::geo::AdminDb;

/// One command-line flag (same declarative shape as stir_cli): name,
/// optional value placeholder (null marks a boolean), help line, binder.
struct Flag {
  const char* name;
  const char* value_name;
  const char* help;
  std::function<bool(const std::string& value)> bind;
};

void PrintHelp(const std::vector<Flag>& flags) {
  std::fprintf(stderr,
               "usage: stir_serve [flags]\n"
               "run the study once, then serve lookups over it "
               "(line-delimited JSON)\n\nflags:\n");
  size_t width = 0;
  for (const Flag& flag : flags) {
    size_t w = std::strlen(flag.name) +
               (flag.value_name != nullptr ? std::strlen(flag.value_name) + 1
                                           : 0);
    width = std::max(width, w);
  }
  for (const Flag& flag : flags) {
    std::string left = flag.name;
    if (flag.value_name != nullptr) {
      left += ' ';
      left += flag.value_name;
    }
    std::fprintf(stderr, "  --%-*s  %s\n", static_cast<int>(width),
                 left.c_str(), flag.help);
  }
  std::fprintf(stderr, "  --%-*s  %s\n", static_cast<int>(width), "help",
               "show this message and exit");
}

int ParseArgs(int argc, char** argv, const std::vector<Flag>& flags,
              bool* want_help) {
  *want_help = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      *want_help = true;
      return 0;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr,
                   "stir_serve: unexpected argument '%s' (flags only; try "
                   "--help)\n",
                   arg.c_str());
      return 2;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_inline_value = false;
    size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline_value = true;
    }
    const Flag* match = nullptr;
    for (const Flag& flag : flags) {
      if (name == flag.name) {
        match = &flag;
        break;
      }
    }
    if (match == nullptr) {
      std::fprintf(stderr, "stir_serve: unknown flag --%s (try --help)\n",
                   name.c_str());
      return 2;
    }
    if (match->value_name == nullptr) {
      if (has_inline_value) {
        std::fprintf(stderr, "stir_serve: --%s takes no value\n",
                     name.c_str());
        return 2;
      }
    } else if (!has_inline_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "stir_serve: --%s requires a value (%s)\n",
                     name.c_str(), match->value_name);
        return 2;
      }
      value = argv[++i];
    }
    if (!match->bind(value)) return 2;
  }
  return 0;
}

bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseUInt64(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool BadValue(const char* flag, const char* expect) {
  std::fprintf(stderr, "stir_serve: --%s must be %s\n", flag, expect);
  return false;
}

const AdminDb* GazetteerByName(const std::string& name) {
  if (name == "world") return &AdminDb::WorldCities();
  if (name == "korean") return &AdminDb::KoreanDistricts();
  return nullptr;
}

/// Signal-to-drain plumbing: SIGINT/SIGTERM call RequestDrain, which is
/// async-signal-safe (atomic store + eventfd write). The handlers are
/// restored to SIG_DFL once the loop exits, so a second signal during a
/// stuck shutdown force-kills the process.
stir::net::EpollServer* g_drain_target = nullptr;

void HandleShutdownSignal(int) {
  if (g_drain_target != nullptr) g_drain_target->RequestDrain();
}

void InstallDrainHandlers(stir::net::EpollServer* target) {
  g_drain_target = target;
  struct sigaction action{};
  action.sa_handler = target != nullptr ? HandleShutdownSignal : SIG_DFL;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  if (target == nullptr) g_drain_target = nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  stir::StudyConfig config;
  std::string users_path;
  std::string tweets_path;
  std::string corpus_path;
  std::string gazetteer = "korean";
  bool lenient_load = false;
  bool stdio_mode = false;
  bool tcp_mode = false;
  int64_t port = 0;
  std::string metrics_out;
  int64_t max_pipeline = 64;
  int64_t max_connections = 4096;
  int64_t drain_after = 0;
  bool stream_mode = false;
  int64_t epoch_size = 0;
  stir::serve::ServeOptions serve_options;
  stir::common::FaultInjectorOptions fault_options;
  stir::io::FaultFsOptions io_fault_options;
  bool degraded_on_corrupt = false;

  std::vector<Flag> flags = {
      {"users", "FILE", "input users TSV",
       [&](const std::string& v) { users_path = v; return true; }},
      {"tweets", "FILE", "input tweets TSV or column snapshot",
       [&](const std::string& v) { tweets_path = v; return true; }},
      {"corpus", "FILE",
       "input self-contained v3 arena corpus (alternative to "
       "--users/--tweets; format is sniffed from magic bytes)",
       [&](const std::string& v) { corpus_path = v; return true; }},
      {"gazetteer", "NAME", "gazetteer: korean | world (default korean)",
       [&](const std::string& v) {
         if (GazetteerByName(v) == nullptr) {
           return BadValue("gazetteer", "korean or world");
         }
         gazetteer = v;
         return true;
       }},
      {"lenient-load", nullptr,
       "quarantine malformed TSV rows instead of failing the load",
       [&](const std::string&) { lenient_load = true; return true; }},
      {"threads", "N", "study-build worker threads, >= 1 (default 1)",
       [&](const std::string& v) {
         int64_t n = 0;
         if (!ParseInt64(v, &n) || n < 1) {
           return BadValue("threads", ">= 1");
         }
         config.threads = static_cast<int>(n);
         return true;
       }},
      {"checkpoint-dir", "DIR",
       "durable geocode journal + study checkpoints in DIR",
       [&](const std::string& v) {
         config.durability.checkpoint_dir = v;
         return true;
       }},
      {"resume", nullptr,
       "resume from the checkpoint in --checkpoint-dir (fresh run if none)",
       [&](const std::string&) {
         config.durability.resume = true;
         return true;
       }},
      {"crash-after", "N",
       "hard-exit (status 42) when the Nth geocode lookup starts (testing)",
       [&](const std::string& v) {
         if (!ParseInt64(v, &config.fault.crash_after) ||
             config.fault.crash_after < 1) {
           return BadValue("crash-after", ">= 1");
         }
         return true;
       }},
      {"stream", nullptr,
       "incremental streaming mode: ingest the corpus through the stream "
       "engine and serve append_tweets (DESIGN.md §12)",
       [&](const std::string&) { stream_mode = true; return true; }},
      {"epoch-size", "N",
       "streaming auto-seal threshold in tweets; 0 = one seal at startup "
       "(default 0; requires --stream)",
       [&](const std::string& v) {
         if (!ParseInt64(v, &epoch_size) || epoch_size < 0) {
           return BadValue("epoch-size", ">= 0");
         }
         return true;
       }},
      {"stdio", nullptr,
       "serve stdin -> stdout, one request per line (deterministic)",
       [&](const std::string&) { stdio_mode = true; return true; }},
      {"port", "N",
       "serve loopback TCP on port N (0 picks one) until SIGINT/SIGTERM",
       [&](const std::string& v) {
         if (!ParseInt64(v, &port) || port < 0 || port > 65535) {
           return BadValue("port", "in [0, 65535]");
         }
         tcp_mode = true;
         return true;
       }},
      {"workers", "N", "serving worker threads, >= 1 (default 4)",
       [&](const std::string& v) {
         int64_t n = 0;
         if (!ParseInt64(v, &n) || n < 1) {
           return BadValue("workers", ">= 1");
         }
         serve_options.workers = static_cast<int>(n);
         return true;
       }},
      {"max-batch", "N", "max requests per micro-batch, >= 1 (default 16)",
       [&](const std::string& v) {
         int64_t n = 0;
         if (!ParseInt64(v, &n) || n < 1) {
           return BadValue("max-batch", ">= 1");
         }
         serve_options.max_batch_size = static_cast<int>(n);
         return true;
       }},
      {"batch-linger-us", "US",
       "wait up to US microseconds for a fuller batch (default 0)",
       [&](const std::string& v) {
         int64_t n = 0;
         if (!ParseInt64(v, &n) || n < 0) {
           return BadValue("batch-linger-us", ">= 0");
         }
         serve_options.batch_linger_us = n;
         return true;
       }},
      {"queue-capacity", "N",
       "admission queue bound; beyond it requests get 'overloaded' "
       "(default 1024)",
       [&](const std::string& v) {
         int64_t n = 0;
         if (!ParseInt64(v, &n) || n < 1) {
           return BadValue("queue-capacity", ">= 1");
         }
         serve_options.queue_capacity = static_cast<int>(n);
         return true;
       }},
      {"max-request-bytes", "N",
       "reject request lines longer than N bytes (default 65536)",
       [&](const std::string& v) {
         int64_t n = 0;
         if (!ParseInt64(v, &n) || n < 1) {
           return BadValue("max-request-bytes", ">= 1");
         }
         serve_options.max_request_bytes = static_cast<size_t>(n);
         return true;
       }},
      {"max-pipeline", "N",
       "per-connection pipelining window, >= 1 (default 64)",
       [&](const std::string& v) {
         if (!ParseInt64(v, &max_pipeline) || max_pipeline < 1) {
           return BadValue("max-pipeline", ">= 1");
         }
         return true;
       }},
      {"max-connections", "N",
       "accept at most N concurrent connections (default 4096)",
       [&](const std::string& v) {
         if (!ParseInt64(v, &max_connections) || max_connections < 1) {
           return BadValue("max-connections", ">= 1");
         }
         return true;
       }},
      {"tier1-fill", "P",
       "shed lookups/topk once the queue is P full, (0, 1] (default 1)",
       [&](const std::string& v) {
         if (!ParseDouble(v, &serve_options.tier1_fill_limit) ||
             serve_options.tier1_fill_limit <= 0.0 ||
             serve_options.tier1_fill_limit > 1.0) {
           return BadValue("tier1-fill", "in (0, 1]");
         }
         return true;
       }},
      {"tier2-fill", "P",
       "shed append_tweets once the queue is P full, (0, 1] (default 1)",
       [&](const std::string& v) {
         if (!ParseDouble(v, &serve_options.tier2_fill_limit) ||
             serve_options.tier2_fill_limit <= 0.0 ||
             serve_options.tier2_fill_limit > 1.0) {
           return BadValue("tier2-fill", "in (0, 1]");
         }
         return true;
       }},
      {"infer-fill", "P",
       "shed infer_user once the queue is P full, (0, 1] (default 1)",
       [&](const std::string& v) {
         if (!ParseDouble(v, &serve_options.infer_fill_limit) ||
             serve_options.infer_fill_limit <= 0.0 ||
             serve_options.infer_fill_limit > 1.0) {
           return BadValue("infer-fill", "in (0, 1]");
         }
         return true;
       }},
      {"infer-strategy", "NAME",
       "default infer_user strategy: spatial | diurnal | text "
       "(default diurnal)",
       [&](const std::string& v) {
         if (!stir::infer::StrategyFromString(
                 v, &serve_options.infer.default_strategy)) {
           return BadValue("infer-strategy", "spatial, diurnal or text");
         }
         return true;
       }},
      {"infer-abstain", "P",
       "infer_user abstains (answers 'low_confidence') below confidence P, "
       "[0, 1] (default 0.4)",
       [&](const std::string& v) {
         if (!ParseDouble(v, &serve_options.infer.abstain_threshold) ||
             serve_options.infer.abstain_threshold < 0.0 ||
             serve_options.infer.abstain_threshold > 1.0) {
           return BadValue("infer-abstain", "in [0, 1]");
         }
         return true;
       }},
      {"infer-night-weight", "N",
       "diurnal strategy weight on night-window GPS tweets, >= 1 "
       "(default 3)",
       [&](const std::string& v) {
         int64_t n = 0;
         if (!ParseInt64(v, &n) || n < 1) {
           return BadValue("infer-night-weight", ">= 1");
         }
         serve_options.infer.night_weight = n;
         return true;
       }},
      {"drain-after", "N",
       "begin a graceful drain after the Nth request line (testing hook)",
       [&](const std::string& v) {
         if (!ParseInt64(v, &drain_after) || drain_after < 0) {
           return BadValue("drain-after", ">= 0");
         }
         return true;
       }},
      {"serve-fault-rate", "P",
       "injected per-request 'unavailable' probability, [0, 1]",
       [&](const std::string& v) {
         if (!ParseDouble(v, &fault_options.error_rate) ||
             fault_options.error_rate < 0.0 ||
             fault_options.error_rate > 1.0) {
           return BadValue("serve-fault-rate", "in [0, 1]");
         }
         return true;
       }},
      {"serve-fault-seed", "N", "serving fault schedule seed",
       [&](const std::string& v) {
         if (!ParseUInt64(v, &fault_options.seed)) {
           return BadValue("serve-fault-seed", "a non-negative integer");
         }
         return true;
       }},
      {"deadline-ms", "N",
       "answer requests still queued N ms after admission with the "
       "retryable 'deadline_exceeded' envelope; per-request deadline_ms "
       "overrides (default 0 = none)",
       [&](const std::string& v) {
         int64_t n = 0;
         if (!ParseInt64(v, &n) || n < 0) {
           return BadValue("deadline-ms", ">= 0");
         }
         serve_options.default_deadline_ms = n;
         return true;
       }},
      {"degraded-on-corrupt", nullptr,
       "if the corpus fails verification, serve anyway: data methods "
       "answer the retryable 'data_corrupt' envelope, server_stats and "
       "index_info stay up (default: refuse to start)",
       [&](const std::string&) { degraded_on_corrupt = true; return true; }},
      {"io-fault-seed", "N", "storage fault schedule seed",
       [&](const std::string& v) {
         if (!ParseUInt64(v, &io_fault_options.seed)) {
           return BadValue("io-fault-seed", "a non-negative integer");
         }
         return true;
       }},
      {"io-fault-write-error-rate", "P",
       "injected per-write EIO probability, [0, 1]",
       [&](const std::string& v) {
         if (!ParseDouble(v, &io_fault_options.write_error_rate) ||
             io_fault_options.write_error_rate < 0.0 ||
             io_fault_options.write_error_rate > 1.0) {
           return BadValue("io-fault-write-error-rate", "in [0, 1]");
         }
         return true;
       }},
      {"io-fault-short-write-rate", "P",
       "injected per-write short-count probability, [0, 1]",
       [&](const std::string& v) {
         if (!ParseDouble(v, &io_fault_options.short_write_rate) ||
             io_fault_options.short_write_rate < 0.0 ||
             io_fault_options.short_write_rate > 1.0) {
           return BadValue("io-fault-short-write-rate", "in [0, 1]");
         }
         return true;
       }},
      {"io-fault-fsync-error-rate", "P",
       "injected per-fsync failure probability, [0, 1]",
       [&](const std::string& v) {
         if (!ParseDouble(v, &io_fault_options.fsync_error_rate) ||
             io_fault_options.fsync_error_rate < 0.0 ||
             io_fault_options.fsync_error_rate > 1.0) {
           return BadValue("io-fault-fsync-error-rate", "in [0, 1]");
         }
         return true;
       }},
      {"io-fault-eintr-rate", "P",
       "injected per-syscall EINTR probability, [0, 1]",
       [&](const std::string& v) {
         if (!ParseDouble(v, &io_fault_options.eintr_rate) ||
             io_fault_options.eintr_rate < 0.0 ||
             io_fault_options.eintr_rate > 1.0) {
           return BadValue("io-fault-eintr-rate", "in [0, 1]");
         }
         return true;
       }},
      {"io-fault-enospc-after", "BYTES",
       "simulated disk capacity: writes past BYTES fail ENOSPC (-1 = off)",
       [&](const std::string& v) {
         if (!ParseInt64(v, &io_fault_options.enospc_after_bytes)) {
           return BadValue("io-fault-enospc-after", "an integer");
         }
         return true;
       }},
      {"io-fault-page-flip-rate", "P",
       "injected per-window corpus corruption probability, [0, 1]",
       [&](const std::string& v) {
         if (!ParseDouble(v, &io_fault_options.page_flip_rate) ||
             io_fault_options.page_flip_rate < 0.0 ||
             io_fault_options.page_flip_rate > 1.0) {
           return BadValue("io-fault-page-flip-rate", "in [0, 1]");
         }
         return true;
       }},
      {"metrics-out", "FILE",
       "write a serve.* metrics JSON snapshot to FILE at shutdown",
       [&](const std::string& v) { metrics_out = v; return true; }},
  };

  bool want_help = false;
  int rc = ParseArgs(argc, argv, flags, &want_help);
  if (rc != 0) return rc;
  if (want_help) {
    PrintHelp(flags);
    return 0;
  }
  const bool tsv_in = !users_path.empty() || !tweets_path.empty();
  if (corpus_path.empty() == !tsv_in) {
    std::fprintf(stderr,
                 "stir_serve: exactly one input form is required: "
                 "--corpus FILE, or --users FILE with --tweets FILE\n");
    return 2;
  }
  if (tsv_in && (users_path.empty() || tweets_path.empty())) {
    std::fprintf(stderr, "stir_serve: --users and --tweets go together\n");
    return 2;
  }
  if (stdio_mode == tcp_mode) {
    std::fprintf(stderr,
                 "stir_serve: exactly one of --stdio / --port is required\n");
    return 2;
  }
  if (config.durability.resume && config.durability.checkpoint_dir.empty()) {
    std::fprintf(stderr, "stir_serve: --resume requires --checkpoint-dir\n");
    return 2;
  }
  if (epoch_size != 0 && !stream_mode) {
    std::fprintf(stderr, "stir_serve: --epoch-size requires --stream\n");
    return 2;
  }

  // Arm the storage fault layer before the first byte is read or
  // written, so the load itself runs under the schedule.
  if (io_fault_options.enabled()) {
    stir::io::FaultFs::Instance().Configure(io_fault_options);
  }

  // Load + run the study once; the index freezes the result.
  const AdminDb& db = *GazetteerByName(gazetteer);
  stir::io::CorpusSpec spec;
  spec.corpus_path = corpus_path;
  spec.users_path = users_path;
  spec.tweets_path = tweets_path;
  spec.tsv.strict = !lenient_load;
  auto reader = stir::io::CorpusReader::Open(spec);
  bool degraded = false;
  if (!reader.ok()) {
    if (degraded_on_corrupt) {
      // Quarantined start: the data plane is lost but the server comes
      // up anyway — data methods answer the retryable `data_corrupt`
      // envelope while server_stats/index_info give an operator a live
      // diagnosis surface (DESIGN.md §15).
      std::fprintf(stderr,
                   "stir_serve: load failed: %s\n"
                   "stir_serve: serving degraded — data methods answer "
                   "'data_corrupt'\n",
                   reader.status().ToString().c_str());
      degraded = true;
      stream_mode = false;
      serve_options.degraded_data = true;
    } else {
      std::fprintf(stderr, "stir_serve: load failed: %s\n",
                   reader.status().ToString().c_str());
      return 1;
    }
  }
  if (!degraded && reader->tsv_stats().quarantined() > 0) {
    std::fprintf(stderr, "stir_serve: lenient load quarantined %lld rows\n",
                 static_cast<long long>(reader->tsv_stats().quarantined()));
  }
  // The stream engine ingests row-oriented tweets; the batch study runs
  // zero-copy off a v3 view.
  const stir::twitter::Dataset* dataset = nullptr;
  if (!degraded && (stream_mode || !reader->has_view())) {
    auto materialized = reader->Materialize();
    if (!materialized.ok()) {
      std::fprintf(stderr, "stir_serve: load failed: %s\n",
                   materialized.status().ToString().c_str());
      return 1;
    }
    dataset = *materialized;
  }
  stir::obs::MetricsRegistry metrics;
  serve_options.metrics = &metrics;

  std::unique_ptr<stir::stream::StreamEngine> engine;
  stir::serve::StudyIndex batch_index;
  stir::infer::InferenceIndex batch_infer_index;
  std::shared_ptr<const stir::serve::StudyIndex> stream_index;
  std::shared_ptr<const stir::infer::InferenceIndex> stream_infer_index;
  int64_t stream_generation = 0;
  if (stream_mode) {
    stir::stream::StreamOptions stream_options;
    stream_options.epoch_size = epoch_size;
    stream_options.durable_dir = config.durability.checkpoint_dir;
    stream_options.resume = config.durability.resume;
    stream_options.fsync = config.durability.fsync;
    // The engine shares the serve registry so stream.* counters land in
    // the --metrics-out snapshot alongside serve.*.
    config.obs.metrics = &metrics;
    engine = std::make_unique<stir::stream::StreamEngine>(&db, config,
                                                          stream_options);
    stir::Status status = engine->Open();
    if (!status.ok()) {
      std::fprintf(stderr, "stir_serve: stream engine open failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    // Pre-ingest the corpus in stream order: users in dataset order, then
    // tweets in time order carrying their dataset indices as fault keys,
    // so every sealed generation is byte-identical to a batch study over
    // the same prefix. A resumed engine skips whatever its journal
    // already replayed.
    const int64_t skip_tweets = engine->ingested_tweets();
    for (const stir::twitter::User& user : dataset->users()) {
      if (engine->HasUser(user.id)) continue;
      status = engine->AddUser(user);
      if (!status.ok()) break;
    }
    if (status.ok()) {
      stir::twitter::StreamingApi api(dataset);
      int64_t delivered = 0;
      api.Replay(
          [&](size_t dataset_index, const stir::twitter::Tweet& tweet) {
            if (!status.ok() || delivered++ < skip_tweets) return;
            status =
                engine->AddTweet(tweet, static_cast<int64_t>(dataset_index));
          });
    }
    if (!status.ok()) {
      std::fprintf(stderr, "stir_serve: stream ingest failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    engine->SealEpoch();
    stream_index = engine->CurrentIndex();
    stream_generation = engine->generation();
    serve_options.stream = engine.get();
    // Seed generation; AttachScheduler below swaps the live one in and
    // keeps it advancing at every seal.
    stream_infer_index = engine->CurrentInferIndex();
    serve_options.infer_index = stream_infer_index.get();
    std::fprintf(stderr,
                 "stir_serve: streaming index ready — generation %lld, "
                 "%zu users, %zu districts, %lld bytes\n",
                 static_cast<long long>(stream_generation),
                 stream_index->user_count(), stream_index->district_count(),
                 static_cast<long long>(stream_index->MemoryBytes()));
  } else if (degraded) {
    // batch_index stays empty; degraded_data answers the data plane.
    std::fprintf(stderr, "stir_serve: degraded index — 0 users\n");
  } else {
    stir::core::CorrelationStudy study(&db, config);
    stir::core::StudyResult result = reader->has_view()
                                         ? study.Run(reader->view())
                                         : study.Run(*dataset);
    if (result.incomplete) {
      std::fprintf(stderr,
                   "stir_serve: study did not complete; refusing to serve\n");
      return 1;
    }
    batch_index = stir::serve::StudyIndex::Build(result, db);
    // The inference twin reads the same corpus (zero-copy off a v3 view)
    // but only tweet evidence — never profile strings (DESIGN.md §16).
    batch_infer_index =
        reader->has_view()
            ? stir::infer::InferenceIndex::Build(reader->view(), db)
            : stir::infer::InferenceIndex::Build(*dataset, db);
    serve_options.infer_index = &batch_infer_index;
    std::fprintf(stderr,
                 "stir_serve: index ready — %zu users, %zu districts, "
                 "%lld bytes\n",
                 batch_index.user_count(), batch_index.district_count(),
                 static_cast<long long>(batch_index.MemoryBytes()));
  }

  stir::common::FaultInjector fault_injector(fault_options);
  if (fault_injector.enabled()) {
    serve_options.fault_injector = &fault_injector;
  }

  int exit_code = 0;
  {
    std::unique_ptr<stir::serve::Server> server;
    if (stream_mode) {
      server = std::make_unique<stir::serve::Server>(
          stream_index, stream_generation, serve_options);
      engine->AttachScheduler(&server->scheduler());
    } else {
      server = std::make_unique<stir::serve::Server>(&batch_index,
                                                     serve_options);
    }
    std::signal(SIGPIPE, SIG_IGN);  // Broken peers surface as EPIPE.
    stir::net::NetOptions net_options;
    net_options.max_pipeline = static_cast<int>(max_pipeline);
    net_options.max_connections = static_cast<int>(max_connections);
    net_options.max_line_bytes = serve_options.max_request_bytes;
    net_options.drain_after_lines = drain_after;
    net_options.metrics = &metrics;
    stir::net::EpollServer net(server.get(), net_options);
    if (stdio_mode) {
      stir::Status status = net.AdoptStdio();
      if (!status.ok()) {
        std::fprintf(stderr, "stir_serve: %s\n", status.ToString().c_str());
        return 1;
      }
    } else {
      stir::Status status = net.Listen(static_cast<uint16_t>(port));
      if (!status.ok()) {
        std::fprintf(stderr, "stir_serve: %s\n", status.ToString().c_str());
        return 1;
      }
      // The port line is the startup handshake — scripts wait for it.
      std::fprintf(stderr, "stir_serve: listening on 127.0.0.1:%u\n",
                   net.port());
    }
    InstallDrainHandlers(&net);
    net.Run();  // Returns once every connection is flushed and closed.
    InstallDrainHandlers(nullptr);
    const stir::net::NetStats net_stats = net.stats();
    if (stdio_mode) {
      std::fprintf(stderr, "stir_serve: served %lld requests\n",
                   static_cast<long long>(net_stats.responses_out));
    } else {
      std::fprintf(stderr, "stir_serve: drained after %lld connections\n",
                   static_cast<long long>(net_stats.accepted));
    }
    if (net_stats.drain_micros >= 0) {
      std::fprintf(stderr, "stir_serve: graceful drain took %lld us\n",
                   static_cast<long long>(net_stats.drain_micros));
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (out) {
        out << metrics.Snapshot().ToJson() << '\n';
      }
      if (!out) {
        std::fprintf(stderr, "stir_serve: cannot write %s\n",
                     metrics_out.c_str());
        exit_code = 1;
      } else {
        std::fprintf(stderr, "stir_serve: metrics written to %s\n",
                     metrics_out.c_str());
      }
    }
  }
  return exit_code;
}
