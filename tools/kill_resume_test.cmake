# Kill-resume harness: crashes the CLI at deterministic geocode-lookup
# counts (--crash-after N -> hard exit 42, simulating kill -9), resumes
# from the checkpoint directory, and byte-compares the resumed report.json
# against an uninterrupted run. Also covers torn journal tails, fault
# injection across the crash, threaded runs, journal-only (no checkpoint)
# zero-quota resumes, and corrupt-durable-state degradation.

set(CRASH_EXIT 42)

function(run_cli out_rc out_stdout out_stderr)
  execute_process(
    COMMAND ${CLI} ${ARGN}
    RESULT_VARIABLE rc OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
  set(${out_rc} "${rc}" PARENT_SCOPE)
  set(${out_stdout} "${stdout}" PARENT_SCOPE)
  set(${out_stderr} "${stderr}" PARENT_SCOPE)
endfunction()

function(expect_same_report label path_a path_b)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${path_a} ${path_b}
    RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    file(READ ${path_a} a)
    file(READ ${path_b} b)
    message(FATAL_ERROR "${label}: report.json differs\n"
            "=== ${path_a} ===\n${a}\n=== ${path_b} ===\n${b}")
  endif()
endfunction()

# Fresh checkpoint + report directories for one scenario.
function(prepare_dirs name)
  file(REMOVE_RECURSE ${WORK_DIR}/${name}_ckpt ${WORK_DIR}/${name}_report)
  file(MAKE_DIRECTORY ${WORK_DIR}/${name}_ckpt ${WORK_DIR}/${name}_report)
endfunction()

set(USERS ${WORK_DIR}/kr_users.tsv)
set(TWEETS ${WORK_DIR}/kr_tweets.tsv)
run_cli(rc out err generate --preset korean --scale 0.05
        --users ${USERS} --tweets ${TWEETS})
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed (${rc}): ${out} ${err}")
endif()

set(STUDY study --users ${USERS} --tweets ${TWEETS})

# Uninterrupted baseline (no durability flags at all).
file(REMOVE_RECURSE ${WORK_DIR}/kr_clean_report)
file(MAKE_DIRECTORY ${WORK_DIR}/kr_clean_report)
run_cli(rc clean_out err ${STUDY} --report-dir ${WORK_DIR}/kr_clean_report)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "clean baseline failed (${rc}): ${err}")
endif()
set(CLEAN_REPORT ${WORK_DIR}/kr_clean_report/report.json)

# --- Crash/resume at three distinct crash points -----------------------
# The 0.05-scale corpus issues well over 1000 geocode lookups, so these
# land early, mid, and late in the refinement stage.
foreach(crash_at 40 300 700)
  set(name kr_crash_${crash_at})
  prepare_dirs(${name})
  run_cli(rc out err ${STUDY}
          --checkpoint-dir ${WORK_DIR}/${name}_ckpt
          --checkpoint-every 16 --crash-after ${crash_at})
  if(NOT rc EQUAL ${CRASH_EXIT})
    message(FATAL_ERROR "--crash-after ${crash_at} exited ${rc}, "
            "expected ${CRASH_EXIT}: ${out} ${err}")
  endif()
  if(NOT EXISTS ${WORK_DIR}/${name}_ckpt/geocode.journal)
    message(FATAL_ERROR "crash at ${crash_at} left no geocode journal")
  endif()

  run_cli(rc out err ${STUDY}
          --checkpoint-dir ${WORK_DIR}/${name}_ckpt --resume
          --report-dir ${WORK_DIR}/${name}_report)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "resume after crash at ${crash_at} failed (${rc}): ${err}")
  endif()
  expect_same_report("crash at ${crash_at}"
                     ${CLEAN_REPORT} ${WORK_DIR}/${name}_report/report.json)
endforeach()

# --- Torn journal tail -------------------------------------------------
# A crash mid-append leaves a partial frame; the resume must truncate it
# and still reproduce the clean report.
set(name kr_torn)
prepare_dirs(${name})
run_cli(rc out err ${STUDY}
        --checkpoint-dir ${WORK_DIR}/${name}_ckpt
        --checkpoint-every 16 --crash-after 300)
if(NOT rc EQUAL ${CRASH_EXIT})
  message(FATAL_ERROR "torn-tail crash run exited ${rc}: ${out} ${err}")
endif()
# Partial frame: these bytes decode to a length field far beyond
# kJournalMaxRecordSize, which replay treats as a torn tail.
file(APPEND ${WORK_DIR}/${name}_ckpt/geocode.journal "TORNTAILBYTES")
run_cli(rc out err ${STUDY}
        --checkpoint-dir ${WORK_DIR}/${name}_ckpt --resume
        --report-dir ${WORK_DIR}/${name}_report)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "torn-tail resume failed (${rc}): ${err}")
endif()
expect_same_report("torn journal tail"
                   ${CLEAN_REPORT} ${WORK_DIR}/${name}_report/report.json)

# --- Crash/resume under fault injection --------------------------------
# The injector's sequence position is checkpointed, so the resumed faulty
# run must reproduce the uninterrupted faulty run exactly.
set(FAULTY --fault-rate 0.2 --fault-seed 7 --retry-max 2)
file(REMOVE_RECURSE ${WORK_DIR}/kr_faulty_clean_report)
file(MAKE_DIRECTORY ${WORK_DIR}/kr_faulty_clean_report)
run_cli(rc out err ${STUDY} ${FAULTY}
        --report-dir ${WORK_DIR}/kr_faulty_clean_report)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "faulty baseline failed (${rc}): ${err}")
endif()
set(name kr_faulty)
prepare_dirs(${name})
run_cli(rc out err ${STUDY} ${FAULTY}
        --checkpoint-dir ${WORK_DIR}/${name}_ckpt
        --checkpoint-every 16 --crash-after 300)
if(NOT rc EQUAL ${CRASH_EXIT})
  message(FATAL_ERROR "faulty crash run exited ${rc}: ${out} ${err}")
endif()
run_cli(rc out err ${STUDY} ${FAULTY}
        --checkpoint-dir ${WORK_DIR}/${name}_ckpt --resume
        --report-dir ${WORK_DIR}/${name}_report)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "faulty resume failed (${rc}): ${err}")
endif()
expect_same_report("faulty crash/resume"
                   ${WORK_DIR}/kr_faulty_clean_report/report.json
                   ${WORK_DIR}/${name}_report/report.json)

# --- Threaded crash/resume ---------------------------------------------
set(name kr_threaded)
prepare_dirs(${name})
run_cli(rc out err ${STUDY} --threads 4
        --checkpoint-dir ${WORK_DIR}/${name}_ckpt
        --checkpoint-every 16 --crash-after 300)
if(NOT rc EQUAL ${CRASH_EXIT})
  message(FATAL_ERROR "threaded crash run exited ${rc}: ${out} ${err}")
endif()
run_cli(rc out err ${STUDY} --threads 4
        --checkpoint-dir ${WORK_DIR}/${name}_ckpt --resume
        --report-dir ${WORK_DIR}/${name}_report)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "threaded resume failed (${rc}): ${err}")
endif()
expect_same_report("threaded crash/resume"
                   ${CLEAN_REPORT} ${WORK_DIR}/${name}_report/report.json)

# --- Zero-quota resumes ------------------------------------------------
# Complete a checkpointed run, then resume with a zero geocoder quota:
# the kRefinementDone checkpoint short-circuits the pipeline.
set(name kr_done)
prepare_dirs(${name})
run_cli(rc out err ${STUDY} --checkpoint-dir ${WORK_DIR}/${name}_ckpt)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "checkpointed full run failed (${rc}): ${err}")
endif()
run_cli(rc out err ${STUDY}
        --checkpoint-dir ${WORK_DIR}/${name}_ckpt --resume
        --geocode-quota 0 --report-dir ${WORK_DIR}/${name}_report)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resume-after-complete failed (${rc}): ${err}")
endif()
expect_same_report("resume after complete (quota 0)"
                   ${CLEAN_REPORT} ${WORK_DIR}/${name}_report/report.json)

# Journal-only resume: drop the checkpoint but keep the geocode journal.
# Refinement re-runs in full, but every previously-resolved lookup is a
# journal-warmed cache hit — zero quota spent.
file(REMOVE ${WORK_DIR}/${name}_ckpt/study.ckpt)
file(REMOVE_RECURSE ${WORK_DIR}/kr_journal_only_report)
file(MAKE_DIRECTORY ${WORK_DIR}/kr_journal_only_report)
run_cli(rc out err ${STUDY}
        --checkpoint-dir ${WORK_DIR}/${name}_ckpt --resume
        --geocode-quota 0 --report-dir ${WORK_DIR}/kr_journal_only_report)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "journal-only quota-0 resume failed (${rc}): ${err}")
endif()
expect_same_report("journal-only resume (quota 0)"
                   ${CLEAN_REPORT} ${WORK_DIR}/kr_journal_only_report/report.json)

# --- Corrupt durable state degrades, never aborts ----------------------
set(name kr_corrupt)
prepare_dirs(${name})
file(WRITE ${WORK_DIR}/${name}_ckpt/geocode.journal
     "garbage that is not a journal at all.............")
file(WRITE ${WORK_DIR}/${name}_ckpt/study.ckpt "SHORT")
run_cli(rc out err ${STUDY}
        --checkpoint-dir ${WORK_DIR}/${name}_ckpt --resume
        --report-dir ${WORK_DIR}/${name}_report)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "corrupt-state resume aborted (${rc}): ${err}")
endif()
if(NOT err MATCHES "geocode journal unusable")
  message(FATAL_ERROR "missing journal-unusable warning: ${err}")
endif()
if(NOT err MATCHES "checkpoint unusable")
  message(FATAL_ERROR "missing checkpoint-unusable warning: ${err}")
endif()
expect_same_report("corrupt durable state"
                   ${CLEAN_REPORT} ${WORK_DIR}/${name}_report/report.json)

# --- Streaming: clean run equals batch ---------------------------------
# The incremental engine folds the same log through epoch-sized deltas;
# its final report must be byte-identical to the one-shot batch report.
file(REMOVE_RECURSE ${WORK_DIR}/kr_stream_clean_report)
file(MAKE_DIRECTORY ${WORK_DIR}/kr_stream_clean_report)
run_cli(rc out err ${STUDY} --stream --epoch-size 13
        --report-dir ${WORK_DIR}/kr_stream_clean_report)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "streaming clean run failed (${rc}): ${err}")
endif()
expect_same_report("streaming clean vs batch"
                   ${CLEAN_REPORT}
                   ${WORK_DIR}/kr_stream_clean_report/report.json)

# --- Streaming crash/resume --------------------------------------------
# Kill the streaming ingest mid-log, then resume against the stream
# journal: replay re-seals the journaled epochs at the same boundaries
# and the tail re-ingests live, so the report is again byte-identical.
set(name kr_stream_crash)
prepare_dirs(${name})
run_cli(rc out err ${STUDY} --stream --epoch-size 13
        --checkpoint-dir ${WORK_DIR}/${name}_ckpt
        --crash-after 300)
if(NOT rc EQUAL ${CRASH_EXIT})
  message(FATAL_ERROR "streaming crash run exited ${rc}, "
          "expected ${CRASH_EXIT}: ${out} ${err}")
endif()
if(NOT EXISTS ${WORK_DIR}/${name}_ckpt/stream.journal)
  message(FATAL_ERROR "streaming crash left no stream journal")
endif()
run_cli(rc out err ${STUDY} --stream --epoch-size 13
        --checkpoint-dir ${WORK_DIR}/${name}_ckpt --resume
        --report-dir ${WORK_DIR}/${name}_report)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "streaming resume failed (${rc}): ${err}")
endif()
expect_same_report("streaming crash/resume"
                   ${CLEAN_REPORT} ${WORK_DIR}/${name}_report/report.json)

# --- Streaming torn stream-journal tail --------------------------------
set(name kr_stream_torn)
prepare_dirs(${name})
run_cli(rc out err ${STUDY} --stream --epoch-size 13
        --checkpoint-dir ${WORK_DIR}/${name}_ckpt
        --crash-after 300)
if(NOT rc EQUAL ${CRASH_EXIT})
  message(FATAL_ERROR "streaming torn-tail crash exited ${rc}: ${out} ${err}")
endif()
file(APPEND ${WORK_DIR}/${name}_ckpt/stream.journal "TORNTAILBYTES")
run_cli(rc out err ${STUDY} --stream --epoch-size 13
        --checkpoint-dir ${WORK_DIR}/${name}_ckpt --resume
        --report-dir ${WORK_DIR}/${name}_report)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "streaming torn-tail resume failed (${rc}): ${err}")
endif()
expect_same_report("streaming torn stream-journal tail"
                   ${CLEAN_REPORT} ${WORK_DIR}/${name}_report/report.json)

message(STATUS "kill-resume harness passed")
