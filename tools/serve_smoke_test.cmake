# End-to-end smoke test for the query-serving subsystem: generate a
# corpus, extract a real final user from the study report, drive
# stir_serve --stdio through every request type (plus one malformed
# line), and validate the responses and the server_stats counter
# invariants. DESIGN.md §10 documents the protocol under test.

execute_process(
  COMMAND ${CLI} generate --preset korean --scale 0.05
          --users ${WORK_DIR}/serve_users.tsv
          --tweets ${WORK_DIR}/serve_tweets.tsv
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed (${rc}): ${out} ${err}")
endif()

# The report's users.csv gives us a user id that is guaranteed to be in
# the final sample, so lookup_user below must answer ok:true.
file(MAKE_DIRECTORY ${WORK_DIR}/serve_report)
execute_process(
  COMMAND ${CLI} study --users ${WORK_DIR}/serve_users.tsv
          --tweets ${WORK_DIR}/serve_tweets.tsv
          --report-dir ${WORK_DIR}/serve_report
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "study failed (${rc}): ${out} ${err}")
endif()
file(STRINGS ${WORK_DIR}/serve_report/users.csv user_rows)
list(GET user_rows 1 first_user_row)
string(REGEX MATCH "^[0-9]+" final_user "${first_user_row}")
if(final_user STREQUAL "")
  message(FATAL_ERROR "could not extract a user id from: ${first_user_row}")
endif()

# One request per line: each protocol method, then a malformed line that
# must produce a parse_error response (not a dropped line), then
# server_stats — answered at admission, so its counters describe exactly
# the four lines before it plus itself. "Seoul Gangnam-gu" is stable:
# generation is seeded and the Korean preset always populates it.
file(WRITE ${WORK_DIR}/serve_requests.txt
"{\"v\":1,\"id\":1,\"method\":\"lookup_user\",\"params\":{\"user\":${final_user}}}
{\"v\":1,\"id\":2,\"method\":\"lookup_district\",\"params\":{\"state\":\"Seoul\",\"county\":\"Gangnam-gu\"}}
{\"v\":1,\"id\":3,\"method\":\"topk_summary\"}
this line is not json
{\"v\":1,\"id\":5,\"method\":\"server_stats\"}
")

execute_process(
  COMMAND ${SERVE} --users ${WORK_DIR}/serve_users.tsv
          --tweets ${WORK_DIR}/serve_tweets.tsv --stdio --workers 3
          --metrics-out ${WORK_DIR}/serve_metrics.json
  INPUT_FILE ${WORK_DIR}/serve_requests.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE serve_out ERROR_VARIABLE serve_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "stir_serve failed (${rc}): ${serve_out} ${serve_err}")
endif()
if(NOT serve_err MATCHES "index ready")
  message(FATAL_ERROR "missing index-ready notice: ${serve_err}")
endif()
if(NOT serve_err MATCHES "served 5 requests")
  message(FATAL_ERROR "expected 5 served requests: ${serve_err}")
endif()
if(NOT serve_err MATCHES "metrics written to")
  message(FATAL_ERROR "missing metrics export notice: ${serve_err}")
endif()

string(REGEX MATCHALL "[^\n]+" responses "${serve_out}")
list(LENGTH responses response_count)
if(NOT response_count EQUAL 5)
  message(FATAL_ERROR "expected 5 response lines, got ${response_count}:\n${serve_out}")
endif()

# Responses come back in request order; the malformed line still gets a
# well-formed error envelope.
list(GET responses 0 r_user)
list(GET responses 1 r_district)
list(GET responses 2 r_topk)
list(GET responses 3 r_malformed)
list(GET responses 4 r_stats)
foreach(pair "r_user;ok.:true" "r_district;ok.:true" "r_topk;ok.:true"
        "r_malformed;code.:.parse_error" "r_stats;ok.:true")
  list(GET pair 0 var)
  list(GET pair 1 pattern)
  if(NOT "${${var}}" MATCHES "\"${pattern}")
    message(FATAL_ERROR "${var} does not match ${pattern}: ${${var}}")
  endif()
endforeach()

# string(JSON) (CMake >= 3.19) lints every response and checks the
# server_stats accounting invariant; older CMake still runs everything
# above and the determinism / resume comparisons below.
if(NOT CMAKE_VERSION VERSION_LESS 3.19)
  string(JSON looked_up GET "${r_user}" result user)
  if(NOT looked_up EQUAL final_user)
    message(FATAL_ERROR "lookup_user echoed ${looked_up}, wanted ${final_user}")
  endif()
  string(JSON district GET "${r_district}" result district)
  if(NOT district STREQUAL "Seoul Gangnam-gu")
    message(FATAL_ERROR "lookup_district resolved '${district}'")
  endif()
  string(JSON topk_final GET "${r_topk}" result final_users)
  if(topk_final LESS 1)
    message(FATAL_ERROR "topk_summary final_users = ${topk_final}")
  endif()
  if(NOT r_malformed MATCHES "\"id\":null")
    message(FATAL_ERROR "parse_error response must carry id:null: ${r_malformed}")
  endif()

  # The stats request was line 5 of 5, so the admission-time counters
  # must describe the full stream: 3 admitted, 1 parse error, itself.
  string(JSON received GET "${r_stats}" result counters received)
  string(JSON admitted GET "${r_stats}" result counters admitted)
  string(JSON stats_served GET "${r_stats}" result counters stats_served)
  string(JSON parse_errors GET "${r_stats}" result counters parse_errors)
  string(JSON rej_overload GET "${r_stats}" result counters rejected_overload)
  string(JSON rej_shutdown GET "${r_stats}" result counters rejected_shutdown)
  math(EXPR accounted
       "${admitted} + ${stats_served} + ${parse_errors} + ${rej_overload} + ${rej_shutdown}")
  if(NOT received EQUAL accounted)
    message(FATAL_ERROR "server_stats does not balance: received ${received} "
            "!= admitted ${admitted} + stats ${stats_served} + parse ${parse_errors} "
            "+ overload ${rej_overload} + shutdown ${rej_shutdown}")
  endif()
  if(NOT received EQUAL 5 OR NOT admitted EQUAL 3 OR NOT parse_errors EQUAL 1)
    message(FATAL_ERROR "unexpected counters: received=${received} "
            "admitted=${admitted} parse_errors=${parse_errors}")
  endif()
  string(JSON m_user GET "${r_stats}" result methods lookup_user)
  string(JSON m_district GET "${r_stats}" result methods lookup_district)
  string(JSON m_topk GET "${r_stats}" result methods topk_summary)
  string(JSON m_stats GET "${r_stats}" result methods server_stats)
  math(EXPR method_sum "${m_user} + ${m_district} + ${m_topk} + ${m_stats}")
  math(EXPR handled "${admitted} + ${stats_served}")
  if(NOT method_sum EQUAL handled)
    message(FATAL_ERROR "method counters sum ${method_sum} != "
            "admitted + stats_served = ${handled}")
  endif()

  # The exported snapshot must mirror the in-band counters.
  file(READ ${WORK_DIR}/serve_metrics.json metrics_json)
  string(JSON metric_received GET "${metrics_json}" counters serve.requests.received)
  if(NOT metric_received EQUAL received)
    message(FATAL_ERROR "metrics serve.requests.received ${metric_received} "
            "!= server_stats received ${received}")
  endif()
  string(JSON metric_responses GET "${metrics_json}" counters serve.responses)
  if(NOT metric_responses EQUAL 5)
    message(FATAL_ERROR "metrics serve.responses = ${metric_responses}, wanted 5")
  endif()
endif()

# Determinism: the same request stream must serve byte-identically under
# a different worker count.
execute_process(
  COMMAND ${SERVE} --users ${WORK_DIR}/serve_users.tsv
          --tweets ${WORK_DIR}/serve_tweets.tsv --stdio --workers 1
  INPUT_FILE ${WORK_DIR}/serve_requests.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE serial_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--workers 1 serve failed (${rc}): ${err}")
endif()
if(NOT serial_out STREQUAL serve_out)
  message(FATAL_ERROR "--workers 1 responses differ from --workers 3:\n"
          "=== workers 3 ===\n${serve_out}\n=== workers 1 ===\n${serial_out}")
endif()

# --- Graceful drain (mode symmetry, DESIGN.md §13) ---------------------
# Both front ends run the same net::EpollServer drain state machine;
# --drain-after N triggers it deterministically after the Nth framed
# line. Admitted lines are still answered, buffered lines get typed
# shutting_down envelopes echoing their ids, and a buffered malformed
# line still gets its parse_error (parsing precedes the draining
# check). The TCP half of the symmetry is byte-proven in
# tests/net_server_test.cc; here the stdio mode must show the same
# envelope sequence.
execute_process(
  COMMAND ${SERVE} --users ${WORK_DIR}/serve_users.tsv
          --tweets ${WORK_DIR}/serve_tweets.tsv --stdio --workers 3
          --drain-after 2
  INPUT_FILE ${WORK_DIR}/serve_requests.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE drain_out ERROR_VARIABLE drain_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--drain-after serve failed (${rc}): ${drain_err}")
endif()
if(NOT drain_err MATCHES "graceful drain took")
  message(FATAL_ERROR "missing drain latency notice: ${drain_err}")
endif()
string(REGEX MATCHALL "[^\n]+" drain_responses "${drain_out}")
list(LENGTH drain_responses drain_count)
if(NOT drain_count EQUAL 5)
  message(FATAL_ERROR "drain run must answer all 5 lines, got ${drain_count}:\n${drain_out}")
endif()
list(GET drain_responses 0 d_first)
list(GET drain_responses 1 d_second)
list(GET drain_responses 2 d_third)
list(GET drain_responses 3 d_malformed)
list(GET drain_responses 4 d_stats)
foreach(pair "d_first;ok.:true" "d_second;ok.:true"
        "d_third;code.:.shutting_down" "d_malformed;code.:.parse_error"
        "d_stats;code.:.shutting_down")
  list(GET pair 0 var)
  list(GET pair 1 pattern)
  if(NOT "${${var}}" MATCHES "\"${pattern}")
    message(FATAL_ERROR "${var} does not match ${pattern}: ${${var}}")
  endif()
endforeach()
if(NOT d_third MATCHES "\"id\":3" OR NOT d_stats MATCHES "\"id\":5")
  message(FATAL_ERROR "shutting_down envelopes must echo request ids:\n${drain_out}")
endif()

# Index construction after checkpoint resume: a checkpointed run and a
# resumed run over the same directory must both answer byte-identically
# to the plain run.
file(REMOVE_RECURSE ${WORK_DIR}/serve_ckpt)
file(MAKE_DIRECTORY ${WORK_DIR}/serve_ckpt)
foreach(extra_flag "" "--resume")
  execute_process(
    COMMAND ${SERVE} --users ${WORK_DIR}/serve_users.tsv
            --tweets ${WORK_DIR}/serve_tweets.tsv --stdio
            --checkpoint-dir ${WORK_DIR}/serve_ckpt ${extra_flag}
    INPUT_FILE ${WORK_DIR}/serve_requests.txt
    RESULT_VARIABLE rc OUTPUT_VARIABLE ckpt_out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "checkpointed serve '${extra_flag}' failed (${rc}): ${err}")
  endif()
  if(NOT ckpt_out STREQUAL serve_out)
    message(FATAL_ERROR "checkpointed serve '${extra_flag}' perturbed responses:\n"
            "=== baseline ===\n${serve_out}\n=== checkpointed ===\n${ckpt_out}")
  endif()
endforeach()
if(NOT EXISTS ${WORK_DIR}/serve_ckpt/geocode.journal)
  message(FATAL_ERROR "checkpointed serve left no geocode.journal")
endif()

# --- Streaming serve ---------------------------------------------------
# The incremental engine must answer the same request stream with the
# same bytes as the batch-built index it is proven equivalent to.
execute_process(
  COMMAND ${SERVE} --users ${WORK_DIR}/serve_users.tsv
          --tweets ${WORK_DIR}/serve_tweets.tsv --stdio --workers 3
          --stream
  INPUT_FILE ${WORK_DIR}/serve_requests.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE stream_out ERROR_VARIABLE stream_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--stream serve failed (${rc}): ${stream_err}")
endif()
if(NOT stream_err MATCHES "streaming index ready")
  message(FATAL_ERROR "missing streaming-index-ready notice: ${stream_err}")
endif()
if(NOT stream_out STREQUAL serve_out)
  message(FATAL_ERROR "--stream responses differ from batch:\n"
          "=== batch ===\n${serve_out}\n=== stream ===\n${stream_out}")
endif()

# Live appends: index_info before and after an append_tweets request
# must show the generation advancing (epoch size 1 seals per tweet) and
# the appended user becoming visible — read-your-writes end to end.
file(WRITE ${WORK_DIR}/serve_append_requests.txt
"{\"v\":1,\"id\":1,\"method\":\"index_info\"}
{\"v\":1,\"id\":2,\"method\":\"append_tweets\",\"params\":{\"users\":[{\"id\":987654,\"location\":\"Seoul Mapo-gu\",\"total_tweets\":1}],\"tweets\":[{\"id\":987001,\"user\":987654,\"time\":1,\"lat\":37.55,\"lng\":126.94,\"text\":\"smoke\"}]}}
{\"v\":1,\"id\":3,\"method\":\"index_info\"}
{\"v\":1,\"id\":4,\"method\":\"lookup_user\",\"params\":{\"user\":987654}}
")
execute_process(
  COMMAND ${SERVE} --users ${WORK_DIR}/serve_users.tsv
          --tweets ${WORK_DIR}/serve_tweets.tsv --stdio
          --stream --epoch-size 1
  INPUT_FILE ${WORK_DIR}/serve_append_requests.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE append_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "append smoke serve failed (${rc}): ${err}")
endif()
string(REGEX MATCHALL "[^\n]+" append_responses "${append_out}")
list(LENGTH append_responses append_count)
if(NOT append_count EQUAL 4)
  message(FATAL_ERROR "expected 4 append-smoke responses:\n${append_out}")
endif()
list(GET append_responses 0 r_info_before)
list(GET append_responses 1 r_append)
list(GET append_responses 2 r_info_after)
list(GET append_responses 3 r_appended_user)
foreach(var r_info_before r_append r_info_after r_appended_user)
  if(NOT "${${var}}" MATCHES "\"ok\":true")
    message(FATAL_ERROR "${var} not ok: ${${var}}")
  endif()
endforeach()
if(NOT CMAKE_VERSION VERSION_LESS 3.19)
  string(JSON gen_before GET "${r_info_before}" result generation)
  string(JSON gen_after GET "${r_info_after}" result generation)
  if(NOT gen_after GREATER gen_before)
    message(FATAL_ERROR "append did not advance the generation: "
            "${gen_before} -> ${gen_after}")
  endif()
  string(JSON is_streaming GET "${r_info_before}" result streaming)
  if(NOT is_streaming STREQUAL "ON")
    message(FATAL_ERROR "index_info streaming flag: ${is_streaming}")
  endif()
  string(JSON appended GET "${r_append}" result appended_tweets)
  if(NOT appended EQUAL 1)
    message(FATAL_ERROR "append_tweets appended ${appended} tweets, wanted 1")
  endif()
  string(JSON echoed GET "${r_appended_user}" result user)
  if(NOT echoed EQUAL 987654)
    message(FATAL_ERROR "appended user lookup echoed ${echoed}")
  endif()
endif()

# A batch server must refuse live appends.
file(WRITE ${WORK_DIR}/serve_append_reject.txt
"{\"v\":1,\"id\":1,\"method\":\"append_tweets\",\"params\":{}}
")
execute_process(
  COMMAND ${SERVE} --users ${WORK_DIR}/serve_users.tsv
          --tweets ${WORK_DIR}/serve_tweets.tsv --stdio
  INPUT_FILE ${WORK_DIR}/serve_append_reject.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE reject_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "batch append-reject serve failed (${rc}): ${err}")
endif()
if(NOT reject_out MATCHES "not in streaming mode")
  message(FATAL_ERROR "batch server accepted append_tweets: ${reject_out}")
endif()

# --- Home inference (DESIGN.md §16) ------------------------------------
# infer_user round-trips over --stdio on the batch server (the evidence
# index is built from the same corpus by default): a real user answers
# with a decision or the typed low_confidence envelope, an unknown user
# gets not_found, a bogus strategy gets bad_request — and the whole
# stream is byte-deterministic across worker counts and under --stream.
file(WRITE ${WORK_DIR}/serve_infer_requests.txt
"{\"v\":1,\"id\":1,\"method\":\"infer_user\",\"params\":{\"user\":${final_user}}}
{\"v\":1,\"id\":2,\"method\":\"infer_user\",\"params\":{\"user\":${final_user},\"strategy\":\"spatial\"}}
{\"v\":1,\"id\":3,\"method\":\"infer_user\",\"params\":{\"user\":987654321}}
{\"v\":1,\"id\":4,\"method\":\"infer_user\",\"params\":{\"user\":${final_user},\"strategy\":\"astral\"}}
")
execute_process(
  COMMAND ${SERVE} --users ${WORK_DIR}/serve_users.tsv
          --tweets ${WORK_DIR}/serve_tweets.tsv --stdio --workers 3
  INPUT_FILE ${WORK_DIR}/serve_infer_requests.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE infer_out ERROR_VARIABLE infer_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "infer smoke serve failed (${rc}): ${infer_err}")
endif()
string(REGEX MATCHALL "[^\n]+" infer_responses "${infer_out}")
list(LENGTH infer_responses infer_count)
if(NOT infer_count EQUAL 4)
  message(FATAL_ERROR "expected 4 infer responses, got ${infer_count}:\n${infer_out}")
endif()
list(GET infer_responses 0 i_default)
list(GET infer_responses 1 i_spatial)
list(GET infer_responses 2 i_missing)
list(GET infer_responses 3 i_bogus)
foreach(var i_default i_spatial)
  if(NOT "${${var}}" MATCHES "\"ok\":true" AND
     NOT "${${var}}" MATCHES "\"code\":\"low_confidence\"")
    message(FATAL_ERROR "${var} is neither a decision nor a typed "
            "abstention: ${${var}}")
  endif()
endforeach()
if(i_default MATCHES "\"ok\":true" AND NOT i_default MATCHES "\"strategy\":\"diurnal\"")
  message(FATAL_ERROR "default infer_user decision must report the diurnal "
          "strategy: ${i_default}")
endif()
if(NOT i_missing MATCHES "\"code\":\"not_found\"")
  message(FATAL_ERROR "unknown user must answer not_found: ${i_missing}")
endif()
if(NOT i_bogus MATCHES "\"code\":\"bad_request\"")
  message(FATAL_ERROR "bogus strategy must answer bad_request: ${i_bogus}")
endif()

foreach(variant "--workers;1" "--workers;3;--stream")
  execute_process(
    COMMAND ${SERVE} --users ${WORK_DIR}/serve_users.tsv
            --tweets ${WORK_DIR}/serve_tweets.tsv --stdio ${variant}
    INPUT_FILE ${WORK_DIR}/serve_infer_requests.txt
    RESULT_VARIABLE rc OUTPUT_VARIABLE variant_out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "infer serve '${variant}' failed (${rc}): ${err}")
  endif()
  if(NOT variant_out STREQUAL infer_out)
    message(FATAL_ERROR "infer responses diverge under '${variant}':\n"
            "=== baseline ===\n${infer_out}\n=== variant ===\n${variant_out}")
  endif()
endforeach()

# End-to-end evaluation path: generate a corpus with its ground-truth
# sidecar, then score all three strategies against it off disk.
execute_process(
  COMMAND ${CLI} generate --preset korean --scale 0.05
          --night-home-bias 0.65
          --corpus ${WORK_DIR}/infer_corpus.stir
  RESULT_VARIABLE rc OUTPUT_VARIABLE gen_out ERROR_VARIABLE gen_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate --corpus failed (${rc}): ${gen_out} ${gen_err}")
endif()
if(NOT gen_out MATCHES "truth records")
  message(FATAL_ERROR "generate --corpus wrote no truth sidecar notice: ${gen_out}")
endif()
if(NOT EXISTS ${WORK_DIR}/infer_corpus.stir.truth)
  message(FATAL_ERROR "truth sidecar missing next to the corpus")
endif()
execute_process(
  COMMAND ${CLI} infer --corpus ${WORK_DIR}/infer_corpus.stir
          --metrics-out ${WORK_DIR}/infer_metrics.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE eval_out ERROR_VARIABLE eval_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "stir_cli infer failed (${rc}): ${eval_out} ${eval_err}")
endif()
foreach(needle "strategy spatial" "strategy diurnal" "strategy text"
        "accuracy@district" "abstain rate")
  if(NOT eval_out MATCHES "${needle}")
    message(FATAL_ERROR "infer report missing '${needle}':\n${eval_out}")
  endif()
endforeach()
file(READ ${WORK_DIR}/infer_metrics.json infer_metrics)
if(NOT infer_metrics MATCHES "infer.eval.diurnal.users")
  message(FATAL_ERROR "infer metrics export missing eval counters: ${infer_metrics}")
endif()

# --- CLI contract ------------------------------------------------------

execute_process(
  COMMAND ${SERVE} --users ${WORK_DIR}/serve_users.tsv
          --tweets ${WORK_DIR}/serve_tweets.tsv
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "exactly one of --stdio / --port")
  message(FATAL_ERROR "missing front-end was accepted (${rc}): ${err}")
endif()

execute_process(
  COMMAND ${SERVE} --users ${WORK_DIR}/serve_users.tsv
          --tweets ${WORK_DIR}/serve_tweets.tsv --stdio
          --definitely-not-a-flag
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "unknown flag --definitely-not-a-flag")
  message(FATAL_ERROR "unknown flag was accepted (${rc}): ${err}")
endif()

execute_process(
  COMMAND ${SERVE} --help
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--help exited ${rc}: ${err}")
endif()
foreach(flag stdio port workers max-batch queue-capacity serve-fault-rate
        stream epoch-size max-pipeline max-connections tier1-fill tier2-fill
        drain-after infer-fill infer-strategy infer-abstain
        infer-night-weight)
  if(NOT err MATCHES "--${flag}")
    message(FATAL_ERROR "--help missing --${flag}: ${err}")
  endif()
endforeach()

execute_process(
  COMMAND ${CLI} infer --help
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "stir_cli infer --help exited ${rc}: ${err}")
endif()
foreach(flag corpus truth strategy abstain night-weight min-gps metrics-out)
  if(NOT err MATCHES "--${flag}")
    message(FATAL_ERROR "infer --help missing --${flag}: ${err}")
  endif()
endforeach()

execute_process(
  COMMAND ${CLI} generate --help
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "stir_cli generate --help exited ${rc}: ${err}")
endif()
foreach(flag night-home-bias no-truth)
  if(NOT err MATCHES "--${flag}")
    message(FATAL_ERROR "generate --help missing --${flag}: ${err}")
  endif()
endforeach()
