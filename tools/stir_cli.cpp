// stir — command-line front end for the library. The workflow a
// downstream user runs without writing C++:
//
//   stir generate --preset korean --scale 0.1 --users u.tsv --tweets t.tsv
//   stir study    --users u.tsv --tweets t.tsv --report-dir out/
//   stir audit    < locations.txt
//
// generate: synthesize a corpus (Korean crawl or Lady Gaga Search-API
//           preset) and persist it as TSV.
// study:    run the paper's full pipeline on a TSV corpus, print the
//           funnel + group table, optionally export plotting CSVs.
// audit:    classify free-text profile locations from stdin.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "core/report.h"
#include "core/study.h"
#include "geo/admin_db.h"
#include "text/location_parser.h"
#include "twitter/generator.h"

namespace {

using stir::geo::AdminDb;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  stir_cli generate --preset korean|ladygaga [--scale S]\n"
               "           [--seed N] --users FILE --tweets FILE\n"
               "  stir_cli study --users FILE --tweets FILE\n"
               "           [--gazetteer korean|world] [--report-dir DIR]\n"
               "           [--xml-pipeline] [--threads N]\n"
               "           [--fault-rate P] [--fault-seed N]\n"
               "           [--retry-max N] [--retry-base-ms MS]\n"
               "  stir_cli audit [--gazetteer korean|world]  (stdin lines)\n");
  return 2;
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first, bool* ok) {
  std::map<std::string, std::string> flags;
  *ok = true;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      *ok = false;
      return flags;
    }
    std::string key = arg.substr(2);
    if (key == "xml-pipeline") {  // boolean flag
      flags[key] = "true";
      continue;
    }
    if (i + 1 >= argc) {
      *ok = false;
      return flags;
    }
    flags[key] = argv[++i];
  }
  return flags;
}

const AdminDb& GazetteerByName(const std::string& name) {
  return name == "world" ? AdminDb::WorldCities() : AdminDb::KoreanDistricts();
}

int RunGenerate(const std::map<std::string, std::string>& flags) {
  auto users_it = flags.find("users");
  auto tweets_it = flags.find("tweets");
  if (users_it == flags.end() || tweets_it == flags.end()) return Usage();
  std::string preset =
      flags.count("preset") ? flags.at("preset") : "korean";
  double scale =
      flags.count("scale") ? std::atof(flags.at("scale").c_str()) : 0.1;
  if (scale <= 0.0) scale = 0.1;

  const AdminDb& db = preset == "ladygaga" ? AdminDb::WorldCities()
                                           : AdminDb::KoreanDistricts();
  stir::twitter::DatasetGeneratorOptions options =
      preset == "ladygaga"
          ? stir::twitter::DatasetGenerator::LadyGagaConfig(scale)
          : stir::twitter::DatasetGenerator::KoreanConfig(scale);
  if (flags.count("seed")) {
    options.seed = static_cast<uint64_t>(
        std::strtoull(flags.at("seed").c_str(), nullptr, 10));
  }
  stir::twitter::DatasetGenerator generator(&db, options);
  stir::twitter::GeneratedData data = generator.Generate();
  stir::Status status =
      data.dataset.SaveTsv(users_it->second, tweets_it->second);
  if (!status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu users (%lld tweets, %lld materialized, %lld GPS) "
              "to %s / %s\n",
              data.dataset.users().size(),
              static_cast<long long>(data.dataset.total_tweet_count()),
              static_cast<long long>(data.dataset.tweets().size()),
              static_cast<long long>(data.dataset.gps_tweet_count()),
              users_it->second.c_str(), tweets_it->second.c_str());
  return 0;
}

int RunStudy(const std::map<std::string, std::string>& flags) {
  auto users_it = flags.find("users");
  auto tweets_it = flags.find("tweets");
  if (users_it == flags.end() || tweets_it == flags.end()) return Usage();
  const AdminDb& db = GazetteerByName(
      flags.count("gazetteer") ? flags.at("gazetteer") : "korean");

  auto dataset =
      stir::twitter::Dataset::LoadTsv(users_it->second, tweets_it->second);
  if (!dataset.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  stir::core::CorrelationStudyOptions options;
  options.refinement.faithful_xml_pipeline = flags.count("xml-pipeline") > 0;
  if (flags.count("threads")) {
    options.threads = std::atoi(flags.at("threads").c_str());
    if (options.threads < 1) {
      std::fprintf(stderr, "--threads must be >= 1\n");
      return Usage();
    }
  }
  if (flags.count("fault-rate")) {
    options.fault.error_rate = std::atof(flags.at("fault-rate").c_str());
    if (options.fault.error_rate < 0.0 || options.fault.error_rate > 1.0) {
      std::fprintf(stderr, "--fault-rate must be in [0, 1]\n");
      return Usage();
    }
  }
  if (flags.count("fault-seed")) {
    options.fault.seed = static_cast<uint64_t>(
        std::strtoull(flags.at("fault-seed").c_str(), nullptr, 10));
  }
  if (flags.count("retry-max")) {
    options.retry.max_attempts = std::atoi(flags.at("retry-max").c_str());
    if (options.retry.max_attempts < 1) {
      std::fprintf(stderr, "--retry-max must be >= 1\n");
      return Usage();
    }
  }
  if (flags.count("retry-base-ms")) {
    options.retry.base_backoff_ms = static_cast<int64_t>(
        std::strtoll(flags.at("retry-base-ms").c_str(), nullptr, 10));
    if (options.retry.base_backoff_ms < 0) {
      std::fprintf(stderr, "--retry-base-ms must be >= 0\n");
      return Usage();
    }
  }
  stir::core::CorrelationStudy study(&db, options);
  stir::core::StudyResult result = study.Run(*dataset);
  std::printf("%s\n%s\n%s", result.FunnelString().c_str(),
              result.GroupTableString().c_str(),
              stir::core::RenderGpsTweetHistogram(result).c_str());

  if (flags.count("report-dir")) {
    stir::Status status =
        stir::core::WriteStudyReportCsv(result, flags.at("report-dir"));
    if (!status.ok()) {
      std::fprintf(stderr, "report export failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("\nreport CSVs written to %s\n",
                flags.at("report-dir").c_str());
  }
  return 0;
}

int RunAudit(const std::map<std::string, std::string>& flags) {
  const AdminDb& db = GazetteerByName(
      flags.count("gazetteer") ? flags.at("gazetteer") : "korean");
  stir::text::LocationParser parser(&db);
  std::string line;
  while (std::getline(std::cin, line)) {
    stir::text::ParsedLocation parsed = parser.Parse(line);
    std::printf("%s\t%s", line.c_str(),
                stir::text::LocationQualityToString(parsed.quality));
    if (parsed.quality == stir::text::LocationQuality::kWellDefined) {
      std::printf("\t%s", db.region(parsed.region).FullName().c_str());
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  bool flags_ok = false;
  std::map<std::string, std::string> flags =
      ParseFlags(argc, argv, 2, &flags_ok);
  if (!flags_ok) return Usage();
  if (std::strcmp(argv[1], "generate") == 0) return RunGenerate(flags);
  if (std::strcmp(argv[1], "study") == 0) return RunStudy(flags);
  if (std::strcmp(argv[1], "audit") == 0) return RunAudit(flags);
  return Usage();
}
